package trace

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTrace writes n records in blocks of blockRecs and returns the single
// file's path plus its block boundaries (offset, length) in file order.
func writeTrace(t *testing.T, n int) (path string, blocks [][2]int64) {
	t.Helper()
	prefix := filepath.Join(t.TempDir(), "cap")
	// BlockBytes 1 forces a flush after every record-ish; use explicit
	// Flush batching instead for deterministic block boundaries.
	w, err := NewWriter(prefix, time.Now(), WriterOptions{BlockBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	const perBlock = 10
	prev := w.BytesWritten()
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if err := w.Append(&rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if (i+1)%perBlock == 0 {
			if err := w.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			blocks = append(blocks, [2]int64{prev, w.BytesWritten() - prev})
			prev = w.BytesWritten()
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.BytesWritten() != prev {
		blocks = append(blocks, [2]int64{prev, w.BytesWritten() - prev})
	}
	return tracePath(prefix, 0), blocks
}

// TestReaderCorruption is the corruption contract table: each damage mode
// recovers the expected valid records and reports what was dropped.
func TestReaderCorruption(t *testing.T) {
	const n = 35 // 3 full blocks of 10 + final block of 5
	cases := []struct {
		name        string
		mutate      func(t *testing.T, raw []byte, blocks [][2]int64) []byte
		wantRecords int
		wantBlocks  int64
		wantDropped int64 // dropped blocks
		wantBytes   bool  // DroppedBytes > 0
		wantErr     string
		wantNote    string
	}{
		{
			name: "clean",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				return raw
			},
			wantRecords: n,
			wantBlocks:  4,
		},
		{
			name: "truncated final block",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				last := blocks[len(blocks)-1]
				return raw[:last[0]+last[1]/2] // cut mid-payload
			},
			wantRecords: 30,
			wantBlocks:  3,
			wantBytes:   true,
			wantNote:    "truncated final block",
		},
		{
			name: "truncated block header",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				last := blocks[len(blocks)-1]
				return raw[:last[0]+blockHdr/2] // cut mid-header
			},
			wantRecords: 30,
			wantBlocks:  3,
			wantBytes:   true,
			wantNote:    "truncated block header",
		},
		{
			name: "CRC mismatch mid-file",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				b := blocks[1]
				raw[b[0]+blockHdr+3] ^= 0xFF // flip a payload byte of block 1
				return raw
			},
			wantRecords: 25, // blocks 0, 2, 3 survive
			wantBlocks:  3,
			wantDropped: 1,
			wantBytes:   true,
			wantNote:    "CRC mismatch",
		},
		{
			name: "version skew",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				binary.LittleEndian.PutUint32(raw[len(fileMagic):], Version+1)
				return raw
			},
			wantErr: "format version",
		},
		{
			name: "not a trace file",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				copy(raw, "NOTTRACE")
				return raw
			},
			wantErr: "bad magic",
		},
		{
			name: "garbage tail",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				return append(raw, []byte("garbage appended after a crash")...)
			},
			wantRecords: n,
			wantBlocks:  4,
			wantBytes:   true,
			wantNote:    "bad block magic",
		},
		{
			name: "implausible block length",
			mutate: func(t *testing.T, raw []byte, blocks [][2]int64) []byte {
				b := blocks[2]
				binary.LittleEndian.PutUint32(raw[b[0]+4:], 1<<30)
				return raw
			},
			wantRecords: 20, // blocks 0, 1 survive; framing lost after
			wantBlocks:  2,
			wantBytes:   true,
			wantNote:    "implausible block length",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, blocks := writeTrace(t, n)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			mutated := tc.mutate(t, append([]byte(nil), raw...), blocks)
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}

			var got []Record
			st, err := ScanFile(path, func(r *Record) error {
				got = append(got, *r)
				return nil
			})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ScanFile: %v", err)
			}
			if len(got) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(got), tc.wantRecords)
			}
			if st.Blocks != tc.wantBlocks {
				t.Fatalf("Blocks = %d, want %d", st.Blocks, tc.wantBlocks)
			}
			if st.DroppedBlocks != tc.wantDropped {
				t.Fatalf("DroppedBlocks = %d, want %d", st.DroppedBlocks, tc.wantDropped)
			}
			if tc.wantBytes && st.DroppedBytes == 0 {
				t.Fatal("DroppedBytes = 0, want > 0")
			}
			if !tc.wantBytes && st.DroppedBytes != 0 {
				t.Fatalf("DroppedBytes = %d, want 0", st.DroppedBytes)
			}
			if tc.wantNote != "" {
				found := false
				for _, c := range st.Corrupt {
					if strings.Contains(c, tc.wantNote) {
						found = true
					}
				}
				if !found {
					t.Fatalf("Corrupt notes %q lack %q", st.Corrupt, tc.wantNote)
				}
			}
			// Whatever survived must be a subset of the original stream with
			// intact field values (spot-check the first survivor).
			if len(got) > 0 {
				want := testRecord(0)
				want.TS = got[0].TS // timestamps survive independently
				if got[0].M != want.M || got[0].Threads != want.Threads || got[0].Flags != want.Flags {
					t.Fatalf("first survivor mangled: %+v", got[0])
				}
			}
		})
	}
}

// TestReaderRecoveredTimelineUnskewed pins the per-block re-anchoring
// property: dropping a block must not shift the absolute timestamps of the
// blocks after it.
func TestReaderRecoveredTimelineUnskewed(t *testing.T) {
	const n = 35
	path, blocks := writeTrace(t, n)

	var clean []Record
	if _, err := ScanFile(path, func(r *Record) error {
		clean = append(clean, *r)
		return nil
	}); err != nil {
		t.Fatalf("clean scan: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	b := blocks[1]
	raw[b[0]+blockHdr] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	var damaged []Record
	if _, err := ScanFile(path, func(r *Record) error {
		damaged = append(damaged, *r)
		return nil
	}); err != nil {
		t.Fatalf("damaged scan: %v", err)
	}
	if len(damaged) != n-10 {
		t.Fatalf("recovered %d records, want %d", len(damaged), n-10)
	}
	// damaged = clean[0:10] ++ clean[20:35]; compare timestamps directly.
	for i := 0; i < 10; i++ {
		if damaged[i].TS != clean[i].TS {
			t.Fatalf("record %d TS skewed: %d != %d", i, damaged[i].TS, clean[i].TS)
		}
	}
	for i := 10; i < len(damaged); i++ {
		if damaged[i].TS != clean[i+10].TS {
			t.Fatalf("post-drop record %d TS skewed: %d != %d", i, damaged[i].TS, clean[i+10].TS)
		}
	}
}
