// adsala-predict queries a saved ADSALA library: for a given GEMM shape it
// prints the predicted runtime of every candidate thread count and the
// selected optimum.
//
// Usage:
//
//	adsala-predict -lib gadi.adsala.json -m 64 -k 2048 -n 64
package main

import (
	"flag"
	"fmt"
	"log"

	adsala "repro"
	"repro/internal/tabulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-predict: ")
	var (
		libPath = flag.String("lib", "adsala.json", "library file written by adsala-train")
		m       = flag.Int("m", 1024, "rows of A / C")
		k       = flag.Int("k", 1024, "cols of A / rows of B")
		n       = flag.Int("n", 1024, "cols of B / C")
	)
	flag.Parse()
	if *m < 1 || *k < 1 || *n < 1 {
		log.Fatalf("dimensions must be positive, got %dx%dx%d", *m, *k, *n)
	}

	lib, err := adsala.Load(*libPath)
	if err != nil {
		log.Fatal(err)
	}
	opt := lib.OptimalThreads(*m, *k, *n)
	fmt.Printf("library: platform=%s model=%s\n", lib.Platform(), lib.ModelKind())
	fmt.Printf("GEMM %dx%dx%d -> optimal threads: %d\n\n", *m, *k, *n, opt)

	tb := tabulate.New("threads", "predicted runtime (us)", "")
	for _, c := range lib.Candidates() {
		mark := ""
		if c == opt {
			mark = "<== selected"
		}
		tb.Row(tabulate.D(c), tabulate.F(lib.PredictRuntime(*m, *k, *n, c)*1e6, 2), mark)
	}
	fmt.Print(tb.String())
}
