// Package logx is the leveled logger shared by the cmd/ binaries. Every
// daemon and CLI takes the same -log-level flag (quiet, info, debug) and
// routes its progress lines through one Logger, so verbosity behaves
// identically across the toolchain instead of each binary improvising with
// bare log.Printf.
package logx

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Level orders log verbosity: Quiet suppresses everything, Info is the
// default operational narrative, Debug adds per-item noise (per-unit,
// per-request lines).
type Level int

const (
	Quiet Level = iota
	Info
	Debug
)

// String returns the flag spelling of the level.
func (l Level) String() string {
	switch l {
	case Quiet:
		return "quiet"
	case Debug:
		return "debug"
	default:
		return "info"
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quiet", "q", "silent":
		return Quiet, nil
	case "info", "":
		return Info, nil
	case "debug", "verbose":
		return Debug, nil
	}
	return Info, fmt.Errorf("unknown log level %q (want quiet, info or debug)", s)
}

// RegisterFlag adds the shared -log-level flag to fs and returns the
// destination string; parse it with ParseLevel after fs.Parse.
func RegisterFlag(fs *flag.FlagSet) *string {
	return fs.String("log-level", "info", "log verbosity: quiet, info or debug")
}

// Logger writes leveled lines to one destination. The zero value and a nil
// *Logger are both safe and silent, so library code can call a logger it
// was never given.
type Logger struct {
	out   io.Writer
	level Level
}

// New returns a Logger writing lines at or below level to out.
func New(out io.Writer, level Level) *Logger {
	return &Logger{out: out, level: level}
}

// Level returns the logger's verbosity (Quiet for a nil logger).
func (l *Logger) Level() Level {
	if l == nil {
		return Quiet
	}
	return l.level
}

// Infof logs the operational narrative: one line per lifecycle event.
func (l *Logger) Infof(format string, args ...any) { l.logf(Info, format, args...) }

// Debugf logs per-item noise shown only at -log-level debug.
func (l *Logger) Debugf(format string, args ...any) { l.logf(Debug, format, args...) }

func (l *Logger) logf(at Level, format string, args ...any) {
	if l == nil || l.out == nil || l.level < at {
		return
	}
	fmt.Fprintf(l.out, format+"\n", args...)
}
