package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sharedLab trains once at quick scale and is reused across tests in this
// package (training dominates the cost).
var sharedLab = NewLab(QuickScale())

func runExp(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, &buf, sharedLab); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	// Every paper table and figure must be present.
	want := []string{"fig1", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "table3", "table4", "table5", "table6", "table7"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if Describe(id) == "" {
			t.Errorf("%s has no description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig999", &buf, sharedLab); err == nil {
		t.Error("unknown id should error")
	}
}

func TestPlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 2 {
		t.Fatalf("%d platforms", len(ps))
	}
	if _, err := PlatformByName("Setonix"); err != nil {
		t.Error(err)
	}
	if _, err := PlatformByName("Fugaku"); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestFig1ShowsOptimaBelowCoreCount(t *testing.T) {
	out := runExp(t, "fig1")
	// The headline claim: a majority of optima sit below 48 threads.
	re := regexp.MustCompile(`below the 48-core default: (\d+)/(\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing:\n%s", out)
	}
	below, _ := strconv.Atoi(m[1])
	total, _ := strconv.Atoi(m[2])
	if below*2 < total {
		t.Errorf("only %d/%d optima below core count — paper shape violated", below, total)
	}
}

func TestFig4SkewnessShrinks(t *testing.T) {
	out := runExp(t, "fig4")
	// Parse the table: for heavily skewed features (skew before > 2), the
	// transform must cut skewness by at least half.
	lines := strings.Split(out, "\n")
	checked := 0
	for _, ln := range lines {
		f := strings.Fields(ln)
		if len(f) < 4 {
			continue
		}
		before, err1 := strconv.ParseFloat(f[len(f)-2], 64)
		after, err2 := strconv.ParseFloat(f[len(f)-1], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if before > 2 {
			checked++
			if abs(after) > before/2 {
				t.Errorf("feature row %q: skew %v -> %v (not normalised)", ln, before, after)
			}
		}
	}
	if checked < 3 {
		t.Errorf("only %d heavily-skewed features found; expected several", checked)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFig7CoreAffinityWinsAtLowCounts(t *testing.T) {
	out := runExp(t, "fig7")
	// Every row with threads <= 16 must show core-based winning on both
	// platforms ("yes" in the last column).
	for _, ln := range strings.Split(out, "\n") {
		f := strings.Fields(ln)
		if len(f) != 4 {
			continue
		}
		th, err := strconv.Atoi(f[0])
		if err != nil || th > 16 {
			continue
		}
		if f[3] != "yes" {
			t.Errorf("threads=%d: core-based did not win: %q", th, ln)
		}
	}
}

func TestFig8MassBelowHalfMax(t *testing.T) {
	out := runExp(t, "fig8")
	re := regexp.MustCompile(`below half the maximum \(128\): (\d+)/(\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("summary missing:\n%s", out)
	}
	below, _ := strconv.Atoi(m[1])
	total, _ := strconv.Atoi(m[2])
	if float64(below) < 0.55*float64(total) {
		t.Errorf("small-dim optima below 128: %d/%d, want >= 55%%", below, total)
	}
}

func TestFig9RendersAllPairs(t *testing.T) {
	out := runExp(t, "fig9")
	for _, pair := range []string{"[m x k]", "[m x n]", "[k x n]"} {
		if strings.Count(out, pair) != 2 { // once per platform
			t.Errorf("pair %s missing: count %d", pair, strings.Count(out, pair))
		}
	}
}

func TestTables3And4ModelOrdering(t *testing.T) {
	for _, id := range []string{"table3", "table4"} {
		out := runExp(t, id)
		for _, model := range []string{"Linear Regression", "ElasticNet", "Bayes Regression",
			"Decision Tree", "Random Forest", "AdaBoost", "XGBoost", "LightGBM"} {
			if !strings.Contains(out, model) {
				t.Errorf("%s: model %q missing", id, model)
			}
		}
		// The worst normalised RMSE must be 1.00 by construction.
		if !strings.Contains(out, "1.00") {
			t.Errorf("%s: no 1.00 normalised RMSE", id)
		}
	}
}

func TestTable5ShapeChecks(t *testing.T) {
	out := runExp(t, "table5")
	stats := parseStatRow(t, out, "Mean Speedup")
	// Columns: Setonix 0-500, Setonix 0-100, Gadi 0-500, Gadi 0-100.
	if len(stats) != 4 {
		t.Fatalf("mean row has %d cells: %v", len(stats), stats)
	}
	set500, set100, gadi500, gadi100 := stats[0], stats[1], stats[2], stats[3]
	// Paper shape: all means >= ~1, 0-100 >= 0-500 per platform, Setonix >= Gadi.
	if set100 < set500*0.95 {
		t.Errorf("Setonix 0-100 mean %v should be >= 0-500 mean %v", set100, set500)
	}
	if gadi100 < gadi500*0.9 {
		t.Errorf("Gadi 0-100 mean %v should be >= 0-500 mean %v", gadi100, gadi500)
	}
	if set500 < gadi500*0.9 {
		t.Errorf("Setonix 0-500 mean %v should be >= Gadi %v", set500, gadi500)
	}
	if set500 < 1.0 || gadi500 < 0.9 {
		t.Errorf("means too low: setonix %v gadi %v", set500, gadi500)
	}
}

func parseStatRow(t *testing.T, out, name string) []float64 {
	t.Helper()
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(strings.TrimSpace(ln), name) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(ln), name))
		var vals []float64
		for _, f := range strings.Fields(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err == nil {
				vals = append(vals, v)
			}
		}
		return vals
	}
	t.Fatalf("row %q missing:\n%s", name, out)
	return nil
}

func TestTable6Runs(t *testing.T) {
	out := runExp(t, "table6")
	if !strings.Contains(out, "hyper-threading off") {
		t.Errorf("missing title:\n%s", out)
	}
	stats := parseStatRow(t, out, "Mean Speedup")
	if len(stats) != 4 {
		t.Fatalf("mean row: %v", stats)
	}
	for i, v := range stats {
		if v < 0.8 || v > 20 {
			t.Errorf("column %d mean %v implausible", i, v)
		}
	}
}

func TestTable7SkinnyShapesCollapse(t *testing.T) {
	out := runExp(t, "table7")
	if !strings.Contains(out, "64,2048,64") || !strings.Contains(out, "64,64,4096") {
		t.Fatalf("cases missing:\n%s", out)
	}
	// ML threads for 64,2048,64 must be far below 96.
	re := regexp.MustCompile(`64,2048,64\s+with ML\s+(\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("ML row missing:\n%s", out)
	}
	th, _ := strconv.Atoi(m[1])
	if th > 48 {
		t.Errorf("ML chose %d threads for 64,2048,64; paper chose 14", th)
	}
}

func TestFig11And12BucketRatios(t *testing.T) {
	for _, id := range []string{"fig11", "fig12"} {
		out := runExp(t, id)
		if !strings.Contains(out, "0-100") || !strings.Contains(out, "400-500") {
			t.Errorf("%s: buckets missing:\n%s", id, out)
		}
		// The 0-100 bucket ratio (ML/base) must favour ML.
		for _, ln := range strings.Split(out, "\n") {
			if !strings.HasPrefix(strings.TrimSpace(ln), "0-100") {
				continue
			}
			f := strings.Fields(ln)
			ratio, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				continue
			}
			// At quick scale the 0-100 bucket holds only a handful of
			// holdout shapes and the reduced model occasionally loses a few
			// per cent on marginal ones; require near-parity here. The
			// default-scale bench run shows the paper's >1 ratios.
			if ratio < 0.9 {
				t.Errorf("%s: 0-100 MB ratio %v — ML far behind on small shapes", id, ratio)
			}
		}
	}
}

func TestFig13And14PredesignedGrid(t *testing.T) {
	for _, id := range []string{"fig13", "fig14"} {
		out := runExp(t, id)
		if strings.Count(out, "n,k (m=") != 24 { // 4 fixed values x 6 sweep rows
			t.Errorf("%s: expected 24 'n,k (m=...)' rows, got %d", id, strings.Count(out, "n,k (m="))
		}
		if !strings.Contains(out, "largest speedup") {
			t.Errorf("%s: summary missing", id)
		}
	}
	// Fig 14 must reproduce the extreme-speedup regime on at least one
	// skinny Gadi shape.
	out := runExp(t, "fig14")
	re := regexp.MustCompile(`largest speedup: ([\d.]+)x`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatal("largest-speedup line missing")
	}
	sp, _ := strconv.ParseFloat(m[1], 64)
	if sp < 5 {
		t.Errorf("largest Gadi predesigned speedup %v, want >= 5 (paper: 81.6)", sp)
	}
}

func TestFig10Runs(t *testing.T) {
	out := runExp(t, "fig10")
	if !strings.Contains(out, "accelerated shapes") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablation-preproc", "ablation-features", "ablation-target"} {
		out := runExp(t, id)
		if !strings.Contains(out, "Ablation") {
			t.Errorf("%s: no ablation header:\n%s", id, out)
		}
	}
}

func TestHoldoutAgreement(t *testing.T) {
	p, _ := PlatformByName("Gadi")
	res, err := sharedLab.Train(p, 500, true)
	if err != nil {
		t.Fatal(err)
	}
	holdout, err := sharedLab.Holdout(p, 500, true)
	if err != nil {
		t.Fatal(err)
	}
	if frac := holdoutChoiceAgreement(res.Library, holdout); frac < 0.5 {
		t.Errorf("only %.0f%% of holdout choices within 2x of optimum", frac*100)
	}
}

func TestScales(t *testing.T) {
	if s := DefaultScale(); s.TrainShapes < 100 || s.HoldoutShapes != 174 {
		t.Errorf("DefaultScale = %+v", s)
	}
	if s := PaperScale(); s.TrainShapes != 1763 || s.Iters != 10 {
		t.Errorf("PaperScale = %+v", s)
	}
	if s := QuickScale(); !s.QuickModels {
		t.Errorf("QuickScale must use quick models")
	}
}
