package main

import (
	"context"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gather"
	"repro/internal/ops"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", ":9191", "-sim", "-name", "w7", "-concurrency", "2", "-pprof"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9191" || !cfg.sim || cfg.name != "w7" || cfg.concurrency != 2 || !cfg.pprof {
		t.Errorf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-concurrency", "0"}, io.Discard); err == nil {
		t.Error("-concurrency 0 should error")
	}
	if _, err := parseFlags([]string{"-h"}, io.Discard); err == nil {
		t.Error("help should surface flag.ErrHelp")
	}
}

// TestRunServesSweep boots the daemon on a loopback port and drives one
// distributed gather against it end to end.
func TestRunServesSweep(t *testing.T) {
	addr := "127.0.0.1:39417"
	var out strings.Builder
	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-addr", addr, "-sim"}, &out) }()

	spec := simtime.SimSpec("Gadi", 3, true)
	gcfg := core.GatherConfig{
		Domain:     sampling.DefaultDomain().WithCapMB(100),
		NumShapes:  6,
		Candidates: []int{1, 4, 16},
		Iters:      2,
		Seed:       3,
		Op:         ops.GEMM,
	}
	coord := gather.New(gather.Config{
		Workers:      []string{addr},
		Timer:        spec,
		UnitShapes:   2,
		PollInterval: 2 * time.Millisecond,
	})

	// The daemon needs a moment to bind; retry registration briefly.
	var (
		got []core.ShapeTimings
		err error
	)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err = coord.Gather(context.Background(), gcfg)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("gather against the daemon: %v (output: %s)", err, out.String())
	}
	if len(got) != 6 {
		t.Fatalf("gathered %d shapes, want 6", len(got))
	}

	timer, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	gcfg.Timer = timer
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Shape != want[i].Shape {
			t.Fatalf("shape %d = %v, want %v", i, got[i].Shape, want[i].Shape)
		}
	}
	select {
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	default:
	}

	// SIGTERM drains the daemon and releases the port (so the test can
	// re-run in the same process, e.g. under -count=2).
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain on SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") {
		t.Errorf("drain not reported: %q", out.String())
	}
}
