package features

import (
	"testing"
	"testing/quick"

	"repro/internal/sampling"
)

func TestColumnsMatchRowWidth(t *testing.T) {
	cols := Columns()
	row := Row(2, 3, 4, 5)
	if len(cols) != len(row) {
		t.Fatalf("columns %d != row width %d", len(cols), len(row))
	}
	if len(cols) != 17 {
		t.Errorf("Table II defines 9 + 8 = 17 features, got %d", len(cols))
	}
}

func TestGroup1Columns(t *testing.T) {
	g1 := Group1Columns()
	if len(g1) != 9 {
		t.Fatalf("Group 1 has %d features, want 9", len(g1))
	}
	for _, c := range g1 {
		if len(c) > 2 && c[len(c)-2:] == "/t" {
			t.Errorf("Group 1 contains parallel feature %q", c)
		}
	}
}

func TestRowValues(t *testing.T) {
	row := Row(2, 3, 4, 2)
	named := map[string]float64{}
	for i, c := range Columns() {
		named[c] = row[i]
	}
	checks := map[string]float64{
		"m": 2, "k": 3, "n": 4, "n_threads": 2,
		"m*k": 6, "m*n": 8, "k*n": 12, "m*k*n": 24, "m*k+k*n+m*n": 26,
		"m/t": 1, "k/t": 1.5, "n/t": 2,
		"m*k/t": 3, "m*n/t": 4, "k*n/t": 6, "m*k*n/t": 12, "(m*k+k*n+m*n)/t": 13,
	}
	for name, want := range checks {
		if got, ok := named[name]; !ok || got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestBuild(t *testing.T) {
	recs := []Record{
		{Shape: sampling.Shape{M: 2, K: 3, N: 4}, Threads: 2, Seconds: 0.5},
		{Shape: sampling.Shape{M: 5, K: 6, N: 7}, Threads: 8, Seconds: 1.5},
	}
	d := Build(recs)
	if d.Len() != 2 {
		t.Fatalf("dataset has %d rows", d.Len())
	}
	if d.Y[0] != 0.5 || d.Y[1] != 1.5 {
		t.Errorf("targets = %v", d.Y)
	}
	if d.X[1][0] != 5 {
		t.Errorf("row 1 m = %v", d.X[1][0])
	}
}

// Property: Group 2 features equal their Group 1 counterparts divided by the
// thread count, and all features are finite and positive for valid inputs.
func TestRowConsistencyProperty(t *testing.T) {
	f := func(mr, kr, nr, tr uint16) bool {
		m, k, n := 1+int(mr%5000), 1+int(kr%5000), 1+int(nr%5000)
		threads := 1 + int(tr%256)
		row := Row(m, k, n, threads)
		tval := float64(threads)
		// m/t, k/t, n/t at indices 9..11; mk,mn,kn,mkn,total at 4..8 map to 12..16.
		if row[9] != row[0]/tval || row[10] != row[1]/tval || row[11] != row[2]/tval {
			return false
		}
		for off := 0; off < 5; off++ {
			if row[12+off] != row[4+off]/tval {
				return false
			}
		}
		for _, v := range row {
			if v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRowIntoZeroAlloc pins the //adsala:zeroalloc contract: filling a
// caller-owned row allocates nothing.
func TestRowIntoZeroAlloc(t *testing.T) {
	dst := make([]float64, len(Columns()))
	if n := testing.AllocsPerRun(1000, func() {
		RowInto(512, 256, 384, 16, dst)
	}); n != 0 {
		t.Errorf("RowInto allocates %.1f/op, want 0", n)
	}
}
