package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner is one experiment generator.
type Runner func(w io.Writer, lab *Lab) error

// registry maps experiment IDs to generators, with a short description.
var registry = map[string]struct {
	Run  Runner
	Desc string
}{
	"fig1":              {Fig1, "histogram of optimal thread counts (Gadi, <=100 MB)"},
	"fig4":              {Fig4, "feature skewness before/after Yeo-Johnson (Setonix)"},
	"fig7":              {Fig7, "core- vs thread-based affinity (both platforms)"},
	"fig8":              {Fig8, "optimal-thread histogram, min dim < 1000 (Setonix)"},
	"fig9":              {Fig9, "optimal-thread heatmaps vs (m,k,n) (both platforms)"},
	"table3":            {Table3, "model comparison on Setonix (Table III)"},
	"table4":            {Table4, "model comparison on Gadi (Table IV)"},
	"table5":            {Table5, "speedup statistics with hyper-threading (Table V)"},
	"table6":            {Table6, "speedup statistics without hyper-threading (Table VI)"},
	"fig10":             {Fig10, "speedup heatmaps vs (m,k,n) (both platforms)"},
	"fig11":             {Fig11, "GFLOPS by memory footprint (Setonix, Fig 11)"},
	"fig12":             {Fig12, "GFLOPS by memory footprint (Gadi, Fig 12)"},
	"fig13":             {Fig13, "GFLOPS on predesigned shapes (Setonix, Fig 13)"},
	"fig14":             {Fig14, "GFLOPS on predesigned shapes (Gadi, Fig 14)"},
	"table7":            {Table7, "profiling breakdown of two skinny GEMMs (Table VII)"},
	"ablation-preproc":  {AblationPreproc, "ablation: preprocessing stack"},
	"ablation-features": {AblationFeatures, "ablation: Group 1 vs full feature set"},
	"ablation-target":   {AblationTarget, "ablation: runtime-argmin vs direct regression"},
}

// IDs returns all experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment ID.
func Describe(id string) string { return registry[id].Desc }

// Run executes one experiment by ID.
func Run(id string, w io.Writer, lab *Lab) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return e.Run(w, lab)
}

// RunAll executes every experiment in order, writing a banner between them.
// It keeps going after individual failures and returns the first error.
func RunAll(w io.Writer, lab *Lab) error {
	var firstErr error
	for _, id := range IDs() {
		fmt.Fprintf(w, "\n================ %s: %s ================\n", id, Describe(id))
		if err := Run(id, w, lab); err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
