// Package blas implements the level-3 GEMM routine (C ← αAB + βC) in pure
// Go, following the BLIS five-loop blocked-and-packed design: the operand
// matrices are partitioned into cache-sized panels (NC/KC/MC), panels are
// packed into contiguous buffers, and an MR×NR register micro-kernel performs
// the innermost rank-KC update. A persistent worker team parallelises the
// packing and MC loops, mirroring how MKL/BLIS thread the same loops with an
// OpenMP thread pool.
//
// The package plays the role of the paper's vendor BLAS: ADSALA treats it as
// a black box whose only tunable is the thread count. Its cost structure —
// fork/join (here: team wakeups), per-panel packing copies, per-iteration
// barriers and the FLOP kernel — is exactly the decomposition the paper's
// VTune profiling reports in Table VII.
//
// Execution state (packed-panel buffers, the worker team) lives in a
// Context. The package-level entry points draw Contexts from an internal
// pool, so steady-state calls are allocation-free; callers with a hot loop
// can hold their own Context instead.
package blas

import (
	"fmt"

	"repro/internal/mat"
)

// Params holds the blocking parameters of the five-loop algorithm.
type Params struct {
	MC, KC, NC int // cache block sizes (rows of A, depth, cols of B)
	MR, NR     int // register micro-tile
}

// DefaultParams returns blocking parameters sized for typical L1/L2/L3
// capacities. The 4×4 micro-tile is the fastest of the supported set under
// the gc register allocator (see kernel.go); 8×4 and 4×8 are available for
// experimentation via SGEMMWithParams.
func DefaultParams() Params {
	return Params{MC: 128, KC: 256, NC: 2048, MR: defaultMR, NR: defaultNR}
}

// Validate reports whether the parameters can drive the packed kernel.
func (p Params) Validate() error {
	if p.MC < 1 || p.KC < 1 || p.NC < 1 {
		return fmt.Errorf("blas: non-positive block sizes %+v", p)
	}
	if !supportedTile(p.MR, p.NR) {
		return fmt.Errorf("blas: micro-tile %dx%d unsupported (have 4x4, 8x4, 4x8)", p.MR, p.NR)
	}
	if p.MC%p.MR != 0 {
		return fmt.Errorf("blas: MC=%d must be a multiple of MR=%d", p.MC, p.MR)
	}
	if p.NC%p.NR != 0 {
		return fmt.Errorf("blas: NC=%d must be a multiple of NR=%d", p.NC, p.NR)
	}
	return nil
}

// SGEMM computes C ← alpha·op(A)·op(B) + beta·C in single precision using
// the given number of worker goroutines (threads < 1 is treated as 1).
// op(A) is A when transA is false and Aᵀ otherwise; likewise for B.
// Dimension compatibility follows the BLAS convention: with m×k = op(A),
// k×n = op(B), C must be m×n. The call runs on a pooled Context and
// allocates nothing in steady state.
func SGEMM(transA, transB bool, alpha float32, a *mat.F32, b *mat.F32, beta float32, c *mat.F32, threads int) error {
	ctx := ctxPool.Get().(*Context)
	// Deferred so a panicking inner call (indexing bug, corrupted operand
	// headers) does not leak the pooled context and its worker team.
	defer ctxPool.Put(ctx)
	return ctx.SGEMM(transA, transB, alpha, a, b, beta, c, threads)
}

// DGEMM is the double-precision counterpart of SGEMM.
func DGEMM(transA, transB bool, alpha float64, a *mat.F64, b *mat.F64, beta float64, c *mat.F64, threads int) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.DGEMM(transA, transB, alpha, a, b, beta, c, threads)
}

// SGEMMWithParams is SGEMM with explicit blocking parameters; it exists for
// the blocking-parameter benchmarks and the wide micro-tile variants.
func SGEMMWithParams(transA, transB bool, alpha float32, a *mat.F32, b *mat.F32, beta float32, c *mat.F32, threads int, p Params) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.SGEMMWithParams(transA, transB, alpha, a, b, beta, c, threads, p)
}

// DGEMMWithParams is DGEMM with explicit blocking parameters.
func DGEMMWithParams(transA, transB bool, alpha float64, a *mat.F64, b *mat.F64, beta float64, c *mat.F64, threads int, p Params) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.DGEMMWithParams(transA, transB, alpha, a, b, beta, c, threads, p)
}

// view is a type-parameterised matrix header over a flat backing slice.
type view[T float32 | float64] struct {
	rows, cols, stride int
	data               []T
}

func (v view[T]) at(i, j int) T { return v.data[i*v.stride+j] }

// opDims returns the dimensions of op(X).
func opDims[T float32 | float64](v view[T], trans bool) (rows, cols int) {
	if trans {
		return v.cols, v.rows
	}
	return v.rows, v.cols
}

// opAt reads element (i, j) of op(X).
func opAt[T float32 | float64](v view[T], trans bool, i, j int) T {
	if trans {
		return v.at(j, i)
	}
	return v.at(i, j)
}

func errInnerDims(m, ka, kb, n int) error {
	return fmt.Errorf("blas: inner dimensions differ: op(A) is %dx%d, op(B) is %dx%d", m, ka, kb, n)
}

func errCDims(rows, cols, m, n int) error {
	return fmt.Errorf("blas: C is %dx%d, want %dx%d", rows, cols, m, n)
}

// scaleC applies C ← beta·C.
func scaleC[T float32 | float64](c view[T], beta T) {
	for i := 0; i < c.rows; i++ {
		row := c.data[i*c.stride : i*c.stride+c.cols]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		if beta != 1 {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
