package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// WriterOptions configures the block writer. The zero value selects the
// defaults.
type WriterOptions struct {
	// MaxFileBytes is the size-based rotation threshold: once the current
	// file reaches it, the next block opens a new `<prefix>-NNNNN.trace`.
	// 0 selects 64 MiB; negative disables rotation.
	MaxFileBytes int64
	// BlockBytes is the target encoded-payload size of one CRC-framed
	// block. 0 selects 64 KiB.
	BlockBytes int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.MaxFileBytes == 0 {
		o.MaxFileBytes = 64 << 20
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 64 << 10
	}
	return o
}

// Writer appends records to a rotating sequence of trace files as
// CRC-framed varint blocks. It is not safe for concurrent use: the
// Recorder's single drain goroutine owns it (tests and offline tools may
// drive one directly).
type Writer struct {
	prefix string
	opts   WriterOptions
	start  time.Time

	f         *os.File
	fileBytes int64
	fileIdx   int
	written   int64 // total bytes across rotations

	// Current block under construction. payload holds the encoded records,
	// block the assembled count|firstTS|records payload; both are reused
	// between blocks. prevTS is the timestamp the next record's delta is
	// relative to.
	payload []byte
	block   []byte
	count   uint64
	firstTS int64
	prevTS  int64
}

// NewWriter opens a block writer over `<prefix>-NNNNN.trace` files,
// continuing after the highest existing index so a restarted daemon never
// clobbers an earlier capture. start anchors the wall-clock header field of
// every file; record timestamps are monotonic nanoseconds relative to it.
func NewWriter(prefix string, start time.Time, opts WriterOptions) (*Writer, error) {
	if prefix == "" {
		return nil, fmt.Errorf("trace: empty file prefix")
	}
	w := &Writer{
		prefix:  prefix,
		opts:    opts.withDefaults(),
		start:   start,
		fileIdx: -1,
		payload: make([]byte, 0, opts.withDefaults().BlockBytes+maxRecordLen),
	}
	existing, err := Files(prefix)
	if err != nil {
		return nil, err
	}
	for _, path := range existing {
		if idx, ok := fileIndex(prefix, path); ok && idx > w.fileIdx {
			w.fileIdx = idx
		}
	}
	if err := w.rotate(); err != nil {
		return nil, err
	}
	return w, nil
}

// rotate closes the current file (if any) and opens the next in sequence,
// writing its header.
func (w *Writer) rotate() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	w.fileIdx++
	f, err := os.OpenFile(tracePath(w.prefix, w.fileIdx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, headerLen)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[len(fileMagic):], Version)
	binary.LittleEndian.PutUint64(hdr[len(fileMagic)+4:], uint64(w.start.UnixNano()))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.fileBytes = int64(headerLen)
	w.written += int64(headerLen)
	return nil
}

// Append buffers one record into the current block, flushing it to disk
// when it reaches the target block size.
func (w *Writer) Append(rec *Record) error {
	if w.count == 0 {
		w.firstTS = rec.TS
		w.prevTS = rec.TS
	}
	w.payload = appendRecord(w.payload, rec, w.prevTS)
	if ts := rec.TS; ts > w.prevTS {
		w.prevTS = ts
	}
	w.count++
	if len(w.payload) >= w.opts.BlockBytes {
		return w.Flush()
	}
	return nil
}

// Flush writes the block under construction (a no-op when it is empty),
// rotating first when the current file is full.
func (w *Writer) Flush() error {
	if w.count == 0 {
		return nil
	}
	// Assemble count | firstTS | records. The per-record deltas in payload
	// are already relative to firstTS for the first record (delta 0).
	w.block = binary.AppendUvarint(w.block[:0], w.count)
	w.block = binary.AppendUvarint(w.block, uint64(w.firstTS))
	w.block = append(w.block, w.payload...)
	full := w.block

	need := int64(blockHdr + len(full))
	if w.opts.MaxFileBytes > 0 && w.fileBytes > int64(headerLen) && w.fileBytes+need > w.opts.MaxFileBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var hdr [blockHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], blockMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(full)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(full))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(full); err != nil {
		return err
	}
	w.fileBytes += need
	w.written += need
	w.payload = w.payload[:0]
	w.count = 0
	return nil
}

// BytesWritten returns the total bytes written across all files so far.
func (w *Writer) BytesWritten() int64 { return w.written }

// Close flushes the pending block and closes the current file.
func (w *Writer) Close() error {
	flushErr := w.Flush()
	if w.f != nil {
		if err := w.f.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
		w.f = nil
	}
	return flushErr
}

// tracePath returns the path of the idx-th file of a prefix.
func tracePath(prefix string, idx int) string {
	return fmt.Sprintf("%s-%05d.trace", prefix, idx)
}

// fileIndex parses the rotation index out of a trace path for the prefix.
func fileIndex(prefix, path string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(path, prefix+"-%d.trace", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// Files returns the trace files of a capture prefix in rotation order. A
// path that is itself an existing file is returned as-is, so tools accept
// either a prefix or a single file.
func Files(prefix string) ([]string, error) {
	if st, err := os.Stat(prefix); err == nil && !st.IsDir() {
		return []string{prefix}, nil
	}
	matches, err := filepath.Glob(prefix + "-*.trace")
	if err != nil {
		return nil, err
	}
	type indexed struct {
		idx  int
		path string
	}
	var files []indexed
	for _, m := range matches {
		if idx, ok := fileIndex(prefix, m); ok {
			files = append(files, indexed{idx, m})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].idx < files[j].idx })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}
