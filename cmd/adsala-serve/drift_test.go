package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/logx"
	"repro/internal/serve"
)

// TestDaemonDriftMonitoring pins the -drift-window wiring end to end
// in-process: the daemon scores measurements reported through POST
// /measured, serves the /drift report, exposes the adsala_drift_* and
// adsala_kernel_measured_seconds families on /metrics, and flips the
// /healthz body to degraded (still HTTP 200) when the stream drifts past
// the threshold.
func TestDaemonDriftMonitoring(t *testing.T) {
	path := savedLibrary(t)
	var out bytes.Buffer
	cfg, err := parseFlags([]string{
		"-lib", path, "-drift-window", "1m", "-drift-threshold", "0.5", "-drift-min-samples", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.driftWindow != time.Minute || cfg.driftThreshold != 0.5 || cfg.driftMinSamples != 4 {
		t.Fatalf("drift flags parsed wrong: %+v", cfg)
	}
	srv, err := newServer(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drift monitor on") {
		t.Errorf("drift start not reported: %q", out.String())
	}
	if srv.Engine().DriftMonitor() == nil {
		t.Fatal("no drift monitor attached")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := serve.NewClient(ts.URL, nil)

	// Report measurements 4x slower than the model's estimate: residual_log2
	// is -2 per record, past the 0.5 threshold once 4 samples land.
	lib := srv.Engine().Library()
	threads := lib.OptimalThreads(256, 256, 256)
	ns := int64(lib.PredictOpSeconds(serve.OpGEMM, 256, 256, 256, threads) * 4e9)
	if ns <= 0 {
		ns = 4
	}
	records := make([]serve.MeasuredRecord, 8)
	for i := range records {
		records[i] = serve.MeasuredRecord{Op: "gemm", M: 256, K: 256, N: 256, Threads: threads, MeasuredNs: ns}
	}
	accepted, err := cl.ReportMeasured(records)
	if err != nil || accepted != len(records) {
		t.Fatalf("ReportMeasured = %d, %v", accepted, err)
	}

	rep, err := cl.Drift()
	if err != nil {
		t.Fatalf("Drift: %v", err)
	}
	if rep.Observed != int64(len(records)) || !rep.Degraded {
		t.Fatalf("drift report observed=%d degraded=%v: %+v", rep.Observed, rep.Degraded, rep)
	}

	// Degraded, not down.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz: HTTP %d, want 200", hr.StatusCode)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || len(h.DriftingOps) != 1 || h.DriftingOps[0] != "gemm" {
		t.Fatalf("healthz body not degraded on gemm: %+v", h)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		`adsala_drift_observed_total{op="gemm"} 8`,
		"adsala_drift_degraded 1",
		`adsala_drift_op_drifting{op="gemm"} 1`,
		`adsala_kernel_measured_seconds_count{op="gemm"} 8`,
		"adsala_drift_window_seconds 60",
		`adsala_build_info{go_version="`,
		"adsala_uptime_seconds",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// The structured event log emits the drift_start edge when LogEvents
	// runs (the daemon's run() ticks it; here we drive it directly).
	before := out.Len()
	if n := srv.Engine().DriftMonitor().LogEvents(logx.New(&out, logx.Info)); n != 1 {
		t.Fatalf("LogEvents = %d, want 1", n)
	}
	if !strings.Contains(out.String()[before:], "event=drift_start") {
		t.Fatalf("drift_start not logged: %q", out.String()[before:])
	}
}
