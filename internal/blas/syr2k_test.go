package blas

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestSyr2kPackedMatchesNaiveMatrix is the exhaustive edge-case matrix for
// the packed SYR2K path, mirroring the SYRK matrix: every supported
// micro-tile × {trans} × {alpha, beta ∈ 0/1/other} × strided operands × n
// values that leave remainders against every blocking boundary, checked
// against the naive reference.
func TestSyr2kPackedMatchesNaiveMatrix(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(40))
	alphas := []float32{0, 1, 1.25}
	betas := []float32{0, 1, -0.5}
	for _, tile := range [][2]int{{4, 4}, {8, 4}, {4, 8}} {
		mr, nr := tile[0], tile[1]
		prm := Params{MC: 2 * mr, KC: 10, NC: 2 * nr, MR: mr, NR: nr}
		if err := prm.Validate(); err != nil {
			t.Fatalf("tile %dx%d params: %v", mr, nr, err)
		}
		nDims := []int{1, mr - 1, mr + 1, 2*mr - 1, 2 * mr, 4*mr + 1, 17, 33}
		kDims := []int{1, 9, 10, 11, 21}
		combo := 0
		for _, n := range nDims {
			if n < 1 {
				continue
			}
			for _, k := range kDims {
				trans := combo&1 != 0
				threads := 1 + combo%4
				extra := (combo % 3) * 3 // 0, 3, 6 stride padding
				alpha := alphas[combo%len(alphas)]
				beta := betas[(combo/2)%len(betas)]
				combo++

				ar, ac := n, k
				if trans {
					ar, ac = k, n
				}
				a := stridedF32(ar, ac, extra, rng)
				b := stridedF32(ar, ac, extra, rng)
				c := stridedF32(n, n, extra, rng)
				symmetrise(c)
				want := c.Clone()
				NaiveSSYR2K(trans, alpha, a, b, beta, want)
				if err := SSYR2KWithParams(trans, alpha, a, b, beta, c, threads, prm); err != nil {
					t.Fatalf("tile %dx%d n=%d k=%d trans=%v: %v", mr, nr, n, k, trans, err)
				}
				if d := c.Clone().MaxAbsDiff(want); d > 2*tolF32(2*k) {
					t.Errorf("tile %dx%d n=%d k=%d trans=%v threads=%d alpha=%v beta=%v: max diff %v",
						mr, nr, n, k, trans, threads, alpha, beta, d)
				}
				checkPaddingF32(t, c, "syr2k C")
			}
		}
	}
}

// TestDSYR2KMatchesNaiveMatrix runs the double-precision path (packed and
// small) over the same trans × alpha/beta × stride axes.
func TestDSYR2KMatchesNaiveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, limit := range []int{forcePacked, forceSmall} {
		forcePath(t, limit)
		combo := 0
		for _, n := range []int{1, 3, 7, 16, 33} {
			for _, k := range []int{1, 5, 12} {
				trans := combo&1 != 0
				threads := 1 + combo%3
				extra := (combo % 2) * 3
				beta := 0.75
				if combo%4 == 0 {
					beta = 0
				}
				combo++

				ar, ac := n, k
				if trans {
					ar, ac = k, n
				}
				a := stridedF64(ar, ac, extra, rng)
				b := stridedF64(ar, ac, extra, rng)
				c := stridedF64(n, n, extra, rng)
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						c.Set(i, j, c.At(j, i))
					}
				}
				want := c.Clone()
				NaiveDSYR2K(trans, -1.5, a, b, beta, want)
				if err := DSYR2K(trans, -1.5, a, b, beta, c, threads); err != nil {
					t.Fatalf("n=%d k=%d trans=%v: %v", n, k, trans, err)
				}
				if d := c.Clone().MaxAbsDiff(want); d > tolF64(2*k) {
					t.Errorf("limit=%d n=%d k=%d trans=%v: max diff %v", limit, n, k, trans, d)
				}
			}
		}
	}
}

// TestSyr2kSymmetryAndReference checks the public entry points against a
// two-GEMM reference and pins exact symmetry of the result.
func TestSyr2kSymmetryAndReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n, k    int
		trans   bool
		threads int
	}{
		{5, 7, false, 1}, {16, 4, false, 3}, {33, 17, false, 4},
		{9, 12, true, 2}, {70, 40, false, 3}, {70, 40, true, 2},
	} {
		ar, ac := tc.n, tc.k
		if tc.trans {
			ar, ac = tc.k, tc.n
		}
		a := randF32(ar, ac, rng)
		b := randF32(ar, ac, rng)
		c := randF32(tc.n, tc.n, rng)
		symmetrise(c)
		// Reference: C ← 1.5·op(A)·op(B)ᵀ + 0.5·C, then += 1.5·op(B)·op(A)ᵀ.
		want := c.Clone()
		NaiveSGEMM(tc.trans, !tc.trans, 1.5, a, b, 0.5, want)
		NaiveSGEMM(tc.trans, !tc.trans, 1.5, b, a, 1, want)
		got := c.Clone()
		if err := SSYR2K(tc.trans, 1.5, a, b, 0.5, got, tc.threads); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := got.MaxAbsDiff(want); d > 2*tolF32(2*tc.k) {
			t.Errorf("%+v: max diff %v", tc, d)
		}
		for i := 0; i < tc.n; i++ {
			for j := 0; j < i; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("%+v: asymmetric at (%d,%d)", tc, i, j)
				}
			}
		}
	}
}

// TestSyr2kThreadDeterminism pins the bit-exactness guarantee: any thread
// count must reproduce the serial result exactly on the packed path.
func TestSyr2kThreadDeterminism(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(43))
	for _, sh := range [][2]int{{97, 53}, {129, 256}, {64, 300}} {
		n, k := sh[0], sh[1]
		a := randF32(n, k, rng)
		b := randF32(n, k, rng)
		ref := mat.NewF32(n, n)
		if err := SSYR2K(false, 1, a, b, 0, ref, 1); err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 3, 5, 8} {
			c := mat.NewF32(n, n)
			if err := SSYR2K(false, 1, a, b, 0, c, threads); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(ref); d != 0 {
				t.Errorf("n=%d k=%d threads=%d: differs from serial by %v (want bit-identical)", n, k, threads, d)
			}
		}
	}
}

// TestSyr2kZeroAllocSteadyState enforces the zero-allocation guarantee of
// the SYR2K Context path and the pooled package path once warm.
func TestSyr2kZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(44))
	a := randF32(128, 96, rng)
	b := randF32(128, 96, rng)
	c := mat.NewF32(128, 128)
	for _, tc := range []struct {
		name    string
		threads int
	}{{"serial", 1}, {"team2", 2}, {"team4", 4}} {
		ctx := NewContext()
		for i := 0; i < 2; i++ { // warm: buffers, team, worker closure
			if err := ctx.SSYR2K(false, 1, a, b, 0, c, tc.threads); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := ctx.SSYR2K(false, 1, a, b, 0, c, tc.threads); err != nil {
				t.Fatal(err)
			}
		})
		ctx.Close()
		if allocs != 0 {
			t.Errorf("Context.SSYR2K %s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	for i := 0; i < 3; i++ { // warm the package pool
		if err := SSYR2K(false, 1, a, b, 0, c, 2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := SSYR2K(false, 1, a, b, 0, c, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled blas.SSYR2K: %v allocs/op, want 0", allocs)
	}
}

func TestSSYR2KValidation(t *testing.T) {
	a := mat.NewF32(4, 3)
	bBad := mat.NewF32(4, 2)
	c := mat.NewF32(4, 4)
	if err := SSYR2K(false, 1, a, bBad, 0, c, 1); err == nil {
		t.Error("mismatched op(B) should error")
	}
	cBad := mat.NewF32(3, 4)
	if err := SSYR2K(false, 1, a, mat.NewF32(4, 3), 0, cBad, 1); err == nil {
		t.Error("non-square C should error")
	}
	if err := DSYR2K(true, 1, mat.NewF64(4, 3), mat.NewF64(4, 3), 0, mat.NewF64(4, 4), 1); err == nil {
		t.Error("transposed dims mismatching C should error")
	}
}

func TestSSYR2KAlphaZero(t *testing.T) {
	a := mat.NewF32(3, 2)
	b := mat.NewF32(3, 2)
	c := mat.NewF32(3, 3)
	c.Fill(4)
	if err := SSYR2K(false, 0, a, b, 0.5, c, 2); err != nil {
		t.Fatal(err)
	}
	if c.At(1, 1) != 2 {
		t.Errorf("alpha=0 should scale C by beta: %v", c.At(1, 1))
	}
	if c.At(0, 2) != c.At(2, 0) {
		t.Errorf("alpha=0 result not symmetric: %v vs %v", c.At(0, 2), c.At(2, 0))
	}
}
