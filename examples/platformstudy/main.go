// Platformstudy: the "Architecture Aware" part of ADSALA — the same GEMM
// shape gets a different thread count on different nodes. This example
// trains one library per platform (2x64-core Zen 3 "Setonix" and 2x24-core
// Cascade Lake "Gadi") and contrasts their decisions and the speedups each
// achieves over the max-thread default on its own machine.
//
//	go run ./examples/platformstudy
package main

import (
	"fmt"
	"log"

	adsala "repro"
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/tabulate"
)

func main() {
	log.SetFlags(0)
	type plat struct {
		lib  *adsala.Library
		sim  *simtime.Simulator
		ref  int
		name string
	}
	var plats []plat
	for _, name := range []string{"Setonix", "Gadi"} {
		lib, _, err := adsala.Train(adsala.TrainOptions{
			Platform: name, Shapes: 120, Quick: true, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		node, err := machine.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		plats = append(plats, plat{
			lib:  lib,
			sim:  simtime.New(simtime.DefaultConfig(node)),
			ref:  node.PhysicalCores(),
			name: name,
		})
		fmt.Printf("trained %s library (model %s)\n", name, lib.ModelKind())
	}

	shapes := [][3]int{
		{64, 64, 64},
		{64, 2048, 64},
		{64, 64, 4096},
		{256, 256, 4096},
		{1024, 1024, 1024},
		{128, 50000, 128},
		{4096, 4096, 512},
		{8000, 8000, 8000},
	}
	fmt.Println("\nsame shape, different machine, different decision:")
	tb := tabulate.New("m x k x n",
		"Setonix threads", "Setonix speedup", "Gadi threads", "Gadi speedup")
	for _, s := range shapes {
		cells := []string{fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2])}
		for _, p := range plats {
			threads := p.lib.OptimalThreads(s[0], s[1], s[2])
			tML := p.sim.MeasureMean(s[0], s[1], s[2], threads, 3)
			tRef := p.sim.MeasureMean(s[0], s[1], s[2], p.ref, 3)
			cells = append(cells, tabulate.D(threads), tabulate.F(tRef/tML, 2))
		}
		tb.Row(cells...)
	}
	fmt.Print(tb.String())
	fmt.Println("\nspeedups are against one thread per physical core on each machine")
	fmt.Println("(128 on Setonix, 48 on Gadi), the paper's baseline.")
}
