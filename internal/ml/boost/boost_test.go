package boost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

func friedman(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y[i] = 10*math.Sin(math.Pi*x[0]*x[1]) + 20*(x[2]-0.5)*(x[2]-0.5) +
			10*x[3] + 5*x[4] + noise*rng.NormFloat64()
	}
	return X, y
}

func TestXGBBeatsSingleTree(t *testing.T) {
	X, y := friedman(500, 0.5, 1)
	Xt, yt := friedman(250, 0.5, 2)
	single := tree.NewRegressor(tree.Params{MaxDepth: 6})
	if err := single.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	xgb := NewXGB(XGBParams{NRounds: 150, MaxDepth: 4})
	if err := xgb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sRMSE := ml.RMSE(ml.PredictBatch(single, Xt), yt)
	xRMSE := ml.RMSE(ml.PredictBatch(xgb, Xt), yt)
	if xRMSE >= sRMSE*0.8 {
		t.Errorf("XGB RMSE %v vs tree %v: insufficient improvement", xRMSE, sRMSE)
	}
	if xgb.Name() != "XGBoost" {
		t.Errorf("Name = %q", xgb.Name())
	}
}

func TestXGBTrainingErrorDecreasesWithRounds(t *testing.T) {
	X, y := friedman(300, 0.2, 3)
	small := NewXGB(XGBParams{NRounds: 5, MaxDepth: 4})
	big := NewXGB(XGBParams{NRounds: 120, MaxDepth: 4})
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sr := ml.RMSE(ml.PredictBatch(small, X), y)
	br := ml.RMSE(ml.PredictBatch(big, X), y)
	if br >= sr {
		t.Errorf("more rounds did not reduce training RMSE: %v vs %v", br, sr)
	}
}

func TestXGBLambdaRegularises(t *testing.T) {
	X, y := friedman(200, 1.0, 4)
	loose := NewXGB(XGBParams{NRounds: 60, MaxDepth: 4, Lambda: 1e-6})
	tight := NewXGB(XGBParams{NRounds: 60, MaxDepth: 4, Lambda: 1e4})
	if err := loose.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := tight.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lr := ml.RMSE(ml.PredictBatch(loose, X), y)
	tr := ml.RMSE(ml.PredictBatch(tight, X), y)
	if tr <= lr {
		t.Errorf("huge lambda should underfit training data: %v vs %v", tr, lr)
	}
}

func TestXGBSubsampleStillLearns(t *testing.T) {
	X, y := friedman(400, 0.3, 5)
	xgb := NewXGB(XGBParams{NRounds: 100, MaxDepth: 4, Subsample: 0.7, Seed: 1})
	if err := xgb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if rmse := ml.RMSE(ml.PredictBatch(xgb, X), y); rmse > 1.5 {
		t.Errorf("subsampled XGB training RMSE %v too high", rmse)
	}
}

func TestXGBConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 5, 5}
	xgb := NewXGB(XGBParams{NRounds: 10})
	if err := xgb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := xgb.Predict([]float64{9}); math.Abs(got-5) > 1e-9 {
		t.Errorf("constant target predict = %v", got)
	}
}

func TestXGBRejectsBadInput(t *testing.T) {
	if err := NewXGB(XGBParams{}).Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
}

func TestLGBMBeatsSingleTree(t *testing.T) {
	X, y := friedman(500, 0.5, 6)
	Xt, yt := friedman(250, 0.5, 7)
	single := tree.NewRegressor(tree.Params{MaxDepth: 6})
	if err := single.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lgbm := NewLGBM(LGBMParams{NRounds: 120})
	if err := lgbm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sRMSE := ml.RMSE(ml.PredictBatch(single, Xt), yt)
	lRMSE := ml.RMSE(ml.PredictBatch(lgbm, Xt), yt)
	if lRMSE >= sRMSE {
		t.Errorf("LGBM RMSE %v not better than tree %v", lRMSE, sRMSE)
	}
	if lgbm.Name() != "LightGBM" {
		t.Errorf("Name = %q", lgbm.Name())
	}
}

func TestLGBMLeafLimit(t *testing.T) {
	X, y := friedman(300, 0.2, 8)
	lgbm := NewLGBM(LGBMParams{NRounds: 3, MaxLeaves: 4})
	if err := lgbm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for ti, tr := range lgbm.Trees {
		leaves := 0
		for _, n := range tr {
			if n.Feature < 0 {
				leaves++
			}
		}
		if leaves > 4 {
			t.Errorf("tree %d has %d leaves, limit 4", ti, leaves)
		}
	}
}

func TestBinOf(t *testing.T) {
	edges := []float64{1, 3, 7}
	cases := map[float64]int{0: 0, 1: 0, 2: 1, 3: 1, 5: 2, 7: 2, 100: 3}
	for v, want := range cases {
		if got := binOf(edges, v); got != want {
			t.Errorf("binOf(%v) = %d, want %d", v, got, want)
		}
	}
	if got := binOf(nil, 5); got != 0 {
		t.Errorf("binOf with no edges = %d", got)
	}
}

func TestQuantileEdgesMonotone(t *testing.T) {
	sorted := []float64{1, 1, 1, 2, 2, 3, 5, 5, 8, 13}
	edges := quantileEdges(sorted, 4)
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing: %v", edges)
		}
	}
}

func TestBoostPersistence(t *testing.T) {
	X, y := friedman(200, 0.3, 9)
	xgb := NewXGB(XGBParams{NRounds: 20, MaxDepth: 3})
	if err := xgb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lgbm := NewLGBM(LGBMParams{NRounds: 20})
	if err := lgbm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for kind, model := range map[string]ml.Regressor{"xgb": xgb, "lgbm": lgbm} {
		blob, err := ml.Marshal(kind, model)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		back, err := ml.Unmarshal(blob)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := 0; i < 20; i++ {
			if got, want := back.Predict(X[i]), model.Predict(X[i]); math.Abs(got-want) > 1e-12 {
				t.Errorf("%s: restored predict %v != %v", kind, got, want)
			}
		}
	}
}

func TestXGBDeterminism(t *testing.T) {
	X, y := friedman(200, 0.3, 10)
	a := NewXGB(XGBParams{NRounds: 30, Subsample: 0.8, Seed: 5})
	b := NewXGB(XGBParams{NRounds: 30, Subsample: 0.8, Seed: 5})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed XGB models disagree")
		}
	}
}
