package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func root(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"zeroalloc", "atomicfield", "ctxflow", "metricname"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("-only bogus exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer error", errb.String())
	}
}

// TestFindingsExitOne drives the command over a testdata package with a
// known violation and checks the file:line:col output format and exit
// status.
func TestFindingsExitOne(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-no-vet", "-C", root(t),
		"./internal/analysis/testdata/src/ctxflow_b"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exited %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ctxflow: http.NewRequest drops") {
		t.Errorf("diagnostic missing from output:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("summary missing from stderr: %q", errb.String())
	}
}

// TestCleanExitZero runs the full suite over a clean package.
func TestCleanExitZero(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-no-vet", "-C", root(t), "./internal/features"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exited %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}
