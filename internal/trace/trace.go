// Package trace is the serving flight recorder and its offline reader: an
// opt-in capture path that appends one compact binary record per
// thread-selection decision (and per measured kernel execution, when the
// decision drives an in-process call), plus the streaming reader that
// adsala-replay uses to backtest candidate artefacts against the captured
// traffic.
//
// The capture half is built for the serving hot path: Recorder.Record is a
// lock-free push of a fixed-size struct into a pre-allocated ring — no
// locks, no allocation, no I/O — and a single drain goroutine varint-encodes
// the ring into CRC-framed blocks with size-based file rotation. When the
// drain falls behind, the ring drops new records instead of blocking the
// request that produced them (drop-don't-block), and every drop is counted.
//
// On disk a trace is a sequence of files `<prefix>-NNNNN.trace`, each a
// fixed header followed by self-delimiting blocks:
//
//	header: 8-byte magic "ADSALATR" | uint32 version | uint64 unix-nano start
//	block:  uint32 magic | uint32 payload len | uint32 IEEE CRC | payload
//	payload: uvarint count | uvarint first-record timestamp |
//	         per record: uvarint ts delta | op byte | flags byte |
//	                     uvarint m, k, n, threads, predicted ns, measured ns
//
// Timestamps are monotonic nanoseconds since the recorder started; each
// block re-anchors at its first record's absolute timestamp, so a dropped
// or corrupt block never skews the timeline of the blocks after it. The
// reader (ScanFiles) recovers the valid prefix of a damaged trace and
// reports exactly what it dropped.
package trace

import (
	"encoding/binary"

	"repro/internal/ops"
)

// Record flags. A record is a decision event unless FlagMeasured is set, in
// which case it carries the measured wall time of one executed kernel call
// (the in-process facade path; a serving daemon never executes, so its
// traces hold decision records only).
const (
	// FlagCacheHit marks a decision answered from the decision cache.
	FlagCacheHit uint8 = 1 << iota
	// FlagFallback marks a decision answered by the deterministic heuristic
	// instead of a model (degraded mode).
	FlagFallback
	// FlagWarmup marks synthetic cache warm-up traffic, so replay can
	// exclude it the same way /stats does.
	FlagWarmup
	// FlagMeasured marks a measurement record: MeasuredNs holds the wall
	// time of one executed call at the recorded thread count. Measurement
	// records are not decisions; replay scores them as labelled data.
	FlagMeasured
)

// Record is one flight-recorder event. The struct layout is the in-memory
// ring slot; the on-disk encoding is the varint form described in the
// package comment.
type Record struct {
	// TS is the event time in monotonic nanoseconds since the recorder
	// started. Recorder.Record stamps it; callers leave it zero.
	TS int64
	// PredictedNs is the model-predicted runtime of the chosen thread count
	// in nanoseconds; 0 when no ranking ran (cache hits, fallbacks,
	// measurement records).
	PredictedNs int64
	// MeasuredNs is the measured runtime of one executed call in
	// nanoseconds; 0 unless FlagMeasured is set.
	MeasuredNs int64
	// M, K, N is the op's canonical feature triple.
	M, K, N int32
	// Threads is the chosen (decision records) or executed (measurement
	// records) thread count.
	Threads int32
	// Op is the registry operation the record applies to.
	Op ops.Op
	// Flags is the Flag* bit set.
	Flags uint8
}

// IsDecision reports whether the record is a decision event (as opposed to
// a measurement annotation).
func (r *Record) IsDecision() bool { return r.Flags&FlagMeasured == 0 }

// IsWarmup reports whether the record came from synthetic warm-up traffic.
func (r *Record) IsWarmup() bool { return r.Flags&FlagWarmup != 0 }

// File format constants.
const (
	// Version is the on-disk trace format version this package writes.
	Version = 1

	fileMagic  = "ADSALATR"
	headerLen  = len(fileMagic) + 4 + 8 // magic | version | unix-nano start
	blockMagic = 0xB10CAD5A
	blockHdr   = 12 // magic | payload len | CRC32

	// maxRecordLen bounds one encoded record: two tag bytes plus seven
	// uvarints of at most 10 bytes each.
	maxRecordLen = 2 + 7*binary.MaxVarintLen64

	// maxBlockPayload bounds a block payload the reader will accept; a
	// declared length beyond it is treated as corruption, not an
	// allocation request.
	maxBlockPayload = 16 << 20
)

// appendRecord encodes rec into buf, expressing its timestamp as a delta
// from prev (clamped at zero: the ring may reorder near-simultaneous
// producers by a few records). It returns the extended buffer.
func appendRecord(buf []byte, rec *Record, prev int64) []byte {
	delta := rec.TS - prev
	if delta < 0 {
		delta = 0
	}
	buf = binary.AppendUvarint(buf, uint64(delta))
	buf = append(buf, byte(rec.Op), rec.Flags)
	buf = binary.AppendUvarint(buf, uint64(rec.M))
	buf = binary.AppendUvarint(buf, uint64(rec.K))
	buf = binary.AppendUvarint(buf, uint64(rec.N))
	buf = binary.AppendUvarint(buf, uint64(rec.Threads))
	buf = binary.AppendUvarint(buf, uint64(rec.PredictedNs))
	buf = binary.AppendUvarint(buf, uint64(rec.MeasuredNs))
	return buf
}

// decodeRecord decodes one record from buf into rec, resolving its
// timestamp against prev. It returns the bytes consumed, or 0 when buf is
// malformed.
func decodeRecord(buf []byte, rec *Record, prev int64) int {
	pos := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	delta, ok := next()
	if !ok {
		return 0
	}
	if pos+2 > len(buf) {
		return 0
	}
	rec.Op = ops.Op(buf[pos])
	rec.Flags = buf[pos+1]
	pos += 2
	var vals [6]uint64
	for i := range vals {
		v, ok := next()
		if !ok {
			return 0
		}
		vals[i] = v
	}
	rec.M, rec.K, rec.N = int32(vals[0]), int32(vals[1]), int32(vals[2])
	rec.Threads = int32(vals[3])
	rec.PredictedNs, rec.MeasuredNs = int64(vals[4]), int64(vals[5])
	rec.TS = prev + int64(delta)
	return pos
}
