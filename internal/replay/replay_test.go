package replay

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/simtime"
	"repro/internal/trace"
)

var (
	libOnce sync.Once
	testLib *core.Library
	libErr  error
)

// lib trains one quick simulated-Gadi library shared by the package tests.
func lib(t *testing.T) *core.Library {
	t.Helper()
	libOnce.Do(func() {
		sim := simtime.New(simtime.DefaultConfig(machine.Gadi()))
		gather := core.GatherConfig{
			Timer:      sim,
			Domain:     sampling.DefaultDomain().WithCapMB(100),
			NumShapes:  80,
			Candidates: core.DefaultCandidates(96),
			Iters:      3,
			Seed:       1,
		}
		cfg := core.DefaultTrainConfig(gather, "Gadi", 48)
		cfg.Models = core.DefaultModels(1, true)
		var res *core.TrainResult
		res, libErr = core.Train(cfg)
		if libErr == nil {
			testLib = res.Library
		}
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return testLib
}

// capture drives a recorder-attached engine over the given shapes (with a
// warm-up pass when warm > 0) and returns the trace files.
func capture(t *testing.T, l *core.Library, shapes []sampling.Shape, warm int, blockBytes int) []string {
	t.Helper()
	prefix := filepath.Join(t.TempDir(), "cap")
	rec, err := trace.Open(prefix, trace.Options{FlushInterval: time.Hour, BlockBytes: blockBytes})
	if err != nil {
		t.Fatalf("trace.Open: %v", err)
	}
	eng := serve.NewEngine(l, serve.Options{})
	eng.SetRecorder(rec)
	if warm > 0 {
		if _, err := eng.Warmup(sampling.DefaultDomain().WithCapMB(100), warm, 3, serve.OpGEMM); err != nil {
			t.Fatalf("Warmup: %v", err)
		}
	}
	for _, sh := range shapes {
		threads := eng.PredictOp(serve.OpGEMM, sh.M, sh.K, sh.N)
		// Synthesise a measurement at the model's own estimate so the
		// labelled-data path has plausible pred/measured pairs.
		ns := int64(l.PredictOpSeconds(serve.OpGEMM, sh.M, sh.K, sh.N, threads) * 1e9)
		if ns <= 0 {
			ns = 1
		}
		eng.RecordMeasured(serve.OpGEMM, sh.M, sh.K, sh.N, threads, ns)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	files, err := trace.Files(prefix)
	if err != nil || len(files) == 0 {
		t.Fatalf("trace.Files: %v, %v", files, err)
	}
	return files
}

// testShapes returns n deterministic shapes with some repeats, like real
// serving traffic.
func testShapes(n int) []sampling.Shape {
	sampler, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), 11)
	if err != nil {
		panic(err)
	}
	base := sampler.Sample((n + 2) / 3)
	out := make([]sampling.Shape, 0, n)
	for len(out) < n {
		out = append(out, base[len(out)%len(base)])
	}
	return out
}

// TestReplayDeterministicAgreement pins the acceptance criterion: replaying
// a trace against the artefact that recorded it reproduces every recorded
// thread-count decision.
func TestReplayDeterministicAgreement(t *testing.T) {
	l := lib(t)
	files := capture(t, l, testShapes(60), 0, 0)
	rep, err := Run(l, files, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Decisions != 60 {
		t.Fatalf("Decisions = %d, want 60", rep.Decisions)
	}
	if rep.Agreement != 1.0 {
		t.Fatalf("Agreement = %v, want exactly 1.0 (agreed %d/%d)", rep.Agreement, rep.Agreed, rep.Decisions)
	}
	if rep.Measured != 60 {
		t.Fatalf("Measured = %d, want 60", rep.Measured)
	}
	// Traffic repeats shapes, so the simulated cache must be hitting.
	if rep.CacheHitRate <= 0 {
		t.Fatalf("CacheHitRate = %v, want > 0 on repeated shapes", rep.CacheHitRate)
	}
	op, ok := rep.PerOp["gemm"]
	if !ok {
		t.Fatalf("PerOp lacks gemm: %+v", rep.PerOp)
	}
	if op.Agreement != 1.0 || op.Decisions != 60 {
		t.Fatalf("gemm op report: %+v", op)
	}
	// Measurements were synthesised at the model's own estimates, so the
	// residual must be ~0 and the regret exactly 0 (the recorded choice is
	// the candidate's own argmin).
	if r := op.ResidualLog2; r.Count != 60 || r.Mean > 0.01 || r.Mean < -0.01 {
		t.Fatalf("ResidualLog2 = %+v, want mean ~0", r)
	}
	if reg := op.PredictedRegretSeconds; reg.Count != 60 || reg.Max > 1e-12 {
		t.Fatalf("PredictedRegretSeconds = %+v, want all-zero", reg)
	}
	if op.MeasuredLatency.Count != 60 || op.MeasuredLatency.P99 <= 0 {
		t.Fatalf("MeasuredLatency = %+v", op.MeasuredLatency)
	}
}

// TestReplayFiltersWarmup is the satellite regression test: warm-up traffic
// is excluded from scoring by default and included only on request.
func TestReplayFiltersWarmup(t *testing.T) {
	l := lib(t)
	files := capture(t, l, testShapes(30), 16, 0)

	rep, err := Run(l, files, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.WarmupSkipped == 0 {
		t.Fatal("WarmupSkipped = 0, want > 0 (trace contains a warm pass)")
	}
	if rep.Decisions != 30 {
		t.Fatalf("Decisions = %d, want 30 serving decisions only", rep.Decisions)
	}

	all, err := Run(l, files, Config{IncludeWarmup: true})
	if err != nil {
		t.Fatalf("Run(IncludeWarmup): %v", err)
	}
	if all.WarmupSkipped != 0 {
		t.Fatalf("IncludeWarmup still skipped %d", all.WarmupSkipped)
	}
	if all.Decisions != 30+rep.WarmupSkipped {
		t.Fatalf("IncludeWarmup Decisions = %d, want %d", all.Decisions, 30+rep.WarmupSkipped)
	}
}

// TestReplaySurfacesCorruption pins that a damaged trace still replays and
// the report carries the reader's recovery accounting.
func TestReplaySurfacesCorruption(t *testing.T) {
	l := lib(t)
	// Small blocks so truncating the file tail severs only the last block.
	files := capture(t, l, testShapes(40), 0, 128)
	truncateFile(t, files[len(files)-1], 10)

	rep, err := Run(l, files, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.DroppedBytes == 0 || len(rep.Corrupt) == 0 {
		t.Fatalf("corruption not surfaced: %+v", rep)
	}
	if rep.Decisions == 0 {
		t.Fatal("no records recovered from the valid prefix")
	}
	if rep.Agreement != 1.0 {
		t.Fatalf("recovered-prefix agreement = %v, want 1.0", rep.Agreement)
	}
}

// truncateFile cuts n bytes off the end of a file.
func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestReplayNoFiles pins the error contract.
func TestReplayNoFiles(t *testing.T) {
	if _, err := Run(lib(t), nil, Config{}); err == nil {
		t.Fatal("Run with no files should error")
	}
}
