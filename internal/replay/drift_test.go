package replay

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/drift"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TestDriftOnlineReplayAgreement pins the tentpole acceptance criterion:
// the online drift monitor (fed live through the engine's measured path)
// and adsala-replay's offline DriftRun (fed from the capture of the same
// stream) must report the same residual statistics. Both see the same
// measured values, and the engine's hot path and DriftRun truncate
// predictions identically, so the windowed aggregates agree to float
// round-off across the two clocks.
func TestDriftOnlineReplayAgreement(t *testing.T) {
	l := lib(t)
	cfg := drift.Config{Window: time.Minute, Slots: 8, Threshold: 1.0, MinSamples: 8}

	prefix := filepath.Join(t.TempDir(), "cap")
	rec, err := trace.Open(prefix, trace.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatalf("trace.Open: %v", err)
	}
	eng := serve.NewEngine(l, serve.Options{})
	eng.SetRecorder(rec)
	mon := drift.NewMonitor(cfg)
	eng.SetDriftMonitor(mon)

	// Perturb the synthesised measurements around the model's estimate by
	// alternating ±sqrt(2): the residual_log2 population is {+0.5, -0.5}, a
	// nonzero spread with ~zero mean — below threshold, so no drift trips.
	shapes := testShapes(60)
	for i, sh := range shapes {
		threads := eng.PredictOp(serve.OpGEMM, sh.M, sh.K, sh.N)
		pred := l.PredictOpSeconds(serve.OpGEMM, sh.M, sh.K, sh.N, threads)
		factor := math.Sqrt2
		if i%2 == 1 {
			factor = 1 / math.Sqrt2
		}
		ns := int64(pred * factor * 1e9)
		if ns <= 0 {
			ns = 1
		}
		eng.RecordMeasured(serve.OpGEMM, sh.M, sh.K, sh.N, threads, ns)
	}
	online := mon.Snapshot()
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	files, err := trace.Files(prefix)
	if err != nil || len(files) == 0 {
		t.Fatalf("trace.Files: %v, %v", files, err)
	}

	offline, err := DriftRun(l, files, cfg, false)
	if err != nil {
		t.Fatalf("DriftRun: %v", err)
	}
	if offline.Schema != drift.Schema || online.Schema != drift.Schema {
		t.Fatalf("schemas %q / %q, want %q", online.Schema, offline.Schema, drift.Schema)
	}
	if online.Observed != 60 || offline.Observed != 60 {
		t.Fatalf("observed online=%d offline=%d, want 60", online.Observed, offline.Observed)
	}
	if online.Degraded || offline.Degraded {
		t.Fatalf("zero-mean perturbation tripped drift: online=%v offline=%v",
			online.DriftingOps, offline.DriftingOps)
	}

	on, ok := online.PerOp["gemm"]
	if !ok {
		t.Fatalf("online per_op lacks gemm: %+v", online.PerOp)
	}
	off, ok := offline.PerOp["gemm"]
	if !ok {
		t.Fatalf("offline per_op lacks gemm: %+v", offline.PerOp)
	}

	agree := func(name string, a, b drift.Summary) {
		t.Helper()
		if a.Count != b.Count {
			t.Errorf("%s count online=%d offline=%d", name, a.Count, b.Count)
		}
		for _, v := range []struct {
			field  string
			av, bv float64
		}{
			{"mean", a.Mean, b.Mean},
			{"std", a.Std, b.Std},
			{"min", a.Min, b.Min},
			{"max", a.Max, b.Max},
		} {
			if math.Abs(v.av-v.bv) > 1e-9 {
				t.Errorf("%s %s online=%.12f offline=%.12f", name, v.field, v.av, v.bv)
			}
		}
	}
	agree("residual_log2", on.ResidualLog2, off.ResidualLog2)
	agree("abs_rel_err", on.AbsRelErr, off.AbsRelErr)

	// The perturbation is visible in the spread: std ~0.5 in log2 units.
	if on.ResidualLog2.Count != 60 {
		t.Fatalf("residual count %d, want 60", on.ResidualLog2.Count)
	}
	if s := on.ResidualLog2.Std; s < 0.45 || s > 0.55 {
		t.Errorf("residual std %.4f, want ~0.5", s)
	}

	// Cumulative latency tails see the identical measured values.
	if on.MeasuredLatency.Count != off.MeasuredLatency.Count ||
		math.Abs(on.MeasuredLatency.P99-off.MeasuredLatency.P99) > 1e-12 {
		t.Errorf("measured latency tails diverge: online=%+v offline=%+v",
			on.MeasuredLatency, off.MeasuredLatency)
	}
}

// TestDriftRunDetectsInjectedDrift pins the offline threshold-tuning use:
// a capture whose measurements run 4x slower than the model's estimate
// must trip the detector, and the warm-up filter applies.
func TestDriftRunDetectsInjectedDrift(t *testing.T) {
	l := lib(t)
	prefix := filepath.Join(t.TempDir(), "cap")
	rec, err := trace.Open(prefix, trace.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatalf("trace.Open: %v", err)
	}
	eng := serve.NewEngine(l, serve.Options{})
	eng.SetRecorder(rec)
	for _, sh := range testShapes(30) {
		threads := eng.PredictOp(serve.OpGEMM, sh.M, sh.K, sh.N)
		ns := int64(l.PredictOpSeconds(serve.OpGEMM, sh.M, sh.K, sh.N, threads) * 4e9)
		if ns <= 0 {
			ns = 4
		}
		eng.RecordMeasured(serve.OpGEMM, sh.M, sh.K, sh.N, threads, ns)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	files, err := trace.Files(prefix)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := DriftRun(l, files, drift.Config{Threshold: 1.0, MinSamples: 8}, false)
	if err != nil {
		t.Fatalf("DriftRun: %v", err)
	}
	if !rep.Degraded || len(rep.DriftingOps) != 1 || rep.DriftingOps[0] != "gemm" {
		t.Fatalf("4x-slow capture not flagged: degraded=%v ops=%v", rep.Degraded, rep.DriftingOps)
	}
	// residual_log2 = log2(pred/meas) = -2 for every record.
	if m := rep.PerOp["gemm"].ResidualLog2.Mean; math.Abs(m+2) > 0.01 {
		t.Fatalf("residual mean %.4f, want -2", m)
	}

	if _, err := DriftRun(l, nil, drift.Config{}, false); err == nil {
		t.Fatal("DriftRun with no files should error")
	}
}
