// Command adsala-vet runs the project's invariant analyzers (zeroalloc,
// atomicfield, ctxflow, metricname — see internal/analysis) alongside the
// standard `go vet` passes over the named packages.
//
// Usage:
//
//	go run ./cmd/adsala-vet ./...
//
// Diagnostics print as file:line:col: analyzer: message, and the exit
// status is 1 when any finding survives. Suppress a justified finding
// with a comment on the same or preceding line:
//
//	//adsala:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adsala-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the project analyzers and exit")
	noVet := fs.Bool("no-vet", false, "skip delegating to the standard `go vet` passes")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to run in (module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "adsala-vet: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exit := 0

	// The standard vet passes first: they share the build cache with the
	// loader below, so the compile work is paid once.
	if !*noVet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = *dir
		vet.Stdout = stdout
		vet.Stderr = stderr
		if err := vet.Run(); err != nil {
			exit = 1
		}
	}

	mod, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "adsala-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(mod, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "adsala-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		pos := mod.Fset.Position(d.Pos)
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "adsala-vet: %d finding(s)\n", len(diags))
		exit = 1
	}
	return exit
}
