package gather

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/ops"
)

// scrape fetches a /metrics exposition and returns its text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestWorkerReadinessLifecycle pins the probe contract: /healthz is 503
// "starting" before the first registration, 200 "ok" after, 503
// "draining" once drain begins; /livez answers 200 throughout.
func TestWorkerReadinessLifecycle(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6)
	_ = gcfg
	w, srv := startWorker(t, WorkerOptions{Name: "w1"})

	probe := func(path string) (int, StatusResponse) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	if code, st := probe("/healthz"); code != http.StatusServiceUnavailable || st.Status != "starting" || st.Registered {
		t.Fatalf("unregistered healthz = %d %+v", code, st)
	}
	if code, _ := probe("/livez"); code != http.StatusOK {
		t.Fatalf("unregistered livez = %d", code)
	}

	// Register a sweep: readiness flips.
	sweep := SweepSpec{
		Op: "gemm", Timer: spec, Domain: gcfg.Domain, Seed: gcfg.Seed,
		Candidates: gcfg.Candidates, Iters: gcfg.Iters, Run: "r1",
	}
	sweep.Session = sweep.Fingerprint()
	coord := New(fastCoordinator([]string{srv.URL}, spec))
	if err := coord.postJSON(context.Background(), srv.URL+"/register", sweep, nil); err != nil {
		t.Fatal(err)
	}
	if code, st := probe("/healthz"); code != http.StatusOK || st.Status != "ok" || !st.Registered {
		t.Fatalf("registered healthz = %d %+v", code, st)
	}

	// Drain: readiness flips off again, liveness stays.
	resp, err := http.Post(srv.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code, st := probe("/healthz"); code != http.StatusServiceUnavailable || st.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v", code, st)
	}
	if code, _ := probe("/livez"); code != http.StatusOK {
		t.Fatalf("draining livez = %d", code)
	}
	_ = w
}

// TestWorkerPprofGate checks the worker's profiling endpoints stay off
// until explicitly enabled — same contract as the serve daemon.
func TestWorkerPprofGate(t *testing.T) {
	w, srv := startWorker(t, WorkerOptions{Name: "w1"})
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}
	w.EnablePprof()
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d after EnablePprof", resp.StatusCode)
	}
}

// TestGatherMetricsEndToEnd runs one distributed sweep with a metrics
// registry on both sides and checks the coordinator and worker expositions
// account for every unit.
func TestGatherMetricsEndToEnd(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 9)
	_, s1 := startWorker(t, WorkerOptions{Name: "w1"})

	reg := obs.NewRegistry()
	cfg := fastCoordinator([]string{s1.URL}, spec)
	cfg.Metrics = reg
	cfg.Checkpoint = filepath.Join(t.TempDir(), "gather.ckpt")
	coord := New(cfg)
	if _, err := coord.Gather(context.Background(), gcfg); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	reg.WriteText(&b)
	text := b.String()
	// 9 shapes at 3 per unit = 3 units, all dispatched, all checkpointed.
	for _, want := range []string{
		"adsala_gather_units_total 3",
		"adsala_gather_units_dispatched_total 3",
		"adsala_gather_checkpoint_writes_total 3",
		"adsala_gather_workers_registered 1",
		`adsala_gather_worker_units_total{result="ok",worker="` + s1.URL + `"} 3`,
		`adsala_gather_worker_unit_seconds_count{worker="` + s1.URL + `"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator exposition lacks %q:\n%s", want, text)
		}
	}

	wtext := scrape(t, s1.URL)
	for _, want := range []string{
		"adsala_worker_units_accepted_total 3",
		"adsala_worker_units_completed_total 3",
		"adsala_worker_units_failed_total 0",
		"adsala_worker_unit_seconds_count 3",
		"adsala_worker_registered 1",
		"adsala_worker_draining 0",
		`adsala_build_info{go_version="`,
		"adsala_uptime_seconds",
	} {
		if !strings.Contains(wtext, want) {
			t.Errorf("worker exposition lacks %q:\n%s", want, wtext)
		}
	}

	// A second sweep on the same registry accumulates rather than panics —
	// the idempotent-registration contract multi-op Train relies on.
	gcfg2, _ := testGatherConfig(t, ops.SYRK, 6)
	cfg2 := cfg
	cfg2.Checkpoint = filepath.Join(t.TempDir(), "gather2.ckpt")
	if _, err := New(cfg2).Gather(context.Background(), gcfg2); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	reg.WriteText(&b)
	if !strings.Contains(b.String(), "adsala_gather_units_total 5") {
		t.Errorf("second sweep did not accumulate units_total:\n%s", b.String())
	}
}
