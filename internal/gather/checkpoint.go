package gather

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

// Checkpoint file format (documented in the README "Distributed training"
// section): JSON Lines. The first line is a header
//
//	{"format":"adsala-gather-checkpoint-v1","session":"<fingerprint>",
//	 "op":"gemm","units":N,"num_shapes":M}
//
// and every following line is one completed UnitResult, appended (and
// fsynced) as results stream in. On resume the coordinator replays the
// completed units and dispatches only the remainder. A trailing
// partially-written line (interrupted mid-append) is tolerated and
// discarded; a header whose session fingerprint differs from the requested
// sweep is an error — the file belongs to a different sweep and silently
// mixing the two would corrupt the merge.

const checkpointFormat = "adsala-gather-checkpoint-v1"

// checkpointHeader is the first line of a checkpoint file.
type checkpointHeader struct {
	Format    string `json:"format"`
	Session   string `json:"session"`
	Op        string `json:"op"`
	Units     int    `json:"units"`
	NumShapes int    `json:"num_shapes"`
}

// checkpoint appends completed units to the on-disk JSONL file.
type checkpoint struct {
	f *os.File
}

// openCheckpoint loads (or creates) the checkpoint for one sweep and
// returns the units already completed in it. path == "" disables
// checkpointing: an empty map and a nil checkpoint (whose methods are
// no-ops) come back.
func openCheckpoint(path string, spec SweepSpec, units []Unit, numShapes int, logf func(string, ...any)) (map[int][]core.ShapeTimings, *checkpoint, error) {
	completed := make(map[int][]core.ShapeTimings)
	if path == "" {
		return completed, nil, nil
	}

	header := checkpointHeader{
		Format:    checkpointFormat,
		Session:   spec.Session,
		Op:        spec.Op,
		Units:     len(units),
		NumShapes: numShapes,
	}

	blob, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("gather: create checkpoint: %w", err)
		}
		ck := &checkpoint{f: f}
		if err := ck.appendLine(header); err != nil {
			f.Close()
			return nil, nil, err
		}
		return completed, ck, nil
	case err != nil:
		return nil, nil, fmt.Errorf("gather: read checkpoint: %w", err)
	}

	lines := strings.Split(string(blob), "\n")
	// Drop blank trailing lines (the file ends with \n after every append).
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("gather: checkpoint %s is empty (delete it to restart the sweep)", path)
	}
	var got checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil || got.Format != checkpointFormat {
		return nil, nil, fmt.Errorf("gather: %s is not a gather checkpoint", path)
	}
	if got.Session != spec.Session {
		return nil, nil, fmt.Errorf(
			"gather: checkpoint %s belongs to a different sweep (session %s, want %s) — delete it or change -checkpoint",
			path, got.Session, spec.Session)
	}
	// validEnd tracks the byte offset just past the last fully-valid line,
	// so a partially-written final line can be truncated away — appending
	// after partial bytes would corrupt the file for the next resume.
	validEnd := len(lines[0]) + 1
	for i, line := range lines[1:] {
		var res UnitResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			if i == len(lines[1:])-1 {
				// Interrupted mid-append: the final line is incomplete.
				logf("checkpoint: discarding partially written final line")
				if err := os.Truncate(path, int64(validEnd)); err != nil {
					return nil, nil, fmt.Errorf("gather: truncate partial checkpoint line: %w", err)
				}
				break
			}
			return nil, nil, fmt.Errorf("gather: checkpoint %s line %d: %v", path, i+2, err)
		}
		if res.UnitID < 0 || res.UnitID >= len(units) {
			return nil, nil, fmt.Errorf("gather: checkpoint %s line %d: unit %d outside the %d-unit plan",
				path, i+2, res.UnitID, len(units))
		}
		u := units[res.UnitID]
		if res.Start != u.Start || res.Count != u.Count || len(res.Timings) != u.Count {
			return nil, nil, fmt.Errorf("gather: checkpoint %s line %d: unit %d does not match the plan (got [%d,%d) with %d timings, want [%d,%d))",
				path, i+2, res.UnitID, res.Start, res.Start+res.Count, len(res.Timings), u.Start, u.Start+u.Count)
		}
		completed[res.UnitID] = res.Timings
		validEnd += len(line) + 1
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("gather: reopen checkpoint: %w", err)
	}
	if len(completed) > 0 {
		logf("checkpoint: resuming — %d of %d units already complete", len(completed), len(units))
	}
	return completed, &checkpoint{f: f}, nil
}

// appendLine writes one JSON value as a line and syncs it to disk, so a
// completed unit survives a coordinator crash.
func (c *checkpoint) appendLine(v any) error {
	if c == nil {
		return nil
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("gather: encode checkpoint line: %w", err)
	}
	w := bufio.NewWriter(c.f)
	w.Write(blob)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("gather: write checkpoint: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("gather: sync checkpoint: %w", err)
	}
	return nil
}

// append records one completed unit.
func (c *checkpoint) append(res UnitResult) error {
	if c == nil {
		return nil
	}
	return c.appendLine(res)
}

// enabled reports whether appends actually reach disk (checkpointing
// configured), so the write counter only moves for real writes.
func (c *checkpoint) enabled() bool { return c != nil }

// close releases the file handle.
func (c *checkpoint) close() {
	if c != nil {
		c.f.Close()
	}
}
