package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

// friedman is the classic nonlinear regression benchmark surface.
func friedman(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y[i] = 10*math.Sin(math.Pi*x[0]*x[1]) + 20*(x[2]-0.5)*(x[2]-0.5) +
			10*x[3] + 5*x[4] + noise*rng.NormFloat64()
	}
	return X, y
}

func TestForestBeatsSingleTree(t *testing.T) {
	X, y := friedman(400, 0.5, 1)
	Xt, yt := friedman(200, 0.5, 2)

	single := tree.NewRegressor(tree.Params{MaxDepth: 6})
	if err := single.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	forest := NewRandomForest(ForestParams{NTrees: 60, Seed: 1})
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sRMSE := ml.RMSE(ml.PredictBatch(single, Xt), yt)
	fRMSE := ml.RMSE(ml.PredictBatch(forest, Xt), yt)
	if fRMSE >= sRMSE {
		t.Errorf("forest RMSE %v not better than single tree %v", fRMSE, sRMSE)
	}
	if forest.Name() != "Random Forest" {
		t.Errorf("Name = %q", forest.Name())
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	X, y := friedman(150, 0.3, 3)
	a := NewRandomForest(ForestParams{NTrees: 10, Seed: 42})
	b := NewRandomForest(ForestParams{NTrees: 10, Seed: 42})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same-seed forests disagree (parallel fit nondeterminism?)")
	}
}

func TestForestRejectsBadInput(t *testing.T) {
	f := NewRandomForest(ForestParams{NTrees: 2})
	if err := f.Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
}

func TestAdaBoostImprovesOverStump(t *testing.T) {
	X, y := friedman(400, 0.3, 4)
	Xt, yt := friedman(200, 0.3, 5)

	stump := tree.NewRegressor(tree.Params{MaxDepth: 4})
	if err := stump.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	ada := NewAdaBoostR2(AdaParams{NEstimators: 40, MaxDepth: 4, Seed: 1})
	if err := ada.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(ada.Trees) < 5 {
		t.Fatalf("only %d boosting rounds survived", len(ada.Trees))
	}
	sRMSE := ml.RMSE(ml.PredictBatch(stump, Xt), yt)
	aRMSE := ml.RMSE(ml.PredictBatch(ada, Xt), yt)
	if aRMSE >= sRMSE {
		t.Errorf("AdaBoost RMSE %v not better than single depth-4 tree %v", aRMSE, sRMSE)
	}
	if ada.Name() != "AdaBoost" {
		t.Errorf("Name = %q", ada.Name())
	}
}

func TestAdaBoostPerfectFitStops(t *testing.T) {
	// Piecewise-constant target learnable exactly: boosting should stop
	// early (maxErr == 0 branch).
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 1, 5, 5}
	ada := NewAdaBoostR2(AdaParams{NEstimators: 50, MaxDepth: 3})
	if err := ada.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(ada.Trees) > 2 {
		t.Errorf("perfect-fit boosting ran %d rounds", len(ada.Trees))
	}
	if got := ada.Predict([]float64{1.5}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Predict = %v", got)
	}
}

func TestAdaBoostWeightedMedianRobustness(t *testing.T) {
	X, y := friedman(200, 0.2, 6)
	ada := NewAdaBoostR2(AdaParams{NEstimators: 20, MaxDepth: 4, Seed: 2})
	if err := ada.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Median combination keeps predictions within the envelope of stage
	// predictions.
	probe := X[0]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tr := range ada.Trees {
		p := tr.Predict(probe)
		lo, hi = math.Min(lo, p), math.Max(hi, p)
	}
	if got := ada.Predict(probe); got < lo || got > hi {
		t.Errorf("median prediction %v outside stage envelope [%v, %v]", got, lo, hi)
	}
}

func TestEnsemblePersistence(t *testing.T) {
	X, y := friedman(150, 0.3, 7)
	forest := NewRandomForest(ForestParams{NTrees: 8, Seed: 3})
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	ada := NewAdaBoostR2(AdaParams{NEstimators: 8, Seed: 3})
	if err := ada.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for kind, model := range map[string]ml.Regressor{"forest": forest, "adaboost": ada} {
		blob, err := ml.Marshal(kind, model)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		back, err := ml.Unmarshal(blob)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if back.Predict(X[0]) != model.Predict(X[0]) {
			t.Errorf("%s restored model disagrees", kind)
		}
	}
}
