// Package gather distributes the install-time timing sweep across a worker
// fleet. The paper's data-gathering phase — timing every (op, shape,
// threads) configuration of the Halton sample sweep — is the single slowest
// stage of deployment and is embarrassingly parallel across identical
// machines. This package shards it:
//
//   - a Coordinator partitions the per-op sweep into work units
//     (deterministic (start, count) slices of the accepted Halton sample
//     stream, so any worker count reproduces the same total sweep),
//     dispatches them over HTTP to registered workers, retries and
//     reassigns units on worker failure or timeout, streams the
//     ShapeTimings results back as they complete, and merges them — in
//     sample order — into the exact input core.TrainOnData consumes;
//   - a Worker is the HTTP daemon (cmd/adsala-worker) executing units
//     through the operation registry's kernels on a simtime backend built
//     from the coordinator's wire Spec (RealTimer for real installs, the
//     Simulator for tests and CI);
//   - a resumable on-disk checkpoint (JSONL of completed units) lets an
//     interrupted sweep restart where it left off.
//
// The Coordinator implements core.Gatherer, so core.Train switches between
// the single-node and distributed paths without knowing which it got. For a
// deterministic timer (the Simulator) the merged distributed sweep is
// byte-identical to the single-node gather — pinned by test.
package gather

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// Unit is one work unit: a contiguous slice [Start, Start+Count) of the
// op's deterministic accepted-sample stream. Units carry indices, not
// shapes — any party reconstructs the shapes from the SweepSpec with
// core.SampleOpShapes, which is what makes the sharding reproducible for
// any worker count.
type Unit struct {
	ID    int `json:"id"`
	Start int `json:"start"`
	Count int `json:"count"`
}

// SweepSpec fully describes one op's sweep, so a worker reconstructs
// exactly the shapes and timings the coordinator's single-node path would
// produce. Session is the fingerprint of the sweep-defining fields: it keys
// the worker's unit state and the checkpoint file to one specific sweep.
// Run is a per-Gather nonce: re-registering the same Session under a new
// Run resets the worker's cached unit results, so a repeated real-timing
// install re-measures instead of silently replaying the previous run's
// wall-clock data. (Checkpoint identity deliberately ignores Run — resuming
// an interrupted sweep is the same sweep.)
type SweepSpec struct {
	Session    string          `json:"session"`
	Run        string          `json:"run,omitempty"`
	Op         string          `json:"op"`
	Timer      simtime.Spec    `json:"timer"`
	Domain     sampling.Domain `json:"domain"`
	Seed       int64           `json:"seed"`
	Candidates []int           `json:"candidates"`
	Iters      int             `json:"iters"`
}

// Fingerprint returns the deterministic hash of the spec (Session and the
// per-run nonce excluded): two parties computing the same fingerprint are
// describing the same sweep.
func (s SweepSpec) Fingerprint() string {
	s.Session = ""
	s.Run = ""
	blob, err := json.Marshal(s)
	if err != nil {
		// Spec fields are plain data; Marshal cannot fail on them.
		panic("gather: fingerprint: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(blob)
	return fmt.Sprintf("%016x", h.Sum64())
}

// parseOp resolves and validates the spec's operation.
func (s SweepSpec) parseOp() (ops.Op, error) {
	if s.Op == "" {
		return 0, fmt.Errorf("gather: sweep spec names no op")
	}
	return ops.Parse(s.Op)
}

// validate checks the spec is executable: known op, buildable timer,
// sampleable domain, candidates present.
func (s SweepSpec) validate() error {
	if _, err := s.parseOp(); err != nil {
		return err
	}
	if len(s.Candidates) == 0 {
		return fmt.Errorf("gather: sweep spec has no candidate thread counts")
	}
	if s.Iters < 1 {
		return fmt.Errorf("gather: sweep spec Iters %d < 1", s.Iters)
	}
	if _, err := s.Timer.Build(); err != nil {
		return err
	}
	if _, err := sampling.NewSampler(s.Domain, s.Seed); err != nil {
		return err
	}
	return nil
}

// WorkRequest is the JSON body of POST /work on a worker.
type WorkRequest struct {
	Session string `json:"session"`
	Unit    Unit   `json:"unit"`
}

// UnitResult is one completed unit's timing sweep — the JSON body of a
// successful GET /result and the line format of the checkpoint file.
type UnitResult struct {
	Session string `json:"session"`
	UnitID  int    `json:"unit_id"`
	Start   int    `json:"start"`
	Count   int    `json:"count"`
	// Worker names the daemon that executed the unit (diagnostics only; it
	// does not affect the merge).
	Worker  string              `json:"worker,omitempty"`
	Timings []core.ShapeTimings `json:"timings"`
}

// RegisterResponse is the JSON answer of POST /register.
type RegisterResponse struct {
	Worker  string `json:"worker"`
	Backend string `json:"backend"`
}

// StatusResponse is the JSON answer of /work, pending /result polls, /drain
// and the /healthz and /livez probes.
type StatusResponse struct {
	Status string `json:"status"`
	// Session through Draining are populated by the health probes.
	Session    string `json:"session,omitempty"`
	Registered bool   `json:"registered,omitempty"`
	Completed  int    `json:"completed,omitempty"`
	Inflight   int    `json:"inflight,omitempty"`
	Draining   bool   `json:"draining,omitempty"`
}

// Unit states reported by the worker.
const (
	statusAccepted = "accepted"
	statusRunning  = "running"
	statusDone     = "done"
)

// planUnits partitions numShapes into units of unitShapes (the last unit
// may be smaller).
func planUnits(numShapes, unitShapes int) []Unit {
	var units []Unit
	for start := 0; start < numShapes; start += unitShapes {
		count := unitShapes
		if start+count > numShapes {
			count = numShapes - start
		}
		units = append(units, Unit{ID: len(units), Start: start, Count: count})
	}
	return units
}
