package adsala

// The benchmark harness: one testing.B benchmark per paper table and figure
// (each regenerates the artefact at quick scale through the experiments
// registry), plus micro-benchmarks for the substrate layers — the GEMM
// kernel, the model evaluation latencies behind the t_eval column of Tables
// III/IV, the §III-C prediction cache, and the blocking-parameter ablation.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ops"
	"repro/internal/preprocess"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/simtime"
)

var (
	labOnce  sync.Once
	benchLab *experiments.Lab
)

func lab() *experiments.Lab {
	labOnce.Do(func() { benchLab = experiments.NewLab(experiments.QuickScale()) })
	return benchLab
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, io.Discard, lab()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artefact -----------------------------------

func BenchmarkFig1OptimalThreadHistogram(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig4YeoJohnsonSkewness(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig7AffinityComparison(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8SmallDimHistogram(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9OptimalThreadHeatmaps(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkTable3ModelComparisonSetonix(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4ModelComparisonGadi(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5SpeedupStatsHT(b *testing.B)         { benchExperiment(b, "table5") }
func BenchmarkTable6SpeedupStatsNoHT(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkFig10SpeedupHeatmaps(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11GFLOPSBucketsSetonix(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12GFLOPSBucketsGadi(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13PredesignedSetonix(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14PredesignedGadi(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkTable7ProfileBreakdown(b *testing.B)       { benchExperiment(b, "table7") }

// --- ablation benches (DESIGN.md §5) -------------------------------------

func BenchmarkAblationPreproc(b *testing.B)  { benchExperiment(b, "ablation-preproc") }
func BenchmarkAblationFeatures(b *testing.B) { benchExperiment(b, "ablation-features") }
func BenchmarkAblationTarget(b *testing.B)   { benchExperiment(b, "ablation-target") }

// --- GEMM substrate -------------------------------------------------------

func benchSGEMM(b *testing.B, m, k, n, threads int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	A := mat.NewF32(m, k)
	B := mat.NewF32(k, n)
	C := mat.NewF32(m, n)
	A.FillRandom(rng)
	B.FillRandom(rng)
	flops := 2 * int64(m) * int64(k) * int64(n)
	b.SetBytes(flops) // report FLOP throughput as MB/s-equivalent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blas.SGEMM(false, false, 1, A, B, 0, C, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSGEMM64Serial(b *testing.B)     { benchSGEMM(b, 64, 64, 64, 1) }
func BenchmarkSGEMM256Serial(b *testing.B)    { benchSGEMM(b, 256, 256, 256, 1) }
func BenchmarkSGEMM256Parallel4(b *testing.B) { benchSGEMM(b, 256, 256, 256, 4) }
func BenchmarkSGEMMSkinny(b *testing.B)       { benchSGEMM(b, 64, 2048, 64, 1) }

// BenchmarkSGEMMTiny covers the no-packing small-shape fast path.
func BenchmarkSGEMMTiny(b *testing.B) { benchSGEMM(b, 32, 32, 32, 1) }

// benchSSYRK measures the packed SYRK (SetBytes carries n(n+1)k, the
// standard SYRK FLOP count, so the MB/s column reads as FLOP throughput).
func benchSSYRK(b *testing.B, n, k, threads int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	A := mat.NewF32(n, k)
	C := mat.NewF32(n, n)
	A.FillRandom(rng)
	b.SetBytes(int64(n) * int64(n+1) * int64(k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blas.SSYRK(false, 1, A, 0, C, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSYRK64Serial(b *testing.B)     { benchSSYRK(b, 64, 64, 1) }
func BenchmarkSSYRK256Serial(b *testing.B)    { benchSSYRK(b, 256, 256, 1) }
func BenchmarkSSYRK256Parallel4(b *testing.B) { benchSSYRK(b, 256, 256, 4) }
func BenchmarkSSYRKWideK(b *testing.B)        { benchSSYRK(b, 64, 2048, 1) }

// benchSSYR2K measures the packed SYR2K (SetBytes carries 2·n(n+1)k, the
// standard SYR2K FLOP count, so the MB/s column reads as FLOP throughput).
func benchSSYR2K(b *testing.B, n, k, threads int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	A := mat.NewF32(n, k)
	B := mat.NewF32(n, k)
	C := mat.NewF32(n, n)
	A.FillRandom(rng)
	B.FillRandom(rng)
	b.SetBytes(2 * int64(n) * int64(n+1) * int64(k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blas.SSYR2K(false, 1, A, B, 0, C, threads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSYR2K64Serial(b *testing.B)     { benchSSYR2K(b, 64, 64, 1) }
func BenchmarkSSYR2K256Serial(b *testing.B)    { benchSSYR2K(b, 256, 256, 1) }
func BenchmarkSSYR2K256Parallel4(b *testing.B) { benchSSYR2K(b, 256, 256, 4) }

// BenchmarkSSYRKNaive256 is the pre-packed per-element reference the
// ISSUE-3 acceptance criterion measures against (packed ≥ 3× at n=k=256).
func BenchmarkSSYRKNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	A := mat.NewF32(256, 256)
	C := mat.NewF32(256, 256)
	A.FillRandom(rng)
	b.SetBytes(256 * 257 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.NaiveSSYRK(false, 1, A, 0, C)
	}
}

// BenchmarkSGEMMContext measures the explicit-Context path (the steady-state
// zero-allocation contract is also enforced by a test in internal/blas).
func BenchmarkSGEMMContext(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	A := mat.NewF32(256, 256)
	B := mat.NewF32(256, 256)
	C := mat.NewF32(256, 256)
	A.FillRandom(rng)
	B.FillRandom(rng)
	ctx := blas.NewContext()
	defer ctx.Close()
	b.SetBytes(2 * 256 * 256 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.SGEMM(false, false, 1, A, B, 0, C, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroTiles compares the supported register micro-tiles through
// the same blocked driver (the 4×4 tile is the default; see
// internal/blas/kernel.go for why the wide tiles lose under gc).
func BenchmarkMicroTiles(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	A := mat.NewF32(256, 256)
	B := mat.NewF32(256, 256)
	C := mat.NewF32(256, 256)
	A.FillRandom(rng)
	B.FillRandom(rng)
	for _, tile := range [][2]int{{4, 4}, {8, 4}, {4, 8}} {
		p := blas.DefaultParams()
		p.MR, p.NR = tile[0], tile[1]
		p.MC = 16 * tile[0]
		p.NC = 256 * tile[1]
		b.Run(fmt.Sprintf("%dx%d", tile[0], tile[1]), func(b *testing.B) {
			b.SetBytes(2 * 256 * 256 * 256)
			for i := 0; i < b.N; i++ {
				if err := blas.SGEMMWithParams(false, false, 1, A, B, 0, C, 1, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockingParams ablates the cache-blocking parameters of the GEMM
// substrate (DESIGN.md §5): default vs small blocks.
func BenchmarkBlockingParams(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	A := mat.NewF32(256, 256)
	B := mat.NewF32(256, 256)
	C := mat.NewF32(256, 256)
	A.FillRandom(rng)
	B.FillRandom(rng)
	for _, cfg := range []struct {
		name string
		p    blas.Params
	}{
		{"default", blas.DefaultParams()},
		{"tiny-blocks", blas.Params{MC: 32, KC: 32, NC: 64, MR: 4, NR: 4}},
		{"deep-k", blas.Params{MC: 64, KC: 512, NC: 1024, MR: 4, NR: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := blas.SGEMMWithParams(false, false, 1, A, B, 0, C, 1, cfg.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- model evaluation latency (the t_eval of Tables III/IV) ---------------

func BenchmarkModelEvalLatency(b *testing.B) {
	p, err := experiments.PlatformByName("Gadi")
	if err != nil {
		b.Fatal(err)
	}
	res, err := lab().Train(p, 500, true)
	if err != nil {
		b.Fatal(err)
	}
	lib := res.Library
	b.Run("full-selection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lib.OptimalThreads(512, 512, 512)
		}
	})
	b.Run("single-predict", func(b *testing.B) {
		gemm := lib.ModelFor(ops.GEMM)
		row := gemm.Pipeline.Transform(featRow(512, 512, 512, 16, lib))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gemm.Model.Predict(row)
		}
	})
}

func featRow(m, k, n, t int, lib *core.Library) []float64 {
	// The library may restrict columns; PredictSeconds handles that, so use
	// the pipeline width directly via a probe call.
	_ = lib.PredictSeconds(m, k, n, t)
	return make([]float64, len(lib.ModelFor(ops.GEMM).Pipeline.InputCols))
}

// BenchmarkPredictorCached measures the §III-C repeated-shape cache against
// the uncached selection path.
func BenchmarkPredictorCached(b *testing.B) {
	p, _ := experiments.PlatformByName("Gadi")
	res, err := lab().Train(p, 500, true)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cached-repeat", func(b *testing.B) {
		pred := res.Library.NewPredictor()
		pred.OptimalThreads(700, 700, 700)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pred.OptimalThreads(700, 700, 700)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.Library.OptimalThreads(700, 700, 700)
		}
	})
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkSimulatorBreakdown(b *testing.B) {
	sim := simtime.New(simtime.DefaultConfig(machine.Setonix()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Breakdown(1024, 1024, 1024, 64)
	}
}

func BenchmarkYeoJohnsonFit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := preprocess.FitYeoJohnson(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHaltonSampling(b *testing.B) {
	s, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkModelFitXGBQuick(b *testing.B) {
	p, _ := experiments.PlatformByName("Gadi")
	res, err := lab().Train(p, 500, true)
	if err != nil {
		b.Fatal(err)
	}
	// Refit the selected model family on the gathered data each iteration.
	data := res.Data
	recs := core.Records(data)
	X := make([][]float64, len(recs))
	y := make([]float64, len(recs))
	for i, r := range recs {
		X[i] = []float64{float64(r.Shape.M), float64(r.Shape.K), float64(r.Shape.N), float64(r.Threads)}
		y[i] = r.Seconds
	}
	specs := core.DefaultModels(1, true)
	spec, _ := core.SpecByKind(specs, "xgb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := spec.Grid[0].Factory()
		if err := model.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
	_ = ml.RMSE // keep ml imported for future metric benches
}

// BenchmarkGemmEndToEnd measures the full runtime path of Fig 3 — model
// prediction (served from the sharded decision cache) followed by kernel
// execution on a pooled context — and reports allocations: the steady state
// must allocate nothing per call.
func BenchmarkGemmEndToEnd(b *testing.B) {
	p, _ := experiments.PlatformByName("Gadi")
	res, err := lab().Train(p, 500, true)
	if err != nil {
		b.Fatal(err)
	}
	lib := &Library{inner: res.Library}
	g := lib.NewGemm()
	g.SetMaxLocalThreads(2)
	rng := rand.New(rand.NewSource(4))
	A := mat.NewF32(128, 128)
	B := mat.NewF32(128, 128)
	C := mat.NewF32(128, 128)
	A.FillRandom(rng)
	B.FillRandom(rng)
	if err := g.SGEMM(false, false, 1, A, B, 0, C); err != nil { // warm cache + pool
		b.Fatal(err)
	}
	b.SetBytes(2 * 128 * 128 * 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.SGEMM(false, false, 1, A, B, 0, C); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving subsystem ----------------------------------------------------

// benchServeShapes returns deterministic mixed GEMM shapes for the
// concurrent prediction benchmarks.
func benchServeShapes(n int) []sampling.Shape {
	s, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), 11)
	if err != nil {
		panic(err)
	}
	return s.Sample(n)
}

// BenchmarkConcurrentPrediction compares the single-mutex §III-C Predictor
// against the sharded serve cache under concurrent mixed-shape traffic (8
// goroutines, the multi-tenant scenario the serving subsystem targets).
func BenchmarkConcurrentPrediction(b *testing.B) {
	p, _ := experiments.PlatformByName("Gadi")
	res, err := lab().Train(p, 500, true)
	if err != nil {
		b.Fatal(err)
	}
	shapes := benchServeShapes(64)

	b.Run("mutex-predictor", func(b *testing.B) {
		pred := res.Library.NewPredictor()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sh := shapes[i%len(shapes)]
				pred.OptimalThreads(sh.M, sh.K, sh.N)
				i++
			}
		})
	})
	b.Run("sharded-cache", func(b *testing.B) {
		eng := serve.NewEngine(res.Library, serve.Options{CacheSize: 256, Shards: 16})
		eng.PredictBatch(shapes, nil) // warm
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sh := shapes[i%len(shapes)]
				eng.Predict(sh.M, sh.K, sh.N)
				i++
			}
		})
	})
}

// BenchmarkBatchPredict measures the batch ranking path at several sizes,
// sequential vs worker-pool.
func BenchmarkBatchPredict(b *testing.B) {
	p, _ := experiments.PlatformByName("Gadi")
	res, err := lab().Train(p, 500, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{16, 128} {
		shapes := benchServeShapes(size)
		for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
			name := "seq"
			if workers == 0 {
				name = "pool"
			}
			b.Run(fmt.Sprintf("n%d-%s", size, name), func(b *testing.B) {
				// A tiny single-shard cache reset outside the timer keeps
				// every ranking a cache miss without measuring engine
				// construction.
				eng := serve.NewEngine(res.Library, serve.Options{Workers: workers, CacheSize: 1, Shards: 1})
				out := make([]int, len(shapes))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng.Cache().Reset()
					b.StartTimer()
					eng.PredictBatch(shapes, out)
				}
			})
		}
	}
}

// BenchmarkServeCache isolates the sharded cache data structure itself.
func BenchmarkServeCache(b *testing.B) {
	shapes := benchServeShapes(256)
	b.Run("hit", func(b *testing.B) {
		c := serve.NewCache(1024, 16)
		for _, sh := range shapes {
			c.Put(serve.OpGEMM, sh.M, sh.K, sh.N, 8)
		}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sh := shapes[i%len(shapes)]
				c.Get(serve.OpGEMM, sh.M, sh.K, sh.N)
				i++
			}
		})
	})
	b.Run("churn", func(b *testing.B) {
		c := serve.NewCache(128, 16) // smaller than the key set: constant eviction
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sh := shapes[i%len(shapes)]
				c.Put(serve.OpGEMM, sh.M, sh.K, sh.N, 8)
				i++
			}
		})
	})
}
