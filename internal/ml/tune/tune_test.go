package tune

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/linear"
	"repro/internal/ml/tree"
)

func linearData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 2*X[i][0] - X[i][1] + 0.1*rng.NormFloat64()
	}
	return X, y
}

func TestFoldsPartition(t *testing.T) {
	folds := Folds(103, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 103 {
		t.Fatalf("folds cover %d indices, want 103", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
	// Fold sizes within 1 of each other.
	for _, f := range folds {
		if len(f) < 20 || len(f) > 21 {
			t.Errorf("fold size %d", len(f))
		}
	}
}

func TestFoldsClamping(t *testing.T) {
	if got := len(Folds(3, 10, 1)); got != 3 {
		t.Errorf("k>n should clamp to n: %d", got)
	}
	if got := len(Folds(10, 0, 1)); got != 2 {
		t.Errorf("k<2 should clamp to 2: %d", got)
	}
}

func TestCrossValRMSEReasonable(t *testing.T) {
	X, y := linearData(200, 1)
	rmse, err := CrossValRMSE(func() ml.Regressor { return &linear.Regression{} }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.2 {
		t.Errorf("CV RMSE %v too high for near-noiseless linear data", rmse)
	}
	if _, err := CrossValRMSE(func() ml.Regressor { return &linear.Regression{} }, nil, nil, 5, 1); err == nil {
		t.Error("empty data should error")
	}
}

func TestGridSearchPicksBetterModel(t *testing.T) {
	X, y := linearData(200, 2)
	// Depth-1 stump vs OLS on linear data: OLS must win.
	cands := []Candidate{
		{Label: "stump", Factory: func() ml.Regressor {
			return tree.NewRegressor(tree.Params{MaxDepth: 1})
		}},
		{Label: "ols", Factory: func() ml.Regressor { return &linear.Regression{} }},
	}
	res, err := GridSearch(cands, X, y, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Label != "ols" {
		t.Errorf("grid picked %q (scores %v)", res.Best.Label, res.All)
	}
	if len(res.All) != 2 {
		t.Errorf("All has %d entries", len(res.All))
	}
	if res.BestRMSE != res.All["ols"] {
		t.Error("BestRMSE inconsistent with All")
	}
}

func TestGridSearchEmpty(t *testing.T) {
	if _, err := GridSearch(nil, [][]float64{{1}}, []float64{1}, 2, 1); err == nil {
		t.Error("empty grid should error")
	}
}

func TestFoldsDeterministic(t *testing.T) {
	a := Folds(50, 5, 9)
	b := Folds(50, 5, 9)
	for f := range a {
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				t.Fatal("same-seed folds differ")
			}
		}
	}
}
