package gather

import (
	"context"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ops"
	"repro/internal/retry"
)

// TestDrainVsInflightResultRace races POST /drain against a unit mid-
// execution: drain must refuse new work immediately, wait for the in-flight
// unit, and keep its completed result fetchable — a rolling restart must
// not throw away minutes of timing work. Run under -race this also pins the
// drain/exec synchronisation.
func TestDrainVsInflightResultRace(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 3)
	w, srv := startWorker(t, WorkerOptions{
		Name: "w1",
		// Long enough that drain reliably lands while the unit is in flight.
		ExecDelay: func(Unit) time.Duration { return 60 * time.Millisecond },
	})

	sweep := SweepSpec{
		Op: "gemm", Timer: spec, Domain: gcfg.Domain, Seed: gcfg.Seed,
		Candidates: gcfg.Candidates, Iters: gcfg.Iters, Run: "r1",
	}
	sweep.Session = sweep.Fingerprint()
	coord := New(fastCoordinator([]string{srv.URL}, spec))
	ctx := context.Background()
	if err := coord.postJSON(ctx, srv.URL+"/register", sweep, nil); err != nil {
		t.Fatal(err)
	}
	unit := Unit{ID: 0, Start: 0, Count: 3}
	if err := coord.postJSON(ctx, srv.URL+"/work", WorkRequest{Session: sweep.Session, Unit: unit}, nil); err != nil {
		t.Fatal(err)
	}

	// Drain while the unit executes: the HTTP handler flips the flag at
	// once; Worker.Drain blocks until the in-flight unit lands.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/drain", "application/json", nil)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/drain answered HTTP %d", resp.StatusCode)
		}
	}()
	wg.Wait()

	// New work is refused the moment draining starts...
	err := coord.postJSON(ctx, srv.URL+"/work",
		WorkRequest{Session: sweep.Session, Unit: Unit{ID: 1, Start: 3, Count: 3}}, nil)
	if err == nil {
		t.Error("draining worker accepted new work")
	}

	// ...but the in-flight unit completes and its result stays fetchable.
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := w.Drain(drainCtx); err != nil {
		t.Fatalf("Drain did not settle: %v", err)
	}
	if w.Unfetched() != 1 {
		t.Fatalf("Unfetched = %d after drain, want the completed unit", w.Unfetched())
	}
	res, pending, err := coord.getResult(ctx, srv.URL+"/result?session="+sweep.Session+"&id=0")
	if err != nil || pending {
		t.Fatalf("result after drain: (pending=%v, %v)", pending, err)
	}
	if res.UnitID != 0 || res.Start != 0 || res.Count != 3 || len(res.Timings) != 3 {
		t.Errorf("drained result = unit %d [%d,%d) with %d timings", res.UnitID, res.Start, res.Count, len(res.Timings))
	}
	// The lingering daemon may now exit: everything is fetched.
	if w.Unfetched() != 0 {
		t.Errorf("Unfetched = %d after fetch, want 0", w.Unfetched())
	}
	fetchCtx, cancel2 := context.WithTimeout(ctx, time.Second)
	defer cancel2()
	if err := w.WaitFetched(fetchCtx); err != nil {
		t.Errorf("WaitFetched after full fetch: %v", err)
	}
}

// TestChaosGatherMatchesSingleNode wires the fault-injection transport into
// the coordinator's HTTP client: injected latency, 503s, dropped
// connections and truncated bodies must all be absorbed by the unified
// retry/reassignment machinery, and the merged sweep must remain
// byte-identical to the single-node gather — chaos may cost retries, never
// correctness.
func TestChaosGatherMatchesSingleNode(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 12)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	_, s1 := startWorker(t, WorkerOptions{Name: "w1"})
	_, s2 := startWorker(t, WorkerOptions{Name: "w2"})
	var st faults.Stats
	sched := faults.NewSeeded(23, faults.Plan{
		LatencyP:  0.2,
		Delay:     time.Millisecond,
		ErrorP:    0.1,
		Status:    http.StatusServiceUnavailable,
		DropP:     0.08,
		TruncateP: 0.05,
	})
	cfg := fastCoordinator([]string{s1.URL, s2.URL}, spec)
	cfg.HTTP = &http.Client{
		Transport: faults.Transport(http.DefaultTransport, sched, &st),
		Timeout:   15 * time.Second,
	}
	// Generous failure budgets: chaos must cost retries, not the run.
	cfg.MaxUnitRetries = 50
	cfg.WorkerFailureLimit = 100
	cfg.Retry = retry.Policy{MaxAttempts: 5, Initial: time.Millisecond, Max: 4 * time.Millisecond}
	cfg.Logf = func(string, ...any) {} // chaos is noisy by design

	coord := New(cfg)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatalf("gather under chaos: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("chaos changed the merged sweep: distributed result differs from single-node gather")
	}
	if !st.Fired() {
		t.Fatal("fault schedule never fired: the test proved nothing")
	}
	stats := coord.Stats()
	if stats.Units != 4 || stats.Dispatched < stats.Units {
		t.Errorf("stats = %+v, want all 4 units dispatched", stats)
	}
}
