package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/drift"
)

func TestDriftEndpointDisabled(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /drift without monitor: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestMeasuredAndDriftRoundTrip(t *testing.T) {
	srv, ts := testServer(t)
	mon := drift.NewMonitor(drift.Config{
		Window:     time.Minute,
		Threshold:  1.0,
		MinSamples: 4,
	})
	srv.Engine().SetDriftMonitor(mon)

	// Report measurements that agree with the model's own estimate: the
	// residuals should hover near zero and the monitor must not trip.
	lib := srv.Engine().Library()
	var body strings.Builder
	body.WriteString(`{"records":[`)
	const n = 16
	for i := 0; i < n; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		threads := lib.OptimalThreads(256, 256, 256)
		ns := int64(lib.PredictOpSeconds(OpGEMM, 256, 256, 256, threads) * 1e9)
		if ns < 1 {
			ns = 1
		}
		fmt.Fprintf(&body, `{"op":"gemm","m":256,"k":256,"n":256,"threads":%d,"measured_ns":%d}`, threads, ns)
	}
	body.WriteString(`]}`)

	resp, err := http.Post(ts.URL+"/measured", "application/json", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	var mr MeasuredResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Accepted != n {
		t.Fatalf("POST /measured: HTTP %d accepted %d, want 200/%d", resp.StatusCode, mr.Accepted, n)
	}

	resp, err = http.Get(ts.URL + "/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /drift: HTTP %d", resp.StatusCode)
	}
	var rep drift.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != drift.Schema {
		t.Errorf("schema %q, want %q", rep.Schema, drift.Schema)
	}
	if rep.Observed != n {
		t.Errorf("observed %d, want %d", rep.Observed, n)
	}
	if rep.Degraded || len(rep.DriftingOps) != 0 {
		t.Errorf("model-consistent measurements flagged as drift: %+v", rep.DriftingOps)
	}
	op, ok := rep.PerOp["gemm"]
	if !ok {
		t.Fatalf("per_op missing gemm: %v", rep.PerOp)
	}
	if op.Measured != n || op.ResidualLog2.Count != n {
		t.Errorf("gemm measured=%d residual count=%d, want %d", op.Measured, op.ResidualLog2.Count, n)
	}
	if m := op.ResidualLog2.Mean; m < -0.05 || m > 0.05 {
		t.Errorf("self-consistent residual mean %.4f, want ~0", m)
	}

	// The windowed samples feed /metrics and /healthz stays 200 (degraded
	// is a body bit, not an HTTP failure).
	cl := NewClient(ts.URL, nil)
	h, err := cl.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded || len(h.DriftingOps) != 0 {
		t.Errorf("healthz degraded on consistent stream: %+v", h)
	}

	// The typed client wraps both endpoints.
	accepted, err := cl.ReportMeasured([]MeasuredRecord{
		{Op: "gemm", M: 128, K: 128, N: 128, Threads: 4, MeasuredNs: 10_000},
	})
	if err != nil || accepted != 1 {
		t.Fatalf("client.ReportMeasured = %d, %v", accepted, err)
	}
	rep2, err := cl.Drift()
	if err != nil {
		t.Fatalf("client.Drift: %v", err)
	}
	if rep2.Observed != n+1 {
		t.Errorf("client drift observed %d, want %d", rep2.Observed, n+1)
	}
}

func TestMeasuredDegradedHealth(t *testing.T) {
	srv, ts := testServer(t)
	mon := drift.NewMonitor(drift.Config{
		Window:     time.Minute,
		Threshold:  0.5,
		MinSamples: 4,
	})
	srv.Engine().SetDriftMonitor(mon)

	// Measurements 8x slower than the model's estimate: residual_log2 mean
	// is about -3, far past the 0.5 threshold.
	lib := srv.Engine().Library()
	threads := lib.OptimalThreads(256, 256, 256)
	ns := int64(lib.PredictOpSeconds(OpGEMM, 256, 256, 256, threads) * 8e9)
	if ns < 8 {
		ns = 8
	}
	var body strings.Builder
	body.WriteString(`{"records":[`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `{"op":"gemm","m":256,"k":256,"n":256,"threads":%d,"measured_ns":%d}`, threads, ns)
	}
	body.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/measured", "application/json", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /measured: HTTP %d", resp.StatusCode)
	}

	// Degraded, not down: /healthz still answers 200 with the offending op
	// named in the body, so orchestrators keep routing while operators see
	// the quality regression.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz: HTTP %d, want 200", hr.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Degraded {
		t.Error("healthz degraded=false after sustained drift")
	}
	found := false
	for _, op := range h.DriftingOps {
		if op == "gemm" {
			found = true
		}
	}
	if !found {
		t.Errorf("drifting_ops %v missing gemm", h.DriftingOps)
	}
	if !mon.Degraded() {
		t.Error("monitor.Degraded() = false")
	}
}

func TestDriftMetricsExposition(t *testing.T) {
	srv, ts := testServer(t)
	mon := drift.NewMonitor(drift.Config{})
	srv.Engine().SetDriftMonitor(mon)
	mon.RegisterMetrics(srv.Registry())

	resp, err := http.Post(ts.URL+"/measured", "application/json",
		strings.NewReader(`{"records":[{"op":"gemm","m":512,"k":512,"n":512,"threads":8,"measured_ns":1000000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /measured: HTTP %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	blob, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, want := range []string{
		`adsala_drift_observed_total{op="gemm"} 1`,
		`adsala_drift_window_samples{bucket="medium",op="gemm"} 1`,
		`adsala_drift_residual_log2_mean{bucket="medium",op="gemm"}`,
		`adsala_drift_abs_rel_err_mean{bucket="medium",op="gemm"}`,
		`adsala_drift_op_drifting{op="gemm"} 0`,
		"adsala_drift_degraded 0",
		"adsala_drift_window_seconds 60",
		"adsala_drift_threshold_log2 1",
		`adsala_kernel_measured_seconds_count{op="gemm"} 1`,
		`adsala_kernel_predicted_seconds_count{op="gemm"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
}

func TestMeasuredErrors(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"get", func() (*http.Response, error) {
			return http.Get(ts.URL + "/measured")
		}, http.StatusMethodNotAllowed},
		{"bad json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/measured", "application/json", strings.NewReader(`{`))
		}, http.StatusBadRequest},
		{"empty", func() (*http.Response, error) {
			return http.Post(ts.URL+"/measured", "application/json", strings.NewReader(`{"records":[]}`))
		}, http.StatusBadRequest},
		{"bad dims", func() (*http.Response, error) {
			return http.Post(ts.URL+"/measured", "application/json",
				strings.NewReader(`{"records":[{"op":"gemm","m":0,"k":1,"n":1,"threads":1,"measured_ns":5}]}`))
		}, http.StatusBadRequest},
		{"bad threads", func() (*http.Response, error) {
			return http.Post(ts.URL+"/measured", "application/json",
				strings.NewReader(`{"records":[{"op":"gemm","m":1,"k":1,"n":1,"threads":0,"measured_ns":5}]}`))
		}, http.StatusBadRequest},
		{"bad measured_ns", func() (*http.Response, error) {
			return http.Post(ts.URL+"/measured", "application/json",
				strings.NewReader(`{"records":[{"op":"gemm","m":1,"k":1,"n":1,"threads":1,"measured_ns":0}]}`))
		}, http.StatusBadRequest},
		{"bad op", func() (*http.Response, error) {
			return http.Post(ts.URL+"/measured", "application/json",
				strings.NewReader(`{"records":[{"op":"conv2d","m":1,"k":1,"n":1,"threads":1,"measured_ns":5}]}`))
		}, http.StatusBadRequest},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}
