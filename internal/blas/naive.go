package blas

import "repro/internal/mat"

// NaiveSGEMM is the unblocked triple-loop reference used to validate the
// packed kernel. It applies the same op()/alpha/beta semantics as SGEMM.
func NaiveSGEMM(transA, transB bool, alpha float32, a *mat.F32, b *mat.F32, beta float32, c *mat.F32) {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float32]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float32]{c.Rows, c.Cols, c.Stride, c.Data}
	naive(transA, transB, alpha, av, bv, beta, cv)
}

// NaiveDGEMM is the double-precision reference.
func NaiveDGEMM(transA, transB bool, alpha float64, a *mat.F64, b *mat.F64, beta float64, c *mat.F64) {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float64]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float64]{c.Rows, c.Cols, c.Stride, c.Data}
	naive(transA, transB, alpha, av, bv, beta, cv)
}

// NaiveSSYRK is the unblocked per-element SYRK reference (the pre-packed
// implementation, minus its per-call goroutine fork/join): it computes the
// lower triangle of alpha·op(A)·op(A)ᵀ + beta·C serially and mirrors it.
// The packed SSYRK is validated — and its speedup measured — against it.
func NaiveSSYRK(trans bool, alpha float32, a *mat.F32, beta float32, c *mat.F32) {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	cv := view[float32]{c.Rows, c.Cols, c.Stride, c.Data}
	naiveSyrk(trans, alpha, av, beta, cv)
}

// NaiveDSYRK is the double-precision SYRK reference.
func NaiveDSYRK(trans bool, alpha float64, a *mat.F64, beta float64, c *mat.F64) {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	cv := view[float64]{c.Rows, c.Cols, c.Stride, c.Data}
	naiveSyrk(trans, alpha, av, beta, cv)
}

// NaiveSSYR2K is the unblocked per-element SYR2K reference: it computes the
// lower triangle of alpha·(op(A)·op(B)ᵀ + op(B)·op(A)ᵀ) + beta·C serially
// and mirrors it. The packed SSYR2K is validated against it.
func NaiveSSYR2K(trans bool, alpha float32, a, b *mat.F32, beta float32, c *mat.F32) {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float32]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float32]{c.Rows, c.Cols, c.Stride, c.Data}
	naiveSyr2k(trans, alpha, av, bv, beta, cv)
}

// NaiveDSYR2K is the double-precision SYR2K reference.
func NaiveDSYR2K(trans bool, alpha float64, a, b *mat.F64, beta float64, c *mat.F64) {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float64]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float64]{c.Rows, c.Cols, c.Stride, c.Data}
	naiveSyr2k(trans, alpha, av, bv, beta, cv)
}

func naiveSyr2k[T float32 | float64](trans bool, alpha T, a, b view[T], beta T, c view[T]) {
	n, k := opDims(a, trans)
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride:]
		for j := 0; j <= i; j++ {
			var sum T
			for p := 0; p < k; p++ {
				sum += opAt(a, trans, i, p)*opAt(b, trans, j, p) +
					opAt(b, trans, i, p)*opAt(a, trans, j, p)
			}
			row[j] = alpha*sum + beta*row[j]
		}
	}
	mirrorLower(c, 0, n)
}

func naiveSyrk[T float32 | float64](trans bool, alpha T, a view[T], beta T, c view[T]) {
	n, k := opDims(a, trans)
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride:]
		for j := 0; j <= i; j++ {
			var sum T
			for p := 0; p < k; p++ {
				sum += opAt(a, trans, i, p) * opAt(a, trans, j, p)
			}
			row[j] = alpha*sum + beta*row[j]
		}
	}
	mirrorLower(c, 0, n)
}

func naive[T float32 | float64](transA, transB bool, alpha T, a, b view[T], beta T, c view[T]) {
	m, k := opDims(a, transA)
	_, n := opDims(b, transB)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum T
			for p := 0; p < k; p++ {
				sum += opAt(a, transA, i, p) * opAt(b, transB, p, j)
			}
			c.data[i*c.stride+j] = alpha*sum + beta*c.data[i*c.stride+j]
		}
	}
}
