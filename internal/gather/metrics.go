package gather

import (
	"time"

	"repro/internal/obs"
)

// coordMetrics is the coordinator's instrument set over an optional
// registry. A nil *coordMetrics (no registry configured) no-ops on every
// method, so the gather path carries no conditionals.
type coordMetrics struct {
	reg        *obs.Registry
	units      *obs.Counter
	resumed    *obs.Counter
	dispatched *obs.Counter
	retried    *obs.Counter
	duplicates *obs.Counter
	ckWrites   *obs.Counter
	registered *obs.Gauge
}

// newCoordMetrics registers the coordinator families on reg; nil reg
// returns a nil (no-op) instance.
func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	if reg == nil {
		return nil
	}
	return &coordMetrics{
		reg: reg,
		units: reg.Counter("adsala_gather_units_total",
			"Sweep units planned across Gather runs."),
		resumed: reg.Counter("adsala_gather_units_resumed_total",
			"Units satisfied by the checkpoint without dispatch."),
		dispatched: reg.Counter("adsala_gather_units_dispatched_total",
			"Unit executions successfully fetched from workers."),
		retried: reg.Counter("adsala_gather_units_retried_total",
			"Unit re-dispatches after a worker failure or timeout."),
		duplicates: reg.Counter("adsala_gather_units_duplicate_total",
			"Results dropped by the merge dedup."),
		ckWrites: reg.Counter("adsala_gather_checkpoint_writes_total",
			"Unit results appended to the JSONL checkpoint."),
		registered: reg.Gauge("adsala_gather_workers_registered",
			"Workers that accepted the current sweep spec."),
	}
}

func (m *coordMetrics) planned(units, resumed int) {
	if m == nil {
		return
	}
	m.units.Add(int64(units))
	m.resumed.Add(int64(resumed))
}

func (m *coordMetrics) fleetRegistered(n int) {
	if m == nil {
		return
	}
	m.registered.Set(float64(n))
}

func (m *coordMetrics) unitDispatched() {
	if m != nil {
		m.dispatched.Inc()
	}
}

func (m *coordMetrics) unitRetried() {
	if m != nil {
		m.retried.Inc()
	}
}

func (m *coordMetrics) unitDuplicate() {
	if m != nil {
		m.duplicates.Inc()
	}
}

func (m *coordMetrics) checkpointWrite() {
	if m != nil {
		m.ckWrites.Inc()
	}
}

// workerView is one worker's outcome counters and latency histogram,
// labelled by its base URL.
type workerView struct {
	ok      *obs.Counter
	failed  *obs.Counter
	seconds *obs.Histogram
}

// worker returns (idempotently, via the registry) the instruments for one
// worker base URL; nil metrics yields a no-op view.
func (m *coordMetrics) worker(base string) workerView {
	if m == nil {
		return workerView{}
	}
	lbl := obs.L("worker", base)
	return workerView{
		ok: m.reg.Counter("adsala_gather_worker_units_total",
			"Unit executions per worker and result.", lbl, obs.L("result", "ok")),
		failed: m.reg.Counter("adsala_gather_worker_units_total",
			"Unit executions per worker and result.", lbl, obs.L("result", "error")),
		seconds: m.reg.Histogram("adsala_gather_worker_unit_seconds",
			"Dispatch-to-result wall time of one unit on one worker.", 1e-9, lbl),
	}
}

func (v workerView) observe(d time.Duration, failed bool) {
	if v.seconds == nil {
		return
	}
	v.seconds.Observe(d.Nanoseconds())
	if failed {
		v.failed.Inc()
	} else {
		v.ok.Inc()
	}
}
