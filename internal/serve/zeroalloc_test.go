package serve

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/drift"
	"repro/internal/trace"
)

// TestRankWithZeroAlloc pins the //adsala:zeroalloc contract on the
// engine's cache-miss ranking path: once the scratch pool is primed,
// rankWith — pooled scratch, full candidate ranking, latency-histogram
// observation — allocates nothing per call.
func TestRankWithZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	e := NewEngine(lib(t), Options{})
	st := e.state.Load()
	// Prime the pool so the steady state (reuse, not construction) is
	// what gets measured.
	e.rankWith(st, OpGEMM, 512, 256, 384, nil)
	if n := testing.AllocsPerRun(200, func() {
		e.rankWith(st, OpGEMM, 512, 256, 384, nil)
	}); n != 0 {
		t.Errorf("rankWith allocates %.1f/op, want 0", n)
	}
}

// TestPredictTracedZeroAlloc pins that attaching a flight recorder keeps
// the serve path allocation-free: both the cache-hit path (traceDecision +
// ring push) and the cache-miss path (rankWith with the pooled score
// buffer, then the record) stay at 0 allocs/op.
func TestPredictTracedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	e := NewEngine(lib(t), Options{})
	rec, err := trace.Open(filepath.Join(t.TempDir(), "cap"), trace.Options{
		RingSize:      1 << 16,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("trace.Open: %v", err)
	}
	defer rec.Close()
	e.SetRecorder(rec)

	// Cache-hit path: one miss to seed, then hits.
	e.PredictOp(OpGEMM, 512, 256, 384)
	if n := testing.AllocsPerRun(200, func() {
		e.PredictOp(OpGEMM, 512, 256, 384)
	}); n != 0 {
		t.Errorf("traced cache-hit PredictOp allocates %.1f/op, want 0", n)
	}

	// Cache-miss ranking path with the recorder's predicted-ns capture.
	st := e.state.Load()
	e.rankWith(st, OpGEMM, 512, 256, 384, nil)
	if n := testing.AllocsPerRun(200, func() {
		e.rankWith(st, OpGEMM, 512, 256, 384, nil)
	}); n != 0 {
		t.Errorf("traced rankWith allocates %.1f/op, want 0", n)
	}

	// Measurement records from the facade path.
	if n := testing.AllocsPerRun(200, func() {
		e.RecordMeasured(OpGEMM, 512, 256, 384, 8, 12345)
	}); n != 0 {
		t.Errorf("RecordMeasured allocates %.1f/op, want 0", n)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring dropped %d records during the run; size the ring up", rec.Dropped())
	}
}

// TestRecordMeasuredDriftZeroAlloc pins the acceptance criterion of the
// drift tentpole: with a drift monitor attached, RecordMeasured — model
// evaluation with the pooled scratch, bucket routing, two windowed-moments
// updates, two histogram observations — stays at 0 allocs/op on the
// engine's measured hot path.
func TestRecordMeasuredDriftZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	e := NewEngine(lib(t), Options{})
	e.SetDriftMonitor(drift.NewMonitor(drift.Config{}))

	// Prime the scratch pool so steady-state reuse is what gets measured.
	e.RecordMeasured(OpGEMM, 512, 256, 384, 8, 12345)
	if n := testing.AllocsPerRun(500, func() {
		e.RecordMeasured(OpGEMM, 512, 256, 384, 8, 12345)
	}); n != 0 {
		t.Errorf("drift-monitored RecordMeasured allocates %.1f/op, want 0", n)
	}

	// The symmetric-rank ops route through their own FLOP weights.
	e.RecordMeasured(OpSYRK, 512, 256, 512, 8, 12345)
	if n := testing.AllocsPerRun(500, func() {
		e.RecordMeasured(OpSYRK, 512, 256, 512, 8, 12345)
	}); n != 0 {
		t.Errorf("drift-monitored RecordMeasured(SYRK) allocates %.1f/op, want 0", n)
	}
}
