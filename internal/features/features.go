// Package features constructs the ML feature vectors of Table II from GEMM
// dimensions and thread counts: Group 1 carries the serial-runtime terms
// (operand sizes, FLOP count), Group 2 the parallel terms (work divided by
// the thread count).
package features

import (
	"repro/internal/dataset"
	"repro/internal/sampling"
)

// columns is the Table II feature list, Group 1 then Group 2.
var columns = []string{
	// Group 1: serial terms.
	"m", "k", "n", "n_threads",
	"m*k", "m*n", "k*n", "m*k*n", "m*k+k*n+m*n",
	// Group 2: parallel terms.
	"m/t", "k/t", "n/t",
	"m*k/t", "m*n/t", "k*n/t", "m*k*n/t", "(m*k+k*n+m*n)/t",
}

// group1 is the number of Group 1 columns; the remainder are Group 2.
const group1 = 9

// Columns returns the full Table II feature names in order.
func Columns() []string { return append([]string(nil), columns...) }

// Group1Columns returns only the serial-term feature names (used by the
// feature-set ablation).
func Group1Columns() []string { return append([]string(nil), columns[:group1]...) }

// Row builds one feature vector for a GEMM of the given shape run with the
// given number of threads.
func Row(m, k, n, threads int) []float64 {
	dst := make([]float64, len(columns))
	RowInto(m, k, n, threads, dst)
	return dst
}

// RowInto is Row without allocation; dst must have len(Columns()).
//
//adsala:zeroalloc
func RowInto(m, k, n, threads int, dst []float64) {
	fm, fk, fn := float64(m), float64(k), float64(n)
	t := float64(threads)
	mk, mn, kn := fm*fk, fm*fn, fk*fn
	mkn := fm * fk * fn
	total := mk + kn + mn
	dst[0], dst[1], dst[2], dst[3] = fm, fk, fn, t
	dst[4], dst[5], dst[6], dst[7], dst[8] = mk, mn, kn, mkn, total
	dst[9], dst[10], dst[11] = fm/t, fk/t, fn/t
	dst[12], dst[13], dst[14], dst[15], dst[16] = mk/t, mn/t, kn/t, mkn/t, total/t
}

// Record is one timed observation from the data-gathering phase.
type Record struct {
	Shape   sampling.Shape
	Threads int
	Seconds float64
}

// Build assembles a dataset from timing records, with the GEMM wall time as
// the regression target (§IV-A: the model predicts runtime, and thread
// selection takes the argmin over candidate thread counts).
func Build(recs []Record) *dataset.Dataset {
	d := dataset.New(columns)
	for _, r := range recs {
		d.Append(Row(r.Shape.M, r.Shape.K, r.Shape.N, r.Threads), r.Seconds)
	}
	return d
}
