package simtime

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/ops"
)

func TestSimulatorOpTiming(t *testing.T) {
	s := New(DefaultConfig(machine.Gadi()))
	const m, k, n, p = 512, 256, 512, 8

	// GEMM delegates: per-op timing must reproduce the paper path exactly.
	if got, want := s.TimeOp(ops.GEMM, m, k, n, p), s.Time(m, k, n, p); got != want {
		t.Errorf("TimeOp(gemm) = %v, Time = %v", got, want)
	}
	if got, want := s.MeasureMeanOp(ops.GEMM, m, k, n, p, 5), s.MeasureMean(m, k, n, p, 5); got != want {
		t.Errorf("MeasureMeanOp(gemm) = %v, MeasureMean = %v", got, want)
	}

	// Cost ordering at a square triple: SYRK does roughly half the GEMM
	// FLOPs, SYR2K roughly doubles SYRK.
	g := s.Breakdown(m, k, m, p).Total()
	sy := s.BreakdownOp(ops.SYRK, m, k, m, p).Total()
	s2 := s.BreakdownOp(ops.SYR2K, m, k, m, p).Total()
	if !(sy < g) {
		t.Errorf("syrk %v not below gemm %v", sy, g)
	}
	if !(s2 > sy && s2 > 1.5*sy) {
		t.Errorf("syr2k %v vs syrk %v, want roughly double", s2, sy)
	}
	// SYR2K pays two barrier-phased passes.
	bg := s.Breakdown(m, k, m, p)
	b2 := s.BreakdownOp(ops.SYR2K, m, k, m, p)
	if b2.Sync != 2*bg.Sync {
		t.Errorf("syr2k sync %v, want 2x gemm %v", b2.Sync, bg.Sync)
	}

	// Noise is deterministic per (op, config, rep) and distinct across ops.
	if a, b := s.TimeOpRep(ops.SYRK, m, k, m, p, 1), s.TimeOpRep(ops.SYRK, m, k, m, p, 1); a != b {
		t.Errorf("syrk noise not reproducible: %v vs %v", a, b)
	}
	ratio := s.TimeOpRep(ops.SYRK, m, k, m, p, 0) / s.TimeOpRep(ops.GEMM, m, k, m, p, 0)
	if ratio <= 0 || ratio >= 1 {
		t.Errorf("noisy syrk/gemm ratio %v, want in (0,1)", ratio)
	}
}

func TestRealTimerOps(t *testing.T) {
	rt := NewRealTimer(1)
	for _, op := range ops.All() {
		if secs := rt.MeasureMeanOp(op, 24, 16, 24, 1, 1); secs <= 0 {
			t.Errorf("%v measured %v seconds", op, secs)
		}
	}
	if rt.GemmCalls() != int64(ops.NumOps()) {
		t.Errorf("timed calls = %d, want one per op", rt.GemmCalls())
	}
}
