// Package obs is the observability core of the serving and training
// daemons: dependency-free atomic counters, gauges and mergeable
// log-bucketed latency histograms, collected in a Registry that renders
// the Prometheus text exposition format.
//
// The design constraint is the serving hot path: recording a measurement
// (Counter.Add, Gauge.Set, Histogram.Observe) touches only pre-allocated
// atomics — no locks, no maps, no allocation — so a decision that takes a
// few microseconds can be instrumented without distorting what it
// measures. All layout work (label sets, bucket bounds, HELP/TYPE text)
// happens once at registration; scrape-time reads walk the registered
// series under a registry lock that the hot path never takes.
//
// Metrics register idempotently: asking for the same (name, type, label
// set) twice returns the same instrument, so per-sweep registration in a
// long-lived process (one gather per op through one coordinator) needs no
// caller-side caching.
package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//adsala:zeroalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters are monotone).
//
//adsala:zeroalloc
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down. It stores float64
// bits, so integer and fractional gauges share one type.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//adsala:zeroalloc
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adds d with a CAS loop (no allocation).
//
//adsala:zeroalloc
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// metricKind discriminates the series types a family can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// promType returns the Prometheus TYPE keyword of the kind.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// sameType reports whether two kinds expose as the same Prometheus type
// (a family may mix e.g. Counter and CounterFunc series).
func sameType(a, b metricKind) bool { return a.promType() == b.promType() }

// series is one registered (labels → instrument) binding.
type series struct {
	labels    []Label
	labelText string // rendered {a="b",...} suffix, "" when unlabelled
	kind      metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind

	series map[string]*series // keyed by labelText
	order  []string
}

// Registry collects metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call NewRegistry.
// Registration and scraping lock the registry; recording into returned
// instruments is lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use. Panics if name is already registered
// as a different metric type (a programming error, like Prometheus client
// libraries treat it).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters that must stay
// authoritative (e.g. the serving engine's /stats fields).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, kindCounterFunc, labels)
	s.fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// (cache occupancy, queue depths, readiness).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// Histogram returns the histogram registered under name with the given
// labels, creating it with the scale on first use. scale converts
// observed units into exposition units (1e-9 turns nanosecond
// observations into Prometheus-conventional seconds; 1 keeps raw units).
func (r *Registry) Histogram(name, help string, scale float64, labels ...Label) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram(scale)
	}
	return s.hist
}

// RegisterHistogram attaches an existing histogram (e.g. one owned by the
// serving engine since construction) under name with the given labels.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	s := r.getOrCreate(name, help, kindHistogram, labels)
	s.hist = h
}

// getOrCreate returns the series for (name, labels), creating family and
// series as needed, and panics on a type conflict.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label) *series {
	if err := checkName(name); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := checkLabelName(l.Name); err != nil {
			panic(err)
		}
	}
	labelText := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if !sameType(f.kind, kind) {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s",
			name, f.kind.promType(), kind.promType()))
	}
	s, ok := f.series[labelText]
	if !ok {
		s = &series{labels: labels, labelText: labelText, kind: kind}
		f.series[labelText] = s
		f.order = append(f.order, labelText)
	} else if s.kind != kind {
		panic(fmt.Sprintf("obs: series %s%s registered with a different instrument kind", name, labelText))
	}
	return s
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		r.WriteText(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// WriteText renders every family, sorted by metric name (series sorted by
// label text), in the Prometheus text exposition format.
func (r *Registry) WriteText(b *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		writeFamily(b, f)
	}
}

// checkName validates a Prometheus metric name.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
			continue
		}
		if c >= '0' && c <= '9' && i > 0 {
			continue
		}
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	return nil
}

// checkLabelName validates a Prometheus label name.
func checkLabelName(name string) error {
	if name == "" || strings.HasPrefix(name, "__") {
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	for i, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
			continue
		}
		if c >= '0' && c <= '9' && i > 0 {
			continue
		}
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	return nil
}

// renderLabels renders a sorted {a="b",c="d"} suffix with escaped values;
// an empty set renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		escapeLabelValue(&b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue writes v with backslash, double-quote and newline
// escaped per the exposition format.
func escapeLabelValue(b *strings.Builder, v string) {
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
}
