// Package experiments regenerates every table and figure of the paper's
// evaluation section as text output: histograms (Figs 1, 8), distribution
// checks (Fig 4), affinity curves (Fig 7), optimal-thread and speedup
// heatmaps (Figs 9, 10), the model-comparison tables (III, IV), speedup
// statistics (V, VI), GFLOPS series (Figs 11-14) and the profiling breakdown
// (Table VII), plus the ablations called out in DESIGN.md §5.
//
// Experiments share a Lab, which memoises the expensive artefacts (gathered
// timing sweeps and trained libraries) per platform and memory cap.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// Scale sizes the experiments. The paper's full scale (1763 shapes) is
// reachable but slow on one CPU; Default is a faithful reduction and Quick
// is for tests/benchmarks.
type Scale struct {
	TrainShapes   int // shapes in the training sweep (paper: 1763)
	HoldoutShapes int // independent low-discrepancy holdout (paper: 174)
	Iters         int // timing repetitions (paper: 10)
	QuickModels   bool
	Seed          int64
}

// DefaultScale is the standard reduction used by cmd/adsala-bench.
func DefaultScale() Scale {
	return Scale{TrainShapes: 300, HoldoutShapes: 174, Iters: 3, QuickModels: false, Seed: 1}
}

// QuickScale is used by unit tests and testing.B benchmarks.
func QuickScale() Scale {
	return Scale{TrainShapes: 70, HoldoutShapes: 40, Iters: 2, QuickModels: true, Seed: 1}
}

// PaperScale matches the paper's dataset sizes (slow: hours on one core).
func PaperScale() Scale {
	return Scale{TrainShapes: 1763, HoldoutShapes: 174, Iters: 10, QuickModels: false, Seed: 1}
}

// Platform bundles a simulated node with its experiment parameters.
type Platform struct {
	Name       string
	Node       *machine.Node
	RefThreads int // speedup baseline: physical core count
	BLASName   string
}

// Platforms returns the paper's two testbeds.
func Platforms() []Platform {
	return []Platform{
		{Name: "Setonix", Node: machine.Setonix(), RefThreads: 128, BLASName: "BLIS"},
		{Name: "Gadi", Node: machine.Gadi(), RefThreads: 48, BLASName: "MKL"},
	}
}

// PlatformByName returns the named platform.
func PlatformByName(name string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("experiments: unknown platform %q", name)
}

// Lab memoises gathers and trainings shared across experiments.
type Lab struct {
	Scale Scale

	mu     sync.Mutex
	trains map[string]*core.TrainResult
}

// NewLab returns a Lab at the given scale.
func NewLab(sc Scale) *Lab {
	return &Lab{Scale: sc, trains: make(map[string]*core.TrainResult)}
}

// Sim builds the standard simulator for a platform (HT on, core affinity,
// SGEMM, 4% noise).
func (l *Lab) Sim(p Platform, ht bool) *simtime.Simulator {
	cfg := simtime.DefaultConfig(p.Node)
	cfg.HT = ht
	cfg.Seed = l.Scale.Seed
	return simtime.New(cfg)
}

// gatherConfig assembles the sweep settings for a platform and memory cap.
func (l *Lab) gatherConfig(p Platform, capMB int, ht bool) core.GatherConfig {
	return core.GatherConfig{
		Timer:      l.Sim(p, ht),
		Domain:     sampling.DefaultDomain().WithCapMB(capMB),
		NumShapes:  l.Scale.TrainShapes,
		Candidates: core.DefaultCandidates(p.Node.MaxThreads(ht)),
		Iters:      l.Scale.Iters,
		Seed:       l.Scale.Seed,
	}
}

// Train returns the memoised installation run for (platform, cap, ht).
func (l *Lab) Train(p Platform, capMB int, ht bool) (*core.TrainResult, error) {
	key := fmt.Sprintf("%s/%d/%v", p.Name, capMB, ht)
	l.mu.Lock()
	if res, ok := l.trains[key]; ok {
		l.mu.Unlock()
		return res, nil
	}
	l.mu.Unlock()

	ref := p.RefThreads
	cfg := core.DefaultTrainConfig(l.gatherConfig(p, capMB, ht), p.Name, ref)
	cfg.Models = core.DefaultModels(l.Scale.Seed, l.Scale.QuickModels)
	res, err := core.Train(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %s: %w", key, err)
	}
	l.mu.Lock()
	l.trains[key] = res
	l.mu.Unlock()
	return res, nil
}

// Holdout samples the independent low-discrepancy evaluation set used by
// Tables V/VI and Figs 10-12 (§VI-C), timed on the same simulator.
func (l *Lab) Holdout(p Platform, capMB int, ht bool) ([]core.ShapeTimings, error) {
	cfg := l.gatherConfig(p, capMB, ht)
	cfg.NumShapes = l.Scale.HoldoutShapes
	cfg.Seed = l.Scale.Seed + 7919 // disjoint scramble from the training sweep
	return core.Gather(cfg)
}
