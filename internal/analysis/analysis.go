// Package analysis is the project's static-analysis suite: a small,
// dependency-free analyzer framework (the same Analyzer/Pass/Diagnostic
// shape as golang.org/x/tools/go/analysis, rebuilt on the standard
// library so the module stays self-contained) plus four analyzers that
// encode adsala's load-bearing invariants:
//
//   - zeroalloc: functions annotated //adsala:zeroalloc must not contain
//     allocating constructs, transitively through same-module callees.
//   - atomicfield: a struct field accessed through sync/atomic anywhere
//     must be accessed atomically everywhere (the torn-read bug class).
//   - ctxflow: no context.Background()/TODO() inside the serving, gather
//     and retry library packages; exported HTTP-performing functions take
//     a context; every *http.Response body is closed AND drained.
//   - metricname: obs registrations use literal adsala_* names with
//     conventional suffixes, and conflicting registrations are rejected
//     at vet time instead of panicking at serve time.
//
// Run the suite with `go run ./cmd/adsala-vet ./...`. A diagnostic is
// suppressed by a comment on the same or the preceding line:
//
//	//adsala:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without a rationale is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //adsala:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the package's type-checked object.
	Pkg *types.Package
	// Info holds the type information for Files.
	Info *types.Info
	// Module indexes every module-local package by import path — the
	// cross-package view transitive checks (zeroalloc) walk through.
	Module *Module

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Analyzers returns the full project suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ZeroAlloc, AtomicField, CtxFlow, MetricName}
}

// ignoreDirective is one parsed //adsala:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name, or "all"
	reason   string
	used     bool
	pos      token.Pos
}

var ignoreRe = regexp.MustCompile(`^//adsala:ignore\s+(\S+)\s*(.*)$`)

// ignoreIndex maps "file:line" to the directives covering that line. A
// directive covers its own line and the following one, matching the
// trailing-comment and own-line conventions of staticcheck's
// //lint:ignore.
type ignoreIndex struct {
	fset      *token.FileSet
	byLine    map[string][]*ignoreDirective
	malformed []token.Pos
}

// buildIgnoreIndex scans every comment of files for adsala:ignore
// directives.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, byLine: make(map[string][]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//adsala:ignore") {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					idx.malformed = append(idx.malformed, c.Pos())
					continue
				}
				d := &ignoreDirective{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					idx.byLine[key] = append(idx.byLine[key], d)
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic of analyzer at pos is covered
// by an ignore directive, marking the directive used.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	for _, d := range idx.byLine[key] {
		if d.analyzer == analyzer || d.analyzer == "all" {
			d.used = true
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over every module package and returns
// the surviving (non-suppressed) diagnostics in file/line order.
// Malformed ignore directives are reported as findings of the pseudo
// analyzer "ignore".
func RunAnalyzers(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range mod.Sorted() {
		idx := buildIgnoreIndex(mod.Fset, pkg.Files)
		for _, pos := range idx.malformed {
			out = append(out, Diagnostic{
				Pos:      pos,
				Analyzer: "ignore",
				Message:  "malformed //adsala:ignore directive: want //adsala:ignore <analyzer> <reason>",
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   mod,
			}
			pass.report = func(d Diagnostic) {
				if idx.suppressed(a.Name, d.Pos) {
					return
				}
				d.Analyzer = a.Name
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := mod.Fset.Position(out[i].Pos), mod.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// funcDoc returns the doc comment group of a function declaration,
// falling back to nil.
func funcDoc(decl *ast.FuncDecl) *ast.CommentGroup { return decl.Doc }

// hasDirective reports whether the comment group contains the exact
// //adsala:<name> directive on a line of its own.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//adsala:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}
