// Package sampling generates GEMM shape workloads: the scrambled-Halton
// quasi-random samples of the install-time data gathering (§IV-B) and the
// predesigned sweep grids of Figs 13/14.
//
// Shapes are drawn square-root-uniformly per dimension (matching the √-scaled
// axes of Figs 9/10) up to MaxDim, then rejection-filtered against the
// aggregate memory cap 4·(mk+kn+mn) ≤ MaxBytes (single precision; 8· for
// double).
package sampling

import (
	"fmt"

	"repro/internal/halton"
)

// Shape is one GEMM input configuration: C(m×n) += A(m×k)·B(k×n).
type Shape struct {
	M, K, N int
}

// Bytes returns the aggregate operand footprint for the given element size.
func (s Shape) Bytes(elemBytes int64) int64 {
	return elemBytes * (int64(s.M)*int64(s.K) + int64(s.K)*int64(s.N) + int64(s.M)*int64(s.N))
}

// Flops returns 2·m·k·n.
func (s Shape) Flops() int64 { return 2 * int64(s.M) * int64(s.K) * int64(s.N) }

// MinDim returns the smallest of m, k, n (used by the Fig 8 filter).
func (s Shape) MinDim() int {
	min := s.M
	if s.K < min {
		min = s.K
	}
	if s.N < min {
		min = s.N
	}
	return min
}

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.M, s.K, s.N) }

// Domain bounds the sampled shape space.
type Domain struct {
	MaxDim    int   // upper bound per dimension (paper: ~74k)
	MaxBytes  int64 // aggregate memory cap (paper: 100 MB / 500 MB)
	ElemBytes int64 // 4 for SGEMM, 8 for DGEMM
}

// DefaultDomain returns the paper's 500 MB single-precision domain.
func DefaultDomain() Domain {
	return Domain{MaxDim: 74000, MaxBytes: 500 * 1000 * 1000, ElemBytes: 4}
}

// WithCapMB returns a copy of the domain with the memory cap set to mb
// megabytes.
func (d Domain) WithCapMB(mb int) Domain {
	d.MaxBytes = int64(mb) * 1000 * 1000
	return d
}

// Contains reports whether the shape lies inside the domain.
func (d Domain) Contains(s Shape) bool {
	if s.M < 1 || s.K < 1 || s.N < 1 {
		return false
	}
	if s.M > d.MaxDim || s.K > d.MaxDim || s.N > d.MaxDim {
		return false
	}
	return s.Bytes(d.ElemBytes) <= d.MaxBytes
}

// Sampler draws shapes from a domain using a scrambled Halton sequence with
// rejection against the memory cap.
type Sampler struct {
	dom Domain
	seq *halton.Sequence
}

// NewSampler returns a Sampler over the domain with the given scramble seed.
func NewSampler(dom Domain, seed int64) (*Sampler, error) {
	if dom.MaxDim < 1 {
		return nil, fmt.Errorf("sampling: MaxDim %d < 1", dom.MaxDim)
	}
	if dom.ElemBytes != 4 && dom.ElemBytes != 8 {
		return nil, fmt.Errorf("sampling: ElemBytes must be 4 or 8, got %d", dom.ElemBytes)
	}
	if minShape := (Shape{1, 1, 1}); !dom.Contains(minShape) {
		return nil, fmt.Errorf("sampling: domain excludes even 1x1x1 (cap %d bytes)", dom.MaxBytes)
	}
	seq, err := halton.New(3, seed)
	if err != nil {
		return nil, err
	}
	return &Sampler{dom: dom, seq: seq}, nil
}

// Next returns the next in-domain shape. Low-discrepancy ordering is
// preserved across the rejection filter.
func (s *Sampler) Next() Shape {
	var pt [3]float64
	for {
		s.seq.NextInto(pt[:])
		sh := Shape{
			M: scaleDim(pt[0], s.dom.MaxDim),
			K: scaleDim(pt[1], s.dom.MaxDim),
			N: scaleDim(pt[2], s.dom.MaxDim),
		}
		if s.dom.Contains(sh) {
			return sh
		}
	}
}

// Skip draws and discards n in-domain shapes, advancing the sampler to the
// n-th accepted sample. This is the deterministic sharding primitive of the
// distributed gather: a work unit is (start, count) into the accepted-sample
// stream, so a worker reconstructs exactly its slice of the sweep and the
// union over any worker count is the same total sweep.
func (s *Sampler) Skip(n int) {
	for i := 0; i < n; i++ {
		s.Next()
	}
}

// Sample returns the next n in-domain shapes.
func (s *Sampler) Sample(n int) []Shape {
	out := make([]Shape, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// scaleDim maps u ∈ [0,1) to a dimension in [1, maxDim] with square-root
// density (uniform in √dim), concentrating samples at small sizes like the
// paper's sampling domain.
func scaleDim(u float64, maxDim int) int {
	d := 1 + int(u*u*float64(maxDim-1))
	if d > maxDim {
		d = maxDim
	}
	return d
}

// SweepPoint is one cell of the predesigned grids of Figs 13/14.
type SweepPoint struct {
	Family string // e.g. "n,k (m=64)": which dims sweep, which is fixed
	Fixed  int    // the fixed small value (32/64/128/256)
	Sweep  int    // the swept value (128..4096)
	Shape  Shape
}

// FixedValues are the small fixed dimensions of Figs 13/14.
var FixedValues = []int{32, 64, 128, 256}

// SweepValues are the swept dimensions of Figs 13/14.
var SweepValues = []int{128, 256, 512, 1024, 2048, 4096}

// Predesigned returns the full 6-family × 4-fixed × 6-sweep grid of
// Figs 13/14: three families with one small dimension (two swept together)
// and three with two small dimensions (one swept).
func Predesigned() []SweepPoint {
	var out []SweepPoint
	for _, f := range FixedValues {
		for _, v := range SweepValues {
			out = append(out,
				SweepPoint{fmt.Sprintf("n,k (m=%d)", f), f, v, Shape{M: f, K: v, N: v}},
				SweepPoint{fmt.Sprintf("m,n (k=%d)", f), f, v, Shape{M: v, K: f, N: v}},
				SweepPoint{fmt.Sprintf("m,k (n=%d)", f), f, v, Shape{M: v, K: v, N: f}},
				SweepPoint{fmt.Sprintf("m (k,n=%d)", f), f, v, Shape{M: v, K: f, N: f}},
				SweepPoint{fmt.Sprintf("k (m,n=%d)", f), f, v, Shape{M: f, K: v, N: f}},
				SweepPoint{fmt.Sprintf("n (m,k=%d)", f), f, v, Shape{M: f, K: f, N: v}},
			)
		}
	}
	return out
}
