package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/retry"
)

// modellessLibrary returns an artefact with candidates but no trained
// model — the degraded-mode input (e.g. a freshly provisioned node whose
// training job has not finished).
func modellessLibrary() *core.Library {
	return &core.Library{Platform: "degraded", Candidates: []int{1, 2, 4, 8, 16}}
}

// scrapeMetrics fetches the Prometheus exposition of a test server.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test after two seconds — the leak check of the
// overload acceptance criterion.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d still running, want <= %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOverloadSheds pins the admission gate under saturation: with both
// in-flight slots held busy, 4×MaxInFlight concurrent /predict requests
// must all shed with 429 + Retry-After within the bounded queue wait, the
// server's shed counter must agree, service must resume the moment the
// slots free, and no goroutines may leak.
func TestOverloadSheds(t *testing.T) {
	eng := NewEngine(lib(t), Options{CacheSize: 256, Shards: 8})
	srv := NewServer(eng, WithLimits(Limits{
		MaxInFlight: 2,
		MaxQueue:    2,
		QueueWait:   30 * time.Millisecond,
	}))
	// A blocking route through the same admit/release gate as /predict,
	// so the test can hold both in-flight slots deterministically.
	gate := make(chan struct{})
	admitted := make(chan struct{}, 2)
	srv.mux.HandleFunc("/hold", func(w http.ResponseWriter, r *http.Request) {
		if !srv.admit(w, r) {
			return
		}
		defer srv.release()
		admitted <- struct{}{}
		<-gate
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := runtime.NumGoroutine()
	var holders sync.WaitGroup
	for i := 0; i < 2; i++ {
		holders.Add(1)
		go func() {
			defer holders.Done()
			resp, err := http.Get(ts.URL + "/hold")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				t.Errorf("holder answered HTTP %d", resp.StatusCode)
			}
		}()
	}
	<-admitted
	<-admitted // both slots now busy

	const clients = 8 // 4 × MaxInFlight
	var (
		wg   sync.WaitGroup
		shed atomic.Int64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(ts.URL+"/predict", "application/json",
				strings.NewReader(`{"m":512,"k":512,"n":512}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			// Bounded latency: immediate shed or at most the queue wait.
			if d := time.Since(start); d > time.Second {
				t.Errorf("shed took %v: overload latency is unbounded", d)
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("saturated /predict answered HTTP %d, want 429", resp.StatusCode)
				io.Copy(io.Discard, resp.Body)
				return
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
			var sr shedResponse
			if json.NewDecoder(resp.Body).Decode(&sr) != nil || sr.RetryAfterMS < 1 {
				t.Error("429 body is not a shed response")
			}
			shed.Add(1)
		}()
	}
	wg.Wait()

	if shed.Load() != clients {
		t.Errorf("%d of %d saturated requests shed", shed.Load(), clients)
	}
	if got := srv.shed.Load(); got != shed.Load() {
		t.Errorf("server counted %d sheds, clients observed %d", got, shed.Load())
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "adsala_serve_shed_total") {
		t.Error("shed counter missing from /metrics")
	}

	// Release the slots: service resumes with correct answers.
	close(gate)
	holders.Wait()
	want := eng.Library().OptimalThreads(512, 512, 512)
	resp, err := http.Post(ts.URL+"/predict", "application/json",
		strings.NewReader(`{"m":512,"k":512,"n":512}`))
	if err != nil {
		t.Fatal(err)
	}
	var pr PredictResponse
	err = json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || pr.Threads != want {
		t.Errorf("post-overload predict = (%d, %+v, %v), want HTTP 200 with %d threads",
			resp.StatusCode, pr, err, want)
	}

	// Shed-path goroutines must unwind once idle connections are dropped.
	http.DefaultClient.CloseIdleConnections()
	waitGoroutines(t, before+2)
}

// TestReloadUnderLoad is the acceptance criterion of the hot-reload path:
// sustained traffic while the artefact is swapped twice must see zero
// failed requests (no client retries to mask them), /healthz must report
// the new generation, and the decision cache must warm back up afterwards.
func TestReloadUnderLoad(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 256, Shards: 8})
	srv := NewServer(eng,
		WithReload(ReloadConfig{
			Load:  func() (*core.Library, error) { return l, nil },
			Token: "sesame",
		}),
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// No retries: a single failed request fails the test.
	client := NewClient(ts.URL, nil, WithRetryPolicy(retry.Policy{MaxAttempts: 1}))
	want := l.OptimalThreads(512, 512, 512)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, failed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					got, err := client.Predict(512, 512, 512)
					if err != nil || got != want {
						t.Errorf("predict during reload = (%d, %v), want (%d, nil)", got, err, want)
						failed.Add(1)
						return
					}
				} else {
					if _, err := client.PredictBatch(mixedShapes(4)); err != nil {
						t.Errorf("batch during reload: %v", err)
						failed.Add(1)
						return
					}
				}
				served.Add(1)
			}
		}(g)
	}

	// Two swaps mid-traffic, through the authenticated admin endpoint.
	for swap := 0; swap < 2; swap++ {
		time.Sleep(30 * time.Millisecond)
		h, err := client.Reload(context.Background(), "sesame")
		if err != nil {
			t.Fatalf("swap %d: %v", swap+1, err)
		}
		if h.Generation != int64(swap+1) {
			t.Fatalf("swap %d answered generation %d", swap+1, h.Generation)
		}
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failed.Load() != 0 || served.Load() == 0 {
		t.Fatalf("reload under load: %d served, %d failed", served.Load(), failed.Load())
	}
	h, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Generation != 2 || h.Status != "ok" {
		t.Errorf("healthz after two reloads = %+v, want generation 2, ok", h)
	}
	// The cache recovers: the swap reset it, and serving refills it.
	if _, err := client.Predict(512, 512, 512); err != nil {
		t.Fatal(err)
	}
	hits0 := eng.Stats().CacheHits
	if _, err := client.Predict(512, 512, 512); err != nil {
		t.Fatal(err)
	}
	if hits := eng.Stats().CacheHits; hits <= hits0 {
		t.Errorf("cache did not recover after reload: hits %d -> %d", hits0, hits)
	}
}

// TestAdminReloadAuth pins the admin endpoint's contract: token required
// (constant-time compare, both header forms), POST only, and the endpoint
// absent entirely when no token is configured.
func TestAdminReloadAuth(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 64, Shards: 2})
	srv := NewServer(eng, WithReload(ReloadConfig{
		Load:  func() (*core.Library, error) { return l, nil },
		Token: "sesame",
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(token, header string) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/reload", nil)
		if token != "" {
			req.Header.Set(header, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("", ""); got != http.StatusUnauthorized {
		t.Errorf("no token: HTTP %d, want 401", got)
	}
	if got := post("wrong", "X-Adsala-Admin-Token"); got != http.StatusUnauthorized {
		t.Errorf("wrong token: HTTP %d, want 401", got)
	}
	if got := post("sesame", "X-Adsala-Admin-Token"); got != http.StatusOK {
		t.Errorf("header token: HTTP %d, want 200", got)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/reload", nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bearer token: HTTP %d, want 200", resp.StatusCode)
	}
	// GET is not allowed even when authorised.
	getReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/admin/reload", nil)
	getReq.Header.Set("X-Adsala-Admin-Token", "sesame")
	if resp, err := http.DefaultClient.Do(getReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /admin/reload: HTTP %d, want 405", resp.StatusCode)
		}
	}

	// No token configured: the endpoint is not mounted.
	bare := httptest.NewServer(NewServer(NewEngine(l, Options{CacheSize: 64, Shards: 2})))
	defer bare.Close()
	if resp, err := http.Post(bare.URL+"/admin/reload", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unconfigured /admin/reload: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// TestDegradedFallbackNoModel serves a model-less artefact: every decision
// must come from the deterministic heuristic, be tagged "fallback": true,
// never enter the cache (the model should take over the moment one
// arrives), and advance the fallback counter on /stats and /metrics.
func TestDegradedFallbackNoModel(t *testing.T) {
	eng := NewEngine(modellessLibrary(), Options{CacheSize: 64, Shards: 2})
	srv := NewServer(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	wantThreads := eng.HeuristicThreads(OpGEMM, 512, 512, 512)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json",
			strings.NewReader(`{"m":512,"k":512,"n":512}`))
		if err != nil {
			t.Fatal(err)
		}
		var pr PredictResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Fallback || pr.Threads != wantThreads {
			t.Fatalf("call %d: %+v, want fallback heuristic answer %d", i, pr, wantThreads)
		}
	}
	st := eng.Stats()
	if st.Fallbacks != 2 {
		t.Errorf("fallbacks = %d, want 2 (fallback decisions must not be cached)", st.Fallbacks)
	}
	if st.CacheLen != 0 {
		t.Errorf("cache holds %d entries after fallback-only traffic, want 0", st.CacheLen)
	}

	// Batch: every slot tagged.
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"shapes":[{"m":64,"k":64,"n":64},{"m":256,"k":256,"n":256}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Fallback) != 2 || !br.Fallback[0] || !br.Fallback[1] {
		t.Errorf("batch fallback tags = %v, want both true", br.Fallback)
	}

	// Detail path degrades too: zero scores, heuristic best.
	scores, best := eng.RankOp(OpGEMM, 100, 100, 100)
	if best != eng.HeuristicThreads(OpGEMM, 100, 100, 100) {
		t.Errorf("RankOp best = %d, want heuristic", best)
	}
	for _, s := range scores {
		if s != 0 {
			t.Errorf("RankOp scores = %v, want zeros without a model", scores)
			break
		}
	}

	text := scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, "adsala_serve_fallbacks_total") {
		t.Error("adsala_serve_fallbacks_total missing from /metrics")
	}
}

// TestRequestTimeoutFallsBack pins the deadline degradation: a request
// whose budget expired before ranking answers the heuristic (tagged) for a
// cache miss, while cached decisions are still served normally.
func TestRequestTimeoutFallsBack(t *testing.T) {
	eng := NewEngine(lib(t), Options{CacheSize: 64, Shards: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the call — the worst case

	threads, fb := eng.PredictOpCtx(ctx, OpGEMM, 300, 300, 300)
	if !fb || threads != eng.HeuristicThreads(OpGEMM, 300, 300, 300) {
		t.Fatalf("expired-ctx miss = (%d, %v), want tagged heuristic", threads, fb)
	}
	if st := eng.Stats(); st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}

	// Warm the shape with a live context, then the expired context serves
	// the cached (model) decision — no fallback.
	want, fb := eng.PredictOpCtx(context.Background(), OpGEMM, 300, 300, 300)
	if fb {
		t.Fatal("live-context rank reported fallback")
	}
	got, fb := eng.PredictOpCtx(ctx, OpGEMM, 300, 300, 300)
	if fb || got != want {
		t.Errorf("expired-ctx hit = (%d, %v), want cached (%d, false)", got, fb, want)
	}
}

// TestPanicRecoveryMiddleware pins the middleware contract: a handler panic
// answers 500 JSON and advances the panics counter instead of killing the
// connection silently; http.ErrAbortHandler still severs the connection.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := NewServer(NewEngine(lib(t), Options{CacheSize: 64, Shards: 2}))
	srv.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv.mux.HandleFunc("/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler: HTTP %d, want 500", resp.StatusCode)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || !strings.Contains(apiErr.Error, "kaboom") {
		t.Errorf("500 body = (%+v, %v), want JSON carrying the panic", apiErr, err)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "adsala_serve_panics_total") {
		t.Error("panic counter missing from /metrics")
	}

	// ErrAbortHandler is net/http's sanctioned abort: connection severed,
	// not converted to a 500, and not counted as a panic.
	if _, err := http.Get(ts.URL + "/abort"); err == nil {
		t.Error("aborted connection answered successfully")
	}
	if got := srv.panics.Load(); got != 1 {
		t.Errorf("ErrAbortHandler counted as a panic (counter %d)", got)
	}
}

// TestClientSurvivesFaultyServer drives the client through the fault
// harness: injected 5xx answers, dropped connections and truncated bodies
// must all be absorbed by the retry policy — every request eventually
// succeeds with the right answer, and the schedule must actually have
// fired (a pass without faults would prove nothing).
func TestClientSurvivesFaultyServer(t *testing.T) {
	eng := NewEngine(lib(t), Options{CacheSize: 256, Shards: 8})
	inner := NewServer(eng)
	var st faults.Stats
	sched := faults.NewSeeded(11, faults.Plan{
		ErrorP:    0.2,
		Status:    http.StatusServiceUnavailable,
		DropP:     0.15,
		TruncateP: 0.15,
	})
	ts := httptest.NewServer(faults.Handler(inner, sched, &st))
	defer ts.Close()

	client := NewClient(ts.URL, nil, WithRetryPolicy(retry.Policy{
		MaxAttempts: 8,
		Initial:     time.Millisecond,
		Max:         4 * time.Millisecond,
	}))
	want := eng.Library().OptimalThreads(512, 512, 512)
	for i := 0; i < 30; i++ {
		got, err := client.Predict(512, 512, 512)
		if err != nil {
			t.Fatalf("request %d failed through retries: %v", i, err)
		}
		if got != want {
			t.Fatalf("request %d answered %d, want %d", i, got, want)
		}
	}
	if !st.Fired() {
		t.Fatal("fault schedule never fired: the test proved nothing")
	}
	if st.Errors.Load() == 0 || st.Drops.Load() == 0 || st.Truncates.Load() == 0 {
		t.Errorf("fault mix incomplete: %d errors, %d drops, %d truncates",
			st.Errors.Load(), st.Drops.Load(), st.Truncates.Load())
	}
}

// TestClientFatalOn4xx pins the fatal classification: a 400 must surface
// immediately (exactly one attempt), while 429 and 5xx retry.
func TestClientFatalOn4xx(t *testing.T) {
	var calls atomic.Int64
	status := make(chan int, 16)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, <-status, "injected")
	}))
	defer ts.Close()
	client := NewClient(ts.URL, nil, WithRetryPolicy(retry.Policy{
		MaxAttempts: 3,
		Initial:     time.Millisecond,
		Max:         time.Millisecond,
	}))

	status <- http.StatusBadRequest
	_, err := client.Predict(1, 1, 1)
	if err == nil || calls.Load() != 1 {
		t.Fatalf("400: err=%v after %d calls, want immediate failure", err, calls.Load())
	}
	var sErr *StatusError
	if !strings.Contains(fmt.Sprint(err), "HTTP 400") {
		t.Errorf("error does not name the status: %v", err)
	}

	// 429 then 200-shaped failure path: all three attempts consumed.
	calls.Store(0)
	for i := 0; i < 3; i++ {
		status <- http.StatusTooManyRequests
	}
	_, err = client.Predict(1, 1, 1)
	if err == nil || calls.Load() != 3 {
		t.Fatalf("429: err=%v after %d calls, want 3 retried attempts", err, calls.Load())
	}
	if ok := errorAs(err, &sErr); !ok || sErr.Status != http.StatusTooManyRequests {
		t.Errorf("429 not surfaced as StatusError: %v", err)
	}
}

// errorAs is errors.As without importing errors twice in this file's scope.
func errorAs(err error, target *(*StatusError)) bool {
	for err != nil {
		if se, ok := err.(*StatusError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
