package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip pins the happy path: Save then Load restores every
// decision and reproduces the LRU order.
func TestSnapshotRoundTrip(t *testing.T) {
	c := NewCache(64, 4)
	c.Put(OpGEMM, 128, 64, 128, 8)
	c.Put(OpSYRK, 128, 64, 128, 4)
	c.Put(OpSYR2K, 256, 256, 256, 16)
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	restored := NewCache(64, 4)
	n, err := restored.Load(path)
	if err != nil || n != 3 {
		t.Fatalf("Load = (%d, %v), want (3, nil)", n, err)
	}
	for _, tc := range []struct {
		op      Op
		m, k, n int
		threads int
	}{
		{OpGEMM, 128, 64, 128, 8},
		{OpSYRK, 128, 64, 128, 4},
		{OpSYR2K, 256, 256, 256, 16},
	} {
		if th, ok := restored.Peek(tc.op, tc.m, tc.k, tc.n); !ok || th != tc.threads {
			t.Errorf("restored %s %dx%dx%d = (%d, %v), want %d",
				tc.op, tc.m, tc.k, tc.n, th, ok, tc.threads)
		}
	}
}

// TestSnapshotLoadRejectsCorruption is the satellite table test: truncated
// JSON, garbage bytes, version skew and invalid entries must all error
// without touching the cache — an operator's damaged snapshot degrades a
// boot to cold, never to a half-loaded or crashed daemon.
func TestSnapshotLoadRejectsCorruption(t *testing.T) {
	// A valid snapshot to truncate.
	good := NewCache(64, 4)
	good.Put(OpGEMM, 128, 64, 128, 8)
	good.Put(OpSYRK, 256, 128, 256, 4)
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.json")
	if err := good.Save(goodPath); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		content string
		wantErr string
	}{
		{"truncated", string(blob[:len(blob)/2]), "decode cache snapshot"},
		{"garbage", "\x00\xff\x1bnot json at all", "decode cache snapshot"},
		{"empty file", "", "decode cache snapshot"},
		{"version skew", `{"format":"adsala-cache-snapshot-v0","entries":[]}`, "not a cache snapshot"},
		{"missing format", `{"entries":[{"op":"gemm","m":1,"k":1,"n":1,"threads":2}]}`, "not a cache snapshot"},
		{"unknown op", `{"format":"adsala-cache-snapshot-v1","entries":[{"op":"trsm","m":1,"k":1,"n":1,"threads":2}]}`, "entry 0"},
		{"zero threads", `{"format":"adsala-cache-snapshot-v1","entries":[{"op":"gemm","m":1,"k":1,"n":1,"threads":0}]}`, "invalid decision"},
		{"negative shape", `{"format":"adsala-cache-snapshot-v1","entries":[{"op":"gemm","m":-4,"k":1,"n":1,"threads":2}]}`, "invalid decision"},
		{
			// One bad entry among good ones: all-or-nothing validation.
			"bad entry last",
			`{"format":"adsala-cache-snapshot-v1","entries":[` +
				`{"op":"gemm","m":1,"k":1,"n":1,"threads":2},` +
				`{"op":"syrk","m":2,"k":2,"n":2,"threads":0}]}`,
			"entry 1",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			c := NewCache(64, 4)
			n, err := c.Load(path)
			if err == nil {
				t.Fatalf("Load accepted %s snapshot (%d entries)", tc.name, n)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if c.Len() != 0 {
				t.Errorf("cache holds %d entries after rejected load, want 0", c.Len())
			}
			if h, m := c.Stats(); h != 0 || m != 0 {
				t.Errorf("rejected load moved counters: hits=%d misses=%d", h, m)
			}
		})
	}

	// A missing file errors too (the daemon treats that as a cold start).
	c := NewCache(64, 4)
	if _, err := c.Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load of a missing file did not error")
	}
}
