// Package stats provides the descriptive statistics, percentiles and
// histogram utilities used throughout the experiment harness (Tables V/VI
// speedup statistics, Figs 1/8 optimal-thread histograms, Fig 9/10 binned
// heatmaps).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics reported in Tables V and VI.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Describe computes a Summary of xs. It panics on empty input.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Describe of empty slice")
	}
	s := Summary{N: len(xs)}
	s.Mean = Mean(xs)
	s.Std = Std(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P25 = percentileSorted(sorted, 0.25)
	s.Median = percentileSorted(sorted, 0.50)
	s.P75 = percentileSorted(sorted, 0.75)
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,1]) of xs using linear
// interpolation between closest ranks. It panics on empty input or p outside
// [0, 1].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,1]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width binned histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Overflow counts values exactly equal to Hi (closed top edge), matching
	// matplotlib's behaviour of including the right edge in the last bin.
}

// NewHistogram bins xs into n equal-width bins spanning [lo, hi]. Values
// equal to hi land in the last bin; values outside [lo, hi] are dropped.
func NewHistogram(xs []float64, n int, lo, hi float64) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram hi must exceed lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		h.Counts[b]++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws the histogram as an ASCII bar chart, one bin per line, with
// bars scaled so the tallest bin spans width characters.
func (h *Histogram) Render(width int) string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%10.0f-%-10.0f |%-*s %d\n", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It panics if lengths differ; returns 0 when either series is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Skewness returns the sample skewness (Fisher-Pearson, biased) of xs; the
// paper's feature distributions are heavily right-skewed before Yeo-Johnson.
func Skewness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
