package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSeededScheduleDeterministic(t *testing.T) {
	plan := Plan{LatencyP: 0.3, ErrorP: 0.2, DropP: 0.1, TruncateP: 0.1}
	a, b := NewSeeded(7, plan), NewSeeded(7, plan)
	other := NewSeeded(8, plan)
	diverged := false
	for i := int64(0); i < 1000; i++ {
		da, ka := a.Decide(i)
		db, kb := b.Decide(i)
		if da != db || ka != kb {
			t.Fatalf("same seed diverged at call %d", i)
		}
		do, ko := other.Decide(i)
		if do != da || ko != ka {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 1000-call schedules")
	}
}

func TestSeededScheduleRates(t *testing.T) {
	plan := Plan{ErrorP: 0.25, DropP: 0.25, TruncateP: 0.25}
	s := NewSeeded(1, plan)
	counts := map[Kind]int{}
	const n = 4000
	for i := int64(0); i < n; i++ {
		_, k := s.Decide(i)
		counts[k]++
	}
	for _, k := range []Kind{Error, Drop, Truncate, None} {
		frac := float64(counts[k]) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("kind %v frequency %.3f, want ~0.25", k, frac)
		}
	}
}

// okHandler answers a fixed JSON document.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"answer": 42, "pad": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`))
	})
}

// alwaysKind is a Schedule that injects one fixed kind on every call.
type alwaysKind struct{ kind Kind }

func (a alwaysKind) Decide(int64) (bool, Kind) { return false, a.kind }

func TestTransportError(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	var st Stats
	cl := &http.Client{Transport: Transport(nil, alwaysKind{Error}, &st)}
	_, err := cl.Get(srv.URL)
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("error %v, want InjectedError", err)
	}
	if st.Errors.Load() != 1 || st.Calls.Load() != 1 {
		t.Fatalf("stats errors=%d calls=%d, want 1/1", st.Errors.Load(), st.Calls.Load())
	}
}

func TestTransportDrop(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	cl := &http.Client{Transport: Transport(nil, alwaysKind{Drop}, nil)}
	_, err := cl.Get(srv.URL)
	var d *DroppedError
	if !errors.As(err, &d) {
		t.Fatalf("error %v, want DroppedError", err)
	}
}

func TestTransportTruncate(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	cl := &http.Client{Transport: Transport(nil, alwaysKind{Truncate}, nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	err = json.NewDecoder(resp.Body).Decode(&v)
	if err == nil {
		t.Fatal("decoding a truncated body succeeded")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("decode error %v, want ErrUnexpectedEOF", err)
	}
}

func TestTransportPassThrough(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	var st Stats
	cl := &http.Client{Transport: Transport(nil, NewSeeded(1, Plan{}), &st)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct{ Answer int }
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || v.Answer != 42 {
		t.Fatalf("decode = (%+v, %v), want clean pass-through", v, err)
	}
	if st.Fired() {
		t.Fatal("empty plan injected faults")
	}
}

func TestHandlerErrorStatus(t *testing.T) {
	sched := NewSeeded(1, Plan{ErrorP: 1, Status: http.StatusBadGateway})
	srv := httptest.NewServer(Handler(okHandler(), sched, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var v struct{ Error string }
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || v.Error == "" {
		t.Fatalf("injected error body = (%+v, %v), want JSON error", v, err)
	}
}

func TestHandlerDrop(t *testing.T) {
	srv := httptest.NewServer(Handler(okHandler(), alwaysKind{Drop}, nil))
	defer srv.Close()
	_, err := http.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped connection answered successfully")
	}
}

func TestHandlerTruncate(t *testing.T) {
	srv := httptest.NewServer(Handler(okHandler(), alwaysKind{Truncate}, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
		t.Fatal("decoding a server-truncated body succeeded")
	}
}

func TestHandlerLatency(t *testing.T) {
	sched := NewSeeded(1, Plan{LatencyP: 1, Delay: 30 * time.Millisecond})
	srv := httptest.NewServer(Handler(okHandler(), sched, nil))
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault delayed only %v, want >= ~30ms", d)
	}
}

func TestConcurrentCallsRace(t *testing.T) {
	srv := httptest.NewServer(Handler(okHandler(), NewSeeded(3, Plan{ErrorP: 0.3, DropP: 0.2}), nil))
	defer srv.Close()
	var st Stats
	cl := &http.Client{Transport: Transport(nil, NewSeeded(4, Plan{ErrorP: 0.2, TruncateP: 0.2}), &st)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := cl.Get(srv.URL)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if st.Calls.Load() != 200 {
		t.Fatalf("transport counted %d calls, want 200", st.Calls.Load())
	}
}
