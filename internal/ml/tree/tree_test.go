package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

// stepData is a piecewise-constant target: ideal for trees.
func stepData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		switch {
		case X[i][0] < 3:
			y[i] = 1
		case X[i][1] < 5:
			y[i] = 5
		default:
			y[i] = 9
		}
	}
	return X, y
}

func TestTreeFitsStepFunction(t *testing.T) {
	X, y := stepData(500, 1)
	tr := NewRegressor(Params{MaxDepth: 6})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := ml.PredictBatch(tr, X)
	if rmse := ml.RMSE(pred, y); rmse > 0.05 {
		t.Errorf("step-function RMSE = %v, want ~0", rmse)
	}
	if tr.Name() != "Decision Tree" {
		t.Errorf("Name = %q", tr.Name())
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := stepData(300, 2)
	tr := NewRegressor(Params{MaxDepth: 2})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 2 {
		t.Errorf("depth %d exceeds limit 2", d)
	}
	// On noisy data a deeper tree keeps splitting, so the limit binds.
	rng := rand.New(rand.NewSource(42))
	noisy := make([]float64, len(y))
	for i := range noisy {
		noisy[i] = y[i] + rng.NormFloat64()
	}
	shallow := NewRegressor(Params{MaxDepth: 2})
	deep := NewRegressor(Params{MaxDepth: 10})
	if err := shallow.Fit(X, noisy); err != nil {
		t.Fatal(err)
	}
	if err := deep.Fit(X, noisy); err != nil {
		t.Fatal(err)
	}
	if deep.NodeCount() <= shallow.NodeCount() {
		t.Error("deeper tree should have more nodes on noisy data")
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	X, y := stepData(100, 3)
	tr := NewRegressor(Params{MaxDepth: 20, MinSamplesLeaf: 40})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With leaves of >= 40 samples out of 100, at most 2 splits are possible.
	if tr.NodeCount() > 5 {
		t.Errorf("node count %d too high for MinSamplesLeaf=40", tr.NodeCount())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{4, 4, 4}
	tr := NewRegressor(Params{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Errorf("constant target grew depth %d", tr.Depth())
	}
	if got := tr.Predict([]float64{99}); got != 4 {
		t.Errorf("Predict = %v, want 4", got)
	}
}

func TestTreeSingleSample(t *testing.T) {
	tr := NewRegressor(Params{})
	if err := tr.Fit([][]float64{{1, 2}}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0, 0}); got != 7 {
		t.Errorf("Predict = %v", got)
	}
}

func TestTreeRejectsBadInput(t *testing.T) {
	tr := NewRegressor(Params{})
	if err := tr.Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := tr.FitWeighted([][]float64{{1}}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("weight length mismatch should error")
	}
}

func TestWeightedFitPrefersHeavySamples(t *testing.T) {
	// Two clusters with contradictory targets at the same x; weights decide.
	X := [][]float64{{1}, {1}, {2}, {2}}
	y := []float64{0, 10, 0, 10}
	w := []float64{100, 1, 100, 1}
	tr := NewRegressor(Params{MaxDepth: 3})
	if err := tr.FitWeighted(X, y, w); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{1}); got > 1 {
		t.Errorf("weighted predict = %v, want near 0", got)
	}
}

func TestTreePersistence(t *testing.T) {
	X, y := stepData(200, 4)
	tr := NewRegressor(Params{MaxDepth: 5})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.Marshal("tree", tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ml.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if back.Predict(X[i]) != tr.Predict(X[i]) {
			t.Fatal("restored tree disagrees")
		}
	}
}

// Property: predictions are always within [min(y), max(y)] — leaf values are
// means of target subsets.
func TestTreePredictionRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(nRaw uint8, seed int64) bool {
		n := 5 + int(nRaw%80)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64() * 10
			if y[i] < lo {
				lo = y[i]
			}
			if y[i] > hi {
				hi = y[i]
			}
		}
		tr := NewRegressor(Params{MaxDepth: 8})
		if tr.Fit(X, y) != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			p := tr.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: deterministic — same data and params give identical trees.
func TestTreeDeterminismProperty(t *testing.T) {
	X, y := stepData(150, 6)
	a := NewRegressor(Params{MaxDepth: 6, MaxFeatures: 1, Seed: 3})
	b := NewRegressor(Params{MaxDepth: 6, MaxFeatures: 1, Seed: 3})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if a.Predict(p) != b.Predict(p) {
			t.Fatal("same-seed trees disagree")
		}
	}
}
