package blas

import (
	"runtime"
	"sync"

	"repro/internal/mat"
)

// A Context owns the resources of the GEMM hot path: the packed-A and
// packed-B panel buffers and a persistent worker team. Reusing a Context
// across calls makes steady-state GEMM allocation-free and replaces the
// per-call (previously per-blocking-iteration) goroutine fork/join with
// channel wakeups of parked workers — directly attacking two of the four
// overhead classes in the paper's Table VII cost breakdown (thread create/
// join and scheduling barriers; the specialised packing loops attack the
// third, data copy).
//
// A Context serialises one GEMM at a time and is NOT safe for concurrent
// use. Concurrent callers either use one Context each or call the package
// functions (SGEMM/DGEMM), which draw Contexts from an internal sync.Pool.
//
// Close releases the worker team. It is optional: a Context dropped without
// Close has a GC cleanup that stops its workers once the Context is
// unreachable, so pooled Contexts do not leak goroutines.
type Context struct {
	tm  *team
	bar barrier
	f32 ctxBufs[float32]
	f64 ctxBufs[float64]
}

// NewContext returns an empty Context; buffers and workers are created
// lazily on first use and grow to the largest problem seen.
func NewContext() *Context { return &Context{} }

// Close stops the context's worker team. The Context remains usable; the
// team is recreated on the next parallel call.
func (c *Context) Close() {
	if c.tm != nil {
		c.tm.st.close()
		c.tm = nil
	}
}

// SGEMM computes C ← alpha·op(A)·op(B) + beta·C in single precision on this
// context with the given number of threads (values < 1 mean 1).
func (c *Context) SGEMM(transA, transB bool, alpha float32, a, b *mat.F32, beta float32, cm *mat.F32, threads int) error {
	return c.SGEMMWithParams(transA, transB, alpha, a, b, beta, cm, threads, DefaultParams())
}

// DGEMM is the double-precision counterpart of SGEMM.
func (c *Context) DGEMM(transA, transB bool, alpha float64, a, b *mat.F64, beta float64, cm *mat.F64, threads int) error {
	return c.DGEMMWithParams(transA, transB, alpha, a, b, beta, cm, threads, DefaultParams())
}

// SGEMMWithParams is SGEMM with explicit blocking parameters.
func (c *Context) SGEMMWithParams(transA, transB bool, alpha float32, a, b *mat.F32, beta float32, cm *mat.F32, threads int, p Params) error {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float32]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float32]{cm.Rows, cm.Cols, cm.Stride, cm.Data}
	return gemmCtx(c, transA, transB, alpha, av, bv, beta, cv, threads, p)
}

// DGEMMWithParams is DGEMM with explicit blocking parameters.
func (c *Context) DGEMMWithParams(transA, transB bool, alpha float64, a, b *mat.F64, beta float64, cm *mat.F64, threads int, p Params) error {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float64]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float64]{cm.Rows, cm.Cols, cm.Stride, cm.Data}
	return gemmCtx(c, transA, transB, alpha, av, bv, beta, cv, threads, p)
}

// ctxPool backs the package-level SGEMM/DGEMM entry points: steady-state
// calls reuse a warmed Context and allocate nothing.
var ctxPool = sync.Pool{New: func() any { return NewContext() }}

// ctxBufs is the per-precision half of a Context: grow-only packing buffers
// plus the pre-built worker closure and its argument block, so dispatching a
// call writes a struct instead of allocating a fresh closure.
type ctxBufs[T float32 | float64] struct {
	packedB []T
	packedA [][]T // one panel buffer per team part
	args    callArgs[T]
	body    func(w int)
}

// callArgs carries one GEMM, SYRK or SYR2K call's parameters to the team
// workers. Symmetric-update calls set syrk: the worker computes only the
// lower triangle of C, packing op(b)ᵀ as the B panel straight out of b (for
// SYRK b = a, so op(A)ᵀ needs no second operand), and mirrors the lower
// triangle into the upper when mirror is set (SYR2K's first pass leaves it
// false so the mirror runs once, after the second product).
type callArgs[T float32 | float64] struct {
	transA, transB bool
	syrk           bool
	mirror         bool
	alpha, beta    T
	a, b, c        view[T]
	m, n, k        int
	parts          int
	prm            Params
}

// bufsFor selects the context's buffer set for T.
func bufsFor[T float32 | float64](ctx *Context) *ctxBufs[T] {
	if p, ok := any(&ctx.f32).(*ctxBufs[T]); ok {
		return p
	}
	return any(&ctx.f64).(*ctxBufs[T])
}

// ensure grows the packing buffers to hold parts A panels of aLen elements
// and one B panel of bLen elements.
func (b *ctxBufs[T]) ensure(parts, aLen, bLen int) {
	if cap(b.packedB) < bLen {
		b.packedB = make([]T, bLen)
	}
	b.packedB = b.packedB[:bLen]
	for len(b.packedA) < parts {
		b.packedA = append(b.packedA, nil)
	}
	for w := 0; w < parts; w++ {
		if cap(b.packedA[w]) < aLen {
			b.packedA[w] = make([]T, aLen)
		}
		b.packedA[w] = b.packedA[w][:aLen]
	}
}

// ensureBody returns the pre-built worker closure, creating it on first
// parallel use. One closure serves both operations: it dispatches on the
// published args, so dispatching a call writes a struct instead of
// allocating a fresh closure.
func (b *ctxBufs[T]) ensureBody(ctx *Context) func(w int) {
	if b.body == nil {
		b.body = func(w int) {
			if b.args.syrk {
				syrkWorker(ctx, b, w)
			} else {
				gemmWorker(ctx, b, w)
			}
		}
	}
	return b.body
}

// ensureTeam returns a team with at least the given worker count, stopping
// and replacing a smaller one. The GC cleanup closes the replacement's quit
// channel when the Context itself dies unclosed.
func (c *Context) ensureTeam(workers int) *team {
	if c.tm == nil || c.tm.size < workers {
		if c.tm != nil {
			c.tm.st.close()
		}
		c.tm = newTeam(workers)
		runtime.AddCleanup(c, func(st *teamState) { st.close() }, c.tm.st)
	}
	return c.tm
}

// gemmCtx is the five-loop driver: argument checking, degenerate cases, the
// small-shape fast path, buffer/team setup, and the worker dispatch.
func gemmCtx[T float32 | float64](ctx *Context, transA, transB bool, alpha T, a, b view[T], beta T, c view[T], threads int, prm Params) error {
	if err := prm.Validate(); err != nil {
		return err
	}
	m, ka := opDims(a, transA)
	kb, n := opDims(b, transB)
	if ka != kb {
		return errInnerDims(m, ka, kb, n)
	}
	if c.rows != m || c.cols != n {
		return errCDims(c.rows, c.cols, m, n)
	}
	k := ka
	if threads < 1 {
		threads = 1
	}

	// Degenerate cases per the BLAS spec: no FLOPs, only the beta scaling.
	if m == 0 || n == 0 {
		return nil
	}
	if alpha == 0 || k == 0 {
		scaleC(c, beta)
		return nil
	}

	// Small shapes skip packing entirely: below the threshold the panel
	// copies and phase barriers cost more than they save. Only the default
	// blocking takes this path — explicit Params mean the caller is
	// studying the packed algorithm (ablations, micro-tile comparisons)
	// and must get exactly the configuration they asked for.
	if prm == DefaultParams() && smallShape(m, n, k) {
		smallGemm(transA, transB, alpha, a, b, beta, c, m, n, k)
		return nil
	}

	// No point having workers with no MR-row band to own.
	if threads > m/prm.MR+1 {
		threads = m/prm.MR + 1
	}

	// Buffers are sized to the actual problem (grow-only), so small GEMMs
	// do not pay for full cache-sized panels.
	kcEff := min(prm.KC, k)
	ncEff := min(prm.NC, (n+prm.NR-1)/prm.NR*prm.NR)
	mcEff := min(prm.MC, (m+prm.MR-1)/prm.MR*prm.MR)
	bufs := bufsFor[T](ctx)
	bufs.ensure(threads, mcEff*kcEff, kcEff*ncEff)
	bufs.args = callArgs[T]{
		transA: transA, transB: transB,
		alpha: alpha, beta: beta,
		a: a, b: b, c: c,
		m: m, n: n, k: k,
		parts: threads,
		prm:   prm,
	}
	ctx.bar.reset(threads)
	if threads == 1 {
		gemmWorker(ctx, bufs, 0)
	} else {
		ctx.ensureTeam(threads-1).run(threads, bufs.ensureBody(ctx))
	}
	// Drop the operand views: a held (or pooled) Context must not pin the
	// caller's matrices after the call returns.
	bufs.args = callArgs[T]{}
	return nil
}

// gemmWorker is the per-part body of the five-loop algorithm. All parts
// execute the same jc/pc loop structure; within each blocking iteration the
// B panel is packed cooperatively (phase 1), a barrier publishes it, each
// part then packs and multiplies its own band of MC blocks (phase 2), and a
// second barrier closes the iteration before the shared B panel is reused.
// Block ownership depends only on (w, parts), so the floating-point
// summation order — and therefore the result — is identical for every
// parts value.
func gemmWorker[T float32 | float64](ctx *Context, bufs *ctxBufs[T], w int) {
	ar := &bufs.args
	prm := ar.prm
	parts := ar.parts
	m, n, k := ar.m, ar.n, ar.k
	for jc := 0; jc < n; jc += prm.NC {
		nc := min(prm.NC, n-jc)
		nPanels := (nc + prm.NR - 1) / prm.NR
		nBlocks := (m + prm.MC - 1) / prm.MC
		for pc := 0; pc < k; pc += prm.KC {
			kc := min(prm.KC, k-pc)
			first := pc == 0

			lo := nPanels * w / parts
			hi := nPanels * (w + 1) / parts
			packBRange(ar.b, ar.transB, pc, jc, kc, nc, lo, hi, bufs.packedB, prm.NR)
			ctx.bar.wait()

			blo := nBlocks * w / parts
			bhi := nBlocks * (w + 1) / parts
			for blk := blo; blk < bhi; blk++ {
				ic := blk * prm.MC
				mc := min(prm.MC, m-ic)
				packA(ar.a, ar.transA, ic, pc, mc, kc, bufs.packedA[w], prm.MR)
				macroKernel(ar.alpha, bufs.packedA[w], bufs.packedB, ar.beta, ar.c, ic, jc, mc, nc, kc, first, prm)
			}
			ctx.bar.wait()
		}
	}
}
