// Package tabulate renders small aligned text tables for the experiment
// harness (the textual equivalents of the paper's tables and figure series).
package tabulate

import (
	"fmt"
	"strconv"
	"strings"
)

// Table accumulates rows under a fixed header.
type Table struct {
	header []string
	rows   [][]string
}

// New returns a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends one row; missing cells render empty, extras are dropped.
func (t *Table) Row(cells ...string) *Table {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// D formats an int.
func D(v int) string { return strconv.Itoa(v) }

// String renders the table with column alignment and a separator rule.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
