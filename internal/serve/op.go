package serve

import "fmt"

// Op identifies the BLAS-3 operation a thread-selection decision applies to.
// The paper trains and serves GEMM only; its §VII future work — extending
// ML-driven thread selection to other BLAS operations — needs decisions
// keyed per operation, because the cost profile (and eventually the model)
// differs per op even for identical shape triples. Op is part of the cache
// key, so a SYRK decision never aliases a GEMM decision.
type Op uint8

const (
	// OpGEMM is the general matrix multiply C ← αAB + βC (m×k×n).
	OpGEMM Op = iota
	// OpSYRK is the symmetric rank-k update C ← αAAᵀ + βC; its shape triple
	// is (n, k, n).
	OpSYRK

	// numOps must stay last in the iota sequence: Valid() and the per-op
	// batch split in the server size arrays with it.
	numOps
)

// String returns the wire name of the op ("gemm", "syrk").
func (op Op) String() string {
	switch op {
	case OpGEMM:
		return "gemm"
	case OpSYRK:
		return "syrk"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a known operation.
func (op Op) Valid() bool { return op < numOps }

// ParseOp maps a wire name to an Op. The empty string selects OpGEMM so
// pre-op clients (and hand-written queries) keep working unchanged.
func ParseOp(s string) (Op, error) {
	switch s {
	case "", "gemm":
		return OpGEMM, nil
	case "syrk":
		return OpSYRK, nil
	}
	return 0, fmt.Errorf("serve: unknown op %q (want \"gemm\" or \"syrk\")", s)
}
