package simtime

import (
	"math"

	"repro/internal/ops"
)

// Per-operation timing. The paper's data gathering times GEMM only; training
// per-op models (ROADMAP: SYRK's triangular cost profile, SYR2K on the same
// masked-tile machinery) needs timing backends that answer for any
// registered op. Both backends implement OpTimer:
//
//   - the Simulator derives the op's analytic decomposition from the GEMM
//     breakdown at the canonical triple, rescaling each Table VII component
//     by how the masked-tile algorithm actually differs (see BreakdownOp);
//   - the RealTimer (realtimer.go) executes the op's registry kernel on the
//     local host.

// OpTimer measures (or predicts) the wall time in seconds of one call of a
// registered operation at its canonical (m, k, n) feature triple.
type OpTimer interface {
	TimeOp(op ops.Op, m, k, n, threads int) float64
}

// MeanOpTimer is implemented by op timers that average repetitions natively.
type MeanOpTimer interface {
	MeasureMeanOp(op ops.Op, m, k, n, threads, iters int) float64
}

// BreakdownOp returns the noiseless wall-time decomposition of one call of
// op at its canonical triple. GEMM is the base model; the symmetric updates
// rescale its components per the masked-tile algorithm they run on:
//
//   - SYRK packs only the MC blocks that reach the lower triangle (≈ half
//     the A-packing traffic; the shared op(A)ᵀ panel is still packed in
//     full), executes ≈ (n+1)/(2n) of the GEMM FLOPs, keeps the same
//     barrier count, and pays a mirror pass streaming the n² output twice.
//   - SYR2K runs two such passes over the same buffers: double the
//     spawn/sync/copy of SYRK's pass, twice its FLOPs, one mirror.
//
// The kernel scaling comes from the registry's per-op FLOP weight, so a new
// op's simulated cost profile follows its registered weight by default.
func (s *Simulator) BreakdownOp(op ops.Op, m, k, n, threads int) Breakdown {
	b := s.Breakdown(m, k, n, threads)
	if op == ops.GEMM {
		return b
	}
	gemmFlops := 2 * float64(m) * float64(k) * float64(n)
	kernelScale := op.Spec().Flops(m, k, n) / gemmFlops

	// Mirror pass: the n×n output is read (lower) and written (upper) once,
	// streamed at one NUMA domain's bandwidth.
	prec := float64(s.cfg.Precision.Bytes())
	mirror := 2 * float64(m) * float64(n) * prec / (s.cfg.Node.MemBWPerNUMA * 1e9)

	switch op {
	case ops.SYRK:
		b.Copy *= 0.75
		b.Kernel *= kernelScale
	case ops.SYR2K:
		b.Spawn *= 2
		b.Sync *= 2
		b.Copy *= 1.5
		b.Kernel *= kernelScale
	default:
		// Unknown future op: scale the FLOP-proportional components by the
		// registered weight and keep the synchronisation structure.
		b.Copy *= kernelScale
		b.Kernel *= kernelScale
	}
	b.Copy += mirror
	return b
}

// TimeOpRep returns the rep-th noisy measurement of one op call. The noise
// draw mixes the op into the hash, so per-op sweeps of the same triple see
// independent measurement noise (as separate real runs would).
func (s *Simulator) TimeOpRep(op ops.Op, m, k, n, threads, rep int) float64 {
	if op == ops.GEMM {
		return s.TimeRep(m, k, n, threads, rep)
	}
	t := s.BreakdownOp(op, m, k, n, threads).Total()
	if s.cfg.NoiseSigma <= 0 {
		return t
	}
	z := gaussian(hash6(s.cfg.Seed, int64(op)+0x5ca1ab1e, int64(m), int64(k), int64(n), int64(threads), int64(rep)))
	return t * math.Exp(s.cfg.NoiseSigma*z-0.5*s.cfg.NoiseSigma*s.cfg.NoiseSigma)
}

// TimeOp returns one noisy wall-time measurement of the op configuration.
func (s *Simulator) TimeOp(op ops.Op, m, k, n, threads int) float64 {
	return s.TimeOpRep(op, m, k, n, threads, 0)
}

// MeasureMeanOp returns the mean of iters noisy per-op measurements.
func (s *Simulator) MeasureMeanOp(op ops.Op, m, k, n, threads, iters int) float64 {
	if iters < 1 {
		iters = 1
	}
	var sum float64
	for r := 0; r < iters; r++ {
		sum += s.TimeOpRep(op, m, k, n, threads, r)
	}
	return sum / float64(iters)
}

var (
	_ OpTimer     = (*Simulator)(nil)
	_ MeanOpTimer = (*Simulator)(nil)
)
