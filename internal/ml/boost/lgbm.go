package boost

import (
	"container/heap"
	"sort"

	"repro/internal/ml"
)

// LGBMParams configure the LightGBM-style booster. Zero values pick defaults.
type LGBMParams struct {
	NRounds      int     `json:"n_rounds"`       // default 150
	MaxLeaves    int     `json:"max_leaves"`     // default 31
	MaxBins      int     `json:"max_bins"`       // default 64
	LearningRate float64 `json:"learning_rate"`  // default 0.1
	Lambda       float64 `json:"lambda"`         // L2 on leaf weights, default 1
	MinLeafCount int     `json:"min_leaf_count"` // default 5
}

func (p LGBMParams) withDefaults() LGBMParams {
	if p.NRounds <= 0 {
		p.NRounds = 150
	}
	if p.MaxLeaves <= 1 {
		p.MaxLeaves = 31
	}
	if p.MaxBins < 2 {
		p.MaxBins = 64
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.Lambda <= 0 {
		p.Lambda = 1
	}
	if p.MinLeafCount <= 0 {
		p.MinLeafCount = 5
	}
	return p
}

// LGBM is a histogram-based gradient booster with leaf-wise (best-first)
// tree growth — the two structural ideas of LightGBM. Features are
// pre-quantised into MaxBins quantile bins; split finding scans histograms
// instead of sorted values.
type LGBM struct {
	Params LGBMParams `json:"params"`
	Base   float64    `json:"base"`
	// BinEdges[f] holds the upper edge of each bin for feature f.
	BinEdges [][]float64 `json:"bin_edges"`
	Trees    [][]xgbNode `json:"trees"` // thresholds are bin indices
}

// NewLGBM returns an unfitted booster.
func NewLGBM(p LGBMParams) *LGBM { return &LGBM{Params: p} }

// Name implements ml.Regressor.
func (l *LGBM) Name() string { return "LightGBM" }

// Fit implements ml.Regressor.
func (l *LGBM) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	p := l.Params.withDefaults()
	n, d := len(y), len(X[0])

	// Quantile binning.
	l.BinEdges = make([][]float64, d)
	binned := make([][]uint16, n)
	for i := range binned {
		binned[i] = make([]uint16, d)
	}
	vals := make([]float64, n)
	for f := 0; f < d; f++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		edges := quantileEdges(sorted, p.MaxBins)
		l.BinEdges[f] = edges
		for i := 0; i < n; i++ {
			binned[i][f] = uint16(binOf(edges, X[i][f]))
		}
	}

	l.Base = 0
	for _, v := range y {
		l.Base += v
	}
	l.Base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = l.Base
	}
	grad := make([]float64, n)

	l.Trees = l.Trees[:0]
	for round := 0; round < p.NRounds; round++ {
		for i := range grad {
			grad[i] = pred[i] - y[i]
		}
		nodes := l.growLeafWise(binned, grad, p)
		l.Trees = append(l.Trees, nodes)
		for i := 0; i < n; i++ {
			pred[i] += p.LearningRate * evalBinnedTree(nodes, binned[i])
		}
	}
	return nil
}

// Predict implements ml.Regressor, binning the input on the fly.
func (l *LGBM) Predict(v []float64) float64 {
	p := l.Params.withDefaults()
	// Predict sits on the serving hot path (one call per ranked candidate).
	// Feature rows are narrow — Table II has 17 columns — so a stack-backed
	// array keeps the bin buffer off the heap; the make fallback only fires
	// for rows wider than anything the project produces.
	var binsArr [32]uint16
	var bins []uint16
	if len(v) <= len(binsArr) {
		bins = binsArr[:len(v)]
	} else {
		bins = make([]uint16, len(v))
	}
	for f := range v {
		bins[f] = uint16(binOf(l.BinEdges[f], v[f]))
	}
	s := l.Base
	for _, t := range l.Trees {
		s += p.LearningRate * evalBinnedTree(t, bins)
	}
	return s
}

func evalBinnedTree(nodes []xgbNode, bins []uint16) float64 {
	i := 0
	for nodes[i].Feature >= 0 {
		if float64(bins[nodes[i].Feature]) <= nodes[i].Threshold {
			i = nodes[i].Left
		} else {
			i = nodes[i].Right
		}
	}
	return nodes[i].Value
}

// leafCandidate is a grown-but-unsplit leaf in the best-first queue.
type leafCandidate struct {
	members []int
	gain    float64
	feature int
	bin     int
	nodeIdx int
	g, h    float64
}

type leafHeap []*leafCandidate

func (h leafHeap) Len() int            { return len(h) }
func (h leafHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h leafHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x interface{}) { *h = append(*h, x.(*leafCandidate)) }
func (h *leafHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// growLeafWise builds one tree by repeatedly splitting the leaf with the
// highest gain until MaxLeaves is reached or no leaf has positive gain.
func (l *LGBM) growLeafWise(binned [][]uint16, grad []float64, p LGBMParams) []xgbNode {
	n := len(binned)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var nodes []xgbNode

	mkLeaf := func(g, h float64) int {
		v := 0.0
		if h+p.Lambda > 0 {
			v = -g / (h + p.Lambda)
		}
		nodes = append(nodes, xgbNode{Feature: -1, Value: v})
		return len(nodes) - 1
	}

	var g0, h0 float64
	for _, i := range all {
		g0 += grad[i]
		h0++
	}
	root := mkLeaf(g0, h0)

	h := &leafHeap{}
	if cand := l.bestHistSplit(binned, grad, all, g0, h0, p); cand != nil {
		cand.nodeIdx = root
		heap.Push(h, cand)
	}

	leaves := 1
	for h.Len() > 0 && leaves < p.MaxLeaves {
		c := heap.Pop(h).(*leafCandidate)
		// Partition members.
		var left, right []int
		var lg, lh float64
		for _, i := range c.members {
			if int(binned[i][c.feature]) <= c.bin {
				left = append(left, i)
				lg += grad[i]
				lh++
			} else {
				right = append(right, i)
			}
		}
		rg, rh := c.g-lg, c.h-lh
		// Convert the leaf into an internal node.
		li := mkLeaf(lg, lh)
		ri := mkLeaf(rg, rh)
		nodes[c.nodeIdx] = xgbNode{Feature: c.feature, Threshold: float64(c.bin), Left: li, Right: ri}
		leaves++

		if lc := l.bestHistSplit(binned, grad, left, lg, lh, p); lc != nil {
			lc.nodeIdx = li
			heap.Push(h, lc)
		}
		if rc := l.bestHistSplit(binned, grad, right, rg, rh, p); rc != nil {
			rc.nodeIdx = ri
			heap.Push(h, rc)
		}
	}
	return nodes
}

// bestHistSplit scans per-feature gradient histograms for the best split of
// the member set, or nil when no admissible split improves the objective.
func (l *LGBM) bestHistSplit(binned [][]uint16, grad []float64, members []int, g, h float64, p LGBMParams) *leafCandidate {
	if len(members) < 2*p.MinLeafCount {
		return nil
	}
	d := len(binned[0])
	base := g * g / (h + p.Lambda)
	best := &leafCandidate{members: members, g: g, h: h, gain: 1e-12, feature: -1}
	histG := make([]float64, p.MaxBins)
	histC := make([]float64, p.MaxBins)
	for f := 0; f < d; f++ {
		for b := range histG {
			histG[b], histC[b] = 0, 0
		}
		maxBin := 0
		for _, i := range members {
			b := int(binned[i][f])
			histG[b] += grad[i]
			histC[b]++
			if b > maxBin {
				maxBin = b
			}
		}
		var lg, lh float64
		for b := 0; b < maxBin; b++ {
			lg += histG[b]
			lh += histC[b]
			if lh < float64(p.MinLeafCount) || h-lh < float64(p.MinLeafCount) {
				continue
			}
			rg, rh := g-lg, h-lh
			gain := 0.5 * (lg*lg/(lh+p.Lambda) + rg*rg/(rh+p.Lambda) - base)
			if gain > best.gain {
				best.gain = gain
				best.feature = f
				best.bin = b
			}
		}
	}
	if best.feature < 0 {
		return nil
	}
	return best
}

// quantileEdges returns up to maxBins-1 distinct interior bin edges from the
// sorted values; binOf assigns v to the first bin whose edge is >= v.
func quantileEdges(sorted []float64, maxBins int) []float64 {
	n := len(sorted)
	var edges []float64
	for b := 1; b < maxBins; b++ {
		q := sorted[(n-1)*b/maxBins]
		if len(edges) == 0 || q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	return edges
}

// binOf returns the bin index of v given interior edges (values <= edge[i]
// fall in bin i; values above every edge go to the last bin).
func binOf(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

var _ ml.Regressor = (*LGBM)(nil)
