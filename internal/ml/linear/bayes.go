package linear

import (
	"fmt"

	"repro/internal/ml"
)

// BayesianRidge is Bayesian linear regression with Gaussian priors on the
// weights, fitted by evidence (type-II maximum likelihood) iteration over
// the noise precision α and weight precision λ — the classic MacKay scheme
// used by scikit-learn's BayesianRidge.
type BayesianRidge struct {
	MaxIter int     `json:"max_iter"`
	Tol     float64 `json:"tol"`

	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
	AlphaN    float64   `json:"alpha_noise"`   // fitted noise precision
	LambdaW   float64   `json:"lambda_weight"` // fitted weight precision
}

// NewBayesianRidge returns a BayesianRidge with default iteration limits.
func NewBayesianRidge() *BayesianRidge {
	return &BayesianRidge{MaxIter: 300, Tol: 1e-4}
}

// Name implements ml.Regressor.
func (b *BayesianRidge) Name() string { return "Bayes Regression" }

// Fit implements ml.Regressor.
func (b *BayesianRidge) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	if b.MaxIter <= 0 {
		b.MaxIter = 300
	}
	if b.Tol <= 0 {
		b.Tol = 1e-4
	}
	n, d := len(X), len(X[0])
	fn := float64(n)

	// Centre.
	xm := make([]float64, d)
	var ym float64
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xm[j] += X[i][j]
		}
		ym += y[i]
	}
	for j := range xm {
		xm[j] /= fn
	}
	ym /= fn

	// Precompute Gram matrix G = XᵀX and moment vector XᵀY on centred data.
	gram := make([][]float64, d)
	for j := range gram {
		gram[j] = make([]float64, d)
	}
	xty := make([]float64, d)
	var yty float64
	for i := 0; i < n; i++ {
		yc := y[i] - ym
		yty += yc * yc
		for j := 0; j < d; j++ {
			xj := X[i][j] - xm[j]
			xty[j] += xj * yc
			for l := j; l < d; l++ {
				gram[j][l] += xj * (X[i][l] - xm[l])
			}
		}
	}
	for j := 0; j < d; j++ {
		for l := 0; l < j; l++ {
			gram[j][l] = gram[l][j]
		}
	}

	alpha, lambda := 1.0, 1.0
	var w []float64
	for it := 0; it < b.MaxIter; it++ {
		// Posterior mean: (λI + αG) w = α XᵀY.
		a := make([][]float64, d)
		rhs := make([]float64, d)
		for j := 0; j < d; j++ {
			a[j] = append([]float64(nil), gram[j]...)
			for l := 0; l < d; l++ {
				a[j][l] *= alpha
			}
			a[j][j] += lambda
			rhs[j] = alpha * xty[j]
		}
		var err error
		w, err = solveDense(a, rhs)
		if err != nil {
			return fmt.Errorf("bayesridge: %w", err)
		}

		// Effective number of parameters γ = Σ αg_j/(λ+αg_j) approximated
		// via the diagonal of G (full eigendecomposition avoided; this is
		// the standard fast approximation and converges to the same fixed
		// point for well-conditioned problems).
		var gamma float64
		for j := 0; j < d; j++ {
			g := alpha * gram[j][j]
			gamma += g / (lambda + g)
		}

		// Residual sum of squares.
		rss := yty
		for j := 0; j < d; j++ {
			rss -= w[j] * xty[j]
		}
		if rss < 1e-12 {
			rss = 1e-12
		}
		wNorm := dot(w, w)
		if wNorm < 1e-12 {
			wNorm = 1e-12
		}

		newLambda := gamma / wNorm
		newAlpha := (fn - gamma) / rss
		if newAlpha <= 0 {
			newAlpha = alpha
		}
		if converged(alpha, newAlpha, b.Tol) && converged(lambda, newLambda, b.Tol) {
			alpha, lambda = newAlpha, newLambda
			break
		}
		alpha, lambda = newAlpha, newLambda
	}

	b.Weights = w
	b.Intercept = ym - dot(w, xm)
	b.AlphaN, b.LambdaW = alpha, lambda
	return nil
}

// Predict implements ml.Regressor.
func (b *BayesianRidge) Predict(x []float64) float64 {
	return dot(b.Weights, x) + b.Intercept
}

func converged(old, new, tol float64) bool {
	diff := old - new
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol*(1+old)
}

var _ ml.Regressor = (*BayesianRidge)(nil)
