package main

// The SYRK trajectory harness: -syrk-json measures the packed SYRK kernel
// (GFLOPS and allocations per shape × thread count) with testing.Benchmark
// and writes a machine-readable report alongside the GEMM trajectory. The
// single-thread cases also time the naive per-element reference, so the
// report carries the speedup the ISSUE-3 acceptance criterion gates on
// (packed ≥ 3× naive at n=k=256). CI runs a 1-iteration smoke of the same
// harness; committed BENCH_syrk.json files record the trajectory per
// development machine.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
)

// syrkBenchCase is one measured configuration.
type syrkBenchCase struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	Threads int    `json:"threads"`
}

// syrkBenchEntry is one row of the report. SYRK FLOPs are n(n+1)k.
type syrkBenchEntry struct {
	syrkBenchCase
	NsPerOp     float64 `json:"ns_per_op"`
	GFLOPS      float64 `json:"gflops"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// NaiveNsPerOp and SpeedupVsNaive compare against the per-element
	// reference; measured only for the single-thread cases.
	NaiveNsPerOp   float64 `json:"naive_ns_per_op,omitempty"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// syrkBenchReport is the file layout of BENCH_syrk.json.
type syrkBenchReport struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	Note        string           `json:"note"`
	Results     []syrkBenchEntry `json:"results"`
}

// syrkBenchCases is the measured sweep: the cube sizes of the GEMM
// trajectory at the thread counts a 1–4 core machine can express, plus a
// wide-k panel shape and the small-path shape.
func syrkBenchCases() []syrkBenchCase {
	var cases []syrkBenchCase
	for _, size := range []int{64, 128, 256, 512} {
		for _, threads := range []int{1, 2, 4} {
			cases = append(cases, syrkBenchCase{
				Name: fmt.Sprintf("ssyrk-%d-t%d", size, threads),
				N:    size, K: size, Threads: threads,
			})
		}
	}
	cases = append(cases,
		syrkBenchCase{Name: "ssyrk-widek-t1", N: 64, K: 2048, Threads: 1},
		syrkBenchCase{Name: "ssyrk-small-t1", N: 32, K: 32, Threads: 1},
	)
	return cases
}

// runSyrkBench measures every case and writes the JSON report to path.
// smoke restricts each case to a single iteration (the CI regression guard:
// it exercises the full harness without paying benchmark time).
func runSyrkBench(path string, smoke bool) error {
	report := syrkBenchReport{
		Schema:      "adsala/bench-syrk/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Note:        "flops = n*(n+1)*k; steady-state pooled-context path; naive = serial per-element reference (pre-packed SYRK)",
	}
	if smoke {
		report.Note += "; SMOKE RUN (1 iteration per case, timings not meaningful)"
	}
	for _, bc := range syrkBenchCases() {
		rng := rand.New(rand.NewSource(1))
		a := mat.NewF32(bc.N, bc.K)
		c := mat.NewF32(bc.N, bc.N)
		a.FillRandom(rng)
		ctx := blas.NewContext()
		// Warm outside the measurement so steady-state allocation is
		// reported (buffers, team, and worker closure are created once).
		if err := ctx.SSYRK(false, 1, a, 0, c, bc.Threads); err != nil {
			return fmt.Errorf("syrk bench %s: %w", bc.Name, err)
		}
		entry := syrkBenchEntry{syrkBenchCase: bc}
		flops := float64(bc.N) * float64(bc.N+1) * float64(bc.K)
		if !smoke {
			res := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					if err := ctx.SSYRK(false, 1, a, 0, c, bc.Threads); err != nil {
						tb.Fatal(err)
					}
				}
			})
			entry.NsPerOp = float64(res.T.Nanoseconds()) / float64(res.N)
			entry.GFLOPS = flops / entry.NsPerOp
			entry.AllocsPerOp = res.AllocsPerOp()
			entry.BytesPerOp = res.AllocedBytesPerOp()
			if bc.Threads == 1 {
				naive := testing.Benchmark(func(tb *testing.B) {
					for i := 0; i < tb.N; i++ {
						blas.NaiveSSYRK(false, 1, a, 0, c)
					}
				})
				entry.NaiveNsPerOp = float64(naive.T.Nanoseconds()) / float64(naive.N)
				entry.SpeedupVsNaive = entry.NaiveNsPerOp / entry.NsPerOp
			}
		} else {
			blas.NaiveSSYRK(false, 1, a, 0, c) // smoke the reference too
		}
		ctx.Close()
		report.Results = append(report.Results, entry)
		fmt.Fprintf(os.Stderr, "syrk-bench %-16s %8.2f GFLOPS  %3d allocs/op  %5.2fx vs naive\n",
			bc.Name, entry.GFLOPS, entry.AllocsPerOp, entry.SpeedupVsNaive)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
