// Package adsala is the public API of the ADSALA reproduction: an
// Architecture and Data-Structure Aware Linear Algebra library that uses a
// machine-learning model, trained at installation time, to select the
// number of threads minimising the runtime of each GEMM call.
//
// Reproduction of "A Machine Learning Approach Towards Runtime Optimisation
// of Matrix Multiplication" (Xia, De La Pierre, Barnard, Barca; 2023).
//
// Usage sketch:
//
//	lib, report, err := adsala.Train(adsala.TrainOptions{
//		Platform: "Gadi",
//		Ops:      []adsala.Op{adsala.OpSYRK}, // per-op models beyond GEMM
//	})
//	...
//	b := lib.BLAS()
//	b.SGEMM(false, false, 1, a, x, 0, c) // threads picked by the GEMM model
//	b.SSYRK(false, 1, a, 0, c2)          // threads picked by the SYRK model
//
// Train-once, use-everywhere: Library.Save writes the installation
// artefacts (per-op preprocessing configs + trained models) to one JSON
// file that adsala.Load restores at program start — including artefacts
// saved by pre-registry versions (format v1), which load as a GEMM-only
// bundle and predict identically.
package adsala

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	distgather "repro/internal/gather"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/simtime"
)

// Matrix type re-exports so that callers of the public API do not need to
// import internal packages.
type (
	// MatrixF32 is a dense row-major single-precision matrix.
	MatrixF32 = matF32
	// MatrixF64 is a dense row-major double-precision matrix.
	MatrixF64 = matF64
)

// TrainOptions configures installation-time training.
type TrainOptions struct {
	// Platform selects the timing substrate: "Setonix" or "Gadi" train
	// against the corresponding simulated HPC node; "local" times the
	// built-in pure-Go GEMM on this machine.
	Platform string
	// CapMB bounds the aggregate GEMM footprint of the sampled shapes
	// (paper: 100 or 500). Default 500 for simulated platforms, 64 for
	// local.
	CapMB int
	// Shapes is the number of sampled GEMM shapes (paper: 1763).
	// Default 300 (simulated) / 40 (local).
	Shapes int
	// Iters is the number of timing repetitions per configuration
	// (paper: 10). Default 3.
	Iters int
	// Quick shrinks model grids and ensemble sizes (for demos and tests).
	Quick bool
	// NoHT disables hyper-threading on simulated platforms (hyper-threading
	// is on by default; setting NoHT caps thread counts at the physical
	// core count).
	NoHT bool
	Seed int64
	// Ops lists the operations to train per-op models for, beyond the
	// always-trained GEMM (e.g. [OpSYRK, OpSYR2K]). Each op gathers its own
	// timing sweep through its registered kernel and cost profile; ops
	// without a model fall back to the GEMM model at serving time.
	Ops []Op
	// Workers lists adsala-worker daemon addresses ("host:port" or URLs) to
	// shard the install-time timing sweep across. Empty keeps the
	// single-node in-process gather. The workers time with the same backend
	// this process would use (the platform's simulator, or RealTimer for
	// "local"), and the merged sweep is ordered by sample index — for the
	// deterministic simulator it is identical to the single-node sweep.
	Workers []string
	// Checkpoint is the path prefix of the distributed gather's resumable
	// JSONL checkpoint (the op's wire name is appended per sweep). Empty
	// disables checkpointing. Only meaningful with Workers.
	Checkpoint string
	// Logf receives install-time progress lines (currently the distributed
	// gather's dispatch and merge narrative). Nil keeps the historical
	// default of log.Printf with a "gather: " prefix; adsala-train wires
	// its -log-level logger here so verbosity is controlled in one place.
	Logf func(format string, args ...any)
	// Context bounds the installation: cancelling it abandons the timing
	// gather between units (adsala-train wires SIGINT here, so Ctrl-C on a
	// distributed sweep stops dispatch cleanly and the checkpoint keeps
	// what was merged). Nil means no externally-imposed bound.
	Context context.Context
}

// Report is the model-comparison outcome of installation (Tables III/IV):
// the primary GEMM comparison plus one section per additionally trained op.
type Report struct {
	// Rows is the primary (GEMM) model comparison.
	Rows []core.ModelReport
	// PerOp holds one section per trained operation, GEMM first.
	PerOp []OpReport
}

// OpReport is one operation's model comparison.
type OpReport struct {
	Op   string
	Rows []core.ModelReport
}

// String renders the report as aligned tables — one per trained op when
// models beyond GEMM were trained.
func (r *Report) String() string {
	if len(r.PerOp) <= 1 {
		return core.RenderReport(r.Rows)
	}
	var b strings.Builder
	for i, sec := range r.PerOp {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "op %s:\n%s", sec.Op, core.RenderReport(sec.Rows))
	}
	return b.String()
}

// Best returns the primary-comparison row for the given model kind.
func (r *Report) Best(kind string) (core.ModelReport, bool) {
	for _, row := range r.Rows {
		if row.Kind == kind {
			return row, true
		}
	}
	return core.ModelReport{}, false
}

// Library is a trained ADSALA artefact: a per-operation model bundle plus
// one shared serving engine that every runtime facade created from it
// (BLAS, the deprecated NewGemm/NewSyrk wrappers, NewServer with default
// options) observes — one decision cache, one set of statistics.
type Library struct {
	inner *core.Library

	engOnce sync.Once
	eng     *serve.Engine
}

// Train runs the full installation workflow (Fig 2) — once per requested
// operation — and returns the deployable library plus the model-comparison
// report.
func Train(opts TrainOptions) (*Library, *Report, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Train(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Rows: res.Reports}
	for _, op := range res.Library.TrainedOps() {
		rep.PerOp = append(rep.PerOp, OpReport{Op: op.String(), Rows: res.OpReports[op]})
	}
	return &Library{inner: res.Library}, rep, nil
}

func buildConfig(opts TrainOptions) (core.TrainConfig, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	iters := opts.Iters
	if iters == 0 {
		iters = 3
	}

	var (
		timer      simtime.Timer
		timerSpec  simtime.Spec
		maxThreads int
		refThreads int
		platform   string
		capMB      = opts.CapMB
		shapes     = opts.Shapes
	)
	switch strings.ToLower(opts.Platform) {
	case "", "gadi", "setonix":
		name := "Gadi"
		if strings.EqualFold(opts.Platform, "setonix") {
			name = "Setonix"
		}
		node, err := machine.ByName(name)
		if err != nil {
			return core.TrainConfig{}, err
		}
		scfg := simtime.DefaultConfig(node)
		scfg.HT = !opts.NoHT
		scfg.Seed = seed
		timer = simtime.New(scfg)
		timerSpec = simtime.SimSpec(name, seed, !opts.NoHT)
		maxThreads = node.MaxThreads(!opts.NoHT)
		refThreads = node.PhysicalCores()
		platform = name
		if capMB == 0 {
			capMB = 500
		}
		if shapes == 0 {
			shapes = 300
		}
	case "local":
		timer = simtime.NewRealTimer(iters)
		timerSpec = simtime.RealSpec(iters)
		maxThreads = runtime.GOMAXPROCS(0) * 2
		refThreads = runtime.GOMAXPROCS(0)
		platform = "local"
		if capMB == 0 {
			capMB = 64
		}
		if shapes == 0 {
			shapes = 40
		}
	default:
		return core.TrainConfig{}, fmt.Errorf("adsala: unknown platform %q (want Setonix, Gadi or local)", opts.Platform)
	}

	gather := core.GatherConfig{
		Timer:      timer,
		Domain:     sampling.DefaultDomain().WithCapMB(capMB),
		NumShapes:  shapes,
		Candidates: core.DefaultCandidates(maxThreads),
		Iters:      iters,
		Seed:       seed,
	}
	if platform == "local" {
		// Local timing of the pure-Go kernels: keep shapes small enough to
		// finish quickly.
		gather.Domain.MaxDim = 768
	}
	cfg := core.DefaultTrainConfig(gather, platform, refThreads)
	cfg.Models = core.DefaultModels(seed, opts.Quick)
	cfg.Ops = opts.Ops
	if len(opts.Workers) > 0 {
		// A distributed sweep can run for hours; surface dispatch and merge
		// progress through the caller's logger (the standard one when unset).
		logf := opts.Logf
		if logf == nil {
			logf = func(format string, args ...any) {
				log.Printf("gather: "+format, args...)
			}
		}
		cfg.Gatherer = distgather.New(distgather.Config{
			Workers:    opts.Workers,
			Timer:      timerSpec,
			Checkpoint: opts.Checkpoint,
			Logf:       logf,
		})
	}
	cfg.Context = opts.Context
	return cfg, nil
}

// ParseOps maps a comma-separated list of operation wire names (e.g.
// "gemm,syrk") to Ops — the format of adsala-train's -ops flag.
func ParseOps(s string) ([]Op, error) { return ops.ParseList(s) }

// Load restores a library saved by Save.
func Load(path string) (*Library, error) {
	inner, err := core.Load(path)
	if err != nil {
		return nil, err
	}
	return &Library{inner: inner}, nil
}

// Save writes the installation artefacts to one JSON file.
func (l *Library) Save(path string) error { return l.inner.Save(path) }

// Platform returns the platform name the library was trained for.
func (l *Library) Platform() string { return l.inner.Platform }

// ModelKind returns the selected model family (e.g. "xgb").
func (l *Library) ModelKind() string { return l.inner.ModelKind() }

// Candidates returns the thread counts the library ranks at runtime.
func (l *Library) Candidates() []int {
	return append([]int(nil), l.inner.Candidates...)
}

// OptimalThreads predicts the fastest thread count for an m×k×n GEMM.
func (l *Library) OptimalThreads(m, k, n int) int {
	return l.inner.OptimalThreads(m, k, n)
}

// OptimalThreadsOp predicts the fastest thread count for one operation at
// its canonical (m, k, n) feature triple (symmetric updates pass (n, k, n)),
// using the op's own model when trained and the GEMM model otherwise.
func (l *Library) OptimalThreadsOp(op Op, m, k, n int) int {
	return l.inner.OptimalThreadsOp(op, m, k, n)
}

// PredictRuntime returns the model's wall-time estimate in seconds for one
// GEMM configuration.
func (l *Library) PredictRuntime(m, k, n, threads int) float64 {
	return l.inner.PredictSeconds(m, k, n, threads)
}

// PredictRuntimeOp is PredictRuntime under an explicit operation kind.
func (l *Library) PredictRuntimeOp(op Op, m, k, n, threads int) float64 {
	return l.inner.PredictOpSeconds(op, m, k, n, threads)
}

// EvalLatency returns the measured model-evaluation latency per selection.
func (l *Library) EvalLatency() float64 { return l.inner.EvalSeconds() }

// Predictor returns a caching thread-count predictor (the Fig 3 runtime
// path) bound to this library. Each Predictor keeps its own last-shape
// cache; see Gemm for the full execution front end and Engine for the
// concurrent many-shape cache.
func (l *Library) Predictor() *core.Predictor { return l.inner.NewPredictor() }

// Serving-layer re-exports so external callers can name the types without
// importing internal packages.
type (
	// ServeOptions configures the prediction-serving engine.
	ServeOptions = serve.Options
	// Engine is the concurrent prediction engine (sharded decision cache
	// plus batch ranking) returned by Library.Engine.
	Engine = serve.Engine
	// Server is the HTTP front end returned by Library.NewServer.
	Server = serve.Server
	// ServeClient is the Go client for the adsala-serve HTTP API.
	ServeClient = serve.Client
	// Op identifies the BLAS-3 operation a decision (and model) applies to;
	// it keys the serving cache and the per-op model bundle. Ops come from
	// the operation registry — see OpGEMM, OpSYRK, OpSYR2K.
	Op = serve.Op
)

// Operation kinds accepted by the op-aware engine, server and client APIs
// and by TrainOptions.Ops.
const (
	OpGEMM  = serve.OpGEMM
	OpSYRK  = serve.OpSYRK
	OpSYR2K = serve.OpSYR2K
)

// TrainedOps returns the operations this library holds a model of its own
// for (always at least OpGEMM; others fall back to the GEMM model).
func (l *Library) TrainedOps() []Op { return l.inner.TrainedOps() }

// FormatVersion reports the artefact format version (1 = single-model file,
// 2 = per-op model bundles) — the value /healthz exposes.
func (l *Library) FormatVersion() int { return l.inner.Format() }

// sharedEngine returns the library's lazily created default engine — the
// single cache every facade shares.
func (l *Library) sharedEngine() *serve.Engine {
	l.engOnce.Do(func() { l.eng = serve.NewEngine(l.inner, serve.Options{}) })
	return l.eng
}

// Engine returns a concurrent prediction engine bound to this library: a
// sharded LRU decision cache plus a batch ranking path over reusable
// buffers. The zero Options select the library's shared engine — the same
// decision cache and statistics every facade (BLAS, NewGemm, NewSyrk)
// observes; non-zero Options build a private engine with that
// configuration. Safe for concurrent use; see the internal/serve package.
func (l *Library) Engine(opts ServeOptions) *serve.Engine {
	if opts == (serve.Options{}) {
		return l.sharedEngine()
	}
	return serve.NewEngine(l.inner, opts)
}

// NewServer returns an http.Handler serving this library's predictions at
// /predict, /batch, /stats and /healthz (the adsala-serve daemon wraps it).
// Zero Options mount the library's shared engine, so the server's /stats
// agree with the in-process facades.
func (l *Library) NewServer(opts ServeOptions) *serve.Server {
	return serve.NewServer(l.Engine(opts))
}
