//go:build race

package serve

// raceEnabled reports whether the race detector is active; the allocation-
// count tests skip under it because sync.Pool randomly drops Puts under
// race instrumentation, so pooled-scratch reuse cannot be asserted.
const raceEnabled = true
