// Package ensemble implements the bagging and boosting tree ensembles of
// Tables III/IV: Random Forest (parallel bootstrap bagging) and AdaBoost.R2
// (sequential weighted boosting).
package ensemble

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

func init() {
	ml.RegisterKind("forest", func() ml.Regressor { return NewRandomForest(ForestParams{}) })
	ml.RegisterKind("adaboost", func() ml.Regressor { return NewAdaBoostR2(AdaParams{}) })
}

// ForestParams configures a Random Forest. Zero values select defaults.
type ForestParams struct {
	NTrees int `json:"n_trees"` // default 100
	// MaxFeatures per split; 0 picks d/3 (the regression convention).
	MaxFeatures    int   `json:"max_features"`
	MaxDepth       int   `json:"max_depth"`        // default 16
	MinSamplesLeaf int   `json:"min_samples_leaf"` // default 2
	Seed           int64 `json:"seed"`
}

// RandomForest averages bootstrap-trained, feature-subsampled CART trees.
// Trees are fitted in parallel — the forest's slow *evaluation* (every tree
// visited per prediction) is what sinks its estimated speedup in Tables
// III/IV despite the excellent RMSE.
type RandomForest struct {
	Params ForestParams      `json:"params"`
	Trees  []*tree.Regressor `json:"trees"`
}

// NewRandomForest returns an unfitted forest.
func NewRandomForest(p ForestParams) *RandomForest { return &RandomForest{Params: p} }

// Name implements ml.Regressor.
func (f *RandomForest) Name() string { return "Random Forest" }

// Fit implements ml.Regressor, training trees across GOMAXPROCS goroutines.
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	p := f.Params
	if p.NTrees <= 0 {
		p.NTrees = 100
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 16
	}
	if p.MinSamplesLeaf <= 0 {
		p.MinSamplesLeaf = 2
	}
	if p.MaxFeatures <= 0 {
		p.MaxFeatures = (len(X[0]) + 2) / 3
	}

	n := len(y)
	f.Trees = make([]*tree.Regressor, p.NTrees)
	errs := make([]error, p.NTrees)

	workers := runtime.GOMAXPROCS(0)
	if workers > p.NTrees {
		workers = p.NTrees
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range work {
				rng := rand.New(rand.NewSource(p.Seed + int64(ti)*7919))
				bx := make([][]float64, n)
				by := make([]float64, n)
				for i := 0; i < n; i++ {
					j := rng.Intn(n)
					bx[i], by[i] = X[j], y[j]
				}
				tr := tree.NewRegressor(tree.Params{
					MaxDepth:       p.MaxDepth,
					MinSamplesLeaf: p.MinSamplesLeaf,
					MaxFeatures:    p.MaxFeatures,
					Seed:           p.Seed + int64(ti),
				})
				errs[ti] = tr.Fit(bx, by)
				f.Trees[ti] = tr
			}
		}()
	}
	for ti := 0; ti < p.NTrees; ti++ {
		work <- ti
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("forest: %w", err)
		}
	}
	return nil
}

// Predict implements ml.Regressor by averaging tree outputs.
func (f *RandomForest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.Trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.Trees))
}

var _ ml.Regressor = (*RandomForest)(nil)

// AdaParams configures AdaBoost.R2. Zero values select defaults.
type AdaParams struct {
	NEstimators  int     `json:"n_estimators"`  // default 50
	MaxDepth     int     `json:"max_depth"`     // default 4 (stumps-ish)
	LearningRate float64 `json:"learning_rate"` // default 1.0
	Seed         int64   `json:"seed"`
}

// AdaBoostR2 implements Drucker's AdaBoost.R2 with linear loss: each round
// fits a weighted tree, reweights samples by relative error, and the final
// prediction is the weighted median of the stage predictions.
type AdaBoostR2 struct {
	Params AdaParams         `json:"params"`
	Trees  []*tree.Regressor `json:"trees"`
	Betas  []float64         `json:"betas"` // stage confidence weights
}

// NewAdaBoostR2 returns an unfitted AdaBoost.R2 ensemble.
func NewAdaBoostR2(p AdaParams) *AdaBoostR2 { return &AdaBoostR2{Params: p} }

// Name implements ml.Regressor.
func (a *AdaBoostR2) Name() string { return "AdaBoost" }

// Fit implements ml.Regressor.
func (a *AdaBoostR2) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	p := a.Params
	if p.NEstimators <= 0 {
		p.NEstimators = 50
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 1
	}

	n := len(y)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	a.Trees = a.Trees[:0]
	a.Betas = a.Betas[:0]

	for round := 0; round < p.NEstimators; round++ {
		tr := tree.NewRegressor(tree.Params{MaxDepth: p.MaxDepth, Seed: p.Seed + int64(round)})
		if err := tr.FitWeighted(X, y, w); err != nil {
			return fmt.Errorf("adaboost round %d: %w", round, err)
		}
		// Linear loss normalised by the max error.
		pred := ml.PredictBatch(tr, X)
		var maxErr float64
		for i := range y {
			if e := math.Abs(pred[i] - y[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr == 0 {
			// Perfect fit: keep with full confidence and stop.
			a.Trees = append(a.Trees, tr)
			a.Betas = append(a.Betas, 1e-9)
			break
		}
		var avgLoss float64
		loss := make([]float64, n)
		for i := range y {
			loss[i] = math.Abs(pred[i]-y[i]) / maxErr
			avgLoss += loss[i] * w[i]
		}
		if avgLoss >= 0.5 {
			if len(a.Trees) == 0 {
				// Degenerate data: keep one tree anyway.
				a.Trees = append(a.Trees, tr)
				a.Betas = append(a.Betas, 1)
			}
			break
		}
		beta := avgLoss / (1 - avgLoss)
		a.Trees = append(a.Trees, tr)
		a.Betas = append(a.Betas, beta)
		// Reweight: low-loss samples shrink.
		var sum float64
		for i := range w {
			w[i] *= math.Pow(beta, p.LearningRate*(1-loss[i]))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	if len(a.Trees) == 0 {
		return fmt.Errorf("adaboost: no usable rounds")
	}
	return nil
}

// Predict implements ml.Regressor with the weighted-median combination rule
// of AdaBoost.R2 (weights ln(1/β)).
func (a *AdaBoostR2) Predict(x []float64) float64 {
	type pw struct{ pred, w float64 }
	// Predict can sit on the serving hot path; the default ensemble (50
	// stages) fits in a stack-backed array, so the make fallback only fires
	// for unusually large tuning configurations.
	var psArr [64]pw
	var ps []pw
	if len(a.Trees) <= len(psArr) {
		ps = psArr[:len(a.Trees)]
	} else {
		ps = make([]pw, len(a.Trees))
	}
	var totW float64
	for i, t := range a.Trees {
		wi := math.Log(1 / a.Betas[i])
		if wi <= 0 {
			wi = 1e-12
		}
		ps[i] = pw{t.Predict(x), wi}
		totW += wi
	}
	// Weighted median by sorting predictions.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].pred < ps[j-1].pred; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	var acc float64
	for _, p := range ps {
		acc += p.w
		if acc >= totW/2 {
			return p.pred
		}
	}
	return ps[len(ps)-1].pred
}

var _ ml.Regressor = (*AdaBoostR2)(nil)
