package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	adsala "repro"
	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/trace"
)

var (
	fixOnce sync.Once
	fixLib  string // saved artefact path
	fixTr   string // trace capture prefix
	fixN    int    // serving decisions recorded
	fixErr  error
)

// fixture trains one quick library, saves it, and captures a trace of
// traffic served by it (with a warm pass, so the filter path is exercised).
func fixture(t *testing.T) (libPath, tracePrefix string, decisions int) {
	t.Helper()
	fixOnce.Do(func() {
		// Not t.TempDir(): the fixture must outlive the first test that
		// happens to build it.
		dir, err := os.MkdirTemp("", "adsala-replay-test")
		if err != nil {
			fixErr = err
			return
		}
		lib, _, err := adsala.Train(adsala.TrainOptions{Platform: "Gadi", Shapes: 80, Quick: true, Seed: 3})
		if err != nil {
			fixErr = err
			return
		}
		fixLib = filepath.Join(dir, "lib.json")
		if fixErr = lib.Save(fixLib); fixErr != nil {
			return
		}

		clib, err := core.Load(fixLib)
		if err != nil {
			fixErr = err
			return
		}
		fixTr = filepath.Join(dir, "cap")
		rec, err := trace.Open(fixTr, trace.Options{FlushInterval: time.Hour})
		if err != nil {
			fixErr = err
			return
		}
		eng := serve.NewEngine(clib, serve.Options{})
		eng.SetRecorder(rec)
		if _, err := eng.Warmup(sampling.DefaultDomain().WithCapMB(100), 8, 3, serve.OpGEMM); err != nil {
			fixErr = err
			return
		}
		sampler, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), 17)
		if err != nil {
			fixErr = err
			return
		}
		shapes := sampler.Sample(25)
		for _, sh := range shapes {
			eng.PredictOp(serve.OpGEMM, sh.M, sh.K, sh.N)
			eng.PredictOp(serve.OpGEMM, sh.M, sh.K, sh.N) // repeat: cache hits
		}
		fixN = 2 * len(shapes)
		// Measurement records at 2x the model's estimate: residual_log2 is
		// exactly -1 per record, which the -drift tests trip on. Thread counts
		// come straight from the library so no extra decisions are recorded.
		for _, sh := range shapes {
			threads := clib.OptimalThreads(sh.M, sh.K, sh.N)
			ns := int64(clib.PredictOpSeconds(serve.OpGEMM, sh.M, sh.K, sh.N, threads) * 2e9)
			if ns <= 0 {
				ns = 2
			}
			eng.RecordMeasured(serve.OpGEMM, sh.M, sh.K, sh.N, threads, ns)
		}
		fixErr = rec.Close()
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixLib, fixTr, fixN
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-trace", "cap", "-lib", "x.json", "-json", "-min-agreement", "0.9"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tracePath != "cap" || cfg.libPath != "x.json" || !cfg.jsonOut || cfg.minAgreement != 0.9 {
		t.Errorf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-lib", "x.json"}, io.Discard); err == nil {
		t.Error("missing -trace should error")
	}
	if _, err := parseFlags([]string{"-trace", "cap"}, io.Discard); err == nil {
		t.Error("missing -lib should error")
	}
	if _, err := parseFlags([]string{"-trace", "cap", "-lib", "x", "-min-agreement", "1.5"}, io.Discard); err == nil {
		t.Error("-min-agreement > 1 should error")
	}

	cfg, err = parseFlags([]string{"-trace", "cap", "-lib", "x.json", "-drift",
		"-drift-window", "30s", "-drift-threshold", "0.5", "-drift-min-samples", "8"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.driftMode || cfg.driftWindow != 30*time.Second || cfg.driftThreshold != 0.5 || cfg.driftMinSamples != 8 {
		t.Errorf("drift flags parsed %+v", cfg)
	}
}

// TestReplayDriftMode pins the -drift offline detector: the fixture's
// measurement records run 2x slower than the model's estimate, so a 0.5
// threshold must trip on gemm — in the JSON document and the text render.
func TestReplayDriftMode(t *testing.T) {
	libPath, prefix, _ := fixture(t)
	var buf bytes.Buffer
	err := run([]string{"-trace", prefix, "-lib", libPath, "-json",
		"-drift", "-drift-threshold", "0.5", "-drift-min-samples", "8"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var doc output
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Drift == nil {
		t.Fatal("no drift report in -drift output")
	}
	if doc.Drift.Schema != "adsala/drift/v1" {
		t.Errorf("drift schema = %q", doc.Drift.Schema)
	}
	if !doc.Drift.Degraded || len(doc.Drift.DriftingOps) != 1 || doc.Drift.DriftingOps[0] != "gemm" {
		t.Fatalf("2x-slow capture not flagged: degraded=%v ops=%v",
			doc.Drift.Degraded, doc.Drift.DriftingOps)
	}
	if m := doc.Drift.PerOp["gemm"].ResidualLog2.Mean; m > -0.9 || m < -1.1 {
		t.Errorf("residual mean %.4f, want ~-1 (2x-slow measurements)", m)
	}

	// Without -drift the report is absent.
	buf.Reset()
	if err := run([]string{"-trace", prefix, "-lib", libPath, "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var plain output
	if err := json.Unmarshal(buf.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Drift != nil {
		t.Error("drift report present without -drift")
	}

	// Text mode renders the drift section with the tripped markers.
	buf.Reset()
	if err := run([]string{"-trace", prefix, "-lib", libPath,
		"-drift", "-drift-threshold", "0.5", "-drift-min-samples", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "drift (window") || !strings.Contains(text, "DEGRADED") || !strings.Contains(text, "DRIFTING") {
		t.Fatalf("text drift render lacks markers:\n%s", text)
	}
}

// TestReplaySelfAgreement pins the CLI end to end: replaying the capture
// against the artefact that recorded it reports exact agreement, valid
// JSON, and passes its own -min-agreement gate.
func TestReplaySelfAgreement(t *testing.T) {
	libPath, prefix, n := fixture(t)
	var buf bytes.Buffer
	err := run([]string{"-trace", prefix, "-lib", libPath, "-json", "-min-agreement", "1"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var doc output
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Schema != "adsala/replay/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	rep := doc.Candidate
	if rep == nil {
		t.Fatal("no candidate report")
	}
	if rep.Decisions != int64(n) {
		t.Errorf("Decisions = %d, want %d", rep.Decisions, n)
	}
	if rep.Agreement != 1.0 {
		t.Errorf("Agreement = %v, want 1.0", rep.Agreement)
	}
	if rep.WarmupSkipped == 0 {
		t.Error("warm-up records not skipped by default")
	}
	if rep.CacheHitRate <= 0 {
		t.Errorf("CacheHitRate = %v, want > 0 (traffic repeats shapes)", rep.CacheHitRate)
	}
}

// TestReplayBaselineDiff pins the artefact-diff workflow: candidate and
// baseline reports plus deltas (zero when both are the same artefact).
func TestReplayBaselineDiff(t *testing.T) {
	libPath, prefix, _ := fixture(t)
	var buf bytes.Buffer
	err := run([]string{"-trace", prefix, "-lib", libPath, "-baseline", libPath, "-json"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var doc output
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Baseline == nil || doc.Diff == nil {
		t.Fatal("baseline/diff missing")
	}
	if doc.Diff.Agreement != 0 || doc.Diff.CacheHitRate != 0 {
		t.Errorf("self-diff non-zero: %+v", doc.Diff)
	}
}

// TestReplayMinAgreementGate pins the self-asserting CI mode: an impossible
// threshold fails the run.
func TestReplayMinAgreementGate(t *testing.T) {
	libPath, prefix, _ := fixture(t)

	// Against the recording artefact agreement is exactly 1.0, so the gate
	// can only fail on a trace with no replayable decisions: an empty
	// capture reports agreement 0.
	dir := t.TempDir()
	empty := filepath.Join(dir, "cap")
	rec, err := trace.Open(empty, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{"-trace", empty, "-lib", libPath, "-min-agreement", "0.5"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "below -min-agreement") {
		t.Fatalf("empty-trace gate: err = %v", err)
	}

	// And the text (non-JSON) path renders without error on a real capture.
	buf.Reset()
	if err := run([]string{"-trace", prefix, "-lib", libPath}, &buf); err != nil {
		t.Fatalf("text run: %v", err)
	}
	if !strings.Contains(buf.String(), "agreement") {
		t.Fatalf("text output lacks agreement line:\n%s", buf.String())
	}
}

// TestReplayMissingInputs pins the error paths.
func TestReplayMissingInputs(t *testing.T) {
	libPath, prefix, _ := fixture(t)
	if err := run([]string{"-trace", filepath.Join(t.TempDir(), "nope"), "-lib", libPath}, io.Discard); err == nil {
		t.Error("missing trace should error")
	}
	if err := run([]string{"-trace", prefix, "-lib", filepath.Join(t.TempDir(), "nope.json")}, io.Discard); err == nil {
		t.Error("missing library should error")
	}
}
