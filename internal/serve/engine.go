package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sampling"
	"repro/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// CacheSize is the total decision-cache capacity (entries); rounded up
	// to a power of two. 0 selects the default (4096).
	CacheSize int
	// Shards is the cache shard count; rounded up to a power of two.
	// 0 selects the default (16).
	Shards int
	// Workers bounds the goroutines used by PredictBatch. 0 selects
	// GOMAXPROCS; 1 forces sequential batches.
	Workers int
}

// Engine answers thread-selection queries for one trained library. It
// generalises the §III-C repeated-shape cache: decisions are memoised in a
// sharded LRU keyed by (operation, shape), misses rank the candidates with
// pooled scratch buffers (no per-call allocation in steady state), and
// batches fan out across a bounded worker pool. Safe for concurrent use.
//
// Every ranking goes through the library's per-op model bundle: operations
// with a trained model of their own (e.g. SYRK after Train(Ops:
// [gemm, syrk])) rank with it, others fall back to the primary GEMM model —
// and the op always keys the decision cache, so decisions never alias
// across operations either way.
type Engine struct {
	// state bundles the served library with a scratch pool sized for it;
	// SwapLibrary replaces the whole bundle atomically, so a ranking in
	// flight always pairs a library with scratches sized for that library
	// even while a hot reload lands.
	state   atomic.Pointer[libState]
	cache   *Cache
	workers int

	// generation counts artefact swaps (0 = the boot artefact); /healthz
	// surfaces it so an operator can confirm a reload took effect even
	// when old and new artefacts share a format version.
	generation atomic.Int64

	predictions atomic.Int64 // selections served (cached or computed)
	fallbacks   atomic.Int64 // selections answered by the heuristic fallback
	evalNanos   atomic.Int64 // cumulative time spent in cache-miss ranking
	evals       atomic.Int64 // cache-miss rankings performed

	// decLatency holds one latency histogram per op for the cache-miss
	// ranking path (nanosecond observations, exposed as seconds), and
	// batchSizes the /batch request-size distribution. Both live on the
	// engine from construction — recording is a few atomic adds — and are
	// attached to a Prometheus registry by RegisterMetrics.
	decLatency []*obs.Histogram
	batchSizes *obs.Histogram

	// perOp splits the serving counters by operation (indexed by ops.Op);
	// the aggregate counters above stay authoritative for compatibility.
	perOp []opCounters

	// Warm-up traffic recorded so Stats can report serving counters that
	// exclude it: a warmed cache otherwise starts with thousands of
	// synthetic misses and the /stats hit_rate understates real serving
	// behaviour for its whole lifetime.
	warmPredictions atomic.Int64
	warmHits        atomic.Int64
	warmMisses      atomic.Int64
	warmPerOp       []opCounters

	// recorder is the optional flight recorder (nil when tracing is off —
	// the hot path pays one atomic pointer load). warming is the number of
	// Warmup passes in flight; decisions recorded while it is non-zero are
	// flagged as warm-up traffic, matching the /stats exclusion contract
	// (requests served concurrently with a warm pass may be attributed to
	// it, as Warmup already documents for the counters).
	recorder atomic.Pointer[trace.Recorder]
	warming  atomic.Int64

	// drift is the optional online model-quality monitor (nil when drift
	// monitoring is off — the measured hot path pays one atomic pointer
	// load, exactly like the recorder).
	drift atomic.Pointer[drift.Monitor]
}

// opCounters is one operation's share of the serving counters.
type opCounters struct {
	predictions atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
}

// libState pairs a library with a scratch pool sized for its models. The
// pool lives and dies with the library: after a swap, scratches sized for
// the old bundle drain into the old pool and are collected, so a reloaded
// artefact with wider feature rows can never receive an undersized buffer.
type libState struct {
	lib     *core.Library
	scratch sync.Pool // *rankScratch
}

// rankScratch is one pooled ranking workspace: the model-evaluation scratch
// plus a candidate-score buffer, so the flight recorder can capture the
// winner's predicted runtime on cache misses without allocating a score
// vector per request.
type rankScratch struct {
	s      *core.Scratch
	scores []float64
}

func newLibState(lib *core.Library) *libState {
	st := &libState{lib: lib}
	st.scratch.New = func() any {
		return &rankScratch{s: lib.NewScratch(), scores: make([]float64, len(lib.Candidates))}
	}
	return st
}

// NewEngine returns an Engine over the library with the given options.
func NewEngine(lib *core.Library, opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cache:      NewCache(opts.CacheSize, opts.Shards),
		workers:    workers,
		perOp:      make([]opCounters, ops.NumOps()),
		warmPerOp:  make([]opCounters, ops.NumOps()),
		decLatency: make([]*obs.Histogram, ops.NumOps()),
		batchSizes: obs.NewHistogram(1),
	}
	for i := range e.decLatency {
		e.decLatency[i] = obs.NewHistogram(1e-9)
	}
	e.state.Store(newLibState(lib))
	return e
}

// Library returns the library the engine currently serves (the latest one
// after hot reloads).
func (e *Engine) Library() *core.Library { return e.state.Load().lib }

// SwapLibrary atomically replaces the served artefact — the hot-reload
// path. The decision cache is reset (its decisions rank with the old
// models and would otherwise be served as if the new artefact made them)
// and the generation counter advances; the caller re-warms in the
// background. Requests in flight finish against whichever artefact they
// started with; no request ever observes a half-swapped state.
func (e *Engine) SwapLibrary(lib *core.Library) {
	e.state.Store(newLibState(lib))
	e.cache.Reset()
	e.generation.Add(1)
}

// Generation returns the number of artefact swaps since boot.
func (e *Engine) Generation() int64 { return e.generation.Load() }

// Cache returns the engine's decision cache.
func (e *Engine) Cache() *Cache { return e.cache }

// Predict returns the model-selected thread count for an m×k×n GEMM,
// serving repeated shapes from the sharded cache.
func (e *Engine) Predict(m, k, n int) int { return e.PredictOp(OpGEMM, m, k, n) }

// PredictOp is Predict for an explicit operation kind: the decision ranks
// with the op's model and is cached under (op, shape). SYRK and SYR2K
// callers pass the (n, k, n) triple of the equivalent output shape.
func (e *Engine) PredictOp(op Op, m, k, n int) int {
	threads, _ := e.PredictOpCtx(context.Background(), op, m, k, n) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
	return threads
}

// PredictOpCtx is PredictOp with a request deadline and graceful
// degradation: the answer is never an error. Cached decisions are served
// regardless of ctx (a cache read is nanoseconds). A cache miss ranks the
// candidates unless the artefact holds no model for the op or ctx has
// already expired (an overloaded or deadline-blown request must not queue
// behind a model evaluation it has no time for) — in those cases the
// deterministic heuristic answers instead, fallback returns true, and the
// decision is NOT cached, so the model takes over the moment it can answer
// again.
func (e *Engine) PredictOpCtx(ctx context.Context, op Op, m, k, n int) (threads int, fallback bool) {
	e.predictions.Add(1)
	oc := e.opCounters(op)
	oc.predictions.Add(1)
	if threads, ok := e.cache.Get(op, m, k, n); ok {
		oc.hits.Add(1)
		e.traceDecision(op, m, k, n, threads, 0, trace.FlagCacheHit)
		return threads, false
	}
	oc.misses.Add(1)
	st := e.state.Load()
	if st.lib.ModelFor(op) == nil || ctx.Err() != nil {
		e.fallbacks.Add(1)
		threads = heuristicChoice(st.lib.Candidates, op, m, k, n)
		e.traceDecision(op, m, k, n, threads, 0, trace.FlagFallback)
		return threads, true
	}
	threads, predNs := e.rankWith(st, op, m, k, n, nil)
	e.cache.Put(op, m, k, n, threads)
	e.traceDecision(op, m, k, n, threads, predNs, 0)
	return threads, false
}

// HeuristicThreads is the deterministic degraded-mode thread choice: the
// answer served when no model can (missing from the artefact, or no time
// budget left to evaluate one). Exposed so tests and callers can pin the
// degradation contract.
func (e *Engine) HeuristicThreads(op Op, m, k, n int) int {
	return heuristicChoice(e.state.Load().lib.Candidates, op, m, k, n)
}

// heuristicChoice picks a thread count without a model: the largest
// candidate not exceeding GOMAXPROCS, clamped down for small problems
// (fork/join overhead dominates tiny kernels — the same intuition the
// paper's trained policy learns, reduced to a deterministic rule). Purely
// a function of (candidates, op, shape, GOMAXPROCS): two replicas degrade
// to identical answers.
func heuristicChoice(candidates []int, op Op, m, k, n int) int {
	if len(candidates) == 0 {
		return 1
	}
	limit := runtime.GOMAXPROCS(0)
	// Problem-size clamp on the parallelism budget, by FLOP count of the
	// op at this shape (registry-supplied, so new ops inherit the rule).
	flops := op.Spec().Flops(m, k, n)
	switch {
	case flops < 1e6:
		limit = 1
	case flops < 1e8:
		if limit > 4 {
			limit = 4
		}
	}
	best, min := 0, 0
	for i, c := range candidates {
		if i == 0 || c < candidates[min] {
			min = i
		}
		if c <= limit && (best == 0 || c > best) {
			best = c
		}
	}
	if best == 0 {
		// Every candidate exceeds the budget; the smallest is the least bad.
		return candidates[min]
	}
	return best
}

// opCounters returns the op's counter slot (GEMM for out-of-range ops, so a
// miscast op can never panic the hot path).
func (e *Engine) opCounters(op Op) *opCounters {
	if int(op) >= len(e.perOp) {
		op = OpGEMM
	}
	return &e.perOp[op]
}

// CachedChoice returns the cached decision for (op, shape) without ranking,
// counting, or LRU promotion — the read-only introspection path.
func (e *Engine) CachedChoice(op Op, m, k, n int) (threads int, ok bool) {
	return e.cache.Peek(op, m, k, n)
}

// rankWith runs one full candidate ranking with the given library state's
// model and a pooled scratch, recording the evaluation latency. scores,
// when non-nil, receives per-candidate predicted seconds. The state is
// passed in (not re-loaded) so one ranking uses a consistent
// library/scratch pair across a concurrent SwapLibrary.
//
// predNs is the winner's model-predicted runtime in nanoseconds — the
// flight recorder's label. It is only computed when someone will read it
// (caller-supplied scores, or a recorder attached); with tracing off and
// scores nil the scoring pass is skipped exactly as before.
//
//adsala:zeroalloc
func (e *Engine) rankWith(st *libState, op Op, m, k, n int, scores []float64) (best int, predNs int64) {
	rs := st.scratch.Get().(*rankScratch)
	sc := scores
	if sc == nil && e.recorder.Load() != nil {
		sc = rs.scores
	}
	start := time.Now()
	idx := st.lib.RankOpInto(op, m, k, n, rs.s, sc)
	best = st.lib.Candidates[idx]
	ns := time.Since(start).Nanoseconds()
	e.evalNanos.Add(ns)
	e.evals.Add(1)
	e.latencyHist(op).Observe(ns)
	if sc != nil && idx < len(sc) {
		predNs = int64(sc[idx] * 1e9)
	}
	st.scratch.Put(rs)
	return best, predNs
}

// latencyHist returns the op's decision-latency histogram (GEMM for
// out-of-range ops, mirroring opCounters).
func (e *Engine) latencyHist(op Op) *obs.Histogram {
	if int(op) >= len(e.decLatency) {
		op = OpGEMM
	}
	return e.decLatency[op]
}

// Candidates returns the candidate thread counts the engine ranks.
func (e *Engine) Candidates() []int {
	return append([]int(nil), e.state.Load().lib.Candidates...)
}

// Rank returns the per-candidate predicted runtimes (seconds, aligned with
// Candidates()) and the selected thread count for one GEMM shape.
func (e *Engine) Rank(m, k, n int) (scores []float64, best int) {
	return e.RankOp(OpGEMM, m, k, n)
}

// RankOp is Rank for an explicit operation kind. The cache cannot answer it
// (it stores decisions, not score vectors), so every call ranks afresh and
// is counted as one prediction and one cache miss — keeping the /stats
// hit_rate consistent with the work actually performed. On a model-less
// artefact the heuristic answers with zeroed scores (there is no model to
// score with) and the fallback counter advances.
func (e *Engine) RankOp(op Op, m, k, n int) (scores []float64, best int) {
	e.predictions.Add(1)
	e.cache.misses.Add(1)
	oc := e.opCounters(op)
	oc.predictions.Add(1)
	oc.misses.Add(1)
	st := e.state.Load()
	scores = make([]float64, len(st.lib.Candidates))
	if st.lib.ModelFor(op) == nil {
		e.fallbacks.Add(1)
		best = heuristicChoice(st.lib.Candidates, op, m, k, n)
		e.traceDecision(op, m, k, n, best, 0, trace.FlagFallback)
		return scores, best
	}
	best, predNs := e.rankWith(st, op, m, k, n, scores)
	e.cache.Put(op, m, k, n, best)
	e.traceDecision(op, m, k, n, best, predNs, 0)
	return scores, best
}

// PredictBatch ranks every shape and writes the chosen thread counts into
// out (allocated when nil or too short). Identical shapes within the batch
// are deduplicated before ranking, so a batch of N repeated cache misses
// costs one model evaluation, not N; distinct shapes already cached are
// served from the cache, and the remaining distinct misses are ranked in
// parallel across the engine's worker pool. Duplicates resolved from the
// batch-local memoisation are counted as predictions and cache hits, so the
// Stats counters keep per-request semantics. Batches of n shapes use O(n)
// dedup scratch; the no-allocation guarantee applies to the per-shape
// ranking path, not the batch bookkeeping.
func (e *Engine) PredictBatch(shapes []sampling.Shape, out []int) []int {
	return e.PredictBatchOp(OpGEMM, shapes, out)
}

// PredictBatchOp is PredictBatch for an explicit operation kind applied to
// every shape in the batch (mixed-op batches split per op at the HTTP
// layer).
func (e *Engine) PredictBatchOp(op Op, shapes []sampling.Shape, out []int) []int {
	out, _ = e.PredictBatchOpCtx(context.Background(), op, shapes, out) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
	return out
}

// PredictBatchOpCtx is PredictBatchOp with a request deadline and graceful
// degradation. fallback is nil when every decision came from the cache or a
// model; otherwise it has len(shapes) with true at each slot answered by
// the deterministic heuristic (ctx expired mid-batch, or the artefact holds
// no model for the op).
func (e *Engine) PredictBatchOpCtx(ctx context.Context, op Op, shapes []sampling.Shape, out []int) (threads []int, fallback []bool) {
	if len(out) < len(shapes) {
		out = make([]int, len(shapes))
	}
	out = out[:len(shapes)]
	if len(shapes) == 0 {
		return out, nil
	}
	e.batchSizes.Observe(int64(len(shapes)))
	if len(shapes) == 1 {
		t, fb := e.PredictOpCtx(ctx, op, shapes[0].M, shapes[0].K, shapes[0].N)
		out[0] = t
		if fb {
			return out, []bool{true}
		}
		return out, nil
	}

	// Dedup pass: slot[i] points each request at its distinct shape.
	index := make(map[sampling.Shape]int, len(shapes))
	slot := make([]int, len(shapes))
	uniq := shapes[:0:0]
	for i, sh := range shapes {
		u, ok := index[sh]
		if !ok {
			u = len(uniq)
			index[sh] = u
			uniq = append(uniq, sh)
		}
		slot[i] = u
	}
	if dups := len(shapes) - len(uniq); dups > 0 {
		e.predictions.Add(int64(dups))
		e.cache.hits.Add(int64(dups))
		oc := e.opCounters(op)
		oc.predictions.Add(int64(dups))
		oc.hits.Add(int64(dups))
	}

	vals := make([]int, len(uniq))
	fbs := make([]bool, len(uniq))
	workers := e.workers
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers <= 1 {
		for u, sh := range uniq {
			vals[u], fbs[u] = e.PredictOpCtx(ctx, op, sh.M, sh.K, sh.N)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					u := int(next.Add(1)) - 1
					if u >= len(uniq) {
						return
					}
					sh := uniq[u]
					vals[u], fbs[u] = e.PredictOpCtx(ctx, op, sh.M, sh.K, sh.N)
				}
			}()
		}
		wg.Wait()
	}
	any := false
	for _, fb := range fbs {
		if fb {
			any = true
			break
		}
	}
	if any {
		fallback = make([]bool, len(shapes))
	}
	for i, u := range slot {
		out[i] = vals[u]
		if any {
			fallback[i] = fbs[u]
		}
	}
	return out, fallback
}

// Warmup pre-populates the decision cache with n quasi-random shapes per
// operation, drawn from the given sampling domain — the same
// low-discrepancy generator used at installation time, so the warmed set
// covers the trained distribution. opSet selects the operations to warm;
// empty means every op the library holds a trained model for (GEMM when the
// bundle is empty), so SYRK/SYR2K caches pre-populate alongside GEMM on a
// per-op-trained library. Shapes are canonicalised per op before warming
// (symmetric updates fold to their (n, k, n) triple — the form runtime
// queries arrive in). Returns the number of decisions computed across ops.
//
// The counter deltas incurred by the warm pass are recorded and excluded
// from the serving statistics (Stats reports them separately, aggregate and
// per op): warm-up is synthetic traffic, and its near-100% miss rate would
// otherwise depress the reported hit_rate long into real serving. Warm-up
// is intended to run before traffic arrives; requests served concurrently
// with a warm pass may be attributed to it.
func (e *Engine) Warmup(dom sampling.Domain, n int, seed int64, opSet ...Op) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if len(opSet) == 0 {
		opSet = e.Library().TrainedOps()
		if len(opSet) == 0 {
			opSet = []Op{OpGEMM}
		}
	}
	for _, op := range opSet {
		if !op.Valid() {
			return 0, fmt.Errorf("serve: warmup: unknown op %v", op)
		}
	}
	e.warming.Add(1)
	defer e.warming.Add(-1)
	total := 0
	for _, op := range opSet {
		sampler, err := sampling.NewSampler(dom, seed)
		if err != nil {
			return total, fmt.Errorf("serve: warmup: %w", err)
		}
		shapes := sampler.Sample(n)
		canon := op.Spec().Canon
		for i, sh := range shapes {
			shapes[i] = canon(sh)
		}

		oc := e.opCounters(op)
		p0 := e.predictions.Load()
		op0, oh0, om0 := oc.predictions.Load(), oc.hits.Load(), oc.misses.Load()
		h0, m0 := e.cache.Stats()
		e.PredictBatchOp(op, shapes, nil)
		p1 := e.predictions.Load()
		h1, m1 := e.cache.Stats()
		e.warmPredictions.Add(p1 - p0)
		e.warmHits.Add(h1 - h0)
		e.warmMisses.Add(m1 - m0)
		woc := &e.warmPerOp[op]
		woc.predictions.Add(oc.predictions.Load() - op0)
		woc.hits.Add(oc.hits.Load() - oh0)
		woc.misses.Add(oc.misses.Load() - om0)
		total += len(shapes)
	}
	return total, nil
}

// Stats is a point-in-time snapshot of the engine's counters. Predictions,
// CacheHits, CacheMisses and HitRate cover serving traffic only; warm-up
// precomputation is reported separately under the Warmup* fields.
type Stats struct {
	Predictions int64   `json:"predictions"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	CacheLen    int     `json:"cache_len"`
	CacheCap    int     `json:"cache_capacity"`
	Shards      int     `json:"shards"`
	// Fallbacks counts decisions answered by the deterministic heuristic
	// instead of a model — the degraded-mode traffic (model missing from
	// the artefact, or the request deadline expired before ranking).
	Fallbacks int64 `json:"fallbacks,omitempty"`
	// Generation counts hot artefact reloads since boot.
	Generation int64 `json:"artefact_generation"`
	// WarmupDecisions / WarmupHits / WarmupMisses are the counter deltas of
	// Warmup passes, excluded from the serving counters above.
	WarmupDecisions int64 `json:"warmup_decisions,omitempty"`
	WarmupHits      int64 `json:"warmup_hits,omitempty"`
	WarmupMisses    int64 `json:"warmup_misses,omitempty"`
	// MeanEvalMicros is the mean latency of one cache-miss candidate
	// ranking in microseconds.
	MeanEvalMicros float64 `json:"mean_eval_micros"`
	// PerOp splits the serving counters (warm-up excluded, like the
	// aggregates) by operation wire name; ops with no traffic are omitted.
	PerOp map[string]OpStats `json:"per_op,omitempty"`
}

// OpStats is one operation's share of the serving counters.
type OpStats struct {
	Predictions int64   `json:"predictions"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
}

// Stats returns the current counters. Every atomic is loaded exactly once
// into a local snapshot before any derived field is computed, so one
// response is internally consistent: the reported HitRate is exactly
// CacheHits/(CacheHits+CacheMisses) of the same response, and the Warmup*
// fields are the same values that were subtracted from the serving
// counters — a concurrent Warmup or Reset between loads can no longer
// produce a response whose parts disagree. Load order matters for the
// cross-counter inequalities too: warm-up deltas are read before the
// counters they are subtracted from (a delta is recorded only after its
// underlying counter moved, so warm ≤ counter holds), and the prediction
// counters are read after the hit/miss counters (a hit/miss is only
// recorded after its prediction), keeping Predictions ≥ CacheHits +
// CacheMisses within one response under concurrent traffic. Serving
// counters are still clamped at zero: Cache().Reset() zeroes the cache's
// hit/miss counters but not the recorded warm-up deltas, and a negative
// count must never reach the /stats JSON.
func (e *Engine) Stats() Stats {
	// Raw snapshot — each atomic loaded exactly once, deltas first.
	warmPred := e.warmPredictions.Load()
	warmHits := e.warmHits.Load()
	warmMisses := e.warmMisses.Load()
	type opSnap struct{ warmPred, warmHits, warmMisses, pred, hits, misses int64 }
	perOp := make([]opSnap, len(e.perOp))
	for i := range e.perOp {
		woc := &e.warmPerOp[i]
		perOp[i].warmPred = woc.predictions.Load()
		perOp[i].warmHits = woc.hits.Load()
		perOp[i].warmMisses = woc.misses.Load()
	}
	rawHits, rawMisses := e.cache.Stats()
	for i := range e.perOp {
		oc := &e.perOp[i]
		perOp[i].hits = oc.hits.Load()
		perOp[i].misses = oc.misses.Load()
	}
	pred := e.predictions.Load()
	for i := range e.perOp {
		perOp[i].pred = e.perOp[i].predictions.Load()
	}
	evals := e.evals.Load()
	evalNanos := e.evalNanos.Load()

	hits := max0(rawHits - warmHits)
	misses := max0(rawMisses - warmMisses)
	st := Stats{
		Predictions:     max0(pred - warmPred),
		CacheHits:       hits,
		CacheMisses:     misses,
		Fallbacks:       e.fallbacks.Load(),
		Generation:      e.generation.Load(),
		CacheLen:        e.cache.Len(),
		CacheCap:        e.cache.Capacity(),
		Shards:          e.cache.Shards(),
		WarmupDecisions: warmPred,
		WarmupHits:      warmHits,
		WarmupMisses:    warmMisses,
	}
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	if evals > 0 {
		st.MeanEvalMicros = float64(evalNanos) / float64(evals) / 1e3
	}
	for i, snap := range perOp {
		os := OpStats{
			Predictions: max0(snap.pred - snap.warmPred),
			CacheHits:   max0(snap.hits - snap.warmHits),
			CacheMisses: max0(snap.misses - snap.warmMisses),
		}
		if os.Predictions == 0 && os.CacheHits == 0 && os.CacheMisses == 0 {
			continue
		}
		if total := os.CacheHits + os.CacheMisses; total > 0 {
			os.HitRate = float64(os.CacheHits) / float64(total)
		}
		if st.PerOp == nil {
			st.PerOp = make(map[string]OpStats, len(perOp))
		}
		st.PerOp[Op(i).String()] = os
	}
	return st
}

func max0(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}
