package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrStop lets a scan callback terminate the scan early without an error
// reaching the caller.
var ErrStop = errors.New("trace: stop scan")

// ScanStats reports what a scan read and — for damaged traces — exactly
// what it dropped. A crashed daemon leaves a truncated final block and a
// torn disk leaves CRC mismatches; the reader recovers every intact block
// (the valid prefix, plus any intact blocks after a bad one it can
// re-synchronise to) and accounts for the rest here instead of failing.
type ScanStats struct {
	// Files is the number of trace files scanned.
	Files int
	// Records and Blocks count what was successfully decoded.
	Records int64
	Blocks  int64
	// DroppedBlocks counts blocks lost to CRC mismatches or decode errors;
	// DroppedBytes counts all bytes skipped, including a garbage or
	// truncated tail that ends a file early.
	DroppedBlocks int64
	DroppedBytes  int64
	// Corrupt holds one human-readable note per recovery event.
	Corrupt []string
}

// merge folds o into s.
func (s *ScanStats) merge(o ScanStats) {
	s.Files += o.Files
	s.Records += o.Records
	s.Blocks += o.Blocks
	s.DroppedBlocks += o.DroppedBlocks
	s.DroppedBytes += o.DroppedBytes
	s.Corrupt = append(s.Corrupt, o.Corrupt...)
}

// ScanFiles streams every record of the given trace files, in file order,
// through fn. The *Record passed to fn is reused between calls; callers
// that retain it must copy it. Corruption within a file is recovered and
// reported in the stats; fn returning ErrStop ends the scan cleanly, any
// other error aborts it.
func ScanFiles(paths []string, fn func(*Record) error) (ScanStats, error) {
	var total ScanStats
	for _, path := range paths {
		st, err := ScanFile(path, fn)
		total.merge(st)
		if errors.Is(err, ErrStop) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ScanFile streams one trace file through fn (see ScanFiles). A missing or
// version-skewed header is an error — there is nothing to recover — while
// damage after the header is recovered around and reported in the stats.
func ScanFile(path string, fn func(*Record) error) (ScanStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScanStats{}, err
	}
	defer f.Close()
	st := ScanStats{Files: 1}

	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return st, fmt.Errorf("trace: %s: short header: %w", path, err)
	}
	if string(hdr[:len(fileMagic)]) != fileMagic {
		return st, fmt.Errorf("trace: %s is not a trace file (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(fileMagic):]); v != Version {
		return st, fmt.Errorf("trace: %s: format version %d (this reader supports %d)", path, v, Version)
	}

	var (
		rec     Record
		bhdr    [blockHdr]byte
		payload []byte
		offset  = int64(headerLen)
	)
	note := func(format string, args ...any) {
		st.Corrupt = append(st.Corrupt, fmt.Sprintf("%s: %s", path, fmt.Sprintf(format, args...)))
	}
	dropTail := func(already int64, reason string) {
		n, _ := io.Copy(io.Discard, br)
		st.DroppedBytes += already + n
		note("%s at offset %d; %d trailing bytes dropped", reason, offset, already+n)
	}
	for {
		n, err := io.ReadFull(br, bhdr[:])
		if err == io.EOF {
			return st, nil // clean end of file
		}
		if err != nil {
			dropTail(int64(n), "truncated block header")
			return st, nil
		}
		if binary.LittleEndian.Uint32(bhdr[0:]) != blockMagic {
			// Either a torn write or garbage appended to the file: the
			// framing is lost, so the rest of the file is unrecoverable.
			dropTail(int64(blockHdr), "bad block magic")
			return st, nil
		}
		plen := int(binary.LittleEndian.Uint32(bhdr[4:]))
		if plen <= 0 || plen > maxBlockPayload {
			dropTail(int64(blockHdr), fmt.Sprintf("implausible block length %d", plen))
			return st, nil
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		pn, err := io.ReadFull(br, payload)
		if err != nil {
			dropTail(int64(blockHdr+pn), "truncated final block")
			return st, nil
		}
		blockLen := int64(blockHdr + plen)
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(bhdr[8:]) {
			// The framing said where the block ends, so skip just this
			// block and re-synchronise at the next header.
			st.DroppedBlocks++
			st.DroppedBytes += blockLen
			note("block CRC mismatch at offset %d; %d-byte block dropped", offset, blockLen)
			offset += blockLen
			continue
		}
		recs, err := scanBlock(payload, &rec, fn)
		st.Records += int64(recs)
		if err != nil {
			if errors.Is(err, errBadBlock) {
				// CRC-valid but undecodable: a writer bug rather than disk
				// damage. Drop the block, keep the file.
				st.DroppedBlocks++
				st.DroppedBytes += blockLen
				note("undecodable block at offset %d; dropped", offset)
				offset += blockLen
				continue
			}
			return st, err
		}
		st.Blocks++
		offset += blockLen
	}
}

// errBadBlock marks a CRC-valid payload that fails to decode.
var errBadBlock = errors.New("trace: malformed block payload")

// scanBlock decodes one block payload, passing each record to fn. It
// returns how many records fn consumed.
func scanBlock(payload []byte, rec *Record, fn func(*Record) error) (int, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, errBadBlock
	}
	pos := n
	first, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return 0, errBadBlock
	}
	pos += n
	prev := int64(first)
	done := 0
	for i := uint64(0); i < count; i++ {
		n := decodeRecord(payload[pos:], rec, prev)
		if n == 0 {
			return done, errBadBlock
		}
		pos += n
		prev = rec.TS
		if err := fn(rec); err != nil {
			return done, err
		}
		done++
	}
	if pos != len(payload) {
		return done, errBadBlock
	}
	return done, nil
}
