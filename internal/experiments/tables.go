package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tabulate"
)

// Table3 regenerates the Setonix model-comparison table (Table III).
func Table3(w io.Writer, lab *Lab) error {
	return modelTable(w, lab, "Setonix",
		"paper: XGBoost wins (est. mean 1.50); linear models are fast but inaccurate;\n"+
			"Random Forest is accurate but its evaluation latency sinks the speedup.")
}

// Table4 regenerates the Gadi model-comparison table (Table IV).
func Table4(w io.Writer, lab *Lab) error {
	return modelTable(w, lab, "Gadi",
		"paper: XGBoost wins again (est. mean 1.06-1.07); margins are thinner on 48 cores.")
}

func modelTable(w io.Writer, lab *Lab, platform, paperNote string) error {
	p, err := PlatformByName(platform)
	if err != nil {
		return err
	}
	res, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table for %s (<= 500 MB, %d shapes, reference %d threads)\n",
		platform, lab.Scale.TrainShapes, p.RefThreads)
	fmt.Fprint(w, core.RenderReport(res.Reports))
	fmt.Fprintf(w, "selected model: %s\n%s\n", res.Library.ModelKind(), paperNote)
	return nil
}

// speedupRow evaluates the trained library over a holdout sweep and returns
// per-shape speedups vs the reference thread count, including model
// evaluation latency amortised over the iters-iteration timing loop of
// §V-B.3 (the prediction cache of §III-C fires on every repeat).
func speedupRow(lib *core.Library, holdout []core.ShapeTimings, refThreads, iters int) []float64 {
	if iters < 1 {
		iters = 1
	}
	evalSec := lib.EvalSeconds() / float64(iters)
	var out []float64
	for _, st := range holdout {
		ref, ok := st.TimeAt(refThreads)
		if !ok {
			continue
		}
		choice := lib.OptimalThreads(st.Shape.M, st.Shape.K, st.Shape.N)
		chosen, ok := st.TimeAt(choice)
		if !ok {
			continue
		}
		out = append(out, ref/(chosen+evalSec))
	}
	return out
}

// filterByCap keeps holdout entries whose footprint is at most capMB.
func filterByCap(holdout []core.ShapeTimings, capMB int) []core.ShapeTimings {
	var out []core.ShapeTimings
	for _, st := range holdout {
		if st.Shape.Bytes(4) <= int64(capMB)*1000*1000 {
			out = append(out, st)
		}
	}
	return out
}

// speedupStats runs the Table V/VI protocol for one hyper-threading setting.
func speedupStats(w io.Writer, lab *Lab, ht bool, title, paperNote string) error {
	fmt.Fprintln(w, title)
	tb := tabulate.New("statistic", "Setonix 0-500", "Setonix 0-100", "Gadi 0-500", "Gadi 0-100")
	cols := make([][]float64, 0, 4)
	for _, p := range Platforms() {
		// The 0-100 MB column uses a dedicated 100 MB-capped install run and
		// holdout, matching the paper's per-range experiments (Fig 1 and the
		// abstract quote both come from dedicated <= 100 MB datasets).
		for _, capMB := range []int{500, 100} {
			res, err := lab.Train(p, capMB, ht)
			if err != nil {
				return err
			}
			holdout, err := lab.Holdout(p, capMB, ht)
			if err != nil {
				return err
			}
			cols = append(cols, speedupRow(res.Library, holdout, p.RefThreads, lab.Scale.Iters))
		}
	}
	summaries := make([]stats.Summary, len(cols))
	for i, c := range cols {
		summaries[i] = stats.Describe(c)
	}
	row := func(name string, get func(stats.Summary) float64) {
		cells := []string{name}
		for _, s := range summaries {
			cells = append(cells, tabulate.F(get(s), 2))
		}
		tb.Row(cells...)
	}
	row("Mean Speedup", func(s stats.Summary) float64 { return s.Mean })
	row("Standard Deviation", func(s stats.Summary) float64 { return s.Std })
	row("Min Speedup", func(s stats.Summary) float64 { return s.Min })
	row("25th Percentile", func(s stats.Summary) float64 { return s.P25 })
	row("50th Percentile", func(s stats.Summary) float64 { return s.Median })
	row("75th Percentile", func(s stats.Summary) float64 { return s.P75 })
	row("Max Speedup", func(s stats.Summary) float64 { return s.Max })
	fmt.Fprint(w, tb.String())
	fmt.Fprintln(w, paperNote)
	return nil
}

// Table5 regenerates the hyper-threaded speedup statistics (Table V).
func Table5(w io.Writer, lab *Lab) error {
	return speedupStats(w, lab, true,
		fmt.Sprintf("Table V: ADSALA speedup statistics with hyper-threading (%d-shape holdout)", lab.Scale.HoldoutShapes),
		"paper: means 1.32/1.41 (Setonix) and 1.07/1.26 (Gadi); 0-100 MB beats 0-500 MB\n"+
			"at every percentile; Setonix beats Gadi throughout.")
}

// Table6 regenerates the no-hyper-threading statistics (Table VI).
func Table6(w io.Writer, lab *Lab) error {
	return speedupStats(w, lab, false,
		fmt.Sprintf("Table VI: ADSALA speedup statistics, hyper-threading off (%d-shape holdout)", lab.Scale.HoldoutShapes),
		"paper: largely similar to Table V, with slightly lower means at 0-500 MB and\n"+
			"higher spread; the method does not depend on SMT.")
}

// Table7 regenerates the profiling breakdown (Table VII): wall-time
// decomposition of two skinny GEMMs at max threads vs the ML-chosen count
// on Gadi, scaled to the paper's 1000 repetitions.
func Table7(w io.Writer, lab *Lab) error {
	p, _ := PlatformByName("Gadi")
	res, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}
	sim := lab.Sim(p, true)
	const reps = 1000
	cases := [][3]int{{64, 2048, 64}, {64, 64, 4096}}
	fmt.Fprintf(w, "Table VII: time breakdown on Gadi, %d repetitions (seconds)\n", reps)
	tb := tabulate.New("m,k,n", "config", "threads", "total", "sync+spawn", "kernel", "copy")
	for _, c := range cases {
		m, k, n := c[0], c[1], c[2]
		ml := res.Library.OptimalThreads(m, k, n)
		for _, cfg := range []struct {
			label   string
			threads int
		}{{"no ML", 96}, {"with ML", ml}} {
			b := sim.Breakdown(m, k, n, cfg.threads)
			tb.Row(
				fmt.Sprintf("%d,%d,%d", m, k, n), cfg.label, tabulate.D(cfg.threads),
				tabulate.F(b.Total()*reps, 3), tabulate.F((b.Sync+b.Spawn)*reps, 3),
				tabulate.F(b.Kernel*reps, 3), tabulate.F(b.Copy*reps, 3),
			)
		}
	}
	fmt.Fprint(w, tb.String())
	fmt.Fprintln(w, "paper: ML picks 14 threads for 64,2048,64 and 1 for 64,64,4096; at max")
	fmt.Fprintln(w, "threads the data copy dominates; with ML all three components collapse.")
	return nil
}
