// adsala-serve is the prediction-serving daemon: it loads a library written
// by adsala-train and answers thread-selection queries over HTTP from a
// sharded decision cache.
//
// Endpoints:
//
//	GET  /predict?m=&k=&n=&op=  one decision (add &detail=1 for the ranking)
//	POST /predict               {"m":..,"k":..,"n":..,"op":"gemm"|"syrk"|"syr2k"}
//	POST /batch                 {"shapes":[{"m":..,"k":..,"n":..,"op":..},...]}
//	GET  /stats                 cache, engine and HTTP latency metrics
//	GET  /healthz               readiness probe: 503 while starting or draining
//	GET  /livez                 liveness probe: 200 whenever the process answers
//	GET  /metrics               Prometheus text exposition
//
// The op field selects the registered operation the decision is for
// (default "gemm"); decisions are cached per (op, shape) and rank with the
// op's own model when the library was trained with one (adsala-train
// -ops gemm,syrk,...). Symmetric updates pass the (n, k, n) triple of the
// output shape. Mixed-op batches split per op and preserve request order.
//
// Usage:
//
//	adsala-serve -lib gadi.adsala.json -addr :8080 -warmup 256
//	adsala-serve -lib gadi.adsala.json -cache-snapshot decisions.json
//
// -warmup pre-populates the decision cache for every op the library holds
// a trained model for. -cache-snapshot persists the decision cache across
// restarts: the file is loaded at start when present and written on
// graceful shutdown (SIGINT/SIGTERM), so a restarted daemon answers its
// warmed working set immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	adsala "repro"
	"repro/internal/logx"
	"repro/internal/sampling"
	"repro/internal/serve"
)

// config is the parsed command line of the daemon.
type config struct {
	libPath     string
	addr        string
	cacheSize   int
	shards      int
	workers     int
	warmup      int
	warmupCapMB int
	warmupSeed  int64
	snapshot    string
	pprof       bool
	level       logx.Level
}

// parseFlags parses args (without the program name) into a config. Usage
// and parse errors print to out; a help request returns flag.ErrHelp.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("adsala-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var cfg config
	fs.StringVar(&cfg.libPath, "lib", "adsala.json", "library file written by adsala-train")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.cacheSize, "cache", 4096, "decision cache capacity (entries, rounded to a power of two)")
	fs.IntVar(&cfg.shards, "shards", 16, "decision cache shard count (rounded to a power of two)")
	fs.IntVar(&cfg.workers, "workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.warmup, "warmup", 0, "pre-populate the cache with this many sampled shapes")
	fs.IntVar(&cfg.warmupCapMB, "warmup-cap", 100, "memory cap in MB of the warm-up sampling domain")
	fs.Int64Var(&cfg.warmupSeed, "warmup-seed", 1, "warm-up sampling seed")
	fs.StringVar(&cfg.snapshot, "cache-snapshot", "", "decision-cache snapshot file: loaded at start when present, saved on graceful shutdown")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	level := logx.RegisterFlag(fs)
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	lvl, err := logx.ParseLevel(*level)
	if err != nil {
		return cfg, err
	}
	cfg.level = lvl
	if cfg.warmup < 0 {
		return cfg, fmt.Errorf("-warmup must be >= 0, got %d", cfg.warmup)
	}
	if cfg.warmupCapMB < 1 {
		return cfg, fmt.Errorf("-warmup-cap must be >= 1, got %d", cfg.warmupCapMB)
	}
	return cfg, nil
}

// buildServer loads the library and returns the HTTP front end over a cold
// engine — cheap enough to run before the listener starts. Progress lines
// go to out at the configured -log-level.
func buildServer(cfg config, out io.Writer) (*serve.Server, error) {
	lg := logx.New(out, cfg.level)
	lib, err := adsala.Load(cfg.libPath)
	if err != nil {
		return nil, err
	}
	eng := lib.Engine(serve.Options{
		CacheSize: cfg.cacheSize,
		Shards:    cfg.shards,
		Workers:   cfg.workers,
	})
	lg.Infof("loaded %s: platform=%s model=%s, cache %d entries / %d shards",
		cfg.libPath, lib.Platform(), lib.ModelKind(), eng.Cache().Capacity(), eng.Cache().Shards())
	srv := serve.NewServer(eng)
	if cfg.pprof {
		srv.EnablePprof()
		lg.Infof("pprof enabled at /debug/pprof/")
	}
	return srv, nil
}

// prepare runs the potentially slow boot phases — snapshot restore and
// cache warm-up. The daemon runs it with the listener already up and
// readiness off, so probes see 503 "starting" rather than connection
// refused during a long warm-up.
func prepare(cfg config, srv *serve.Server, out io.Writer) error {
	lg := logx.New(out, cfg.level)
	eng := srv.Engine()
	if cfg.snapshot != "" {
		n, err := eng.Cache().Load(cfg.snapshot)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: the snapshot appears on the first graceful
			// shutdown. Any other load error is fatal — silently starting
			// cold (and overwriting the file on exit) would lose the
			// operator's warmed working set.
		case err != nil:
			return err
		default:
			lg.Infof("restored %d cached decisions from %s", n, cfg.snapshot)
		}
	}
	if cfg.warmup > 0 {
		start := time.Now()
		dom := sampling.DefaultDomain().WithCapMB(cfg.warmupCapMB)
		// Warms every op the library holds a trained model for.
		n, err := eng.Warmup(dom, cfg.warmup, cfg.warmupSeed)
		if err != nil {
			return err
		}
		lg.Infof("warmed %d decisions in %v", n, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// newServer builds the fully prepared front end in one call — the
// in-process construction path used by tests and embedders; the daemon's
// run() interleaves the same two phases around the listener start.
func newServer(cfg config, out io.Writer) (*serve.Server, error) {
	srv, err := buildServer(cfg, out)
	if err != nil {
		return nil, err
	}
	if err := prepare(cfg, srv, out); err != nil {
		return nil, err
	}
	srv.SetReady(true)
	return srv, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	if err != nil {
		return err
	}
	lg := logx.New(out, cfg.level)
	handler, err := buildServer(cfg, out)
	if err != nil {
		return err
	}
	handler.SetReady(false)
	srv := &http.Server{Addr: cfg.addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		lg.Infof("serving on %s", cfg.addr)
		errc <- srv.ListenAndServe()
	}()
	// Restore and warm with the listener already up: /healthz answers 503
	// "starting" until the cache is ready, /livez and /metrics work
	// throughout.
	if err := prepare(cfg, handler, out); err != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return err
	}
	handler.SetReady(true)
	lg.Infof("ready")
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Flip readiness before the listener closes so probes observe the
		// drain instead of racing connection resets.
		handler.SetReady(false)
		lg.Infof("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr := srv.Shutdown(shutdownCtx)
		// Save the snapshot even when graceful shutdown timed out: the
		// cache is still valid, Save is atomic, and losing the warmed
		// working set on exactly the restart path the snapshot exists for
		// would defeat it.
		if cfg.snapshot != "" {
			cache := handler.Engine().Cache()
			if err := cache.Save(cfg.snapshot); err != nil {
				if shutdownErr != nil {
					return fmt.Errorf("%w (and cache snapshot failed: %v)", shutdownErr, err)
				}
				return err
			}
			lg.Infof("saved %d cached decisions to %s", cache.Len(), cfg.snapshot)
		}
		return shutdownErr
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-serve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
