package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ZeroAlloc rejects allocating constructs in functions annotated
// //adsala:zeroalloc, transitively through same-module callees. It is the
// static half of the hot-path allocation contract; testing.AllocsPerRun
// tests pin the same functions dynamically.
//
// Flagged constructs: make, new, append, slice/map composite literals,
// &T{...} literals, function literals (closures), go statements, fmt
// calls, string<->[]byte/[]rune conversions, and interface boxing of
// non-pointer-shaped values at call boundaries or explicit conversions.
// Dynamic calls (interface methods, function values) and calls out of the
// module cannot be inspected and are trusted — the AllocsPerRun tests
// cover that gap.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "reject allocating constructs in //adsala:zeroalloc functions, transitively through same-module callees",
	Run:  runZeroAlloc,
}

// allocSite is one allocating construct inside one function.
type allocSite struct {
	pos  token.Pos
	what string
}

// callEdge is one statically-resolved same-module call.
type callEdge struct {
	pos  token.Pos
	key  string
	name string // human-readable callee name (pkg.Func)
}

// funcFacts summarizes one function body for the transitive walk.
type funcFacts struct {
	local []allocSite
	calls []callEdge
}

// zeroAllocState memoizes per-function facts and per-package ignore
// indices across one package's run.
type zeroAllocState struct {
	mod     *Module
	facts   map[*FuncSource]*funcFacts
	ignores map[*Package]*ignoreIndex
}

func runZeroAlloc(pass *Pass) error {
	st := &zeroAllocState{
		mod:     pass.Module,
		facts:   make(map[*FuncSource]*funcFacts),
		ignores: make(map[*Package]*ignoreIndex),
	}
	pkg := pass.Module.Pkgs[pass.Pkg.Path()]
	if pkg == nil {
		return fmt.Errorf("package %s not in module view", pass.Pkg.Path())
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(funcDoc(fd), "zeroalloc") {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fs := pass.Module.FuncSource(obj)
			if fs == nil {
				continue
			}
			st.reportFunc(pass, fd.Name.Name, fs)
		}
	}
	return nil
}

// reportFunc reports every allocation reachable from the annotated root:
// local constructs at their own position, transitive ones at the call
// site that reaches them.
func (st *zeroAllocState) reportFunc(pass *Pass, name string, root *FuncSource) {
	facts := st.factsFor(root)
	for _, a := range facts.local {
		pass.Reportf(a.pos, "%s is //adsala:zeroalloc but %s", name, a.what)
	}
	for _, edge := range facts.calls {
		visiting := map[string]bool{FuncKey(mustFunc(root)): true}
		if hit := st.findAlloc(edge.key, visiting); hit != nil {
			pos := pass.Fset.Position(hit.pos)
			pass.Reportf(edge.pos, "%s is //adsala:zeroalloc but call to %s allocates: %s at %s:%d",
				name, edge.name, hit.what, pos.Filename, pos.Line)
		}
	}
}

// mustFunc resolves the types.Func of a FuncSource (always present: the
// index only holds checked declarations).
func mustFunc(fs *FuncSource) *types.Func {
	obj, _ := fs.Pkg.Info.Defs[fs.Decl.Name].(*types.Func)
	return obj
}

// findAlloc walks the same-module call graph from key and returns the
// first allocating construct found, or nil.
func (st *zeroAllocState) findAlloc(key string, visiting map[string]bool) *allocSite {
	if visiting[key] || len(visiting) > 64 {
		return nil
	}
	visiting[key] = true
	defer delete(visiting, key)
	fs := st.mod.funcs[key]
	if fs == nil {
		return nil
	}
	facts := st.factsFor(fs)
	if len(facts.local) > 0 {
		return &facts.local[0]
	}
	for _, edge := range facts.calls {
		if hit := st.findAlloc(edge.key, visiting); hit != nil {
			return hit
		}
	}
	return nil
}

// factsFor computes (memoized) the allocation facts of one function,
// filtering local sites through the defining package's ignore directives
// so a justified //adsala:ignore on a helper suppresses findings in every
// annotated caller.
func (st *zeroAllocState) factsFor(fs *FuncSource) *funcFacts {
	if f, ok := st.facts[fs]; ok {
		return f
	}
	facts := &funcFacts{}
	st.facts[fs] = facts // pre-store: recursion terminates on cycles

	idx := st.ignores[fs.Pkg]
	if idx == nil {
		idx = buildIgnoreIndex(st.mod.Fset, fs.Pkg.Files)
		st.ignores[fs.Pkg] = idx
	}
	report := func(pos token.Pos, what string) {
		if !idx.suppressed("zeroalloc", pos) {
			facts.local = append(facts.local, allocSite{pos: pos, what: what})
		}
	}

	info := fs.Pkg.Info
	ast.Inspect(fs.Decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			report(node.Pos(), "function literal may allocate a closure")
			return false // constructs inside the closure belong to it
		case *ast.GoStmt:
			report(node.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch info.Types[node].Type.Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), "slice literal allocates")
			case *types.Map:
				report(node.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					report(node.Pos(), "&T{...} composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			st.checkCall(fs, node, report, facts)
		}
		return true
	})
	return facts
}

// checkCall classifies one call: builtin allocator, conversion, fmt call,
// static same-module edge, or unresolvable dynamic call (trusted).
func (st *zeroAllocState) checkCall(fs *FuncSource, call *ast.CallExpr, report func(token.Pos, string), facts *funcFacts) {
	info := fs.Pkg.Info

	// Type conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		st.checkConversion(fs, call, tv.Type, report)
		return
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		// Builtin or dynamic call.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
		}
		return
	}

	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		report(call.Pos(), "call to fmt."+callee.Name()+" allocates")
		return
	}

	st.checkBoxedArgs(fs, call, callee, report)

	if src := st.mod.FuncSource(callee); src != nil {
		name := callee.Name()
		if pkg := callee.Pkg(); pkg != nil {
			name = pkg.Name() + "." + name
		}
		facts.calls = append(facts.calls, callEdge{pos: call.Pos(), key: FuncKey(callee), name: name})
	}
}

// checkConversion flags conversions that allocate: string<->[]byte/[]rune
// and boxing a non-pointer-shaped value into an interface.
func (st *zeroAllocState) checkConversion(fs *FuncSource, call *ast.CallExpr, to types.Type, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	from := fs.Pkg.Info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	if isStringBytesConv(from, to) {
		report(call.Pos(), "string/[]byte conversion copies and allocates")
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) && !isPointerShaped(from) {
		report(call.Pos(), fmt.Sprintf("conversion of %s to interface boxes and allocates", from))
	}
}

// checkBoxedArgs flags arguments whose concrete non-pointer-shaped value
// is boxed into an interface parameter.
func (st *zeroAllocState) checkBoxedArgs(fs *FuncSource, call *ast.CallExpr, callee *types.Func, report func(token.Pos, string)) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	info := fs.Pkg.Info
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through ... does not box per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if types.IsInterface(at.Underlying()) || isPointerShaped(at) || isTypeParam(at) {
			continue
		}
		if info.Types[arg].Value != nil {
			continue // constants below 256 hit the runtime's static boxes
		}
		report(arg.Pos(), fmt.Sprintf("passing %s as interface %s boxes and allocates", at, pt))
	}
}

// calleeFunc resolves the static callee of a call, or nil for builtins,
// function values and interface-method calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			// An interface-method call is dynamic: no body to inspect.
			if types.IsInterface(sel.Recv().Underlying()) {
				return nil
			}
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func) // qualified pkg.Func
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// isPointerShaped reports whether values of t fit an interface data word
// without allocation: pointers, channels, maps, functions and
// unsafe.Pointer.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isTypeParam reports whether t is a type parameter (generic code is
// checked per construct, not per instantiation; a type-param argument is
// trusted).
func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

// isStringBytesConv reports whether a conversion between from and to
// copies memory (string <-> []byte / []rune).
func isStringBytesConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isString(to) && isByteOrRuneSlice(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
