// adsala-worker is the distributed-gather worker daemon: it executes timing
// work units dispatched by an adsala-train coordinator (-workers flag),
// timing the registry kernels on this machine and answering result polls
// over HTTP.
//
// Endpoints:
//
//	POST /register  accept a sweep spec (op, timing backend, domain, seed,
//	                candidates, iters) and build the timing backend
//	POST /work      accept one work unit ({start, count} into the sweep's
//	                deterministic Halton sample stream); executes async
//	GET  /result    poll one unit's result (?session=&id=)
//	GET  /healthz   readiness probe: 503 until a sweep is registered and
//	                once drain begins
//	GET  /livez     liveness probe: 200 whenever the process answers
//	GET  /metrics   Prometheus text exposition
//	POST /drain     stop accepting new units; in-flight units finish
//
// The timing backend comes from the coordinator's spec: simtime.RealTimer
// for real installs (the default), or the deterministic Simulator. With
// -sim the worker only accepts simulator sweeps — the guard tests and CI
// use so no wall-clock timing ever runs there.
//
// Usage:
//
//	adsala-worker -addr :9090
//	adsala-worker -addr :9091 -sim   # simulator-only (tests, CI)
//
// On SIGINT/SIGTERM the daemon drains: it refuses new units, finishes the
// in-flight ones (the coordinator keeps polling /result meanwhile), then
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gather"
	"repro/internal/logx"
)

// config is the parsed command line of the daemon.
type config struct {
	addr         string
	name         string
	sim          bool
	concurrency  int
	drainTimeout time.Duration
	linger       time.Duration
	pprof        bool
	level        logx.Level
}

// parseFlags parses args (without the program name) into a config. Usage
// and parse errors print to out; a help request returns flag.ErrHelp.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("adsala-worker", flag.ContinueOnError)
	fs.SetOutput(out)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":9090", "listen address")
	fs.StringVar(&cfg.name, "name", "", "worker name reported to the coordinator (default: the listen address)")
	fs.BoolVar(&cfg.sim, "sim", false, "only accept simulator-backend sweeps (no real timing; for tests and CI)")
	fs.IntVar(&cfg.concurrency, "concurrency", 1, "units executed in parallel (1 keeps the machine idle for timing)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight units on shutdown")
	fs.DurationVar(&cfg.linger, "linger", 10*time.Second, "max wait after drain for the coordinator to fetch completed results")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	level := logx.RegisterFlag(fs)
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	lvl, err := logx.ParseLevel(*level)
	if err != nil {
		return cfg, err
	}
	cfg.level = lvl
	if cfg.concurrency < 1 {
		return cfg, fmt.Errorf("-concurrency must be >= 1, got %d", cfg.concurrency)
	}
	return cfg, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	if err != nil {
		return err
	}
	name := cfg.name
	if name == "" {
		name = cfg.addr
	}
	// One leveled logger for the whole daemon: lifecycle lines at info,
	// per-unit execution noise at debug.
	lg := logx.New(out, cfg.level)
	worker := gather.NewWorker(gather.WorkerOptions{
		Name:        name,
		RequireSim:  cfg.sim,
		Concurrency: cfg.concurrency,
		Logf:        lg.Infof,
		DebugLogf:   lg.Debugf,
	})
	if cfg.pprof {
		worker.EnablePprof()
		lg.Infof("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: cfg.addr, Handler: worker}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		mode := "real timing"
		if cfg.sim {
			mode = "simulator only"
		}
		lg.Infof("worker %s listening on %s (%s)", name, cfg.addr, mode)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		lg.Infof("draining")
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		if err := worker.Drain(drainCtx); err != nil {
			lg.Infof("drain: %v (shutting down anyway)", err)
		}
		// Keep /result answering until the coordinator has collected every
		// completed unit (bounded by -linger): shutting down the instant
		// the kernels finish would discard exactly the work the drain
		// waited for, and stall the coordinator for a full unit timeout.
		if worker.Unfetched() > 0 {
			lg.Infof("lingering for %d unfetched results", worker.Unfetched())
			lingerCtx, cancel2 := context.WithTimeout(context.Background(), cfg.linger)
			defer cancel2()
			if err := worker.WaitFetched(lingerCtx); err != nil {
				lg.Infof("linger: %v (shutting down anyway)", err)
			}
		}
		shutdownCtx, cancel3 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel3()
		return srv.Shutdown(shutdownCtx)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-worker: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
