package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the project's Prometheus naming scheme at obs
// registration sites:
//
//   - names are literal (constant) strings — a computed name defeats
//     grep, dashboards and this analyzer alike; variance belongs in
//     labels;
//   - names match adsala_[a-z0-9_]+;
//   - counters end in _total, gauges do not, histograms end in a unit
//     suffix (_seconds, _bytes, _size or _count);
//   - one package registering the same name as two different metric
//     types, or at several sites without labels to tell the series
//     apart, is reported at vet time instead of panicking at serve time.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs registrations use literal adsala_* names with conventional suffixes and no conflicting duplicates",
	Run:  runMetricName,
}

var metricNameRe = regexp.MustCompile(`^adsala_[a-z0-9_]+$`)

// obsRegMethods maps obs.Registry method names to the index of the first
// variadic label argument and the Prometheus type they register.
var obsRegMethods = map[string]struct {
	labelStart int
	promType   string
}{
	"Counter":           {2, "counter"},
	"CounterFunc":       {3, "counter"},
	"Gauge":             {2, "gauge"},
	"GaugeFunc":         {3, "gauge"},
	"Histogram":         {3, "histogram"},
	"RegisterHistogram": {3, "histogram"},
}

// histogramUnits are the accepted histogram name suffixes.
var histogramUnits = []string{"_seconds", "_bytes", "_size", "_count"}

// regSite is one registration call site.
type regSite struct {
	pos       token.Pos
	promType  string
	hasLabels bool
}

func runMetricName(pass *Pass) error {
	obsPath := pass.Module.Path + "/internal/obs"
	if pass.Pkg.Path() == obsPath {
		return nil // the obs package itself registers nothing
	}
	sites := make(map[string][]regSite)
	var order []string
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
				return true
			}
			reg, ok := obsRegMethods[fn.Name()]
			if !ok || !isRegistryMethod(fn) || len(call.Args) == 0 {
				return true
			}
			name, isConst := constString(pass.Info, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to obs.Registry.%s must be a literal string — put variance in labels", fn.Name())
				return true
			}
			checkMetricName(pass, call.Args[0].Pos(), fn.Name(), reg.promType, name)
			if _, seen := sites[name]; !seen {
				order = append(order, name)
			}
			sites[name] = append(sites[name], regSite{
				pos:       call.Pos(),
				promType:  reg.promType,
				hasLabels: len(call.Args) > reg.labelStart,
			})
			return true
		})
	}

	for _, name := range order {
		ss := sites[name]
		if len(ss) < 2 {
			continue
		}
		first := ss[0]
		conflict := false
		for _, s := range ss[1:] {
			if s.promType != first.promType {
				conflict = true
				p := pass.Fset.Position(first.pos)
				pass.Reportf(s.pos,
					"metric %q already registered as a %s at %s:%d — registering it as a %s panics at runtime",
					name, first.promType, p.Filename, p.Line, s.promType)
			}
		}
		if conflict {
			continue // the duplicate-site message would just repeat the conflict
		}
		unlabelled := 0
		for _, s := range ss {
			if !s.hasLabels {
				unlabelled++
			}
		}
		if unlabelled > 0 {
			p := pass.Fset.Position(first.pos)
			for _, s := range ss[1:] {
				pass.Reportf(s.pos,
					"metric %q registered at multiple sites (first at %s:%d) without labels distinguishing the series — merge the sites or add labels",
					name, p.Filename, p.Line)
			}
		}
	}
	return nil
}

// isRegistryMethod reports whether fn is a method on obs.Registry.
func isRegistryMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkMetricName validates one literal name against the scheme.
func checkMetricName(pass *Pass, pos token.Pos, method, promType, name string) {
	if !metricNameRe.MatchString(name) || strings.HasSuffix(name, "_") || strings.Contains(name, "__") {
		pass.Reportf(pos, "metric name %q does not match the project scheme adsala_[a-z0-9_]+", name)
		return
	}
	switch promType {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total (Prometheus counter convention)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total — that suffix is reserved for counters", name)
		}
	case "histogram":
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(pos, "histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	}
}

// constString evaluates e as a constant string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
