package blas

// Register micro-kernels. The macro-kernel dispatches on the (MR, NR) pair
// from Params; Validate restricts callers to the tiles implemented here.
//
// Tile selection (measured on the development machine, see BENCH_gemm.json):
// the gc compiler has only 16 XMM registers, so the 8×4 and 4×8 tiles spill
// accumulators to the stack and run ~35% slower than 4×4 despite touching
// more FLOPs per loop. The 4×4 kernel with the k-loop unrolled 4× is the
// fastest pure-Go variant (~1.5× the rolled kernel) and is the default; the
// wide tiles remain available through Params for platforms with more vector
// registers (and for the blocking-parameter ablation experiments).
const (
	defaultMR = 4
	defaultNR = 4
	// maxTile is the largest MR*NR product across supported tiles; the
	// macro-kernel's accumulator block is sized to it.
	maxTile = 32
)

// supportedTile reports whether an (mr, nr) micro-tile has a kernel.
func supportedTile(mr, nr int) bool {
	switch {
	case mr == 4 && nr == 4, mr == 8 && nr == 4, mr == 4 && nr == 8:
		return true
	}
	return false
}

// macroKernel multiplies the packed mc×kc A block with the packed kc×nc B
// panel, updating C(ic:ic+mc, jc:jc+nc). first selects whether beta is
// applied (only on the first KC iteration).
//
//adsala:zeroalloc
func macroKernel[T float32 | float64](alpha T, packedA, packedB []T, beta T, c view[T], ic, jc, mc, nc, kc int, first bool, prm Params) {
	mr, nr := prm.MR, prm.NR
	var acc [maxTile]T
	for i0 := 0; i0 < mc; i0 += mr {
		ib := min(mr, mc-i0)
		aPanel := packedA[(i0/mr)*kc*mr:]
		for j0 := 0; j0 < nc; j0 += nr {
			jb := min(nr, nc-j0)
			bPanel := packedB[(j0/nr)*kc*nr:]
			switch {
			case mr == 4 && nr == 4:
				micro4x4(aPanel, bPanel, kc, &acc)
			case mr == 8 && nr == 4:
				micro8x4(aPanel, bPanel, kc, &acc)
			default: // 4x8, enforced by Validate
				micro4x8(aPanel, bPanel, kc, &acc)
			}
			storeTile(alpha, beta, first, &acc, c, ic+i0, jc+j0, ib, jb, nr)
		}
	}
}

// micro4x4 computes one 4×4 tile over kc rank-1 updates. The k loop is
// unrolled 4×: the accumulators stay in registers across the unrolled body,
// and the per-step slice expressions collapse the bounds checks to one per
// operand per step. The per-accumulator addition order is identical to the
// rolled loop (ascending p), so results are bit-identical to it.
//
//adsala:zeroalloc
func micro4x4[T float32 | float64](aPanel, bPanel []T, kc int, acc *[maxTile]T) {
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	var c20, c21, c22, c23 T
	var c30, c31, c32, c33 T
	p := 0
	for ; p+3 < kc; p += 4 {
		a := aPanel[p*4 : p*4+16]
		b := bPanel[p*4 : p*4+16]
		{
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
		{
			a0, a1, a2, a3 := a[4], a[5], a[6], a[7]
			b0, b1, b2, b3 := b[4], b[5], b[6], b[7]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
		{
			a0, a1, a2, a3 := a[8], a[9], a[10], a[11]
			b0, b1, b2, b3 := b[8], b[9], b[10], b[11]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
		{
			a0, a1, a2, a3 := a[12], a[13], a[14], a[15]
			b0, b1, b2, b3 := b[12], b[13], b[14], b[15]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
	}
	for ; p < kc; p++ {
		a := aPanel[p*4 : p*4+4]
		b := bPanel[p*4 : p*4+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// micro8x4 computes one 8×4 tile (row-major acc layout, stride 4).
//
//adsala:zeroalloc
func micro8x4[T float32 | float64](aPanel, bPanel []T, kc int, acc *[maxTile]T) {
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	var c20, c21, c22, c23 T
	var c30, c31, c32, c33 T
	var c40, c41, c42, c43 T
	var c50, c51, c52, c53 T
	var c60, c61, c62, c63 T
	var c70, c71, c72, c73 T
	for p := 0; p < kc; p++ {
		a := aPanel[p*8 : p*8+8]
		b := bPanel[p*4 : p*4+4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a0, a1 := a[0], a[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2, a3 := a[2], a[3]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a4, a5 := a[4], a[5]
		c40 += a4 * b0
		c41 += a4 * b1
		c42 += a4 * b2
		c43 += a4 * b3
		c50 += a5 * b0
		c51 += a5 * b1
		c52 += a5 * b2
		c53 += a5 * b3
		a6, a7 := a[6], a[7]
		c60 += a6 * b0
		c61 += a6 * b1
		c62 += a6 * b2
		c63 += a6 * b3
		c70 += a7 * b0
		c71 += a7 * b1
		c72 += a7 * b2
		c73 += a7 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
	acc[16], acc[17], acc[18], acc[19] = c40, c41, c42, c43
	acc[20], acc[21], acc[22], acc[23] = c50, c51, c52, c53
	acc[24], acc[25], acc[26], acc[27] = c60, c61, c62, c63
	acc[28], acc[29], acc[30], acc[31] = c70, c71, c72, c73
}

// micro4x8 computes one 4×8 tile (row-major acc layout, stride 8).
//
//adsala:zeroalloc
func micro4x8[T float32 | float64](aPanel, bPanel []T, kc int, acc *[maxTile]T) {
	var c00, c01, c02, c03, c04, c05, c06, c07 T
	var c10, c11, c12, c13, c14, c15, c16, c17 T
	var c20, c21, c22, c23, c24, c25, c26, c27 T
	var c30, c31, c32, c33, c34, c35, c36, c37 T
	for p := 0; p < kc; p++ {
		a := aPanel[p*4 : p*4+4]
		b := bPanel[p*8 : p*8+8]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		b4, b5, b6, b7 := b[4], b[5], b[6], b[7]
		a0 := a[0]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		a1 := a[1]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		a2 := a[2]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		a3 := a[3]
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c04, c05, c06, c07
	acc[8], acc[9], acc[10], acc[11] = c10, c11, c12, c13
	acc[12], acc[13], acc[14], acc[15] = c14, c15, c16, c17
	acc[16], acc[17], acc[18], acc[19] = c20, c21, c22, c23
	acc[20], acc[21], acc[22], acc[23] = c24, c25, c26, c27
	acc[24], acc[25], acc[26], acc[27] = c30, c31, c32, c33
	acc[28], acc[29], acc[30], acc[31] = c34, c35, c36, c37
}

// storeTile writes the accumulated tile into C with alpha/beta handling,
// clipping to the ib×jb valid region. nr is the accumulator row stride.
func storeTile[T float32 | float64](alpha, beta T, first bool, acc *[maxTile]T, c view[T], ci, cj, ib, jb, nr int) {
	for i := 0; i < ib; i++ {
		row := c.data[(ci+i)*c.stride+cj : (ci+i)*c.stride+cj+jb]
		av := acc[i*nr : i*nr+jb]
		switch {
		case !first:
			if alpha == 1 {
				for j, v := range av {
					row[j] += v
				}
			} else {
				for j, v := range av {
					row[j] += alpha * v
				}
			}
		case beta == 0:
			if alpha == 1 {
				copy(row, av)
			} else {
				for j, v := range av {
					row[j] = alpha * v
				}
			}
		default:
			for j, v := range av {
				row[j] = beta*row[j] + alpha*v
			}
		}
	}
}
