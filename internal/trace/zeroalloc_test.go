package trace

import (
	"path/filepath"
	"testing"
	"time"
)

// TestRecordZeroAlloc dynamically pins the //adsala:zeroalloc contract on
// Recorder.Record: the serving hot path must not allocate when tracing is
// enabled. The drain goroutine is alloc-free in steady state (reused
// payload/block buffers, direct file writes), so concurrent draining does
// not perturb the global malloc counter AllocsPerRun reads; a huge flush
// interval keeps block assembly out of the window anyway.
func TestRecordZeroAlloc(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	r, err := Open(prefix, Options{RingSize: 1 << 16, FlushInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	rec := testRecord(3)
	r.Record(rec) // warm the path once outside the measurement
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(rec)
	})
	if allocs != 0 {
		t.Fatalf("Recorder.Record allocates %v allocs/op, want 0", allocs)
	}
	if r.Dropped() != 0 {
		t.Fatalf("ring dropped %d records during the run; size the ring up", r.Dropped())
	}
}
