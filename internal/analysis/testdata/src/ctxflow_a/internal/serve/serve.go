// Package serve sits under a restricted path suffix (internal/serve):
// minting a fresh context here is forbidden, and the request/response
// hygiene checks apply in full.
package serve

import (
	"context"
	"io"
	"net/http"
)

func fresh() context.Context {
	return context.Background() // want `context.Background\(\) in library code`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) in library code`
}

// detached carries a justified suppression, like the project's compat
// wrappers do.
func detached() context.Context {
	return context.Background() //adsala:ignore ctxflow test fixture: wrapper intentionally detaches
}

func oldRequest() (*http.Request, error) {
	return http.NewRequest("GET", "http://example.com", nil) // want `http.NewRequest drops the caller's context`
}

// mustReq threads the caller's context — the negative constructor case.
func mustReq(ctx context.Context) *http.Request {
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://example.com", nil)
	return req
}

func Fetch(c *http.Client) error { // want `exported Fetch performs HTTP I/O \(http.Client.Get\) but takes no context.Context`
	resp, err := c.Get("http://example.com")
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// FetchCtx takes a context and drains before closing — fully clean.
func FetchCtx(ctx context.Context, c *http.Client) error {
	resp, err := c.Do(mustReq(ctx))
	if err != nil {
		return err
	}
	_, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	return nil
}

func leaky(ctx context.Context, c *http.Client) error {
	resp, err := c.Do(mustReq(ctx)) // want `response body of resp is never closed`
	if err != nil {
		return err
	}
	_ = resp.StatusCode
	return nil
}

func undrained(ctx context.Context, c *http.Client) error {
	resp, err := c.Do(mustReq(ctx)) // want `response body of resp is closed but never drained`
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

// wrappedDrain consumes the body through io.LimitReader — still recognized
// as a drain because io.Copy(io.Discard, ...) encloses it.
func wrappedDrain(ctx context.Context, c *http.Client) error {
	resp, err := c.Do(mustReq(ctx))
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return nil
}

// escapes returns the response: closing becomes the caller's job, so no
// finding here.
func escapes(ctx context.Context, c *http.Client) (*http.Response, error) {
	return respOf(c, mustReq(ctx))
}

func respOf(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req)
	return resp, err
}
