package adsala

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestFacadeRecordsMeasured pins the in-process capture contract: a traced
// facade call records both halves — the decision and a FlagMeasured record
// carrying the executed thread count and a positive wall time at the same
// canonical shape — so replay gets predicted/measured pairs for free.
func TestFacadeRecordsMeasured(t *testing.T) {
	lib, _ := trainQuick(t)
	b := lib.BLAS()
	prefix := filepath.Join(t.TempDir(), "cap")
	rec, err := trace.Open(prefix, trace.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	b.Engine().SetRecorder(rec)
	defer b.Engine().SetRecorder(nil)

	rng := rand.New(rand.NewSource(1))
	m, k, n := 96, 64, 80
	a := NewMatrixF32(m, k)
	bm := NewMatrixF32(k, n)
	a.FillRandom(rng)
	bm.FillRandom(rng)
	c := NewMatrixF32(m, n)
	if err := b.SGEMM(false, false, 1, a, bm, 0, c); err != nil {
		t.Fatal(err)
	}

	rec.Flush()
	files, err := trace.Files(prefix)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	if _, err := trace.ScanFiles(files, func(r *trace.Record) error {
		recs = append(recs, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want decision + measurement: %+v", len(recs), recs)
	}
	dec, meas := recs[0], recs[1]
	if !dec.IsDecision() || meas.IsDecision() {
		t.Fatalf("record roles wrong: %+v / %+v", dec, meas)
	}
	if meas.MeasuredNs <= 0 {
		t.Errorf("MeasuredNs = %d, want > 0", meas.MeasuredNs)
	}
	if meas.M != int32(m) || meas.K != int32(k) || meas.N != int32(n) {
		t.Errorf("measurement shape = (%d,%d,%d), want (%d,%d,%d)", meas.M, meas.K, meas.N, m, k, n)
	}
	// The decision records the model's raw choice; execution (and hence the
	// measurement) runs it through the local clamp.
	if want := clampThreads(int(dec.Threads), b.localClamp()); meas.Op != dec.Op || int(meas.Threads) != want {
		t.Errorf("measurement (op %v, threads %d) disagrees with clamped decision (op %v, threads %d)",
			meas.Op, meas.Threads, dec.Op, want)
	}
}
