// adsala-bench regenerates the paper's tables and figures as text output,
// and measures the executed-GEMM performance trajectory as JSON.
//
// Usage:
//
//	adsala-bench -list
//	adsala-bench -exp table5
//	adsala-bench -exp all -scale default
//	adsala-bench -gemm-json BENCH_gemm.json
//	adsala-bench -gemm-json - -gemm-smoke
//	adsala-bench -syrk-json BENCH_syrk.json
//	adsala-bench -syrk-json - -syrk-smoke
//	adsala-bench -syr2k-json BENCH_syr2k.json
//	adsala-bench -syr2k-json - -syr2k-smoke
//	adsala-bench -serve-json BENCH_serve.json
//	adsala-bench -serve-json - -serve-addr http://localhost:8080 -serve-duration 2s
//
// -serve-json appends a serving load-generator run (closed-loop mixed-op
// clients, throughput and latency quantiles) to BENCH_serve.json; without
// -serve-addr it boots an in-process daemon over a quick simulator
// artefact (-serve-lib loads one instead).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/logx"
)

// benchLog carries the harnesses' per-case and summary progress lines
// (stderr, so they never mix with JSON reports on stdout). main replaces it
// once -log-level is parsed.
var benchLog = logx.New(os.Stderr, logx.Info)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-bench: ")
	var (
		exp        = flag.String("exp", "all", "experiment id or \"all\"")
		scale      = flag.String("scale", "default", "quick, default or paper")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		gemmJSON   = flag.String("gemm-json", "", "measure the GEMM kernel and write a JSON report to this file (\"-\" for stdout), then exit")
		gemmSmoke  = flag.Bool("gemm-smoke", false, "with -gemm-json: run each case once without timing (CI regression guard)")
		syrkJSON   = flag.String("syrk-json", "", "measure the SYRK kernel and write a JSON report to this file (\"-\" for stdout), then exit")
		syrkSmoke  = flag.Bool("syrk-smoke", false, "with -syrk-json: run each case once without timing (CI regression guard)")
		syr2kJSON  = flag.String("syr2k-json", "", "measure the SYR2K kernel and write a JSON report to this file (\"-\" for stdout), then exit")
		syr2kSmoke = flag.Bool("syr2k-smoke", false, "with -syr2k-json: run each case once without timing (CI regression guard)")

		serveJSON     = flag.String("serve-json", "", "run the serving load generator and append the run to this report file (\"-\" for stdout), then exit")
		serveAddr     = flag.String("serve-addr", "", "with -serve-json: base URL of a running adsala-serve daemon (empty boots one in process)")
		serveLib      = flag.String("serve-lib", "", "with -serve-json and no -serve-addr: artefact for the in-process daemon (empty trains a quick simulator one)")
		serveClients  = flag.Int("serve-clients", 8, "with -serve-json: concurrent closed-loop clients")
		serveDuration = flag.Duration("serve-duration", 5*time.Second, "with -serve-json: measured load duration")
		serveOps      = flag.String("serve-ops", "gemm,syrk,syr2k", "with -serve-json: comma-separated operation mix")
		serveBatch    = flag.Int("serve-batch", 1, "with -serve-json: shapes per request (1 = /predict, >1 = /batch)")
		serveShapes   = flag.Int("serve-shapes", 512, "with -serve-json: distinct working-set shapes per op")
		serveSeed     = flag.Int64("serve-seed", 17, "with -serve-json: working-set sampling seed")
		levelStr      = logx.RegisterFlag(flag.CommandLine)
	)
	flag.Parse()

	level, err := logx.ParseLevel(*levelStr)
	if err != nil {
		log.Fatal(err)
	}
	benchLog = logx.New(os.Stderr, level)

	if *serveJSON != "" {
		if err := runServeBench(serveBenchConfig{
			out:      *serveJSON,
			addr:     *serveAddr,
			lib:      *serveLib,
			clients:  *serveClients,
			duration: *serveDuration,
			ops:      *serveOps,
			batch:    *serveBatch,
			shapes:   *serveShapes,
			seed:     *serveSeed,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *gemmJSON != "" {
		if err := runGemmBench(*gemmJSON, *gemmSmoke); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *syrkJSON != "" {
		if err := runSyrkBench(*syrkJSON, *syrkSmoke); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *syr2kJSON != "" {
		if err := runSyr2kBench(*syr2kJSON, *syr2kSmoke); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-18s %s\n", id, experiments.Describe(id))
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		log.Fatalf("unknown scale %q (want quick, default or paper)", *scale)
	}
	lab := experiments.NewLab(sc)

	if *exp == "all" {
		if err := experiments.RunAll(os.Stdout, lab); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := experiments.Run(*exp, os.Stdout, lab); err != nil {
		log.Fatal(err)
	}
}
