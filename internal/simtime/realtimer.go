package simtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ops"
)

// RealTimer measures the pure-Go blas kernels on the local host with the
// wall clock. Operands are allocated once per distinct (op, shape)
// configuration through the operation registry's executor binding and
// reused, and Iters timing iterations are averaged per call — the same loop
// structure the paper uses for its data collection (§V-B.3).
//
// RealTimer exists so the full ADSALA workflow (sample → time → train →
// select threads) runs end-to-end on real silicon: the quickstart example
// and integration tests use it with small shapes. The paper-scale
// experiments use the Simulator. It answers for every registered BLAS-3
// operation (OpTimer), so per-op local training needs no extra plumbing.
type RealTimer struct {
	// Iters is the number of timed repetitions to average (default 3).
	Iters int

	mu    sync.Mutex
	runs  map[benchKey]func(threads int) error
	rng   *rand.Rand
	calls atomic.Int64
}

// benchKey identifies one cached executor closure.
type benchKey struct {
	op      ops.Op
	m, k, n int
}

// NewRealTimer returns a RealTimer averaging iters repetitions.
func NewRealTimer(iters int) *RealTimer {
	if iters < 1 {
		iters = 1
	}
	return &RealTimer{
		Iters: iters,
		runs:  make(map[benchKey]func(threads int) error),
		rng:   rand.New(rand.NewSource(42)),
	}
}

// Time runs the SGEMM threads-wide and returns the mean wall seconds over
// Iters repetitions.
func (t *RealTimer) Time(m, k, n, threads int) float64 {
	return t.MeasureMeanOp(ops.GEMM, m, k, n, threads, t.Iters)
}

// TimeOp is Time for an explicit registered operation.
func (t *RealTimer) TimeOp(op ops.Op, m, k, n, threads int) float64 {
	return t.MeasureMeanOp(op, m, k, n, threads, t.Iters)
}

// MeasureMean returns the mean wall seconds of exactly iters timed GEMMs
// (minimum 1). Implementing the core gather's meanTimer interface keeps the
// repetition count in one place: without it, Gather would loop Iters times
// over Time — which itself averages Iters repetitions — running Iters²
// kernel calls per configuration and silently multiplying the
// installation-time budget (Iters: 3 meant 9 timed GEMMs per point).
func (t *RealTimer) MeasureMean(m, k, n, threads, iters int) float64 {
	return t.MeasureMeanOp(ops.GEMM, m, k, n, threads, iters)
}

// MeasureMeanOp returns the mean wall seconds of exactly iters timed calls
// of the op's registry kernel (minimum 1).
func (t *RealTimer) MeasureMeanOp(op ops.Op, m, k, n, threads, iters int) float64 {
	if iters < 1 {
		iters = 1
	}
	run := t.benchFor(op, m, k, n)
	var total time.Duration
	for i := 0; i < iters; i++ {
		t.calls.Add(1)
		start := time.Now()
		// Benchmarked error path is impossible: shapes are consistent by
		// construction, so any error is a programmer bug worth surfacing.
		if err := run(threads); err != nil {
			panic("simtime: RealTimer " + op.String() + " failed: " + err.Error())
		}
		total += time.Since(start)
	}
	return total.Seconds() / float64(iters)
}

// GemmCalls returns the cumulative number of timed kernel invocations (all
// ops) — the ground truth the iters-accounting regression tests assert
// against.
func (t *RealTimer) GemmCalls() int64 { return t.calls.Load() }

// benchFor returns (building on first use) the executor closure for one
// (op, shape) configuration, with its operands allocated and filled once.
func (t *RealTimer) benchFor(op ops.Op, m, k, n int) func(threads int) error {
	key := benchKey{op, m, k, n}
	t.mu.Lock()
	defer t.mu.Unlock()
	if run, ok := t.runs[key]; ok {
		return run
	}
	run := op.Spec().NewBench(m, k, n, t.rng)
	t.runs[key] = run
	return run
}

var (
	_ Timer       = (*RealTimer)(nil)
	_ OpTimer     = (*RealTimer)(nil)
	_ MeanOpTimer = (*RealTimer)(nil)
)
