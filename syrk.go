package adsala

import (
	"runtime"

	"repro/internal/blas"
	"repro/internal/serve"
)

// Syrk is the runtime front end for symmetric rank-k updates, mirroring
// Gemm: every call consults the library's model for the thread count
// (decisions cached under the SYRK operation key, so they never alias GEMM
// decisions for the same shape triple) and executes on the packed
// blocked kernel. Thread counts are clamped to the local GOMAXPROCS.
//
// The model ranks by the (n, k, n) output shape — the paper trains on GEMM
// timings only, and extending the training sweep to SYRK's triangular cost
// profile is the natural next step its §VII future work calls for; the
// operation-keyed cache and API are already in place for that.
//
// The predict→execute path is allocation-free in steady state, like Gemm's.
// A Syrk is safe for concurrent use.
type Syrk struct {
	eng *serve.Engine
	// maxLocal caps the executed thread count (0 = GOMAXPROCS).
	maxLocal int
}

// NewSyrk returns a SYRK front end bound to the library.
func (l *Library) NewSyrk() *Syrk {
	return &Syrk{eng: serve.NewEngine(l.inner, serve.Options{})}
}

// SetMaxLocalThreads overrides the local execution clamp (useful in tests).
func (s *Syrk) SetMaxLocalThreads(n int) { s.maxLocal = n }

// localClamp returns the largest thread count to actually run.
func (s *Syrk) localClamp() int {
	if s.maxLocal > 0 {
		return s.maxLocal
	}
	return runtime.GOMAXPROCS(0)
}

// choose returns the model-selected thread count for an n×n rank-k update,
// clamped for local execution.
func (s *Syrk) choose(n, k int) int {
	return clampThreads(s.eng.PredictOp(serve.OpSYRK, n, k, n), s.localClamp())
}

// syrkDims returns the (n, k) dimensions of op(A).
func syrkDims(rows, cols int, trans bool) (n, k int) {
	if trans {
		return cols, rows
	}
	return rows, cols
}

// SSYRK computes C ← alpha·op(A)·op(A)ᵀ + beta·C in single precision with
// the model-selected thread count. Only the lower triangle of C is read for
// the beta update; the result is exactly symmetric.
func (s *Syrk) SSYRK(trans bool, alpha float32, a *MatrixF32, beta float32, c *MatrixF32) error {
	n, k := syrkDims(a.Rows, a.Cols, trans)
	return blas.SSYRK(trans, alpha, a, beta, c, s.choose(n, k))
}

// DSYRK is the double-precision counterpart of SSYRK.
func (s *Syrk) DSYRK(trans bool, alpha float64, a *MatrixF64, beta float64, c *MatrixF64) error {
	n, k := syrkDims(a.Rows, a.Cols, trans)
	return blas.DSYRK(trans, alpha, a, beta, c, s.choose(n, k))
}

// LastChoice reports the thread count a previous SYRK call selected for an
// n×n rank-k update, clamped the same way execution was. Read-only cache
// peek; returns 0 when the shape has not been selected yet.
func (s *Syrk) LastChoice(n, k int) int {
	threads, ok := s.eng.CachedChoice(serve.OpSYRK, n, k, n)
	if !ok {
		return 0
	}
	return clampThreads(threads, s.localClamp())
}

// CacheStats reports (hits, misses) of the repeated-shape prediction cache.
func (s *Syrk) CacheStats() (hits, misses int64) { return s.eng.Cache().Stats() }
