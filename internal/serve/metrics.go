package serve

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterMetrics attaches the engine's counters to a Prometheus registry.
// Everything hot-path is already recorded on the engine itself (plain atomic
// adds, no allocation); registration only wires scrape-time views over those
// atomics, so it is safe to call after traffic has started and idempotent on
// the same registry.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	for i := range e.perOp {
		op := Op(i)
		oc := &e.perOp[i]
		lbl := obs.L("op", op.String())
		r.CounterFunc("adsala_serve_decisions_total",
			"Thread-count decisions served (cached or ranked), including warm-up.",
			counterView(&oc.predictions), lbl)
		r.CounterFunc("adsala_serve_cache_hits_total",
			"Decisions answered from the decision cache, including warm-up.",
			counterView(&oc.hits), lbl)
		r.CounterFunc("adsala_serve_cache_misses_total",
			"Decisions that required a full candidate ranking, including warm-up.",
			counterView(&oc.misses), lbl)
		r.RegisterHistogram("adsala_serve_decision_latency_seconds",
			"Latency of one cache-miss candidate ranking.",
			e.decLatency[i], lbl)
	}
	r.RegisterHistogram("adsala_serve_batch_size",
		"Shapes per PredictBatch call.", e.batchSizes)

	r.CounterFunc("adsala_serve_fallbacks_total",
		"Decisions answered by the deterministic heuristic fallback instead of a model.",
		counterView(&e.fallbacks))
	r.GaugeFunc("adsala_serve_artefact_generation",
		"Hot artefact reloads since boot.",
		func() float64 { return float64(e.generation.Load()) })

	r.CounterFunc("adsala_serve_warmup_decisions_total",
		"Decisions attributed to cache warm-up passes.",
		counterView(&e.warmPredictions))
	r.CounterFunc("adsala_serve_warmup_hits_total",
		"Cache hits attributed to warm-up passes.",
		counterView(&e.warmHits))
	r.CounterFunc("adsala_serve_warmup_misses_total",
		"Cache misses attributed to warm-up passes.",
		counterView(&e.warmMisses))

	c := e.cache
	for i := 0; i < c.Shards(); i++ {
		shard := i
		r.GaugeFunc("adsala_serve_cache_entries",
			"Decision-cache occupancy per shard.",
			func() float64 { return float64(c.ShardLen(shard)) },
			obs.L("shard", fmt.Sprintf("%d", shard)))
	}
	r.GaugeFunc("adsala_serve_cache_capacity_entries",
		"Total decision-cache capacity.",
		func() float64 { return float64(c.Capacity()) })
	r.GaugeFunc("adsala_serve_cache_shards",
		"Decision-cache shard count.",
		func() float64 { return float64(c.Shards()) })
}

// counterView adapts an engine atomic into a scrape-time counter reader.
func counterView(v interface{ Load() int64 }) func() float64 {
	return func() float64 { return float64(v.Load()) }
}
