package logx

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"quiet": Quiet, "info": Info, "debug": Debug,
		"DEBUG": Debug, " info ": Info, "": Info,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should error")
	}
}

func TestLevelsFilter(t *testing.T) {
	var b strings.Builder
	lg := New(&b, Info)
	lg.Infof("boot %d", 1)
	lg.Debugf("unit %d", 7)
	if got := b.String(); got != "boot 1\n" {
		t.Errorf("info logger wrote %q", got)
	}

	b.Reset()
	New(&b, Debug).Debugf("unit %d", 7)
	if b.String() != "unit 7\n" {
		t.Errorf("debug logger wrote %q", b.String())
	}

	b.Reset()
	New(&b, Quiet).Infof("boot")
	if b.String() != "" {
		t.Errorf("quiet logger wrote %q", b.String())
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var lg *Logger
	lg.Infof("x")
	lg.Debugf("y")
	if lg.Level() != Quiet {
		t.Error("nil logger level should be Quiet")
	}
}

func TestRegisterFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	dst := RegisterFlag(fs)
	if err := fs.Parse([]string{"-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	if lvl, err := ParseLevel(*dst); err != nil || lvl != Debug {
		t.Errorf("flag parsed to %v, %v", lvl, err)
	}
}
