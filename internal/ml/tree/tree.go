// Package tree implements a CART regression tree with exact greedy
// variance-reduction splits. It is the base learner of the Random Forest,
// AdaBoost and gradient-boosting ensembles.
package tree

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ml"
)

func init() {
	ml.RegisterKind("tree", func() ml.Regressor { return NewRegressor(Params{}) })
}

// Params bound tree growth. Zero values select the defaults noted per field.
type Params struct {
	MaxDepth       int `json:"max_depth"`        // default 12
	MinSamplesLeaf int `json:"min_samples_leaf"` // default 1
	// MaxFeatures is the number of features considered per split; 0 means
	// all. Random Forest sets this below the feature count for decorrelation.
	MaxFeatures int `json:"max_features"`
	// Seed drives the feature subsampling when MaxFeatures is active.
	Seed int64 `json:"seed"`
}

func (p Params) withDefaults() Params {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinSamplesLeaf <= 0 {
		p.MinSamplesLeaf = 1
	}
	return p
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	Feature   int     `json:"f"`           // split feature; -1 for leaf
	Threshold float64 `json:"t,omitempty"` // go left when x[f] <= t
	Left      *Node   `json:"l,omitempty"`
	Right     *Node   `json:"r,omitempty"`
	Value     float64 `json:"v"` // leaf prediction (mean of targets)
}

// Regressor is a fitted CART regression tree.
type Regressor struct {
	Params Params `json:"params"`
	Root   *Node  `json:"root"`
}

// NewRegressor returns an unfitted tree with the given parameters.
func NewRegressor(p Params) *Regressor { return &Regressor{Params: p} }

// Name implements ml.Regressor.
func (t *Regressor) Name() string { return "Decision Tree" }

// Fit implements ml.Regressor.
func (t *Regressor) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	w := make([]float64, len(y))
	for i := range w {
		w[i] = 1
	}
	return t.FitWeighted(X, y, w)
}

// FitWeighted trains with per-sample weights (used by AdaBoost.R2).
func (t *Regressor) FitWeighted(X [][]float64, y, w []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	if len(w) != len(y) {
		return fmt.Errorf("tree: %d weights for %d samples", len(w), len(y))
	}
	p := t.Params.withDefaults()
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	g := &grower{X: X, y: y, w: w, p: p, rng: rand.New(rand.NewSource(p.Seed + 1))}
	t.Root = g.grow(idx, 0)
	return nil
}

// Predict implements ml.Regressor.
func (t *Regressor) Predict(x []float64) float64 {
	n := t.Root
	for n.Feature >= 0 {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// Depth returns the height of the fitted tree (leaf-only tree has depth 0).
func (t *Regressor) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the number of nodes in the fitted tree.
func (t *Regressor) NodeCount() int { return count(t.Root) }

func count(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + count(n.Left) + count(n.Right)
}

type grower struct {
	X   [][]float64
	y   []float64
	w   []float64
	p   Params
	rng *rand.Rand
}

func (g *grower) grow(idx []int, d int) *Node {
	leaf := g.leaf(idx)
	if d >= g.p.MaxDepth || len(idx) < 2*g.p.MinSamplesLeaf {
		return leaf
	}
	f, thr, ok := g.bestSplit(idx)
	if !ok {
		return leaf
	}
	var left, right []int
	for _, i := range idx {
		if g.X[i][f] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < g.p.MinSamplesLeaf || len(right) < g.p.MinSamplesLeaf {
		return leaf
	}
	return &Node{
		Feature:   f,
		Threshold: thr,
		Left:      g.grow(left, d+1),
		Right:     g.grow(right, d+1),
		Value:     leaf.Value,
	}
}

func (g *grower) leaf(idx []int) *Node {
	var sw, swy float64
	for _, i := range idx {
		sw += g.w[i]
		swy += g.w[i] * g.y[i]
	}
	v := 0.0
	if sw > 0 {
		v = swy / sw
	}
	return &Node{Feature: -1, Value: v}
}

// bestSplit scans candidate features for the split maximising weighted
// variance reduction via the sorted prefix-sum sweep.
func (g *grower) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	nf := len(g.X[0])
	feats := make([]int, nf)
	for i := range feats {
		feats[i] = i
	}
	if g.p.MaxFeatures > 0 && g.p.MaxFeatures < nf {
		g.rng.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:g.p.MaxFeatures]
	}

	var totW, totWY, totWYY float64
	for _, i := range idx {
		w, yv := g.w[i], g.y[i]
		totW += w
		totWY += w * yv
		totWYY += w * yv * yv
	}
	if totW <= 0 {
		return 0, 0, false
	}
	baseSSE := totWYY - totWY*totWY/totW

	order := make([]int, len(idx))
	bestGain := 1e-12
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return g.X[order[a]][f] < g.X[order[b]][f] })
		var lw, lwy, lwyy float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			w, yv := g.w[i], g.y[i]
			lw += w
			lwy += w * yv
			lwyy += w * yv * yv
			xi, xn := g.X[i][f], g.X[order[pos+1]][f]
			if xi == xn {
				continue // can't split between equal values
			}
			if pos+1 < g.p.MinSamplesLeaf || len(order)-pos-1 < g.p.MinSamplesLeaf {
				continue
			}
			rw := totW - lw
			if lw <= 0 || rw <= 0 {
				continue
			}
			lsse := lwyy - lwy*lwy/lw
			rwy := totWY - lwy
			rwyy := totWYY - lwyy
			rsse := rwyy - rwy*rwy/rw
			gain := baseSSE - lsse - rsse
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = xi + (xn-xi)/2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

var _ ml.Regressor = (*Regressor)(nil)
