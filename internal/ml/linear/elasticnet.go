package linear

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// ElasticNet is linear regression with combined L1/L2 regularisation,
// fitted by cyclic coordinate descent (the scikit-learn formulation):
//
//	min_w  1/(2n)·‖y − Xw − b‖² + α·ρ·‖w‖₁ + α·(1−ρ)/2·‖w‖²
//
// where ρ is the L1 ratio.
type ElasticNet struct {
	Alpha   float64 `json:"alpha"`
	L1Ratio float64 `json:"l1_ratio"`
	MaxIter int     `json:"max_iter"`
	Tol     float64 `json:"tol"`

	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

// NewElasticNet returns an ElasticNet with the given regularisation strength
// and L1 ratio, and default iteration limits.
func NewElasticNet(alpha, l1Ratio float64) *ElasticNet {
	return &ElasticNet{Alpha: alpha, L1Ratio: l1Ratio, MaxIter: 1000, Tol: 1e-6}
}

// Name implements ml.Regressor.
func (e *ElasticNet) Name() string { return "ElasticNet" }

// Fit implements ml.Regressor using cyclic coordinate descent on centred
// data.
func (e *ElasticNet) Fit(X [][]float64, y []float64) error {
	if err := ml.ValidateXY(X, y); err != nil {
		return err
	}
	if e.Alpha < 0 || e.L1Ratio < 0 || e.L1Ratio > 1 {
		return fmt.Errorf("elasticnet: bad hyper-parameters alpha=%v l1=%v", e.Alpha, e.L1Ratio)
	}
	if e.MaxIter <= 0 {
		e.MaxIter = 1000
	}
	if e.Tol <= 0 {
		e.Tol = 1e-6
	}
	n, d := len(X), len(X[0])
	fn := float64(n)

	// Centre.
	xm := make([]float64, d)
	var ym float64
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xm[j] += X[i][j]
		}
		ym += y[i]
	}
	for j := range xm {
		xm[j] /= fn
	}
	ym /= fn

	// Column-major centred copies for cache-friendly coordinate sweeps.
	cols := make([][]float64, d)
	colSq := make([]float64, d)
	for j := 0; j < d; j++ {
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			c[i] = X[i][j] - xm[j]
			colSq[j] += c[i] * c[i]
		}
		cols[j] = c
	}

	w := make([]float64, d)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = y[i] - ym
	}

	l1 := e.Alpha * e.L1Ratio * fn
	l2 := e.Alpha * (1 - e.L1Ratio) * fn
	for it := 0; it < e.MaxIter; it++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = X_j · resid + w_j · ‖X_j‖².
			var rho float64
			c := cols[j]
			for i := 0; i < n; i++ {
				rho += c[i] * resid[i]
			}
			rho += w[j] * colSq[j]
			newW := softThreshold(rho, l1) / (colSq[j] + l2)
			if delta := newW - w[j]; delta != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= delta * c[i]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = newW
			}
		}
		if maxDelta < e.Tol {
			break
		}
	}
	e.Weights = w
	e.Intercept = ym - dot(w, xm)
	return nil
}

// Predict implements ml.Regressor.
func (e *ElasticNet) Predict(x []float64) float64 {
	return dot(e.Weights, x) + e.Intercept
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

var _ ml.Regressor = (*ElasticNet)(nil)
