// Package ctxflow_b is NOT under a restricted path suffix: minting a
// context is allowed here (the negative case for rule 1), but constructor
// and exported-function hygiene still apply everywhere.
package ctxflow_b

import (
	"context"
	"net/http"
)

// Fresh mints a context outside the restricted packages — no finding.
func Fresh() context.Context {
	return context.Background()
}

func oldRequest() (*http.Request, error) {
	return http.NewRequest("GET", "http://example.com", nil) // want `http.NewRequest drops the caller's context`
}
