// Package mat provides dense row-major matrices for the GEMM substrate.
//
// Matrices are backed by flat slices whose first element is aligned to a
// 64-byte boundary (matching the paper's memalign(64, ...) allocation, which
// assists vector loads and avoids false sharing on cache-line granularity).
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"unsafe"
)

const alignBytes = 64

// F32 is a dense row-major matrix of float32 values. Rows*Stride elements of
// Data back the matrix; Stride >= Cols (leading dimension, as LDA/LDB/LDC in
// the BLAS interface).
type F32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// F64 is the float64 counterpart of F32.
type F64 struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// alignedF32 allocates n float32 values whose first element sits on a
// 64-byte boundary.
func alignedF32(n int) []float32 {
	if n == 0 {
		return nil
	}
	const elem = 4
	pad := alignBytes / elem
	raw := make([]float32, n+pad)
	off := 0
	addr := uintptr(unsafe.Pointer(&raw[0]))
	if rem := addr % alignBytes; rem != 0 {
		off = int((alignBytes - rem) / elem)
	}
	return raw[off : off+n : off+n]
}

// alignedF64 allocates n float64 values whose first element sits on a
// 64-byte boundary.
func alignedF64(n int) []float64 {
	if n == 0 {
		return nil
	}
	const elem = 8
	pad := alignBytes / elem
	raw := make([]float64, n+pad)
	off := 0
	addr := uintptr(unsafe.Pointer(&raw[0]))
	if rem := addr % alignBytes; rem != 0 {
		off = int((alignBytes - rem) / elem)
	}
	return raw[off : off+n : off+n]
}

// NewF32 allocates a zeroed rows × cols float32 matrix with Stride == cols.
// It panics if rows or cols is negative.
func NewF32(rows, cols int) *F32 {
	checkDims(rows, cols)
	return &F32{Rows: rows, Cols: cols, Stride: cols, Data: alignedF32(rows * cols)}
}

// NewF64 allocates a zeroed rows × cols float64 matrix with Stride == cols.
func NewF64(rows, cols int) *F64 {
	checkDims(rows, cols)
	return &F64{Rows: rows, Cols: cols, Stride: cols, Data: alignedF64(rows * cols)}
}

func checkDims(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %d×%d", rows, cols))
	}
}

// At returns the element at row i, column j.
func (m *F32) At(i, j int) float32 { return m.Data[i*m.Stride+j] }

// Set stores v at row i, column j.
func (m *F32) Set(i, j int, v float32) { m.Data[i*m.Stride+j] = v }

// At returns the element at row i, column j.
func (m *F64) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set stores v at row i, column j.
func (m *F64) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// FillRandom fills the matrix with uniform values in [-1, 1) from rng.
func (m *F32) FillRandom(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = float32(2*rng.Float64() - 1)
		}
	}
}

// FillRandom fills the matrix with uniform values in [-1, 1) from rng.
func (m *F64) FillRandom(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
	}
}

// Fill sets every element of the matrix to v.
func (m *F32) Fill(v float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// Fill sets every element of the matrix to v.
func (m *F64) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// Clone returns a deep copy with a compact stride.
func (m *F32) Clone() *F32 {
	c := NewF32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Data[i*c.Stride:i*c.Stride+c.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return c
}

// Clone returns a deep copy with a compact stride.
func (m *F64) Clone() *F64 {
	c := NewF64(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Data[i*c.Stride:i*c.Stride+c.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return c
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and other. It panics if shapes differ.
func (m *F32) MaxAbsDiff(other *F32) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	var max float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			d := math.Abs(float64(m.At(i, j)) - float64(other.At(i, j)))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and other. It panics if shapes differ.
func (m *F64) MaxAbsDiff(other *F64) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	var max float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			d := math.Abs(m.At(i, j) - other.At(i, j))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// GemmBytesF32 returns the aggregate memory footprint in bytes of an SGEMM
// with the given dimensions: 4*(m*k + k*n + m*n), as defined in §IV-B.
func GemmBytesF32(m, k, n int) int64 {
	return 4 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
}

// GemmBytesF64 returns the aggregate memory footprint in bytes of a DGEMM:
// 8*(m*k + k*n + m*n).
func GemmBytesF64(m, k, n int) int64 {
	return 8 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
}

// GemmFlops returns the floating-point operation count of C ← αAB + βC,
// counted as 2*m*k*n (one multiply plus one add per inner-product term).
func GemmFlops(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}

// Aligned reports whether the first element of the backing slice is on a
// 64-byte boundary. Empty matrices are trivially aligned.
func (m *F32) Aligned() bool {
	if len(m.Data) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&m.Data[0]))%alignBytes == 0
}

// Aligned reports whether the first element of the backing slice is on a
// 64-byte boundary. Empty matrices are trivially aligned.
func (m *F64) Aligned() bool {
	if len(m.Data) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&m.Data[0]))%alignBytes == 0
}
