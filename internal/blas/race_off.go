//go:build !race

package blas

// raceEnabled reports whether the race detector is active; the allocation-
// count tests skip under it because instrumentation perturbs alloc counts.
const raceEnabled = false
