package main

// The serving load harness: -serve-json drives a closed-loop mixed-op
// client fleet against an adsala-serve daemon (an external one via
// -serve-addr, or an in-process server over a quickly trained simulator
// artefact) and appends one run — throughput plus p50/p95/p99 decision
// latency — to BENCH_serve.json. Like the kernel harnesses, the committed
// file records the serving-path trajectory per development machine; CI
// runs a short smoke of the same harness against a real daemon.
//
// Each client times every request into its own lock-free histogram; the
// fleet's histograms are merged at the end (the mergeability the per-shard
// metrics rely on), so the load loop itself takes no locks and allocates
// only the request/response JSON.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	adsala "repro"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/serve"
)

// serveBenchConfig is the -serve-* flag set.
type serveBenchConfig struct {
	out      string        // report path ("-" for stdout; no append then)
	addr     string        // external daemon base URL; empty = in-process
	lib      string        // artefact for the in-process daemon; empty = quick sim train
	clients  int           // concurrent closed-loop clients
	duration time.Duration // measured wall time
	ops      string        // comma-separated op mix
	batch    int           // shapes per request: 1 = /predict, >1 = /batch
	shapes   int           // distinct working-set shapes per op
	seed     int64         // working-set sampling seed
}

// serveBenchRun is one appended measurement.
type serveBenchRun struct {
	GeneratedAt     string   `json:"generated_at"`
	GoVersion       string   `json:"go_version"`
	GOARCH          string   `json:"goarch"`
	NumCPU          int      `json:"num_cpu"`
	Mode            string   `json:"mode"` // "inprocess" or "remote"
	Ops             []string `json:"ops"`
	Clients         int      `json:"clients"`
	Batch           int      `json:"batch"`
	WorkingSet      int      `json:"working_set_shapes"`
	DurationSeconds float64  `json:"duration_seconds"`
	Requests        int64    `json:"requests"`
	Decisions       int64    `json:"decisions"`
	Errors          int64    `json:"errors"`
	ThroughputRPS   float64  `json:"throughput_rps"`
	DecisionsPerSec float64  `json:"decisions_per_sec"`
	P50Micros       float64  `json:"p50_micros"`
	P95Micros       float64  `json:"p95_micros"`
	P99Micros       float64  `json:"p99_micros"`
	MeanMicros      float64  `json:"mean_micros"`
	// ServerHitRate and ServerPredictions come from the daemon's /stats
	// after the run — the server-side view of the same traffic.
	ServerHitRate     float64 `json:"server_hit_rate"`
	ServerPredictions int64   `json:"server_predictions"`
}

// serveBenchReport is the file layout of BENCH_serve.json. Runs append:
// the committed file accumulates the trajectory across changes.
type serveBenchReport struct {
	Schema string          `json:"schema"`
	Note   string          `json:"note"`
	Runs   []serveBenchRun `json:"runs"`
}

const serveBenchSchema = "adsala/bench-serve/v1"

// runServeBench drives the load and appends the run to cfg.out.
func runServeBench(cfg serveBenchConfig) error {
	if cfg.clients < 1 {
		return fmt.Errorf("serve bench: -serve-clients must be >= 1, got %d", cfg.clients)
	}
	if cfg.batch < 1 {
		return fmt.Errorf("serve bench: -serve-batch must be >= 1, got %d", cfg.batch)
	}
	if cfg.duration <= 0 {
		return fmt.Errorf("serve bench: -serve-duration must be positive, got %v", cfg.duration)
	}
	opList, err := serveBenchOps(cfg.ops)
	if err != nil {
		return err
	}

	base := cfg.addr
	mode := "remote"
	if base == "" {
		mode = "inprocess"
		stop, addr, err := startInProcessDaemon(cfg.lib)
		if err != nil {
			return err
		}
		defer stop()
		base = addr
	}
	client := serve.NewClient(base, nil)
	if h, err := client.Healthz(); err != nil {
		return fmt.Errorf("serve bench: daemon at %s not ready: %w", base, err)
	} else if !h.Ready {
		return fmt.Errorf("serve bench: daemon at %s reports %q", base, h.Status)
	}

	// One canonicalised working set per op, shared by every client: the mix
	// exercises the per-op caches the way repeated production shapes do.
	working := make(map[serve.Op][]sampling.Shape, len(opList))
	for _, op := range opList {
		sampler, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), cfg.seed)
		if err != nil {
			return err
		}
		shapes := sampler.Sample(cfg.shapes)
		canon := op.Spec().Canon
		for i, sh := range shapes {
			shapes[i] = canon(sh)
		}
		working[op] = shapes
	}

	benchLog.Infof("serve-bench: %d clients x %v against %s (%s), ops %v, batch %d",
		cfg.clients, cfg.duration, base, mode, cfg.ops, cfg.batch)

	type clientResult struct {
		hist     *obs.Histogram
		requests int64
		errors   int64
	}
	results := make([]clientResult, cfg.clients)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			// Per-client connection and histogram: the loop shares nothing,
			// mirroring independent production clients.
			cl := serve.NewClient(base, nil)
			hist := obs.NewHistogram(1e-9)
			var requests, errs int64
			reqs := make([]serve.PredictRequest, cfg.batch)
			for i := 0; time.Now().Before(deadline); i++ {
				op := opList[(i+ci)%len(opList)]
				set := working[op]
				var err error
				t0 := time.Now()
				if cfg.batch == 1 {
					sh := set[(i*7+ci*13)%len(set)]
					_, err = cl.PredictOp(op, sh.M, sh.K, sh.N)
				} else {
					for j := range reqs {
						sh := set[(i*7+ci*13+j)%len(set)]
						reqs[j] = serve.PredictRequest{M: sh.M, K: sh.K, N: sh.N, Op: op.String()}
					}
					_, err = cl.PredictBatchRequests(reqs)
				}
				hist.ObserveSince(t0)
				requests++
				if err != nil {
					errs++
				}
			}
			results[ci] = clientResult{hist: hist, requests: requests, errors: errs}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := obs.NewHistogram(1e-9)
	run := serveBenchRun{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		Mode:            mode,
		Clients:         cfg.clients,
		Batch:           cfg.batch,
		WorkingSet:      cfg.shapes,
		DurationSeconds: elapsed.Seconds(),
	}
	for _, op := range opList {
		run.Ops = append(run.Ops, op.String())
	}
	for _, cr := range results {
		merged.Merge(cr.hist)
		run.Requests += cr.requests
		run.Errors += cr.errors
	}
	run.Decisions = run.Requests * int64(cfg.batch)
	run.ThroughputRPS = float64(run.Requests) / elapsed.Seconds()
	run.DecisionsPerSec = float64(run.Decisions) / elapsed.Seconds()
	run.P50Micros = merged.QuantileScaled(0.50) * 1e6
	run.P95Micros = merged.QuantileScaled(0.95) * 1e6
	run.P99Micros = merged.QuantileScaled(0.99) * 1e6
	run.MeanMicros = merged.Mean() * 1e6

	if st, err := client.Stats(); err == nil {
		run.ServerHitRate = st.Engine.HitRate
		run.ServerPredictions = st.Engine.Predictions
	}

	benchLog.Infof(
		"serve-bench: %d requests (%d errors) in %.2fs = %.0f req/s; p50 %.0fµs p95 %.0fµs p99 %.0fµs",
		run.Requests, run.Errors, elapsed.Seconds(), run.ThroughputRPS,
		run.P50Micros, run.P95Micros, run.P99Micros)
	if run.Requests == 0 {
		return fmt.Errorf("serve bench: no requests completed")
	}
	if run.Errors > 0 && run.Errors*10 > run.Requests {
		return fmt.Errorf("serve bench: %d of %d requests failed", run.Errors, run.Requests)
	}
	return appendServeBenchRun(cfg.out, run)
}

// serveBenchOps parses the comma-separated op mix.
func serveBenchOps(list string) ([]serve.Op, error) {
	var out []serve.Op
	for _, name := range splitComma(list) {
		op, err := serve.ParseOp(name)
		if err != nil {
			return nil, fmt.Errorf("serve bench: %w", err)
		}
		out = append(out, op)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve bench: empty -serve-ops")
	}
	return out, nil
}

// splitComma splits on commas, trimming blanks.
func splitComma(s string) []string {
	var out []string
	for start := 0; start <= len(s); {
		end := start
		for end < len(s) && s[end] != ',' {
			end++
		}
		if f := s[start:end]; f != "" {
			out = append(out, f)
		}
		start = end + 1
	}
	return out
}

// startInProcessDaemon boots a loopback adsala-serve over libPath (or a
// quickly trained simulator artefact when empty) and returns its base URL
// with a shutdown func.
func startInProcessDaemon(libPath string) (stop func(), base string, err error) {
	var lib *adsala.Library
	if libPath != "" {
		lib, err = adsala.Load(libPath)
	} else {
		benchLog.Infof("serve-bench: training quick simulator artefact for the in-process daemon")
		lib, _, err = adsala.Train(adsala.TrainOptions{Platform: "Gadi", Shapes: 96, Quick: true, Seed: 11})
	}
	if err != nil {
		return nil, "", err
	}
	srv := lib.NewServer(adsala.ServeOptions{CacheSize: 4096, Shards: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return func() { hs.Close() }, "http://" + ln.Addr().String(), nil
}

// appendServeBenchRun appends run to the report at path, creating it on
// first use. "-" writes a single-run report to stdout.
func appendServeBenchRun(path string, run serveBenchRun) error {
	report := serveBenchReport{
		Schema: serveBenchSchema,
		Note: "closed-loop mixed-op load against adsala-serve; latency is client-observed per request; " +
			"runs append chronologically per development machine",
	}
	if path != "-" {
		blob, err := os.ReadFile(path)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First run creates the file.
		case err != nil:
			return err
		default:
			if err := json.Unmarshal(blob, &report); err != nil {
				return fmt.Errorf("serve bench: %s exists but is not a bench-serve report: %w", path, err)
			}
			if report.Schema != serveBenchSchema {
				return fmt.Errorf("serve bench: %s has schema %q, want %q", path, report.Schema, serveBenchSchema)
			}
		}
	}
	report.Runs = append(report.Runs, run)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
