package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/drift"
)

// DriftReport is the /drift response body — the drift monitor's
// schema-versioned report, re-exported so client code needs only this
// package.
type DriftReport = drift.Report

// MeasuredRecord is one executed kernel call reported back to the daemon:
// the op, the shape triple it ran at (symmetric updates pass (n, k, n)),
// the thread count actually used, and the measured wall time. It is the
// over-the-wire form of what the in-process BLAS facade feeds
// Engine.RecordMeasured directly.
type MeasuredRecord struct {
	Op         string `json:"op,omitempty"`
	M          int    `json:"m"`
	K          int    `json:"k"`
	N          int    `json:"n"`
	Threads    int    `json:"threads"`
	MeasuredNs int64  `json:"measured_ns"`
}

// MeasuredRequest is the JSON body of POST /measured.
type MeasuredRequest struct {
	Records []MeasuredRecord `json:"records"`
}

// MeasuredResponse is the JSON answer of POST /measured.
type MeasuredResponse struct {
	Accepted int `json:"accepted"`
}

// MaxMeasuredRecords bounds one /measured request body.
const MaxMeasuredRecords = MaxBatchShapes

// handleMeasured is POST /measured: the measured-prediction ingestion
// path. A serving daemon decides but never executes, so without this
// endpoint its drift monitor and flight recorder would only ever see
// decisions; clients that execute the chosen kernels report the measured
// wall times back here, closing the loop. Each record flows through
// Engine.RecordMeasured — into the drift windows and, when a recorder is
// attached, the trace capture — exactly as an in-process execution would.
func (s *Server) handleMeasured(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.measured.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req MeasuredRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Records) == 0 {
		writeError(w, http.StatusBadRequest, "empty records")
		return
	}
	if len(req.Records) > MaxMeasuredRecords {
		writeError(w, http.StatusBadRequest, "%d records exceeds limit %d", len(req.Records), MaxMeasuredRecords)
		return
	}
	// Validate everything before ingesting anything: a batch is accepted or
	// rejected as a unit, so a client can safely retry a 400 after fixing it
	// without double-counting a prefix.
	type parsed struct {
		op  Op
		rec MeasuredRecord
	}
	recs := make([]parsed, len(req.Records))
	for i, rec := range req.Records {
		if rec.M < 1 || rec.K < 1 || rec.N < 1 {
			writeError(w, http.StatusBadRequest, "record %d: dimensions must be positive, got %dx%dx%d", i, rec.M, rec.K, rec.N)
			return
		}
		if rec.Threads < 1 {
			writeError(w, http.StatusBadRequest, "record %d: threads must be positive, got %d", i, rec.Threads)
			return
		}
		if rec.MeasuredNs < 1 {
			writeError(w, http.StatusBadRequest, "record %d: measured_ns must be positive, got %d", i, rec.MeasuredNs)
			return
		}
		op, err := ParseOp(rec.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, "record %d: %v", i, err)
			return
		}
		recs[i] = parsed{op: op, rec: rec}
	}
	// Ingestion runs a model evaluation per record when a drift monitor is
	// attached, so it sits under the same admission gate as the prediction
	// endpoints.
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	for _, p := range recs {
		s.engine.RecordMeasured(p.op, p.rec.M, p.rec.K, p.rec.N, p.rec.Threads, p.rec.MeasuredNs)
	}
	failed = false
	writeJSON(w, http.StatusOK, MeasuredResponse{Accepted: len(recs)})
}

// handleDrift is GET /drift: the schema-versioned online drift report
// (per-op, per-shape-bucket windowed residual statistics — the same
// definitions adsala-replay computes offline). 404 when drift monitoring
// is off so probes can distinguish "disabled" from "no data".
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	mon := s.engine.DriftMonitor()
	if mon == nil {
		writeError(w, http.StatusNotFound, "drift monitoring is not enabled (start with -drift-window)")
		return
	}
	writeJSON(w, http.StatusOK, mon.Snapshot())
}
