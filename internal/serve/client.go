package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sampling"
)

// Client is a Go client for the adsala-serve HTTP API.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient selects a default with a 10 s
// timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// do issues one request and decodes the JSON answer into out.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve: encode request: %w", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("serve: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decode %s response: %w", path, err)
	}
	return nil
}

// Predict asks the server for the optimal thread count of one GEMM shape.
func (c *Client) Predict(m, k, n int) (int, error) {
	return c.PredictOp(OpGEMM, m, k, n)
}

// PredictOp asks the server for the optimal thread count of one shape under
// an explicit operation kind (SYRK shapes pass the (n, k, n) triple).
func (c *Client) PredictOp(op Op, m, k, n int) (int, error) {
	var resp PredictResponse
	if err := c.do(http.MethodPost, "/predict", PredictRequest{M: m, K: k, N: n, Op: op.String()}, &resp); err != nil {
		return 0, err
	}
	return resp.Threads, nil
}

// PredictDetail returns the full candidate ranking for one GEMM shape.
func (c *Client) PredictDetail(m, k, n int) (PredictResponse, error) {
	return c.PredictDetailOp(OpGEMM, m, k, n)
}

// PredictDetailOp is PredictDetail under an explicit operation kind.
func (c *Client) PredictDetailOp(op Op, m, k, n int) (PredictResponse, error) {
	var resp PredictResponse
	err := c.do(http.MethodPost, "/predict?detail=1", PredictRequest{M: m, K: k, N: n, Op: op.String()}, &resp)
	return resp, err
}

// PredictBatch asks the server for the optimal thread counts of many GEMM
// shapes in one round trip.
func (c *Client) PredictBatch(shapes []sampling.Shape) ([]int, error) {
	return c.PredictBatchOp(OpGEMM, shapes)
}

// PredictBatchOp is PredictBatch under an explicit operation kind.
func (c *Client) PredictBatchOp(op Op, shapes []sampling.Shape) ([]int, error) {
	reqs := make([]PredictRequest, len(shapes))
	for i, sh := range shapes {
		reqs[i] = PredictRequest{M: sh.M, K: sh.K, N: sh.N, Op: op.String()}
	}
	return c.PredictBatchRequests(reqs)
}

// PredictBatchRequests sends a mixed-operation batch in one round trip:
// each request names its own op (empty = GEMM). Answers align with the
// request order — the server splits per op and maps every decision back to
// its slot.
func (c *Client) PredictBatchRequests(reqs []PredictRequest) ([]int, error) {
	var resp BatchResponse
	if err := c.do(http.MethodPost, "/batch", BatchRequest{Shapes: reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Threads) != len(reqs) {
		return nil, fmt.Errorf("serve: batch answered %d decisions for %d shapes", len(resp.Threads), len(reqs))
	}
	return resp.Threads, nil
}

// Stats fetches the server's engine and HTTP metrics.
func (c *Client) Stats() (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(http.MethodGet, "/stats", nil, &resp)
	return resp, err
}

// Healthz checks server liveness.
func (c *Client) Healthz() (HealthResponse, error) {
	var resp HealthResponse
	err := c.do(http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}
