// adsala-serve is the prediction-serving daemon: it loads a library written
// by adsala-train and answers thread-selection queries over HTTP from a
// sharded decision cache.
//
// Endpoints:
//
//	GET  /predict?m=&k=&n=&op=  one decision (add &detail=1 for the ranking)
//	POST /predict               {"m":..,"k":..,"n":..,"op":"gemm"|"syrk"|"syr2k"}
//	POST /batch                 {"shapes":[{"m":..,"k":..,"n":..,"op":..},...]}
//	POST /measured              measured kernel wall times reported back by executing clients
//	GET  /drift                 online model-quality drift report (requires -drift-window)
//	GET  /stats                 cache, engine and HTTP latency metrics
//	GET  /healthz               readiness probe: 503 while starting or draining
//	GET  /livez                 liveness probe: 200 whenever the process answers
//	GET  /metrics               Prometheus text exposition
//
// The op field selects the registered operation the decision is for
// (default "gemm"); decisions are cached per (op, shape) and rank with the
// op's own model when the library was trained with one (adsala-train
// -ops gemm,syrk,...). Symmetric updates pass the (n, k, n) triple of the
// output shape. Mixed-op batches split per op and preserve request order.
//
// Usage:
//
//	adsala-serve -lib gadi.adsala.json -addr :8080 -warmup 256
//	adsala-serve -lib gadi.adsala.json -cache-snapshot decisions.json
//	adsala-serve -lib gadi.adsala.json -reload-on SIGHUP -admin-token s3cret
//
// -warmup pre-populates the decision cache for every op the library holds
// a trained model for. -cache-snapshot persists the decision cache across
// restarts: the file is loaded at start when present and written on
// graceful shutdown (SIGINT/SIGTERM), so a restarted daemon answers its
// warmed working set immediately.
//
// Hot reload: -reload-on SIGHUP re-reads -lib and swaps the artefact
// atomically on SIGHUP without dropping readiness; -admin-token
// additionally mounts an authenticated POST /admin/reload doing the same
// over HTTP. After a swap the decision cache resets and (when -warmup is
// set) re-warms in the background while live traffic is answered against
// the new models.
//
// Overload protection: -max-inflight bounds concurrently served prediction
// requests (excess waits briefly, then sheds with 429 + Retry-After);
// -request-timeout bounds each request's ranking work. Requests that
// cannot rank in time are answered by a deterministic heuristic and tagged
// "fallback": true.
//
// Trace capture: -trace <prefix> turns on the flight recorder — one compact
// binary record per decision appended to rotating `<prefix>-NNNNN.trace`
// files (`-trace-max-mb` sets the rotation threshold), with drop-don't-block
// backpressure so recording can never stall a request. Replay a capture
// offline with adsala-replay to backtest candidate artefacts against real
// traffic. Recorder health is exposed as adsala_trace_* metrics.
//
// Drift monitoring: -drift-window 1m turns on the online model-quality
// monitor — every measured wall time reported through POST /measured is
// scored against the model's prediction into per-op, shape-bucketed sliding
// windows of the same residual statistics adsala-replay computes offline.
// When an op's |windowed mean residual_log2| exceeds -drift-threshold (with
// at least -drift-min-samples residuals in the window), /healthz flips to
// "degraded": true naming the op while readiness stays 200, a structured
// drift_start event is logged, and adsala_drift_* gauges expose the window
// on /metrics. GET /drift serves the full schema-versioned report; tune
// thresholds offline by running the same detector over a capture with
// adsala-replay -drift.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	adsala "repro"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/logx"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/trace"
)

// config is the parsed command line of the daemon.
type config struct {
	libPath     string
	addr        string
	cacheSize   int
	shards      int
	workers     int
	warmup      int
	warmupCapMB int
	warmupSeed  int64
	snapshot    string
	pprof       bool
	level       logx.Level

	adminToken  string
	reloadOn    string
	maxInflight int
	reqTimeout  time.Duration

	tracePrefix string
	traceMaxMB  int

	driftWindow     time.Duration
	driftThreshold  float64
	driftMinSamples int64
}

// parseFlags parses args (without the program name) into a config. Usage
// and parse errors print to out; a help request returns flag.ErrHelp.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("adsala-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var cfg config
	fs.StringVar(&cfg.libPath, "lib", "adsala.json", "library file written by adsala-train")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.cacheSize, "cache", 4096, "decision cache capacity (entries, rounded to a power of two)")
	fs.IntVar(&cfg.shards, "shards", 16, "decision cache shard count (rounded to a power of two)")
	fs.IntVar(&cfg.workers, "workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.warmup, "warmup", 0, "pre-populate the cache with this many sampled shapes")
	fs.IntVar(&cfg.warmupCapMB, "warmup-cap", 100, "memory cap in MB of the warm-up sampling domain")
	fs.Int64Var(&cfg.warmupSeed, "warmup-seed", 1, "warm-up sampling seed")
	fs.StringVar(&cfg.snapshot, "cache-snapshot", "", "decision-cache snapshot file: loaded at start when present, saved on graceful shutdown")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	fs.StringVar(&cfg.adminToken, "admin-token", "", "token authorising POST /admin/reload (empty disables the endpoint)")
	fs.StringVar(&cfg.reloadOn, "reload-on", "", "signal triggering a hot artefact reload (only SIGHUP is supported; empty disables)")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 0, "max concurrently served prediction requests (0 = 8×GOMAXPROCS, negative disables shedding)")
	fs.DurationVar(&cfg.reqTimeout, "request-timeout", 0, "per-request ranking deadline (0 = 2s, negative disables)")
	fs.StringVar(&cfg.tracePrefix, "trace", "", "flight-recorder capture prefix: append one record per decision to <prefix>-NNNNN.trace files (empty disables)")
	fs.IntVar(&cfg.traceMaxMB, "trace-max-mb", 64, "trace file rotation threshold in MiB (negative disables rotation)")
	fs.DurationVar(&cfg.driftWindow, "drift-window", 0, "sliding window of the online drift monitor (0 disables drift monitoring)")
	fs.Float64Var(&cfg.driftThreshold, "drift-threshold", 1.0, "drift trip point on |windowed mean residual_log2| (1.0 = predictions off by 2x on average)")
	fs.Int64Var(&cfg.driftMinSamples, "drift-min-samples", 32, "minimum windowed residual count before an op can be flagged drifting")
	level := logx.RegisterFlag(fs)
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	lvl, err := logx.ParseLevel(*level)
	if err != nil {
		return cfg, err
	}
	cfg.level = lvl
	if cfg.warmup < 0 {
		return cfg, fmt.Errorf("-warmup must be >= 0, got %d", cfg.warmup)
	}
	if cfg.warmupCapMB < 1 {
		return cfg, fmt.Errorf("-warmup-cap must be >= 1, got %d", cfg.warmupCapMB)
	}
	switch strings.ToUpper(cfg.reloadOn) {
	case "":
	case "SIGHUP", "HUP":
		cfg.reloadOn = "SIGHUP"
	default:
		return cfg, fmt.Errorf("-reload-on %q is not supported (want SIGHUP)", cfg.reloadOn)
	}
	return cfg, nil
}

// buildServer loads the library and returns the HTTP front end over a cold
// engine — cheap enough to run before the listener starts. Progress lines
// go to out at the configured -log-level.
func buildServer(cfg config, out io.Writer) (*serve.Server, error) {
	lg := logx.New(out, cfg.level)
	lib, err := adsala.Load(cfg.libPath)
	if err != nil {
		return nil, err
	}
	eng := lib.Engine(serve.Options{
		CacheSize: cfg.cacheSize,
		Shards:    cfg.shards,
		Workers:   cfg.workers,
	})
	lg.Infof("loaded %s: platform=%s model=%s, cache %d entries / %d shards",
		cfg.libPath, lib.Platform(), lib.ModelKind(), eng.Cache().Capacity(), eng.Cache().Shards())
	opts := []serve.ServerOption{
		serve.WithLimits(serve.Limits{
			MaxInFlight:    cfg.maxInflight,
			RequestTimeout: cfg.reqTimeout,
		}),
	}
	if cfg.adminToken != "" || cfg.reloadOn != "" {
		opts = append(opts, serve.WithReload(serve.ReloadConfig{
			Load:  func() (*core.Library, error) { return core.Load(cfg.libPath) },
			Token: cfg.adminToken,
			Warm:  warmFunc(cfg, lg),
			Logf:  lg.Infof,
		}))
	}
	srv := serve.NewServer(eng, opts...)
	if cfg.pprof {
		srv.EnablePprof()
		lg.Infof("pprof enabled at /debug/pprof/")
	}
	if cfg.tracePrefix != "" {
		rec, err := trace.Open(cfg.tracePrefix, trace.Options{
			MaxFileBytes: int64(cfg.traceMaxMB) << 20,
		})
		if err != nil {
			return nil, fmt.Errorf("open flight recorder: %w", err)
		}
		// Attach before the warm-up in prepare() runs, so warm records get
		// their flag; the recorder outlives the engine's serving life and is
		// closed after graceful shutdown (via Engine().Recorder()).
		eng.SetRecorder(rec)
		rec.RegisterMetrics(srv.Registry())
		lg.Infof("flight recorder capturing to %s-*.trace (rotate at %d MiB)", cfg.tracePrefix, cfg.traceMaxMB)
	}
	if cfg.driftWindow > 0 {
		mon := drift.NewMonitor(drift.Config{
			Window:     cfg.driftWindow,
			Threshold:  cfg.driftThreshold,
			MinSamples: cfg.driftMinSamples,
		})
		eng.SetDriftMonitor(mon)
		mon.RegisterMetrics(srv.Registry())
		rc := mon.Config()
		lg.Infof("drift monitor on: window=%s threshold=%.2f min-samples=%d (/drift, POST /measured)",
			rc.Window, rc.Threshold, rc.MinSamples)
	}
	return srv, nil
}

// warmFunc returns the post-reload background re-warm, or nil when -warmup
// is off. It runs off the request path: the freshly swapped artefact serves
// (ranking cache misses live) while the warm pass refills the cache.
func warmFunc(cfg config, lg *logx.Logger) func(*serve.Engine) {
	if cfg.warmup <= 0 {
		return nil
	}
	return func(eng *serve.Engine) {
		start := time.Now()
		dom := sampling.DefaultDomain().WithCapMB(cfg.warmupCapMB)
		n, err := eng.Warmup(dom, cfg.warmup, cfg.warmupSeed)
		if err != nil {
			lg.Infof("post-reload warm-up failed: %v", err)
			return
		}
		lg.Infof("re-warmed %d decisions in %v", n, time.Since(start).Round(time.Millisecond))
	}
}

// prepare runs the potentially slow boot phases — snapshot restore and
// cache warm-up. The daemon runs it with the listener already up and
// readiness off, so probes see 503 "starting" rather than connection
// refused during a long warm-up.
func prepare(cfg config, srv *serve.Server, out io.Writer) error {
	lg := logx.New(out, cfg.level)
	eng := srv.Engine()
	if cfg.snapshot != "" {
		n, err := eng.Cache().Load(cfg.snapshot)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: the snapshot appears on the first graceful
			// shutdown.
		case err != nil:
			// A truncated, garbled or version-skewed snapshot must not keep
			// the daemon down — a cold cache is merely slow. Move the file
			// aside (not delete: the bytes stay for diagnosis, and the
			// shutdown save cannot overwrite them) and log loudly.
			aside := cfg.snapshot + ".corrupt"
			if mvErr := os.Rename(cfg.snapshot, aside); mvErr != nil {
				lg.Infof("WARNING: cache snapshot %s unreadable (%v); starting cold (move aside also failed: %v)",
					cfg.snapshot, err, mvErr)
			} else {
				lg.Infof("WARNING: cache snapshot %s unreadable (%v); moved to %s, starting cold",
					cfg.snapshot, err, aside)
			}
		default:
			lg.Infof("restored %d cached decisions from %s", n, cfg.snapshot)
		}
	}
	if cfg.warmup > 0 {
		start := time.Now()
		dom := sampling.DefaultDomain().WithCapMB(cfg.warmupCapMB)
		// Warms every op the library holds a trained model for.
		n, err := eng.Warmup(dom, cfg.warmup, cfg.warmupSeed)
		if err != nil {
			return err
		}
		lg.Infof("warmed %d decisions in %v", n, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// newServer builds the fully prepared front end in one call — the
// in-process construction path used by tests and embedders; the daemon's
// run() interleaves the same two phases around the listener start.
func newServer(cfg config, out io.Writer) (*serve.Server, error) {
	srv, err := buildServer(cfg, out)
	if err != nil {
		return nil, err
	}
	if err := prepare(cfg, srv, out); err != nil {
		return nil, err
	}
	srv.SetReady(true)
	return srv, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	if err != nil {
		return err
	}
	lg := logx.New(out, cfg.level)
	handler, err := buildServer(cfg, out)
	if err != nil {
		return err
	}
	handler.SetReady(false)
	srv := &http.Server{Addr: cfg.addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.reloadOn == "SIGHUP" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				body, err := handler.Reload()
				if err != nil {
					// Reload keeps the old artefact serving on failure; the
					// daemon stays healthy.
					lg.Infof("WARNING: SIGHUP reload failed: %v", err)
					continue
				}
				lg.Infof("SIGHUP reload complete: generation %d, %d ops", body.Generation, len(body.Ops))
			}
		}()
	}
	// closeTrace drains and closes the flight recorder, if one is attached —
	// run after the listener stops producing decisions, so the final partial
	// block (and any write error the drain hit) surfaces before exit.
	closeTrace := func() {
		rec := handler.Engine().Recorder()
		if rec == nil {
			return
		}
		handler.Engine().SetRecorder(nil)
		if err := rec.Close(); err != nil {
			lg.Infof("WARNING: flight recorder close: %v", err)
			return
		}
		lg.Infof("flight recorder closed: %d records captured, %d dropped, %d bytes",
			rec.Records(), rec.Dropped(), rec.BytesWritten())
	}
	errc := make(chan error, 1)
	go func() {
		lg.Infof("serving on %s", cfg.addr)
		errc <- srv.ListenAndServe()
	}()
	// Restore and warm with the listener already up: /healthz answers 503
	// "starting" until the cache is ready, /livez and /metrics work
	// throughout.
	if err := prepare(cfg, handler, out); err != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		closeTrace()
		return err
	}
	handler.SetReady(true)
	lg.Infof("ready")
	// Drift events surface in the log on a slot-duration cadence — the
	// monitor's own eviction granularity, so every window rotation gets one
	// evaluation. The monitor itself is wait-free; only this logging loop
	// ticks.
	if mon := handler.Engine().DriftMonitor(); mon != nil {
		mc := mon.Config()
		go func() {
			tick := time.NewTicker(mc.Window / time.Duration(mc.Slots))
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					mon.LogEvents(lg)
				}
			}
		}()
	}
	select {
	case err := <-errc:
		closeTrace()
		return err
	case <-ctx.Done():
		// Flip readiness before the listener closes so probes observe the
		// drain instead of racing connection resets.
		handler.SetReady(false)
		lg.Infof("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr := srv.Shutdown(shutdownCtx)
		// The drained listener can no longer produce decisions; flush the
		// capture so the trace on disk is complete before the process exits.
		closeTrace()
		// Save the snapshot even when graceful shutdown timed out: the
		// cache is still valid, Save is atomic, and losing the warmed
		// working set on exactly the restart path the snapshot exists for
		// would defeat it.
		if cfg.snapshot != "" {
			cache := handler.Engine().Cache()
			if err := cache.Save(cfg.snapshot); err != nil {
				if shutdownErr != nil {
					return fmt.Errorf("%w (and cache snapshot failed: %v)", shutdownErr, err)
				}
				return err
			}
			lg.Infof("saved %d cached decisions to %s", cache.Len(), cfg.snapshot)
		}
		return shutdownErr
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-serve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
