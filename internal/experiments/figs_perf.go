package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/tabulate"
)

// Fig10 regenerates the speedup heatmaps (Fig 10a/10b): per-shape ADSALA
// speedups over the holdout, binned on √-scaled (m,k)/(m,n)/(k,n) axes.
func Fig10(w io.Writer, lab *Lab) error {
	for _, p := range Platforms() {
		res, err := lab.Train(p, 500, true)
		if err != nil {
			return err
		}
		holdout, err := lab.Holdout(p, 500, true)
		if err != nil {
			return err
		}
		speedups := speedupRow(res.Library, holdout, p.RefThreads, lab.Scale.Iters)
		shapes := make([]sampling.Shape, len(speedups))
		// speedupRow preserves holdout order and only skips entries missing
		// the reference timing, which Gather never produces.
		for i := range speedups {
			shapes[i] = holdout[i].Shape
		}
		// Integerised tenths for the shared heat renderer.
		tenths := make([]int, len(speedups))
		accel := 0
		for i, s := range speedups {
			tenths[i] = int(s*10 + 0.5)
			if s > 1 {
				accel++
			}
		}
		fmt.Fprintf(w, "Fig 10 (%s): mean speedup x10 per sqrt-scaled bin (ref %d threads)\n",
			p.Name, p.RefThreads)
		fmt.Fprintf(w, "accelerated shapes: %d/%d\n", accel, len(speedups))
		fmt.Fprintf(w, "[m x k]\n%s", renderHeat(shapes, tenths,
			func(s sampling.Shape) int { return s.M }, func(s sampling.Shape) int { return s.K }))
		fmt.Fprintf(w, "[k x n]\n%s", renderHeat(shapes, tenths,
			func(s sampling.Shape) int { return s.K }, func(s sampling.Shape) int { return s.N }))
	}
	fmt.Fprintln(w, "paper: most cells accelerate (red); large-n cells gain most on Setonix.")
	return nil
}

// gflopsOf converts a wall time to GFLOPS for a shape.
func gflopsOf(sh sampling.Shape, seconds float64) float64 {
	return float64(sh.Flops()) / seconds / 1e9
}

// figMemoryBuckets implements Figs 11 and 12: mean GFLOPS of max-thread vs
// ML-selected GEMM per 100 MB footprint bucket.
func figMemoryBuckets(w io.Writer, lab *Lab, platform string) error {
	p, err := PlatformByName(platform)
	if err != nil {
		return err
	}
	res, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}
	holdout, err := lab.Holdout(p, 500, true)
	if err != nil {
		return err
	}
	// Aggregate per bucket: total FLOPs over total wall time, so a bucket's
	// GFLOPS reflects the time actually spent in it (the slow shapes the
	// thread selection rescues), not a mean dominated by its largest member.
	type acc struct {
		flops      float64
		tBase, tML float64
		n          int
	}
	buckets := make([]acc, 5)
	for _, st := range holdout {
		b := int(st.Shape.Bytes(4) / (100 * 1000 * 1000))
		if b > 4 {
			b = 4
		}
		ref, _ := st.TimeAt(p.RefThreads)
		choice := res.Library.OptimalThreads(st.Shape.M, st.Shape.K, st.Shape.N)
		chosen, ok := st.TimeAt(choice)
		if !ok {
			continue
		}
		buckets[b].flops += float64(st.Shape.Flops())
		buckets[b].tBase += ref
		buckets[b].tML += chosen + res.Library.EvalSeconds()/float64(lab.Scale.Iters)
		buckets[b].n++
	}
	fmt.Fprintf(w, "Aggregate GFLOPS (FP32) by GEMM memory footprint — %s (%s baseline at %d threads)\n",
		p.Name, p.BLASName, p.RefThreads)
	tb := tabulate.New("bucket (MB)", "n", p.BLASName+" max threads", p.BLASName+" with ML", "ratio")
	labels := []string{"0-100", "100-200", "200-300", "300-400", "400-500"}
	for i, b := range buckets {
		if b.n == 0 || b.tBase == 0 || b.tML == 0 {
			tb.Row(labels[i], "0", ".", ".", ".")
			continue
		}
		base := b.flops / b.tBase / 1e9
		ml := b.flops / b.tML / 1e9
		tb.Row(labels[i], tabulate.D(b.n), tabulate.F(base, 1), tabulate.F(ml, 1), tabulate.F(ml/base, 2))
	}
	fmt.Fprint(w, tb.String())
	return nil
}

// Fig11 regenerates the Setonix GFLOPS-by-footprint comparison (Fig 11).
func Fig11(w io.Writer, lab *Lab) error {
	if err := figMemoryBuckets(w, lab, "Setonix"); err != nil {
		return err
	}
	fmt.Fprintln(w, "paper: ~30% gain in 0-100 MB, gain persists across buckets on Setonix.")
	return nil
}

// Fig12 regenerates the Gadi counterpart (Fig 12).
func Fig12(w io.Writer, lab *Lab) error {
	if err := figMemoryBuckets(w, lab, "Gadi"); err != nil {
		return err
	}
	fmt.Fprintln(w, "paper: ~30% gain in 0-100 MB, converging toward parity at larger footprints.")
	return nil
}

// figPredesigned implements Figs 13 and 14: GFLOPS of the default max-thread
// configuration vs ML selection over the predesigned sweep grids.
func figPredesigned(w io.Writer, lab *Lab, platform string) error {
	p, err := PlatformByName(platform)
	if err != nil {
		return err
	}
	res, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}
	sim := lab.Sim(p, true)
	max := p.Node.MaxThreads(true)

	fmt.Fprintf(w, "GFLOPS (FP32) on predesigned shapes — %s (%s default = %d threads)\n",
		p.Name, p.BLASName, max)
	tb := tabulate.New("family", "sweep", "default", "with ML", "ml threads", "speedup")
	grid := sampling.Predesigned()
	var worstDefault, bestSpeedup float64
	var bestCase string
	for _, pt := range grid {
		sh := pt.Shape
		tDef := sim.MeasureMean(sh.M, sh.K, sh.N, max, lab.Scale.Iters)
		ml := res.Library.OptimalThreads(sh.M, sh.K, sh.N)
		tML := sim.MeasureMean(sh.M, sh.K, sh.N, ml, lab.Scale.Iters) + res.Library.EvalSeconds()/float64(lab.Scale.Iters)
		sp := tDef / tML
		if sp > bestSpeedup {
			bestSpeedup = sp
			bestCase = fmt.Sprintf("%s sweep=%d (%s)", pt.Family, pt.Sweep, sh)
		}
		if g := gflopsOf(sh, tDef); worstDefault == 0 || g < worstDefault {
			worstDefault = g
		}
		tb.Row(pt.Family, tabulate.D(pt.Sweep),
			tabulate.F(gflopsOf(sh, tDef), 1), tabulate.F(gflopsOf(sh, tML), 1),
			tabulate.D(ml), tabulate.F(sp, 2))
	}
	fmt.Fprint(w, tb.String())
	fmt.Fprintf(w, "largest speedup: %.1fx at %s; worst default GFLOPS: %.2f\n",
		bestSpeedup, bestCase, worstDefault)
	return nil
}

// Fig13 regenerates the Setonix predesigned-shape study (Fig 13).
func Fig13(w io.Writer, lab *Lab) error {
	if err := figPredesigned(w, lab, "Setonix"); err != nil {
		return err
	}
	fmt.Fprintln(w, "paper: speedups grow with the swept dimensions; k- or n-small families")
	fmt.Fprintln(w, "gain most, m-small families least.")
	return nil
}

// Fig14 regenerates the Gadi predesigned-shape study (Fig 14).
func Fig14(w io.Writer, lab *Lab) error {
	if err := figPredesigned(w, lab, "Gadi"); err != nil {
		return err
	}
	fmt.Fprintln(w, "paper: MKL's default performance is erratic on skinny shapes (sometimes")
	fmt.Fprintln(w, "<1 GFLOPS); ML reaches 33.9x and 81.6x on 64,64,4096 and 64,2048,64.")
	return nil
}

// holdoutChoiceAgreement is a convenience used by tests: the fraction of
// holdout shapes where the library's choice is within a factor of two of
// the measured-optimal time.
func holdoutChoiceAgreement(lib *core.Library, holdout []core.ShapeTimings) float64 {
	good := 0
	for _, st := range holdout {
		choice := lib.OptimalThreads(st.Shape.M, st.Shape.K, st.Shape.N)
		chosen, ok := st.TimeAt(choice)
		if !ok {
			continue
		}
		if chosen <= 2*st.BestMeasured().Seconds {
			good++
		}
	}
	return float64(good) / float64(len(holdout))
}
