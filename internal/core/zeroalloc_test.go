package core

import (
	"testing"

	"repro/internal/ops"
)

// TestRankOpIntoZeroAlloc pins the //adsala:zeroalloc contract on the
// ranking hot path: with a caller-owned Scratch and scores slice, a full
// candidate ranking allocates nothing — including the lazy column-index
// resolution inside featureIndices (Once.Do's fast path keeps its closure
// on the stack; see the //adsala:ignore there).
func TestRankOpIntoZeroAlloc(t *testing.T) {
	res := quickTrain(t, 40)
	lib := res.Library
	s := lib.NewScratch()
	scores := make([]float64, len(lib.Candidates))
	if n := testing.AllocsPerRun(200, func() {
		lib.RankOpInto(ops.GEMM, 512, 256, 384, s, scores)
	}); n != 0 {
		t.Errorf("RankOpInto allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		lib.RankInto(512, 256, 384, s, nil)
	}); n != 0 {
		t.Errorf("RankInto allocates %.1f/op, want 0", n)
	}
}

// TestPredictOpSecondsIntoZeroAlloc pins the single-configuration scoring
// path (the drift monitor's per-measurement predicted label): it must
// agree exactly with the allocating PredictOpSeconds and allocate nothing.
func TestPredictOpSecondsIntoZeroAlloc(t *testing.T) {
	res := quickTrain(t, 40)
	lib := res.Library
	s := lib.NewScratch()
	want := lib.PredictOpSeconds(ops.GEMM, 512, 256, 384, 8)
	if got := lib.PredictOpSecondsInto(ops.GEMM, 512, 256, 384, 8, s); got != want {
		t.Fatalf("PredictOpSecondsInto = %v, PredictOpSeconds = %v — must agree exactly", got, want)
	}
	if n := testing.AllocsPerRun(200, func() {
		lib.PredictOpSecondsInto(ops.GEMM, 512, 256, 384, 8, s)
	}); n != 0 {
		t.Errorf("PredictOpSecondsInto allocates %.1f/op, want 0", n)
	}
}
