package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestYeoJohnsonKnownForms(t *testing.T) {
	// λ=1 is identity.
	id := YeoJohnson{Lambda: 1}
	for _, v := range []float64{-3, -0.5, 0, 0.5, 3} {
		if got := id.Transform(v); math.Abs(got-v) > 1e-12 {
			t.Errorf("λ=1 Transform(%v) = %v", v, got)
		}
	}
	// λ=0, y>=0 is log1p.
	lg := YeoJohnson{Lambda: 0}
	if got := lg.Transform(math.E - 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("λ=0 Transform(e-1) = %v, want 1", got)
	}
	// λ=2, y<0 is -log1p(-y).
	l2 := YeoJohnson{Lambda: 2}
	if got := l2.Transform(-(math.E - 1)); math.Abs(got+1) > 1e-12 {
		t.Errorf("λ=2 Transform(-(e-1)) = %v, want -1", got)
	}
}

func TestYeoJohnsonInverseProperty(t *testing.T) {
	f := func(lRaw, vRaw int16) bool {
		lambda := float64(lRaw%30) / 10 // [-2.9, 2.9], the practical MLE range
		v := float64(vRaw) / 200        // [-163, 163]
		yj := YeoJohnson{Lambda: lambda}
		z := yj.Transform(v)
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true // extreme λ/value combos can overflow; not round-trippable
		}
		back := yj.Inverse(z)
		// Tolerance scales with the conditioning of the inverse power; large
		// |λ| with large |v| loses digits to cancellation by construction.
		return math.Abs(back-v) <= 1e-5*(1+math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestYeoJohnsonMonotoneProperty(t *testing.T) {
	f := func(lRaw int8, aRaw, bRaw int16) bool {
		yj := YeoJohnson{Lambda: float64(lRaw%50) / 10}
		a, b := float64(aRaw)/10, float64(bRaw)/10
		if a > b {
			a, b = b, a
		}
		ta, tb := yj.Transform(a), yj.Transform(b)
		if math.IsInf(ta, 0) || math.IsInf(tb, 0) || math.IsNaN(ta) || math.IsNaN(tb) {
			return true
		}
		return ta <= tb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFitYeoJohnsonReducesSkew(t *testing.T) {
	// Heavily right-skewed data (log-normal): the fitted transform must cut
	// skewness dramatically — this is the Fig 4 behaviour.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*1.2 + 2)
	}
	before := stats.Skewness(xs)
	yj, err := FitYeoJohnson(xs)
	if err != nil {
		t.Fatal(err)
	}
	trans := make([]float64, len(xs))
	for i, v := range xs {
		trans[i] = yj.Transform(v)
	}
	after := stats.Skewness(trans)
	if math.Abs(after) > math.Abs(before)/4 {
		t.Errorf("skewness %v -> %v: transform did not normalise", before, after)
	}
}

func TestFitYeoJohnsonEdgeCases(t *testing.T) {
	if _, err := FitYeoJohnson(nil); err == nil {
		t.Error("empty fit should error")
	}
	yj, err := FitYeoJohnson([]float64{5, 5, 5})
	if err != nil {
		t.Fatalf("constant fit: %v", err)
	}
	if yj.Lambda != 1 {
		t.Errorf("constant data λ = %v, want identity 1", yj.Lambda)
	}
	// Data with negatives must still fit (Box-Cox would fail here).
	if _, err := FitYeoJohnson([]float64{-3, -1, 0, 2, 8, 100}); err != nil {
		t.Errorf("negative values: %v", err)
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 3 || s.Mean[1] != 10 {
		t.Errorf("means = %v", s.Mean)
	}
	if s.Std[1] != 1 {
		t.Errorf("constant column Std = %v, want fallback 1", s.Std[1])
	}
	row := s.Transform([]float64{3, 10})
	if row[0] != 0 || row[1] != 0 {
		t.Errorf("transform of mean row = %v, want zeros", row)
	}
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty scaler fit should error")
	}
}

func TestLOFFlagsOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	for i := 0; i < 60; i++ {
		X = append(X, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	X = append(X, []float64{25, 25}) // blatant outlier
	scores, err := LOFScores(X, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := scores[len(scores)-1]
	if out < 2 {
		t.Errorf("outlier LOF = %v, want >> 1", out)
	}
	// Inliers should hover near 1.
	inlierHigh := 0
	for _, s := range scores[:60] {
		if s > 2 {
			inlierHigh++
		}
	}
	if inlierHigh > 3 {
		t.Errorf("%d/60 inliers scored > 2", inlierHigh)
	}
	keep, err := FilterLOF(X, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range keep {
		if i == 60 {
			t.Error("FilterLOF kept the outlier")
		}
	}
}

func TestLOFEdgeCases(t *testing.T) {
	if _, err := LOFScores(nil, 3); err == nil {
		t.Error("empty LOF should error")
	}
	if _, err := LOFScores([][]float64{{1}}, 0); err == nil {
		t.Error("k=0 should error")
	}
	// Single point, k clamped: score 1.
	s, err := LOFScores([][]float64{{1, 2}}, 5)
	if err != nil || len(s) != 1 || s[0] != 1 {
		t.Errorf("single point: %v %v", s, err)
	}
	// Duplicate points (zero distances) must not NaN.
	dup := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	scores, err := LOFScores(dup, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range scores {
		if math.IsNaN(v) {
			t.Errorf("score[%d] is NaN", i)
		}
	}
}

func TestPruneCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	a := make([]float64, n)
	b := make([]float64, n) // b ≈ 2a: should collapse to one of {a, b}
	c := make([]float64, n) // independent
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = 2*a[i] + 0.01*rng.NormFloat64()
		c[i] = rng.NormFloat64()
	}
	keep := pruneCorrelated([][]float64{a, b, c}, 0.8)
	if len(keep) != 2 {
		t.Fatalf("kept %v, want 2 columns", keep)
	}
	hasC := false
	for _, k := range keep {
		if k == 2 {
			hasC = true
		}
	}
	if !hasC {
		t.Error("independent column was dropped")
	}
}

func buildGEMMLike(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"m", "k", "mk", "noise"})
	for i := 0; i < n; i++ {
		m := math.Exp(rng.Float64() * 8)
		k := math.Exp(rng.Float64() * 8)
		d.Append([]float64{m, k, m * k, rng.NormFloat64()}, m*k*1e-9+1e-7)
	}
	return d
}

func TestPipelineFitTransformConsistency(t *testing.T) {
	d := buildGEMMLike(300, 4)
	p, train, err := Fit(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() == 0 || train.Len() > d.Len() {
		t.Fatalf("train rows = %d", train.Len())
	}
	if len(train.Cols) > len(d.Cols) {
		t.Fatalf("columns grew: %v", train.Cols)
	}
	// Transform of a raw row must be finite and have the training width.
	row := p.Transform(d.X[0])
	if len(row) != len(train.Cols) {
		t.Fatalf("Transform width %d, want %d", len(row), len(train.Cols))
	}
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Transform produced %v", v)
		}
	}
	// TransformInto agrees with Transform.
	dst := make([]float64, len(train.Cols))
	p.TransformInto(d.X[0], dst)
	for i := range dst {
		if dst[i] != row[i] {
			t.Fatal("TransformInto disagrees with Transform")
		}
	}
	// Log target: train targets are ln(y); Untransform inverts.
	if !p.LogTarget {
		t.Error("DefaultOptions should enable LogTarget")
	}
	if got := p.UntransformTarget(train.Y[0]); got <= 0 {
		t.Errorf("UntransformTarget = %v, want positive seconds", got)
	}
}

func TestPipelineDropsCorrelatedGEMMFeature(t *testing.T) {
	// In GEMM-like data, m*k correlates with m and k after YJ; with the 0.8
	// threshold at least one column should usually be pruned. Use perfectly
	// duplicated columns to make it deterministic.
	d := dataset.New([]string{"a", "a2"})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		v := rng.ExpFloat64() + 0.1
		d.Append([]float64{v, v}, v)
	}
	opts := DefaultOptions()
	opts.LOFNeighbours = 0
	p, train, err := Fit(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Cols) != 1 {
		t.Errorf("duplicate columns not pruned: %v", train.Cols)
	}
	if len(p.OutputCols()) != 1 {
		t.Errorf("OutputCols = %v", p.OutputCols())
	}
}

func TestPipelineRejectsNonPositiveTargetWithLog(t *testing.T) {
	d := dataset.New([]string{"x"})
	d.Append([]float64{1}, 0) // zero runtime is invalid under log
	d.Append([]float64{2}, 1)
	opts := DefaultOptions()
	opts.LOFNeighbours = 0
	if _, _, err := Fit(d, opts); err == nil {
		t.Error("zero target with LogTarget should error")
	}
}

func TestPipelineSerialisationRoundTrip(t *testing.T) {
	d := buildGEMMLike(200, 6)
	p, _, err := Fit(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalPipeline(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a := p.Transform(d.X[i])
		b := q.Transform(d.X[i])
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d diverged after round trip", i)
			}
		}
	}
}

func TestUnmarshalPipelineRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalPipeline([]byte("{")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := UnmarshalPipeline([]byte(`{"input_cols":["a"],"yeo_johnson":[],"scaler":{"mean":[],"std":[]},"keep":[]}`)); err == nil {
		t.Error("inconsistent shapes should error")
	}
	if _, err := UnmarshalPipeline([]byte(`{"input_cols":["a"],"yeo_johnson":[{"lambda":1}],"scaler":{"mean":[0],"std":[1]},"keep":[7]}`)); err == nil {
		t.Error("out-of-range keep index should error")
	}
}

func TestPipelineNoLOFNoCorr(t *testing.T) {
	d := buildGEMMLike(100, 7)
	p, train, err := Fit(d, Options{LogTarget: false})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != d.Len() {
		t.Errorf("rows changed without LOF: %d vs %d", train.Len(), d.Len())
	}
	if len(train.Cols) != len(d.Cols) {
		t.Errorf("columns changed without pruning: %v", train.Cols)
	}
	if got := p.UntransformTarget(2.5); got != 2.5 {
		t.Errorf("identity target transform = %v", got)
	}
}
