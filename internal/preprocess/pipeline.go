package preprocess

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Options configures pipeline fitting. The zero value is not useful;
// use DefaultOptions.
type Options struct {
	// LOFNeighbours is k for the outlier filter; LOFThreshold the maximum
	// admissible score. LOFNeighbours <= 0 disables outlier removal.
	LOFNeighbours int
	LOFThreshold  float64
	// CorrThreshold is the |Pearson| level above which one feature of a
	// correlated pair is dropped (§IV-C: 80%). <= 0 disables pruning.
	CorrThreshold float64
	// LogTarget fits models to ln(y) instead of y. The paper regresses raw
	// runtime; runtimes in this domain span five orders of magnitude, so the
	// log keeps small-GEMM residuals visible to the loss. Predictions are
	// mapped back with exp. Documented as a deviation in DESIGN.md.
	LogTarget bool
}

// DefaultOptions mirrors the paper's settings (LOF with k=20, threshold 1.5,
// 80% correlation pruning) plus the log-target device.
func DefaultOptions() Options {
	return Options{LOFNeighbours: 20, LOFThreshold: 1.5, CorrThreshold: 0.8, LogTarget: true}
}

// Pipeline is a fitted, serialisable preprocessing chain:
// Yeo-Johnson per column → standardise → select surviving columns.
// Row filtering (LOF) happens only at fit time.
type Pipeline struct {
	InputCols []string       `json:"input_cols"`
	YJ        []YeoJohnson   `json:"yeo_johnson"`
	Scaler    StandardScaler `json:"scaler"`
	// Keep[i] is the index into InputCols of the i-th surviving feature.
	Keep      []int `json:"keep"`
	LogTarget bool  `json:"log_target"`
}

// Fit learns the preprocessing chain from d and returns the transformed
// training dataset (rows possibly removed by LOF, columns possibly pruned).
func Fit(d *dataset.Dataset, opts Options) (*Pipeline, *dataset.Dataset, error) {
	if d.Len() == 0 {
		return nil, nil, fmt.Errorf("preprocess: empty dataset")
	}
	w := len(d.Cols)
	p := &Pipeline{
		InputCols: append([]string(nil), d.Cols...),
		YJ:        make([]YeoJohnson, w),
		LogTarget: opts.LogTarget,
	}

	// 1. Yeo-Johnson per column (λ by MLE).
	colVals := make([][]float64, w)
	for j := 0; j < w; j++ {
		col := make([]float64, d.Len())
		for i, row := range d.X {
			col[i] = row[j]
		}
		colVals[j] = col
		yj, err := FitYeoJohnson(col)
		if err != nil {
			return nil, nil, fmt.Errorf("preprocess: column %q: %w", d.Cols[j], err)
		}
		p.YJ[j] = yj
	}
	X := make([][]float64, d.Len())
	for i, row := range d.X {
		r := make([]float64, w)
		for j, v := range row {
			r[j] = p.YJ[j].Transform(v)
		}
		X[i] = r
	}

	// 2. Standardise.
	scaler, err := FitScaler(X)
	if err != nil {
		return nil, nil, err
	}
	p.Scaler = scaler
	for _, row := range X {
		scaler.Transform(row)
	}

	// 3. LOF row filtering (after standardisation: density needs one scale).
	rows := seq(len(X))
	if opts.LOFNeighbours > 0 && len(X) > opts.LOFNeighbours {
		rows, err = FilterLOF(X, opts.LOFNeighbours, opts.LOFThreshold)
		if err != nil {
			return nil, nil, err
		}
		if len(rows) == 0 {
			return nil, nil, fmt.Errorf("preprocess: LOF removed every row (threshold %v too strict)", opts.LOFThreshold)
		}
	}

	// 4. Correlation pruning on the surviving rows.
	p.Keep = seq(w)
	if opts.CorrThreshold > 0 {
		kept := make([][]float64, w)
		for j := 0; j < w; j++ {
			col := make([]float64, len(rows))
			for i, r := range rows {
				col[i] = X[r][j]
			}
			kept[j] = col
		}
		p.Keep = pruneCorrelated(kept, opts.CorrThreshold)
	}

	// Assemble the transformed training set.
	outCols := make([]string, len(p.Keep))
	for i, j := range p.Keep {
		outCols[i] = d.Cols[j]
	}
	out := dataset.New(outCols)
	for _, r := range rows {
		row := make([]float64, len(p.Keep))
		for i, j := range p.Keep {
			row[i] = X[r][j]
		}
		y := d.Y[r]
		if opts.LogTarget {
			if y <= 0 {
				return nil, nil, fmt.Errorf("preprocess: non-positive target %v at row %d with LogTarget", y, r)
			}
			y = math.Log(y)
		}
		out.Append(row, y)
	}
	return p, out, nil
}

// Transform maps one raw feature row (full InputCols width) to the model's
// input space. The input slice is not modified.
func (p *Pipeline) Transform(row []float64) []float64 {
	if len(row) != len(p.InputCols) {
		panic(fmt.Sprintf("preprocess: Transform row width %d, want %d", len(row), len(p.InputCols)))
	}
	out := make([]float64, len(p.Keep))
	for i, j := range p.Keep {
		z := p.YJ[j].Transform(row[j])
		out[i] = (z - p.Scaler.Mean[j]) / p.Scaler.Std[j]
	}
	return out
}

// TransformInto is Transform without allocation; dst must have len(p.Keep).
func (p *Pipeline) TransformInto(row, dst []float64) {
	if len(dst) != len(p.Keep) {
		panic("preprocess: TransformInto dst width mismatch")
	}
	for i, j := range p.Keep {
		z := p.YJ[j].Transform(row[j])
		dst[i] = (z - p.Scaler.Mean[j]) / p.Scaler.Std[j]
	}
}

// UntransformTarget maps a model prediction back to seconds.
func (p *Pipeline) UntransformTarget(v float64) float64 {
	if p.LogTarget {
		return math.Exp(v)
	}
	return v
}

// OutputCols returns the surviving feature names in model-input order.
func (p *Pipeline) OutputCols() []string {
	out := make([]string, len(p.Keep))
	for i, j := range p.Keep {
		out[i] = p.InputCols[j]
	}
	return out
}

// MarshalJSONSelf / load helpers.
func (p *Pipeline) Marshal() ([]byte, error) { return json.Marshal(p) }

// UnmarshalPipeline restores a pipeline written by Marshal.
func UnmarshalPipeline(data []byte) (*Pipeline, error) {
	var p Pipeline
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("preprocess: decode pipeline: %w", err)
	}
	if len(p.YJ) != len(p.InputCols) || len(p.Scaler.Mean) != len(p.InputCols) {
		return nil, fmt.Errorf("preprocess: pipeline shape inconsistent")
	}
	for _, j := range p.Keep {
		if j < 0 || j >= len(p.InputCols) {
			return nil, fmt.Errorf("preprocess: keep index %d out of range", j)
		}
	}
	return &p, nil
}

// pruneCorrelated drops one feature from every pair with |corr| above the
// threshold — the one with the larger total absolute correlation against all
// other features (§IV-C) — and returns the surviving column indices.
func pruneCorrelated(cols [][]float64, threshold float64) []int {
	w := len(cols)
	corr := make([][]float64, w)
	for i := range corr {
		corr[i] = make([]float64, w)
		corr[i][i] = 1
	}
	for i := 0; i < w; i++ {
		for j := i + 1; j < w; j++ {
			c := math.Abs(stats.Correlation(cols[i], cols[j]))
			corr[i][j], corr[j][i] = c, c
		}
	}
	dropped := make([]bool, w)
	for {
		// Find the worst surviving pair.
		bi, bj, best := -1, -1, threshold
		for i := 0; i < w; i++ {
			if dropped[i] {
				continue
			}
			for j := i + 1; j < w; j++ {
				if dropped[j] {
					continue
				}
				if corr[i][j] > best {
					bi, bj, best = i, j, corr[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		// Drop the member with the larger total correlation to others.
		ti, tj := 0.0, 0.0
		for k := 0; k < w; k++ {
			if dropped[k] || k == bi || k == bj {
				continue
			}
			ti += corr[bi][k]
			tj += corr[bj][k]
		}
		if ti >= tj {
			dropped[bi] = true
		} else {
			dropped[bj] = true
		}
	}
	var keep []int
	for i := 0; i < w; i++ {
		if !dropped[i] {
			keep = append(keep, i)
		}
	}
	return keep
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
