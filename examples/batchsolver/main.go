// Batchsolver: a blocked iterative solver issuing the same GEMM shape in a
// loop — the workload pattern §III-C's prediction cache is built for. This
// example runs a block power-iteration (repeated C = A·B with fixed shapes)
// through the ADSALA front end and reports cache behaviour and the overhead
// actually paid per call.
//
//	go run ./examples/batchsolver
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	adsala "repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== block power iteration through ADSALA (trained for Setonix) ==")
	lib, _, err := adsala.Train(adsala.TrainOptions{
		Platform: "Setonix", Shapes: 120, Quick: true, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := lib.NewGemm()

	// Block power iteration: V <- normalise(A·V), A is n×n, V is n×b.
	const n, b, iters = 300, 8, 25
	rng := rand.New(rand.NewSource(11))
	a := adsala.NewMatrixF64(n, n)
	v := adsala.NewMatrixF64(n, b)
	w := adsala.NewMatrixF64(n, b)
	a.FillRandom(rng)
	// Symmetrise A so the iteration converges to real eigenvectors.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	v.FillRandom(rng)

	start := time.Now()
	for it := 0; it < iters; it++ {
		if err := g.DGEMM(false, false, 1, a, v, 0, w); err != nil {
			log.Fatal(err)
		}
		// Column-normalise W into V.
		for j := 0; j < b; j++ {
			var norm float64
			for i := 0; i < n; i++ {
				norm += w.At(i, j) * w.At(i, j)
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				norm = 1
			}
			for i := 0; i < n; i++ {
				v.Set(i, j, w.At(i, j)/norm)
			}
		}
	}
	elapsed := time.Since(start)

	// Rayleigh quotient of the leading block column as a convergence check.
	if err := g.DGEMM(false, false, 1, a, v, 0, w); err != nil {
		log.Fatal(err)
	}
	var rayleigh float64
	for i := 0; i < n; i++ {
		rayleigh += v.At(i, 0) * w.At(i, 0)
	}

	hits, misses := g.CacheStats()
	fmt.Printf("%d iterations of V <- A·V (%dx%d times %dx%d) in %v\n", iters, n, n, n, b, elapsed)
	fmt.Printf("leading eigenvalue estimate: %.4f\n", rayleigh)
	fmt.Printf("model-selected threads for the solver GEMM: %d\n", g.LastChoice(n, n, b))
	fmt.Printf("prediction cache: %d hits / %d misses — the model ran %d time(s) for %d GEMMs\n",
		hits, misses, misses, hits+misses)
	fmt.Printf("amortised selection overhead: %.2f us per GEMM (single eval %.2f us)\n",
		lib.EvalLatency()*1e6*float64(misses)/float64(hits+misses), lib.EvalLatency()*1e6)
}
