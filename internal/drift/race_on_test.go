//go:build race

package drift

// raceEnabled reports whether this test binary was built with -race;
// allocation-count pins are skipped under the race detector.
const raceEnabled = true
