// Package atomicfield_a exercises the atomicfield analyzer: mixed
// atomic/plain access to the same field is the torn-read bug class.
package atomicfield_a

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	clean  int64
}

func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) snapshot() (int64, int64) {
	h := atomic.LoadInt64(&c.hits)
	m := c.misses // want `field misses is accessed atomically .* but plainly here`
	return h, m
}

func (c *counters) reset() {
	c.misses = 0 // want `field misses is accessed atomically`
}

// touch only ever accesses clean plainly — no atomic site anywhere, so no
// finding (the negative case).
func (c *counters) touch() { c.clean++ }

// zero runs before any goroutine can see c; the plain write is justified
// and suppressed.
func (c *counters) zero() {
	c.hits = 0 //adsala:ignore atomicfield test fixture: runs before concurrency starts
}
