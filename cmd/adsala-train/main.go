// adsala-train runs the ADSALA installation workflow (Fig 2): it gathers
// GEMM timings on the selected platform, preprocesses them, tunes and trains
// the eight candidate models, prints the Table III/IV-style comparison, and
// saves the selected model plus preprocessing configuration to a library
// file for the runtime (Fig 3).
//
// Usage:
//
//	adsala-train -platform Gadi -cap 500 -shapes 300 -out gadi.adsala.json
//	adsala-train -platform local -out local.adsala.json
//	adsala-train -platform Gadi -ops gemm,syrk -out gadi.adsala.json
//	adsala-train -platform Gadi -workers host1:9090,host2:9090 \
//	    -checkpoint gather.ckpt -out gadi.adsala.json
//
// -ops trains one model per listed operation (GEMM is always trained); the
// artefact stores the per-op bundle in format v2, and the report prints one
// comparison table per op.
//
// -workers shards the timing sweep across a fleet of adsala-worker daemons
// (the slowest stage of installation; see the README "Distributed
// training" section). The merged sweep is ordered by sample index, so a
// simulated-platform distributed gather trains the identical model the
// single-node path would. -checkpoint makes the sweep resumable: completed
// work units are appended to a JSONL file and skipped on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	adsala "repro"
	"repro/internal/logx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-train: ")
	var (
		platform = flag.String("platform", "Gadi", "Setonix, Gadi (simulated) or local")
		capMB    = flag.Int("cap", 0, "memory cap in MB for sampled GEMMs (0 = platform default)")
		shapes   = flag.Int("shapes", 0, "number of sampled shapes (0 = platform default; paper used 1763)")
		iters    = flag.Int("iters", 3, "timing repetitions per configuration (paper: 10)")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "smaller model grids and ensembles")
		noHT     = flag.Bool("no-ht", false, "disable hyper-threading on the simulated platform")
		opsFlag  = flag.String("ops", "gemm", "comma-separated operations to train models for (gemm,syrk,syr2k); gemm is always included")
		workers  = flag.String("workers", "", "comma-separated adsala-worker addresses to shard the timing sweep across (empty = single-node gather)")
		ckpt     = flag.String("checkpoint", "", "resumable gather checkpoint path prefix (distributed gather only; per-op suffix appended)")
		out      = flag.String("out", "adsala.json", "output library file")
		levelStr = logx.RegisterFlag(flag.CommandLine)
	)
	flag.Parse()

	level, err := logx.ParseLevel(*levelStr)
	if err != nil {
		log.Fatal(err)
	}
	lg := logx.New(os.Stderr, level)

	trainOps, err := adsala.ParseOps(*opsFlag)
	if err != nil {
		log.Fatal(err)
	}
	var workerList []string
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workerList = append(workerList, w)
			}
		}
		if len(workerList) == 0 {
			log.Fatal("-workers lists no usable addresses")
		}
	}
	if *ckpt != "" && len(workerList) == 0 {
		log.Fatal("-checkpoint requires -workers (the single-node gather is not checkpointed)")
	}
	// Ctrl-C / SIGTERM cancels the timing gather between units instead of
	// killing the process mid-write: a checkpointed distributed sweep keeps
	// everything merged so far and resumes on the next run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	lib, report, err := adsala.Train(adsala.TrainOptions{
		Context:    ctx,
		Platform:   *platform,
		CapMB:      *capMB,
		Shapes:     *shapes,
		Iters:      *iters,
		Seed:       *seed,
		Quick:      *quick,
		NoHT:       *noHT,
		Ops:        trainOps,
		Workers:    workerList,
		Checkpoint: *ckpt,
		Logf: func(format string, args ...any) {
			lg.Infof("gather: "+format, args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Model comparison on %s:\n%s\n", lib.Platform(), report)
	fmt.Printf("trained ops: %v\n", lib.TrainedOps())
	fmt.Printf("selected model: %s (eval latency %.1f us)\n",
		lib.ModelKind(), lib.EvalLatency()*1e6)
	if err := lib.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library written to %s\n", *out)
}
