package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewEngine(lib(t), Options{CacheSize: 256, Shards: 8}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestServerPredictRoundTrip(t *testing.T) {
	srv, ts := testServer(t)
	client := NewClient(ts.URL, nil)

	want := srv.Engine().Library().OptimalThreads(512, 512, 512)
	got, err := client.Predict(512, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("client answer %d, library %d", got, want)
	}

	// GET with query parameters answers identically.
	resp, err := http.Get(ts.URL + "/predict?m=512&k=512&n=512")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Threads != want || pr.M != 512 {
		t.Errorf("GET answer %+v, want threads %d", pr, want)
	}

	// Detail mode carries the full ranking.
	detail, err := client.PredictDetail(64, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(detail.Candidates) == 0 || len(detail.PredictedMicros) != len(detail.Candidates) {
		t.Fatalf("detail ranking missing: %+v", detail)
	}
}

func TestServerBatchRoundTrip(t *testing.T) {
	srv, ts := testServer(t)
	client := NewClient(ts.URL, nil)
	shapes := mixedShapes(20)
	got, err := client.PredictBatch(shapes)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shapes {
		want := srv.Engine().Library().OptimalThreads(sh.M, sh.K, sh.N)
		if got[i] != want {
			t.Errorf("shape %v: batch %d, library %d", sh, got[i], want)
		}
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	_, ts := testServer(t)
	client := NewClient(ts.URL, nil)

	h, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Platform != "Gadi" || h.Model == "" {
		t.Errorf("healthz = %+v", h)
	}

	if _, err := client.Predict(100, 100, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Predict(100, 100, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PredictBatch(mixedShapes(5)); err != nil {
		t.Fatal(err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Platform != "Gadi" {
		t.Errorf("stats platform %q", st.Platform)
	}
	if st.Engine.Predictions < 7 || st.Engine.CacheHits < 1 {
		t.Errorf("engine stats %+v", st.Engine)
	}
	if p := st.HTTP["predict"]; p.Requests != 2 || p.MeanMicros <= 0 || p.MaxMicros < p.MeanMicros {
		t.Errorf("predict endpoint stats %+v", p)
	}
	if b := st.HTTP["batch"]; b.Requests != 1 {
		t.Errorf("batch endpoint stats %+v", b)
	}
}

func TestServerErrors(t *testing.T) {
	_, ts := testServer(t)

	for _, tc := range []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"predict missing params", func() (*http.Response, error) {
			return http.Get(ts.URL + "/predict")
		}, http.StatusBadRequest},
		{"predict bad dims", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{"m":0,"k":5,"n":5}`))
		}, http.StatusBadRequest},
		{"predict bad json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/predict", "application/json", strings.NewReader(`{`))
		}, http.StatusBadRequest},
		{"predict bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/predict", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
		{"batch get", func() (*http.Response, error) {
			return http.Get(ts.URL + "/batch")
		}, http.StatusMethodNotAllowed},
		{"batch empty", func() (*http.Response, error) {
			return http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`{"shapes":[]}`))
		}, http.StatusBadRequest},
		{"batch bad shape", func() (*http.Response, error) {
			return http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`{"shapes":[{"m":1,"k":1,"n":-2}]}`))
		}, http.StatusBadRequest},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
			t.Errorf("%s: error body not decodable (%v)", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	// Client surfaces server-side errors.
	client := NewClient(ts.URL, nil)
	if _, err := client.Predict(-1, 1, 1); err == nil {
		t.Error("client.Predict(-1,...) should error")
	}
	if _, err := client.PredictBatch(nil); err == nil {
		t.Error("client.PredictBatch(nil) should error")
	}
}
