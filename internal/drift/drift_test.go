package drift

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/logx"
	"repro/internal/ops"
)

func TestBucketRouting(t *testing.T) {
	m := NewMonitor(Config{MinSamples: 1})

	// GEMM FLOPs = 2mkn: 100³ → 2e6 (small), 500³ → 2.5e8 (medium),
	// 2000³ → 1.6e10 (large).
	if b := m.bucketOf(ops.GEMM, 100, 100, 100); b != bucketSmall {
		t.Errorf("100^3 GEMM bucket %d, want small", b)
	}
	if b := m.bucketOf(ops.GEMM, 500, 500, 500); b != bucketMedium {
		t.Errorf("500^3 GEMM bucket %d, want medium", b)
	}
	if b := m.bucketOf(ops.GEMM, 2000, 2000, 2000); b != bucketLarge {
		t.Errorf("2000^3 GEMM bucket %d, want large", b)
	}
	// SYRK uses its own weight m(m+1)k, not the GEMM formula.
	if b := m.bucketOf(ops.SYRK, 500, 500, 500); b != bucketMedium {
		t.Errorf("500^3 SYRK bucket %d, want medium", b)
	}

	ts := int64(1)
	m.ObserveAt(ts, ops.GEMM, 100, 100, 100, 1000, 1000)
	m.ObserveAt(ts, ops.GEMM, 500, 500, 500, 1000, 1000)
	m.ObserveAt(ts, ops.GEMM, 2000, 2000, 2000, 1000, 1000)
	rep := m.SnapshotAt(ts)
	od, ok := rep.PerOp["gemm"]
	if !ok {
		t.Fatalf("per_op missing gemm: %v", rep.PerOp)
	}
	for _, name := range []string{"small", "medium", "large"} {
		bd, ok := od.Buckets[name]
		if !ok || bd.Samples != 1 {
			t.Errorf("bucket %s = %+v, want 1 sample", name, bd)
		}
	}
	if od.ResidualLog2.Count != 3 {
		t.Errorf("merged residual count %d, want 3", od.ResidualLog2.Count)
	}
}

func TestResidualDefinitions(t *testing.T) {
	m := NewMonitor(Config{MinSamples: 1})
	ts := int64(1)

	// predicted 2ms, measured 1ms: residual_log2 = 1, abs_rel_err = 1.
	m.ObserveAt(ts, ops.GEMM, 64, 64, 64, 2_000_000, 1_000_000)
	rep := m.SnapshotAt(ts)
	od := rep.PerOp["gemm"]
	if got := od.ResidualLog2.Mean; got != 1 {
		t.Errorf("residual_log2 mean %.6f, want 1", got)
	}
	if got := od.AbsRelErr.Mean; got != 1 {
		t.Errorf("abs_rel_err mean %.6f, want 1", got)
	}

	// Unpredicted measurement: no residual sample, abs_rel_err scores 1
	// (exactly as replay scores a zero prediction).
	m.ObserveAt(ts, ops.SYRK, 64, 64, 64, 0, 1_000_000)
	rep = m.SnapshotAt(ts)
	od = rep.PerOp["syrk"]
	if od.Measured != 1 || od.Unpredicted != 1 {
		t.Errorf("syrk measured=%d unpredicted=%d, want 1/1", od.Measured, od.Unpredicted)
	}
	if od.ResidualLog2.Count != 0 {
		t.Errorf("unpredicted added a residual sample: %+v", od.ResidualLog2)
	}
	if od.AbsRelErr.Count != 1 || od.AbsRelErr.Mean != 1 {
		t.Errorf("unpredicted abs_rel_err %+v, want one sample at 1", od.AbsRelErr)
	}

	// Non-positive measurements are dropped, out-of-range ops clamp to GEMM
	// instead of panicking.
	m.ObserveAt(ts, ops.GEMM, 64, 64, 64, 1000, 0)
	m.ObserveAt(ts, ops.Op(200), 64, 64, 64, 1000, 1000)
	rep = m.SnapshotAt(ts)
	if got := rep.PerOp["gemm"].Measured; got != 2 {
		t.Errorf("gemm measured %d, want 2 (dropped zero, clamped unknown)", got)
	}
}

func TestDriftTripAndEviction(t *testing.T) {
	m := NewMonitor(Config{Window: time.Minute, Slots: 4, Threshold: 0.5, MinSamples: 4})
	window := m.slotNanos * int64(m.cfg.Slots)
	ts := int64(1)

	// Below MinSamples the cell cannot trip, however bad the residuals.
	for i := 0; i < 3; i++ {
		m.ObserveAt(ts, ops.GEMM, 64, 64, 64, 4_000_000, 1_000_000) // residual_log2 = 2
	}
	if rep := m.SnapshotAt(ts); rep.Degraded {
		t.Errorf("degraded below MinSamples: %+v", rep.DriftingOps)
	}

	// The fourth bad sample trips it.
	m.ObserveAt(ts, ops.GEMM, 64, 64, 64, 4_000_000, 1_000_000)
	rep := m.SnapshotAt(ts)
	if !rep.Degraded || len(rep.DriftingOps) != 1 || rep.DriftingOps[0] != "gemm" {
		t.Fatalf("degraded=%v drifting=%v, want degraded on gemm", rep.Degraded, rep.DriftingOps)
	}
	if !rep.PerOp["gemm"].Drifting || !rep.PerOp["gemm"].Buckets["small"].Drifting {
		t.Errorf("drifting flags not set: %+v", rep.PerOp["gemm"])
	}
	if got := drifting(m, ts); len(got) != 1 || got[0] != "gemm" {
		t.Errorf("driftingAt = %v", got)
	}

	// A window later the bad samples have evicted: the op recovers without
	// any corrective traffic.
	later := ts + window + m.slotNanos
	rep = m.SnapshotAt(later)
	if rep.Degraded {
		t.Errorf("still degraded a full window later: %+v", rep.DriftingOps)
	}
	if got := rep.PerOp["gemm"].ResidualLog2.Count; got != 0 {
		t.Errorf("residual window holds %d samples after expiry", got)
	}
	// Cumulative counters survive the window.
	if got := rep.PerOp["gemm"].Measured; got != 4 {
		t.Errorf("cumulative measured %d, want 4", got)
	}
}

func drifting(m *Monitor, ts int64) []string { return m.driftingAt(ts) }

func TestLogEventsEdgesAndRateLimit(t *testing.T) {
	// A short window keeps the real-clock portions of this test fast: slot
	// duration is 250ms, which is both the eviction granularity and the
	// per-op event rate limit.
	m := NewMonitor(Config{Window: time.Second, Slots: 4, Threshold: 0.5, MinSamples: 4})
	var buf bytes.Buffer
	lg := logx.New(&buf, logx.Info)

	// Healthy first evaluation is recorded silently — a fresh daemon must
	// not open its log with a spurious drift_end.
	now := m.nowNanos()
	for i := 0; i < 8; i++ {
		m.ObserveAt(now, ops.GEMM, 64, 64, 64, 1_000_000, 1_000_000)
	}
	if n := m.LogEvents(lg); n != 0 {
		t.Fatalf("initial healthy evaluation logged %d events", n)
	}

	// Threshold crossing logs exactly one drift_start.
	now = m.nowNanos()
	for i := 0; i < 32; i++ {
		m.ObserveAt(now, ops.GEMM, 64, 64, 64, 8_000_000, 1_000_000) // residual_log2 = 3
	}
	if n := m.LogEvents(lg); n != 1 {
		t.Fatalf("threshold crossing logged %d events, want 1", n)
	}
	out := buf.String()
	if !strings.Contains(out, "event=drift_start") || !strings.Contains(out, "op=gemm") {
		t.Fatalf("drift_start line malformed: %q", out)
	}
	// Steady state logs nothing.
	if n := m.LogEvents(lg); n != 0 {
		t.Fatalf("steady drifting state logged %d events", n)
	}

	// Flood the window with healthy samples: the state flips back, but the
	// rate limit suppresses a transition within one slot of the last event.
	now = m.nowNanos()
	for i := 0; i < 512; i++ {
		m.ObserveAt(now, ops.GEMM, 64, 64, 64, 1_000_000, 1_000_000)
	}
	if n := m.LogEvents(lg); n != 0 {
		t.Fatalf("recovery inside the rate-limit slot logged %d events", n)
	}

	// After the slot elapses the recovery edge logs drift_end.
	time.Sleep(time.Duration(m.slotNanos) + 50*time.Millisecond)
	now = m.nowNanos()
	for i := 0; i < 512; i++ {
		m.ObserveAt(now, ops.GEMM, 64, 64, 64, 1_000_000, 1_000_000)
	}
	if n := m.LogEvents(lg); n != 1 {
		t.Fatalf("recovery after rate-limit slot logged %d events, want 1", n)
	}
	if !strings.Contains(buf.String(), "event=drift_end") {
		t.Fatalf("drift_end missing from log: %q", buf.String())
	}
}

func TestReportJSONShape(t *testing.T) {
	m := NewMonitor(Config{})
	m.ObserveAt(1, ops.GEMM, 500, 500, 500, 2_000_000, 1_000_000)
	b, err := json.Marshal(m.SnapshotAt(1))
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got["schema"] != Schema {
		t.Errorf("schema %v", got["schema"])
	}
	for _, key := range []string{"window_seconds", "slots", "threshold", "min_samples", "observed", "degraded", "per_op"} {
		if _, ok := got[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	perOp := got["per_op"].(map[string]any)
	gemm := perOp["gemm"].(map[string]any)
	for _, key := range []string{"measured", "residual_log2", "abs_rel_err", "measured_latency", "predicted_latency", "drifting", "buckets"} {
		if _, ok := gemm[key]; !ok {
			t.Errorf("per_op entry missing %q", key)
		}
	}
	res := gemm["residual_log2"].(map[string]any)
	for _, key := range []string{"count", "mean", "std", "min", "max"} {
		if _, ok := res[key]; !ok {
			t.Errorf("residual summary missing %q", key)
		}
	}
	lat := gemm["measured_latency"].(map[string]any)
	for _, key := range []string{"count", "mean_seconds", "p50_seconds", "p90_seconds", "p99_seconds"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("latency tails missing %q", key)
		}
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	m := NewMonitor(Config{})
	if n := testing.AllocsPerRun(500, func() {
		m.Observe(ops.GEMM, 512, 256, 384, 2_000_000, 1_000_000)
	}); n != 0 {
		t.Errorf("Observe allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		m.Observe(ops.SYR2K, 512, 256, 512, 0, 1_000_000)
	}); n != 0 {
		t.Errorf("unpredicted Observe allocates %.1f/op, want 0", n)
	}
}
