package core

import (
	"fmt"
	"math"

	"repro/internal/ml/boost"
)

// DirectThreadModel is the ablation baseline of DESIGN.md §5: instead of
// regressing runtime per (shape, threads) and taking the argmin (§IV-A), it
// regresses the optimal thread count directly from the shape. One row per
// shape, so it sees |candidates|-times less signal.
type DirectThreadModel struct {
	model interface{ Predict([]float64) float64 }
	max   int
}

// TrainDirectThreadModel fits the direct baseline on a gathered sweep.
func TrainDirectThreadModel(data []ShapeTimings, seed int64, quick bool) (*DirectThreadModel, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: no data for direct model")
	}
	rounds := 120
	if quick {
		rounds = 30
	}
	X := make([][]float64, len(data))
	y := make([]float64, len(data))
	max := 1
	for i, st := range data {
		sh := st.Shape
		X[i] = directFeatures(sh.M, sh.K, sh.N)
		best := st.BestMeasured()
		y[i] = float64(best.Threads)
		for _, ct := range st.Times {
			if ct.Threads > max {
				max = ct.Threads
			}
		}
	}
	model := boost.NewXGB(boost.XGBParams{NRounds: rounds, MaxDepth: 4, Seed: seed})
	if err := model.Fit(X, y); err != nil {
		return nil, err
	}
	return &DirectThreadModel{model: model, max: max}, nil
}

// Predict returns the predicted optimal thread count, clamped to [1, max].
func (d *DirectThreadModel) Predict(m, k, n int) int {
	v := int(math.Round(d.model.Predict(directFeatures(m, k, n))))
	if v < 1 {
		v = 1
	}
	if v > d.max {
		v = d.max
	}
	return v
}

// directFeatures are the shape-only (Group 1 minus n_threads) log-scaled
// terms.
func directFeatures(m, k, n int) []float64 {
	fm, fk, fn := float64(m), float64(k), float64(n)
	return []float64{
		math.Log(fm), math.Log(fk), math.Log(fn),
		math.Log(fm * fk), math.Log(fm * fn), math.Log(fk * fn),
		math.Log(fm * fk * fn),
	}
}
