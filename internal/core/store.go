package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ml"
	"repro/internal/ops"
	"repro/internal/preprocess"
)

// The on-disk artefact written at installation time. Format v2 is a per-op
// bundle keyed by wire name; v1 (written before the operation registry) is a
// single GEMM model at the top level and still loads, as a {gemm: model}
// bundle, so artefacts trained before this redesign keep predicting
// identically.

// opModelFile is one serialized per-op model of a v2 artefact.
type opModelFile struct {
	ModelKind   string          `json:"model_kind"`
	Columns     []string        `json:"columns,omitempty"`
	EvalSeconds float64         `json:"eval_seconds"`
	Pipeline    json.RawMessage `json:"pipeline"`
	Model       json.RawMessage `json:"model"`
}

// libraryFileV2 is the v2 artefact layout.
type libraryFileV2 struct {
	FormatVersion int                    `json:"format_version"`
	Platform      string                 `json:"platform"`
	Candidates    []int                  `json:"candidates"`
	Ops           map[string]opModelFile `json:"ops"`
}

// libraryFileV1 is the legacy single-model layout.
type libraryFileV1 struct {
	FormatVersion int             `json:"format_version"`
	Platform      string          `json:"platform"`
	ModelKind     string          `json:"model_kind"`
	Columns       []string        `json:"columns,omitempty"`
	Candidates    []int           `json:"candidates"`
	EvalSeconds   float64         `json:"eval_seconds"`
	Pipeline      json.RawMessage `json:"pipeline"`
	Model         json.RawMessage `json:"model"`
}

const (
	formatVersionV1 = 1
	formatVersion   = 2
)

// Save writes the library artefact to path in the v2 per-op format.
func (l *Library) Save(path string) error {
	f := libraryFileV2{
		FormatVersion: formatVersion,
		Platform:      l.Platform,
		Candidates:    l.Candidates,
		Ops:           make(map[string]opModelFile, len(l.models)),
	}
	for _, op := range l.TrainedOps() {
		m := l.ModelFor(op)
		pipe, err := m.Pipeline.Marshal()
		if err != nil {
			return fmt.Errorf("core: save %v pipeline: %w", op, err)
		}
		model, err := ml.Marshal(m.Kind, m.Model)
		if err != nil {
			return fmt.Errorf("core: save %v model: %w", op, err)
		}
		f.Ops[op.String()] = opModelFile{
			ModelKind:   m.Kind,
			Columns:     m.Columns,
			EvalSeconds: m.EvalSeconds,
			Pipeline:    pipe,
			Model:       model,
		}
	}
	if len(f.Ops) == 0 {
		return fmt.Errorf("core: library has no trained models to save")
	}
	blob, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("core: encode library: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("core: write library: %w", err)
	}
	return nil
}

// unmarshalOpModel decodes one serialized model bundle entry.
func unmarshalOpModel(f opModelFile) (*OpModel, error) {
	pipe, err := preprocess.UnmarshalPipeline(f.Pipeline)
	if err != nil {
		return nil, err
	}
	model, err := ml.Unmarshal(f.Model)
	if err != nil {
		return nil, err
	}
	return &OpModel{
		Kind:        f.ModelKind,
		Model:       model,
		Pipeline:    pipe,
		Columns:     f.Columns,
		EvalSeconds: f.EvalSeconds,
	}, nil
}

// Load restores a library artefact written by Save — either format version.
func Load(path string) (*Library, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read library: %w", err)
	}
	var probe struct {
		FormatVersion int `json:"format_version"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return nil, fmt.Errorf("core: decode library %s: %w", path, err)
	}
	switch probe.FormatVersion {
	case formatVersionV1:
		return loadV1(path, blob)
	case formatVersion:
		return loadV2(path, blob)
	}
	return nil, fmt.Errorf("core: library %s has format %d, want %d (or legacy %d)",
		path, probe.FormatVersion, formatVersion, formatVersionV1)
}

// loadV1 restores a legacy single-model artefact as a {gemm: model} bundle.
func loadV1(path string, blob []byte) (*Library, error) {
	var f libraryFileV1
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("core: decode library %s: %w", path, err)
	}
	if len(f.Candidates) == 0 {
		return nil, fmt.Errorf("core: library %s has no candidate thread counts", path)
	}
	m, err := unmarshalOpModel(opModelFile{
		ModelKind:   f.ModelKind,
		Columns:     f.Columns,
		EvalSeconds: f.EvalSeconds,
		Pipeline:    f.Pipeline,
		Model:       f.Model,
	})
	if err != nil {
		return nil, err
	}
	lib := &Library{Platform: f.Platform, Candidates: sortedCopy(f.Candidates), format: formatVersionV1}
	lib.SetModel(ops.GEMM, m)
	return lib, nil
}

// loadV2 restores a per-op bundle artefact.
func loadV2(path string, blob []byte) (*Library, error) {
	var f libraryFileV2
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("core: decode library %s: %w", path, err)
	}
	if len(f.Candidates) == 0 {
		return nil, fmt.Errorf("core: library %s has no candidate thread counts", path)
	}
	if len(f.Ops) == 0 {
		return nil, fmt.Errorf("core: library %s has no trained models", path)
	}
	lib := &Library{Platform: f.Platform, Candidates: sortedCopy(f.Candidates), format: formatVersion}
	for name, mf := range f.Ops {
		op, err := ops.Parse(name)
		if err != nil {
			// Forward compatibility: an artefact written by a newer build may
			// bundle models for ops this build's registry does not know.
			// Serving already degrades per design — ops without a model fall
			// back to GEMM — so skip the unknown entry instead of rejecting
			// the whole artefact.
			continue
		}
		m, err := unmarshalOpModel(mf)
		if err != nil {
			return nil, fmt.Errorf("core: library %s op %s: %w", path, name, err)
		}
		lib.SetModel(op, m)
	}
	if !lib.HasModel(ops.GEMM) {
		return nil, fmt.Errorf("core: library %s lacks the primary gemm model", path)
	}
	return lib, nil
}
