package drift

import (
	"repro/internal/obs"
	"repro/internal/ops"
)

// RegisterMetrics attaches the monitor's surface to a Prometheus registry.
// Everything hot-path is already recorded on the monitor itself; this only
// wires scrape-time views (windowed means are recomputed per scrape at the
// scrape's own clock), so it is safe after traffic has started and
// idempotent per registry.
func (m *Monitor) RegisterMetrics(r *obs.Registry) {
	for i := range m.perOp {
		op := ops.Op(i)
		a := &m.perOp[i]
		lbl := obs.L("op", op.String())
		r.CounterFunc("adsala_drift_observed_total",
			"Measured-prediction pairs folded into the drift monitor.",
			counterView(&a.measured), lbl)
		r.CounterFunc("adsala_drift_unpredicted_total",
			"Measurements observed without a predicted label (no model for the op).",
			counterView(&a.unpredicted), lbl)
		r.RegisterHistogram("adsala_kernel_measured_seconds",
			"Measured kernel wall time from the measured-prediction stream.",
			a.measuredLat, lbl)
		r.RegisterHistogram("adsala_kernel_predicted_seconds",
			"Model-predicted kernel wall time paired with each measurement.",
			a.predictedLat, lbl)
		r.GaugeFunc("adsala_drift_op_drifting",
			"1 when any of the op's shape buckets trips the drift threshold.",
			func() float64 {
				now := m.nowNanos()
				for b := 0; b < numBuckets; b++ {
					if m.isDrifting(m.cellFor(op, b).residual.MomentsAt(now)) {
						return 1
					}
				}
				return 0
			}, lbl)
		for b := 0; b < numBuckets; b++ {
			c := m.cellFor(op, b)
			bl := obs.L("bucket", bucketNames[b])
			r.GaugeFunc("adsala_drift_residual_log2_mean",
				"Windowed mean of log2(predicted/measured) per op and shape bucket.",
				func() float64 {
					mo := c.residual.MomentsAt(m.nowNanos())
					return mo.Mean()
				}, lbl, bl)
			r.GaugeFunc("adsala_drift_abs_rel_err_mean",
				"Windowed mean of |predicted-measured|/measured per op and shape bucket.",
				func() float64 {
					mo := c.absRel.MomentsAt(m.nowNanos())
					return mo.Mean()
				}, lbl, bl)
			r.GaugeFunc("adsala_drift_window_samples",
				"Residual observations currently inside the sliding window.",
				func() float64 {
					mo := c.residual.MomentsAt(m.nowNanos())
					return float64(mo.Count())
				}, lbl, bl)
		}
	}
	r.GaugeFunc("adsala_drift_degraded",
		"1 when any op's windowed residual exceeds the drift threshold.",
		func() float64 {
			if m.Degraded() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("adsala_drift_window_seconds",
		"Configured sliding-window span of the drift monitor.",
		func() float64 { return float64(m.slotNanos*int64(m.cfg.Slots)) * 1e-9 })
	r.GaugeFunc("adsala_drift_threshold_log2",
		"Configured drift threshold on |windowed mean residual_log2|.",
		func() float64 { return m.cfg.Threshold })
}

// counterView adapts a monitor atomic into a scrape-time counter reader.
func counterView(v interface{ Load() int64 }) func() float64 {
	return func() float64 { return float64(v.Load()) }
}
