package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sampling"
)

// TestWarmupOpSet pins the per-op warm-up satellite: an explicit op set
// warms every listed op's cache under its canonical triple, and the default
// (no ops given) warms every trained op.
func TestWarmupOpSet(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 1024})
	dom := sampling.DefaultDomain().WithCapMB(100)

	n, err := eng.Warmup(dom, 32, 7, OpGEMM, OpSYRK)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("Warmup over two ops = %d decisions, want 64", n)
	}

	sampler, err := sampling.NewSampler(dom, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range sampler.Sample(32) {
		if _, ok := eng.CachedChoice(OpGEMM, sh.M, sh.K, sh.N); !ok {
			t.Fatalf("gemm shape %v not warmed", sh)
		}
		// SYRK warms under its canonical (m, k, m) triple — the form
		// runtime queries arrive in.
		if _, ok := eng.CachedChoice(OpSYRK, sh.M, sh.K, sh.M); !ok {
			t.Fatalf("syrk canonical shape of %v not warmed", sh)
		}
	}

	// Warm-up stays out of the serving counters, aggregate and per op.
	st := eng.Stats()
	if st.Predictions != 0 || st.CacheMisses != 0 {
		t.Errorf("serving counters polluted by per-op warm-up: %+v", st)
	}
	if len(st.PerOp) != 0 {
		t.Errorf("per-op serving counters polluted by warm-up: %+v", st.PerOp)
	}
	if st.WarmupDecisions != 64 {
		t.Errorf("WarmupDecisions = %d, want 64", st.WarmupDecisions)
	}

	// Unknown op errors.
	if _, err := eng.Warmup(dom, 4, 1, Op(250)); err == nil {
		t.Error("warmup of an unknown op should error")
	}

	// Default op set on this GEMM-only library = just GEMM.
	eng2 := NewEngine(l, Options{CacheSize: 256})
	if n, err := eng2.Warmup(dom, 16, 3); n != 16 || err != nil {
		t.Errorf("default Warmup = (%d, %v), want (16, nil) on a GEMM-only library", n, err)
	}
}

// TestPerOpStats pins the per-op serving counters: hits, misses and
// predictions split by op while the aggregates keep their old meaning.
func TestPerOpStats(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 256})

	eng.PredictOp(OpGEMM, 100, 100, 100) // gemm miss
	eng.PredictOp(OpGEMM, 100, 100, 100) // gemm hit
	eng.PredictOp(OpSYRK, 100, 100, 100) // syrk miss (distinct key)
	eng.RankOp(OpSYRK, 200, 100, 200)    // syrk miss by contract
	shapes := []sampling.Shape{{M: 50, K: 50, N: 50}, {M: 50, K: 50, N: 50}, {M: 60, K: 60, N: 60}}
	eng.PredictBatchOp(OpSYR2K, shapes, nil) // 2 syr2k misses + 1 dedup hit

	st := eng.Stats()
	if st.Predictions != 7 || st.CacheHits != 2 || st.CacheMisses != 5 {
		t.Fatalf("aggregates = %d/%d/%d, want 7 predictions, 2 hits, 5 misses",
			st.Predictions, st.CacheHits, st.CacheMisses)
	}
	gemm := st.PerOp["gemm"]
	if gemm.Predictions != 2 || gemm.CacheHits != 1 || gemm.CacheMisses != 1 || gemm.HitRate != 0.5 {
		t.Errorf("gemm per-op stats = %+v", gemm)
	}
	syrk := st.PerOp["syrk"]
	if syrk.Predictions != 2 || syrk.CacheHits != 0 || syrk.CacheMisses != 2 {
		t.Errorf("syrk per-op stats = %+v", syrk)
	}
	syr2k := st.PerOp["syr2k"]
	if syr2k.Predictions != 3 || syr2k.CacheHits != 1 || syr2k.CacheMisses != 2 {
		t.Errorf("syr2k per-op stats = %+v", syr2k)
	}
	// Per-op counters decompose the aggregates exactly.
	var p, h, m int64
	for _, os := range st.PerOp {
		p += os.Predictions
		h += os.CacheHits
		m += os.CacheMisses
	}
	if p != st.Predictions || h != st.CacheHits || m != st.CacheMisses {
		t.Errorf("per-op sums %d/%d/%d do not decompose aggregates %d/%d/%d",
			p, h, m, st.Predictions, st.CacheHits, st.CacheMisses)
	}
}

// TestPerOpStatsAtEndpoint checks /stats carries the per_op section.
func TestPerOpStatsAtEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	client := NewClient(ts.URL, nil)
	if _, err := client.PredictOp(OpSYRK, 64, 64, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PredictOp(OpSYRK, 64, 64, 64); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	syrk, ok := stats.Engine.PerOp["syrk"]
	if !ok {
		t.Fatalf("/stats has no per_op entry for syrk: %+v", stats.Engine.PerOp)
	}
	if syrk.Predictions != 2 || syrk.CacheHits != 1 || syrk.CacheMisses != 1 {
		t.Errorf("syrk at /stats = %+v", syrk)
	}
	_ = srv
}

// TestCacheSnapshotRoundTrip pins the snapshot satellite: Save captures
// every (op, shape)→threads decision, Load restores them — including the
// per-shard LRU order — and corrupt files are rejected whole.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	c := NewCache(64, 4)
	c.Put(OpGEMM, 256, 128, 256, 8)
	c.Put(OpSYRK, 256, 128, 256, 4)
	c.Put(OpSYR2K, 512, 64, 512, 16)
	c.Put(OpGEMM, 1024, 1024, 1024, 48)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	r := NewCache(64, 4)
	n, err := r.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || r.Len() != 4 {
		t.Fatalf("restored %d entries, cache holds %d; want 4", n, r.Len())
	}
	for _, tc := range []struct {
		op      Op
		m, k, n int
		want    int
	}{
		{OpGEMM, 256, 128, 256, 8},
		{OpSYRK, 256, 128, 256, 4},
		{OpSYR2K, 512, 64, 512, 16},
		{OpGEMM, 1024, 1024, 1024, 48},
	} {
		if th, ok := r.Peek(tc.op, tc.m, tc.k, tc.n); !ok || th != tc.want {
			t.Errorf("restored %v %dx%dx%d = (%d, %v), want %d", tc.op, tc.m, tc.k, tc.n, th, ok, tc.want)
		}
	}
	// Loading must not touch the counters.
	if h, m := r.Stats(); h != 0 || m != 0 {
		t.Errorf("Load moved counters: %d/%d", h, m)
	}

	// LRU order survives the round trip: in a single-shard cache, the
	// oldest entry before Save is still the first evicted after Load.
	lru := NewCache(4, 1)
	for i := 1; i <= 4; i++ {
		lru.Put(OpGEMM, i, i, i, i)
	}
	lru.Get(OpGEMM, 1, 1, 1) // refresh 1; LRU is now 2
	lruPath := filepath.Join(dir, "lru.json")
	if err := lru.Save(lruPath); err != nil {
		t.Fatal(err)
	}
	lru2 := NewCache(4, 1)
	if _, err := lru2.Load(lruPath); err != nil {
		t.Fatal(err)
	}
	lru2.Put(OpGEMM, 5, 5, 5, 5) // one eviction
	if _, ok := lru2.Peek(OpGEMM, 2, 2, 2); ok {
		t.Error("entry 2 should have been the LRU after restore")
	}
	if _, ok := lru2.Peek(OpGEMM, 1, 1, 1); !ok {
		t.Error("refreshed entry 1 evicted: LRU order lost in the snapshot")
	}

	// Corrupt or foreign files are rejected without touching the cache.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"format":"other","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(16, 2)
	if _, err := fresh.Load(bad); err == nil {
		t.Error("foreign format accepted")
	}
	if err := os.WriteFile(bad, []byte(`{"format":"adsala-cache-snapshot-v1","entries":[{"op":"trsm","m":1,"k":1,"n":1,"threads":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Load(bad); err == nil {
		t.Error("unknown op accepted")
	}
	if fresh.Len() != 0 {
		t.Errorf("failed Load left %d entries behind", fresh.Len())
	}
	if _, err := fresh.Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
