package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/features"
	"repro/internal/machine"
	"repro/internal/preprocess"
	"repro/internal/sampling"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/tabulate"
)

// measuredOptimal scans every candidate for the measured argmin.
func measuredOptimal(sim *simtime.Simulator, sh sampling.Shape, candidates []int, iters int) (int, float64) {
	best, bt := candidates[0], math.Inf(1)
	for _, p := range candidates {
		if t := sim.MeasureMean(sh.M, sh.K, sh.N, p, iters); t < bt {
			best, bt = p, t
		}
	}
	return best, bt
}

// optimalThreadSample collects measured-optimal thread counts over a Halton
// sample of the domain.
func optimalThreadSample(lab *Lab, p Platform, capMB, n int, filter func(sampling.Shape) bool) ([]int, []sampling.Shape, error) {
	sim := lab.Sim(p, true)
	sampler, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(capMB), lab.Scale.Seed+13)
	if err != nil {
		return nil, nil, err
	}
	cands := allThreadCounts(p.Node.MaxThreads(true))
	var optima []int
	var shapes []sampling.Shape
	for len(optima) < n {
		sh := sampler.Next()
		if filter != nil && !filter(sh) {
			continue
		}
		opt, _ := measuredOptimal(sim, sh, cands, lab.Scale.Iters)
		optima = append(optima, opt)
		shapes = append(shapes, sh)
	}
	return optima, shapes, nil
}

// allThreadCounts enumerates 1..max stepped to keep sweeps tractable while
// preserving the histogram resolution of Figs 1/8.
func allThreadCounts(max int) []int {
	var out []int
	step := 1
	for p := 1; p <= max; p += step {
		out = append(out, p)
		switch {
		case p >= 128:
			step = 16
		case p >= 48:
			step = 8
		case p >= 16:
			step = 4
		case p >= 8:
			step = 2
		}
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Fig1 regenerates the histogram of optimal thread counts on Gadi for GEMMs
// within 100 MB (Fig 1): the mass must sit well below the 48-core default.
func Fig1(w io.Writer, lab *Lab) error {
	p, _ := PlatformByName("Gadi")
	n := lab.Scale.HoldoutShapes * 2
	optima, _, err := optimalThreadSample(lab, p, 100, n, nil)
	if err != nil {
		return err
	}
	xs := make([]float64, len(optima))
	below := 0
	for i, o := range optima {
		xs[i] = float64(o)
		if o < 48 {
			below++
		}
	}
	fmt.Fprintf(w, "Fig 1: optimal thread count histogram — Gadi, SGEMM <= 100 MB, %d samples\n", n)
	h := stats.NewHistogram(xs, 16, 0, 96)
	fmt.Fprint(w, h.Render(50))
	fmt.Fprintf(w, "shapes with optimum below the 48-core default: %d/%d (%.0f%%)\n",
		below, n, 100*float64(below)/float64(n))
	fmt.Fprintf(w, "paper: the bulk of optima sit well below the core count\n")
	return nil
}

// Fig8 regenerates the Setonix histogram for shapes with min(m,k,n) < 1000
// within 500 MB (Fig 8): optima concentrate below half the 256 threads.
func Fig8(w io.Writer, lab *Lab) error {
	p, _ := PlatformByName("Setonix")
	n := lab.Scale.HoldoutShapes * 2
	optima, _, err := optimalThreadSample(lab, p, 500, n, func(s sampling.Shape) bool {
		return s.MinDim() < 1000
	})
	if err != nil {
		return err
	}
	xs := make([]float64, len(optima))
	belowHalf := 0
	for i, o := range optima {
		xs[i] = float64(o)
		if o < 128 {
			belowHalf++
		}
	}
	fmt.Fprintf(w, "Fig 8: optimal threads, Setonix <= 500 MB, min(m,k,n) < 1000, %d samples\n", n)
	h := stats.NewHistogram(xs, 16, 0, 256)
	fmt.Fprint(w, h.Render(50))
	fmt.Fprintf(w, "optima below half the maximum (128): %d/%d (%.0f%%)\n",
		belowHalf, n, 100*float64(belowHalf)/float64(n))
	return nil
}

// Fig4 regenerates the feature-distribution study (Fig 4): skewness of each
// Table II feature before and after the fitted Yeo-Johnson transform, on a
// Setonix 500 MB sample.
func Fig4(w io.Writer, lab *Lab) error {
	sampler, err := sampling.NewSampler(sampling.DefaultDomain(), lab.Scale.Seed)
	if err != nil {
		return err
	}
	p, _ := PlatformByName("Setonix")
	sim := lab.Sim(p, true)
	n := lab.Scale.TrainShapes
	var recs []features.Record
	for i := 0; i < n; i++ {
		sh := sampler.Next()
		recs = append(recs, features.Record{
			Shape: sh, Threads: 128,
			Seconds: sim.MeasureMean(sh.M, sh.K, sh.N, 128, lab.Scale.Iters),
		})
	}
	d := features.Build(recs)

	fmt.Fprintf(w, "Fig 4: feature skewness before/after Yeo-Johnson — Setonix <= 500 MB, %d samples\n", n)
	tb := tabulate.New("feature", "lambda", "skew before", "skew after")
	for j, col := range d.Cols {
		vals := make([]float64, d.Len())
		for i, row := range d.X {
			vals[i] = row[j]
		}
		yj, err := preprocess.FitYeoJohnson(vals)
		if err != nil {
			return err
		}
		trans := make([]float64, len(vals))
		for i, v := range vals {
			trans[i] = yj.Transform(v)
		}
		tb.Row(col, tabulate.F(yj.Lambda, 3), tabulate.F(stats.Skewness(vals), 2), tabulate.F(stats.Skewness(trans), 2))
	}
	fmt.Fprint(w, tb.String())
	fmt.Fprintf(w, "paper: skewed raw features remap to near-Gaussian (|skew| shrinking toward 0)\n")
	return nil
}

// Fig7 regenerates the affinity comparison (Fig 7): mean GEMM duration vs
// thread count under core-based and thread-based OMP_PLACES on both
// platforms, over a 500 MB sample.
func Fig7(w io.Writer, lab *Lab) error {
	fmt.Fprintf(w, "Fig 7: thread affinity comparison (mean GEMM duration, microseconds)\n")
	for _, p := range Platforms() {
		sampler, err := sampling.NewSampler(sampling.DefaultDomain(), lab.Scale.Seed+3)
		if err != nil {
			return err
		}
		nShapes := lab.Scale.HoldoutShapes
		shapes := sampler.Sample(nShapes)

		mkSim := func(pol machine.AffinityPolicy) *simtime.Simulator {
			cfg := simtime.DefaultConfig(p.Node)
			cfg.Policy = pol
			cfg.Seed = lab.Scale.Seed
			return simtime.New(cfg)
		}
		coreSim, threadSim := mkSim(machine.CoreBased), mkSim(machine.ThreadBased)

		max := p.Node.MaxThreads(true)
		counts := []int{2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256}
		tb := tabulate.New("threads", "core-based", "thread-based", "core wins")
		crossover := -1
		for _, th := range counts {
			if th > max {
				break
			}
			var sumC, sumT float64
			for _, sh := range shapes {
				sumC += coreSim.MeasureMean(sh.M, sh.K, sh.N, th, lab.Scale.Iters)
				sumT += threadSim.MeasureMean(sh.M, sh.K, sh.N, th, lab.Scale.Iters)
			}
			meanC := sumC / float64(nShapes) * 1e6
			meanT := sumT / float64(nShapes) * 1e6
			wins := "yes"
			if meanC >= meanT {
				wins = "no"
				if crossover < 0 {
					crossover = th
				}
			}
			tb.Row(tabulate.D(th), tabulate.F(meanC, 1), tabulate.F(meanT, 1), wins)
		}
		fmt.Fprintf(w, "-- %s --\n%s", p.Name, tb.String())
	}
	fmt.Fprintf(w, "paper: core-based affinity is faster below ~half the hardware threads,\n")
	fmt.Fprintf(w, "converging to parity at full occupancy; the paper adopts core-based.\n")
	return nil
}

// Fig9 regenerates the optimal-thread heatmaps (Fig 9a/9b) as √-scaled 2-D
// grids over (m, k), (m, n) and (k, n) with the mean optimum per cell.
func Fig9(w io.Writer, lab *Lab) error {
	for _, p := range Platforms() {
		n := lab.Scale.HoldoutShapes * 2
		optima, shapes, err := optimalThreadSample(lab, p, 500, n, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Fig 9 (%s): mean optimal threads per sqrt-scaled bin, %d samples (max %d)\n",
			p.Name, n, p.Node.MaxThreads(true))
		pairs := []struct {
			label string
			xa    func(sampling.Shape) int
			xb    func(sampling.Shape) int
		}{
			{"m x k", func(s sampling.Shape) int { return s.M }, func(s sampling.Shape) int { return s.K }},
			{"m x n", func(s sampling.Shape) int { return s.M }, func(s sampling.Shape) int { return s.N }},
			{"k x n", func(s sampling.Shape) int { return s.K }, func(s sampling.Shape) int { return s.N }},
		}
		for _, pr := range pairs {
			fmt.Fprintf(w, "[%s]\n", pr.label)
			fmt.Fprint(w, renderHeat(shapes, optima, pr.xa, pr.xb))
		}
	}
	fmt.Fprintf(w, "paper: larger/squarer cells trend toward high counts; small cells stay low.\n")
	return nil
}

// renderHeat bins shapes on sqrt-scaled axes (4 bins each to 74k) and prints
// the mean of vals per cell.
func renderHeat(shapes []sampling.Shape, vals []int, xa, xb func(sampling.Shape) int) string {
	const bins = 4
	const maxDim = 74000.0
	sum := [bins][bins]float64{}
	cnt := [bins][bins]int{}
	binOf := func(v int) int {
		b := int(math.Sqrt(float64(v)/maxDim) * bins)
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	for i, sh := range shapes {
		sum[binOf(xa(sh))][binOf(xb(sh))] += float64(vals[i])
		cnt[binOf(xa(sh))][binOf(xb(sh))]++
	}
	edges := []string{"0-4.6k", "4.6-18k", "18-42k", "42-74k"}
	tb := tabulate.New(append([]string{""}, edges...)...)
	for a := 0; a < bins; a++ {
		row := []string{edges[a]}
		for b := 0; b < bins; b++ {
			if cnt[a][b] == 0 {
				row = append(row, ".")
			} else {
				row = append(row, tabulate.F(sum[a][b]/float64(cnt[a][b]), 0))
			}
		}
		tb.Row(row...)
	}
	return tb.String()
}
