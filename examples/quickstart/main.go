// Quickstart: train an ADSALA library against the simulated Gadi node —
// with a per-op SYRK model alongside the GEMM one — look at the model
// comparison, ask it for thread counts, and run real BLAS-3 calls through
// the ML-driven front end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	adsala "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Installation: gather timings on the (simulated) platform, train and
	// select the model. Quick mode keeps this to a few seconds.
	fmt.Println("== training ADSALA for the Gadi platform (2x 24-core Cascade Lake) ==")
	lib, report, err := adsala.Train(adsala.TrainOptions{
		Platform: "Gadi", Shapes: 120, Quick: true, Seed: 7,
		// Train a SYRK model of its own next to GEMM's: SYRK's triangular
		// cost profile (~half the FLOPs of a square GEMM) gets its own sweep
		// instead of borrowing the GEMM model with a ~2x mis-estimate.
		Ops: []adsala.Op{adsala.OpSYRK},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("trained ops: %v; selected model: %s, evaluation latency %.0f us\n\n",
		lib.TrainedOps(), lib.ModelKind(), lib.EvalLatency()*1e6)

	// 2. Ask the model for thread counts across very different shapes.
	fmt.Println("== model-selected thread counts (max on Gadi: 96) ==")
	shapes := [][3]int{
		{64, 64, 64},       // tiny: parallel overheads dominate
		{64, 2048, 64},     // the Table VII pathology: skinny K-panel
		{512, 512, 512},    // medium square
		{6000, 6000, 6000}, // large square: wants the whole machine
	}
	for _, s := range shapes {
		threads := lib.OptimalThreads(s[0], s[1], s[2])
		pred := lib.PredictRuntime(s[0], s[1], s[2], threads)
		fmt.Printf("  %5dx%5dx%5d -> %3d threads (predicted %8.1f us)\n",
			s[0], s[1], s[2], threads, pred*1e6)
	}

	// 3. Run actual BLAS-3 calls through the one generic front end: per op,
	// the bundle's model picks the thread count (clamped to this machine's
	// cores) and the built-in blocked kernels execute it. Every call shares
	// one decision cache.
	fmt.Println("\n== executing real BLAS-3 calls through lib.BLAS() ==")
	bl := lib.BLAS()
	rng := rand.New(rand.NewSource(1))
	m, k, n := 256, 384, 128
	a := adsala.NewMatrixF32(m, k)
	b := adsala.NewMatrixF32(k, n)
	c := adsala.NewMatrixF32(m, n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	if err := bl.SGEMM(false, false, 1, a, b, 0, c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A(%dx%d) * B(%dx%d) done with %d threads; C[0,0] = %f\n",
		m, k, k, n, bl.LastChoice(adsala.OpGEMM, m, k, n), c.At(0, 0))

	cs := adsala.NewMatrixF32(m, m)
	if err := bl.SSYRK(false, 1, a, 0, cs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A*A^T (n=%d, k=%d) done with %d threads (SYRK model)\n",
		m, k, bl.LastChoice(adsala.OpSYRK, m, k, m))

	a2 := adsala.NewMatrixF32(m, k)
	a2.FillRandom(rng)
	c2 := adsala.NewMatrixF32(m, m)
	if err := bl.SSYR2K(false, 1, a, a2, 0, c2); err != nil {
		log.Fatal(err)
	}
	hits, misses := bl.CacheStats()
	fmt.Printf("C = A*B^T + B*A^T (n=%d, k=%d) done with %d threads (SYR2K)\n",
		m, k, bl.LastChoice(adsala.OpSYR2K, m, k, m))
	fmt.Printf("shared decision cache: %d hits, %d misses across all ops\n", hits, misses)
}
