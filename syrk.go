package adsala

// Syrk is the legacy SYRK-only front end, kept as a thin wrapper over the
// generic BLAS facade.
//
// Deprecated: use Library.BLAS(). Syrk remains so pre-registry callers keep
// compiling; it shares the same engine (and therefore the same decision
// cache and statistics) as every other facade of its Library. With a
// per-op-trained library (Train with Ops: [OpSYRK]), decisions rank on the
// SYRK model's triangular cost profile instead of borrowing GEMM's.
type Syrk struct {
	b *BLAS
}

// NewSyrk returns a SYRK front end bound to the library's shared engine.
//
// Deprecated: use Library.BLAS().
func (l *Library) NewSyrk() *Syrk { return &Syrk{b: l.BLAS()} }

// SetMaxLocalThreads overrides the local execution clamp (useful in tests).
func (s *Syrk) SetMaxLocalThreads(n int) { s.b.SetMaxLocalThreads(n) }

// SSYRK computes C ← alpha·op(A)·op(A)ᵀ + beta·C in single precision with
// the model-selected thread count. Only the lower triangle of C is read for
// the beta update; the result is exactly symmetric.
func (s *Syrk) SSYRK(trans bool, alpha float32, a *MatrixF32, beta float32, c *MatrixF32) error {
	return s.b.SSYRK(trans, alpha, a, beta, c)
}

// DSYRK is the double-precision counterpart of SSYRK.
func (s *Syrk) DSYRK(trans bool, alpha float64, a *MatrixF64, beta float64, c *MatrixF64) error {
	return s.b.DSYRK(trans, alpha, a, beta, c)
}

// LastChoice reports the thread count a previous SYRK call selected for an
// n×n rank-k update — a read-only peek of the shared decision cache.
// Returns 0 when the shape has not been selected yet.
func (s *Syrk) LastChoice(n, k int) int { return s.b.LastChoice(OpSYRK, n, k, n) }

// CacheStats reports (hits, misses) of the library's shared decision cache.
func (s *Syrk) CacheStats() (hits, misses int64) { return s.b.CacheStats() }
