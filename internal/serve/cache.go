// Package serve is the concurrent prediction-serving subsystem: a sharded
// LRU decision cache generalising the single-shape runtime cache of §III-C,
// a batch prediction engine over reusable buffers, a warm-up precomputation
// pass, and an HTTP front end (server + client) so a trained library can
// answer thread-selection queries over the wire.
//
// The paper's Fig 3 runtime path caches only the last GEMM shape behind one
// mutex; under multi-tenant traffic (many goroutines, mixed shapes) that
// serializes every selection on the lock and thrashes the one-entry cache.
// Here decisions are memoised per shape in power-of-two shards with
// per-shard locking, so concurrent mixed-shape prediction scales with the
// core count.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// shapeKey identifies one (operation, shape) configuration in the decision
// cache. Keying on the op keeps SYRK and GEMM decisions for the same shape
// triple distinct (their cost profiles — and eventually their models —
// differ).
type shapeKey struct {
	op      Op
	m, k, n int
}

// hash mixes the op and the three dimensions into a well-distributed 64-bit
// value (splitmix64-style finalisation over a combined word).
func (s shapeKey) hash() uint64 {
	h := uint64(s.m)*0x9e3779b97f4a7c15 ^ uint64(s.k)*0xbf58476d1ce4e5b9 ^ uint64(s.n)*0x94d049bb133111eb
	h ^= uint64(s.op) * 0xd6e8feb86659fd93
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// entry is one slot of a shard's intrusive LRU list.
type entry struct {
	key        shapeKey
	threads    int
	prev, next int // indices into the shard's entries; -1 = none
}

// shard is one power-of-two slice of the cache: a map from shape to slot
// plus an intrusive doubly-linked LRU list over a fixed slot array, so
// steady-state operation allocates nothing.
type shard struct {
	mu      sync.Mutex
	slots   map[shapeKey]int
	entries []entry
	head    int // most recently used; -1 when empty
	tail    int // least recently used; -1 when empty
	free    []int
}

func newShard(capacity int) *shard {
	s := &shard{
		slots:   make(map[shapeKey]int, capacity),
		entries: make([]entry, capacity),
		head:    -1,
		tail:    -1,
		free:    make([]int, capacity),
	}
	for i := range s.free {
		s.free[i] = capacity - 1 - i // pop from the back: slot 0 first
	}
	return s
}

// unlink removes slot i from the LRU list. Caller holds mu.
func (s *shard) unlink(i int) {
	e := &s.entries[i]
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
}

// pushFront makes slot i the most recently used. Caller holds mu.
func (s *shard) pushFront(i int) {
	e := &s.entries[i]
	e.prev, e.next = -1, s.head
	if s.head >= 0 {
		s.entries[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

func (s *shard) get(key shapeKey) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.slots[key]
	if !ok {
		return 0, false
	}
	if s.head != i {
		s.unlink(i)
		s.pushFront(i)
	}
	return s.entries[i].threads, true
}

func (s *shard) put(key shapeKey, threads int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.slots[key]; ok {
		s.entries[i].threads = threads
		if s.head != i {
			s.unlink(i)
			s.pushFront(i)
		}
		return
	}
	var i int
	if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		i = s.tail // evict the least recently used
		s.unlink(i)
		delete(s.slots, s.entries[i].key)
	}
	s.entries[i] = entry{key: key, threads: threads}
	s.slots[key] = i
	s.pushFront(i)
}

func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

func (s *shard) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.slots {
		delete(s.slots, key)
	}
	s.head, s.tail = -1, -1
	s.free = s.free[:0]
	for i := len(s.entries) - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
}

// Cache is a sharded, power-of-two-sized LRU decision cache mapping GEMM
// shapes to chosen thread counts. Shards are selected by shape hash; each
// shard has its own lock, and the hit/miss counters are atomic, so the
// cache is safe for heavy concurrent use.
type Cache struct {
	shards    []*shard
	shardMask uint64
	capacity  int
	hits      atomic.Int64
	misses    atomic.Int64
}

// Sizing bounds: decisions are a few words each, so a million entries is
// far beyond any realistic working set; the clamps also keep nextPow2 away
// from shift overflow on absurd operator-supplied values.
const (
	maxCapacity = 1 << 20
	maxShards   = 1 << 10
)

// nextPow2 rounds v up to the next power of two (minimum 1). v must be at
// most the largest representable power of two (callers clamp well below).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// NewCache returns a decision cache with approximately the given total
// capacity spread over the given shard count. Both are rounded up to powers
// of two and clamped to sane bounds (1..1M entries, 1..1024 shards); zero
// or negative values select the defaults (4096 entries, 16 shards). Shards
// never exceed the capacity.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity > maxCapacity {
		capacity = maxCapacity
	}
	if shards <= 0 {
		shards = 16
	}
	if shards > maxShards {
		shards = maxShards
	}
	capacity = nextPow2(capacity)
	shards = nextPow2(shards)
	if shards > capacity {
		shards = capacity
	}
	c := &Cache{
		shards:    make([]*shard, shards),
		shardMask: uint64(shards - 1),
		capacity:  capacity,
	}
	per := capacity / shards
	for i := range c.shards {
		c.shards[i] = newShard(per)
	}
	return c
}

// Get returns the cached decision for an op over an m×k×n shape, counting a
// hit or miss.
func (c *Cache) Get(op Op, m, k, n int) (threads int, ok bool) {
	key := shapeKey{op, m, k, n}
	threads, ok = c.shards[key.hash()&c.shardMask].get(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return threads, ok
}

// Peek returns the cached decision without touching the hit/miss counters or
// the LRU order — the read-only introspection path (Gemm.LastChoice and
// friends), which must not distort serving statistics or retention.
func (c *Cache) Peek(op Op, m, k, n int) (threads int, ok bool) {
	key := shapeKey{op, m, k, n}
	s := c.shards[key.hash()&c.shardMask]
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.slots[key]
	if !ok {
		return 0, false
	}
	return s.entries[i].threads, true
}

// Put records the decision for an op over an m×k×n shape, evicting the least
// recently used entry of the target shard when it is full.
func (c *Cache) Put(op Op, m, k, n, threads int) {
	key := shapeKey{op, m, k, n}
	c.shards[key.hash()&c.shardMask].put(key, threads)
}

// Len returns the number of cached decisions.
func (c *Cache) Len() int {
	total := 0
	for _, s := range c.shards {
		total += s.len()
	}
	return total
}

// Capacity returns the total entry capacity across shards.
func (c *Cache) Capacity() int { return c.capacity }

// ShardLen returns the number of cached decisions in shard i — the
// per-shard occupancy gauge behind /metrics.
func (c *Cache) ShardLen(i int) int { return c.shards[i].len() }

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Stats returns the cumulative (hits, misses) counters.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Reset empties every shard and zeroes the counters.
func (c *Cache) Reset() {
	for _, s := range c.shards {
		s.reset()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// Cache snapshots: Save/Load persist the decisions across daemon restarts
// (adsala-serve -cache-snapshot), so a restarted server answers its warmed
// working set from the first request instead of re-ranking it.

// snapshotFormat versions the snapshot file.
const snapshotFormat = "adsala-cache-snapshot-v1"

// SnapshotEntry is one cached decision in a snapshot file.
type SnapshotEntry struct {
	Op      string `json:"op"`
	M       int    `json:"m"`
	K       int    `json:"k"`
	N       int    `json:"n"`
	Threads int    `json:"threads"`
}

// cacheSnapshot is the JSON layout of a snapshot file.
type cacheSnapshot struct {
	Format  string          `json:"format"`
	Entries []SnapshotEntry `json:"entries"`
}

// Snapshot returns every cached decision, ordered least- to most-recently
// used within each shard, so replaying the slice through Put reproduces the
// per-shard LRU order.
func (c *Cache) Snapshot() []SnapshotEntry {
	var out []SnapshotEntry
	for _, s := range c.shards {
		s.mu.Lock()
		for i := s.tail; i >= 0; i = s.entries[i].prev {
			e := &s.entries[i]
			out = append(out, SnapshotEntry{
				Op: e.key.op.String(),
				M:  e.key.m, K: e.key.k, N: e.key.n,
				Threads: e.threads,
			})
		}
		s.mu.Unlock()
	}
	return out
}

// Save writes the cached decisions to path as JSON. The write is atomic
// (temp file + rename), so a crash mid-save leaves the previous snapshot
// intact instead of a torn file the next boot refuses to load. Decisions
// recorded while Save walks the shards may or may not be included; the
// hit/miss counters are not persisted.
func (c *Cache) Save(path string) error {
	blob, err := json.Marshal(cacheSnapshot{Format: snapshotFormat, Entries: c.Snapshot()})
	if err != nil {
		return fmt.Errorf("serve: encode cache snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: write cache snapshot: %w", err)
	}
	_, werr := f.Write(append(blob, '\n'))
	if werr == nil {
		// Flush data before the rename commits the name: without it a
		// power loss can publish a torn snapshot the next boot refuses.
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: write cache snapshot: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: commit cache snapshot: %w", err)
	}
	return nil
}

// Load replays a snapshot written by Save into the cache and returns the
// number of decisions restored. Entries beyond the capacity evict in LRU
// order as usual; unknown ops or malformed files error without touching the
// counters.
func (c *Cache) Load(path string) (int, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("serve: read cache snapshot: %w", err)
	}
	var snap cacheSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return 0, fmt.Errorf("serve: decode cache snapshot %s: %w", path, err)
	}
	if snap.Format != snapshotFormat {
		return 0, fmt.Errorf("serve: %s is not a cache snapshot (format %q)", path, snap.Format)
	}
	// Validate everything before touching the cache: a corrupt file must
	// not leave it half-loaded.
	parsed := make([]Op, len(snap.Entries))
	for i, e := range snap.Entries {
		op, err := ParseOp(e.Op)
		if err != nil {
			return 0, fmt.Errorf("serve: cache snapshot entry %d: %w", i, err)
		}
		if e.M < 1 || e.K < 1 || e.N < 1 || e.Threads < 1 {
			return 0, fmt.Errorf("serve: cache snapshot entry %d: invalid decision %dx%dx%d -> %d",
				i, e.M, e.K, e.N, e.Threads)
		}
		parsed[i] = op
	}
	for i, e := range snap.Entries {
		c.Put(parsed[i], e.M, e.K, e.N, e.Threads)
	}
	return len(snap.Entries), nil
}
