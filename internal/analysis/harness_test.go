package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness mirrors x/tools' analysistest on top of the project
// loader: each testdata package marks the diagnostics it expects with
// trailing comments of the form
//
//	// want `regex` `another regex`
//
// one backquoted regex per expected diagnostic on that line. Lines without
// a want comment are the negative cases — any diagnostic there fails the
// test. Testdata packages are invisible to ./... (go list skips testdata
// directories), so the suite's self-hosted CI run never sees their
// deliberate violations; the harness loads them by explicit path.

var wantRe = regexp.MustCompile("`([^`]*)`")

// loadGolden loads explicit testdata patterns relative to the repo root.
func loadGolden(t *testing.T, patterns ...string) *Module {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// runGolden runs one analyzer over the given testdata packages and
// compares its diagnostics against the want comments.
func runGolden(t *testing.T, az *Analyzer, patterns ...string) {
	t.Helper()
	mod := loadGolden(t, patterns...)
	diags, err := RunAnalyzers(mod, []*Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}

	type lineKey struct {
		file string
		line int
	}
	// Collect expectations from the testdata source comments.
	want := make(map[lineKey][]*regexp.Regexp)
	for _, pkg := range mod.Pkgs {
		if !strings.Contains(pkg.Dir, "testdata") {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						want[k] = append(want[k], re)
					}
				}
			}
		}
	}

	// Match diagnostics (testdata files only — the module view may pull in
	// real packages as dependencies) against expectations.
	for _, d := range diags {
		pos := mod.Fset.Position(d.Pos)
		if !strings.Contains(pos.Filename, "testdata") {
			continue
		}
		k := lineKey{pos.Filename, pos.Line}
		matched := false
		for i, re := range want[k] {
			if re.MatchString(d.Message) {
				want[k] = append(want[k][:i], want[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for k, res := range want {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestZeroAllocGolden(t *testing.T) {
	runGolden(t, ZeroAlloc, "./internal/analysis/testdata/src/zeroalloc_a")
}

func TestAtomicFieldGolden(t *testing.T) {
	runGolden(t, AtomicField, "./internal/analysis/testdata/src/atomicfield_a")
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, CtxFlow,
		"./internal/analysis/testdata/src/ctxflow_a/internal/serve",
		"./internal/analysis/testdata/src/ctxflow_b")
}

func TestMetricNameGolden(t *testing.T) {
	runGolden(t, MetricName, "./internal/analysis/testdata/src/metricname_a")
}

// TestMalformedIgnoreReported pins the suppression contract: a directive
// without a reason is itself reported and suppresses nothing. (The want
// harness cannot express this case — a trailing comment cannot sit on a
// line that is already a directive comment — so it asserts directly.)
func TestMalformedIgnoreReported(t *testing.T) {
	mod := loadGolden(t, "./internal/analysis/testdata/src/ignore_a")
	diags, err := RunAnalyzers(mod, []*Analyzer{ZeroAlloc})
	if err != nil {
		t.Fatal(err)
	}
	var gotMalformed, gotAlloc bool
	for _, d := range diags {
		switch d.Analyzer {
		case "ignore":
			if strings.Contains(d.Message, "malformed") {
				gotMalformed = true
			}
		case "zeroalloc":
			gotAlloc = true
		}
	}
	if !gotMalformed {
		t.Errorf("malformed //adsala:ignore not reported; diagnostics: %+v", diags)
	}
	if !gotAlloc {
		t.Errorf("reason-less //adsala:ignore suppressed a finding; diagnostics: %+v", diags)
	}
}
