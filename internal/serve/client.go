package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/retry"
	"repro/internal/sampling"
)

// maxResponseBytes caps how much of a response body the client will read.
// The largest legitimate answer (a full-detail batch) is far below this;
// anything bigger is a misbehaving or malicious peer and must not balloon
// client memory.
const maxResponseBytes = 8 << 20

// StatusError is a non-200 answer from the server. Status 429 and all 5xx
// are retryable (the client's retry policy handles them transparently);
// other 4xx are fatal — the request itself is wrong and resending the same
// bytes cannot fix it.
type StatusError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint on a 429 shed (zero when
	// absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Message, e.Status)
	}
	return fmt.Sprintf("HTTP %d", e.Status)
}

// Retryable reports whether resending the identical request can succeed.
func (e *StatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Client is a Go client for the adsala-serve HTTP API. Transient failures —
// transport errors, torn responses, 5xx answers and 429 sheds — are retried
// under a capped-backoff retry.Policy; 4xx answers fail immediately.
type Client struct {
	base  string
	http  *http.Client
	retry retry.Policy
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetryPolicy replaces the client's retry policy. A zero Policy gets
// the retry package defaults; set MaxAttempts to 1 to disable retries.
func WithRetryPolicy(p retry.Policy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient selects a default with a 10 s
// timeout. The default retry policy makes 3 attempts with 50 ms initial
// backoff, capped at 1 s.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: httpClient,
		retry: retry.Policy{
			MaxAttempts: 3,
			Initial:     50 * time.Millisecond,
			Max:         time.Second,
		},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// do issues one request under the retry policy and decodes the JSON answer
// into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var blob []byte
	if body != nil {
		var err error
		if blob, err = json.Marshal(body); err != nil {
			return fmt.Errorf("serve: encode request: %w", err)
		}
	}
	return retry.Do(ctx, c.retry, func(ctx context.Context) error {
		return c.attempt(ctx, method, path, blob, out)
	})
}

// attempt is one request/response cycle. It closes the response body on
// every path, caps reads at maxResponseBytes, and classifies failures:
// transport errors and torn/garbled bodies are retryable, 4xx (except 429)
// fatal.
func (c *Client) attempt(ctx context.Context, method, path string, blob []byte, out any) error {
	var rd io.Reader
	if blob != nil {
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return retry.Fatalf("serve: build request: %w", err)
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Transport-level failure: connection refused, reset, timeout. All
		// retryable — the server may be restarting or shedding hard.
		return fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer func() {
		// Drain a bounded remainder so the connection can be reused, then
		// close on every path.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	limited := io.LimitReader(resp.Body, maxResponseBytes)
	if resp.StatusCode != http.StatusOK {
		sErr := &StatusError{Status: resp.StatusCode, RetryAfter: retryAfter(resp.Header)}
		var apiErr apiError
		if json.NewDecoder(limited).Decode(&apiErr) == nil && apiErr.Error != "" {
			sErr.Message = apiErr.Error
		}
		wrapped := fmt.Errorf("serve: %s %s: %w", method, path, sErr)
		if !sErr.Retryable() {
			return retry.Fatal(wrapped)
		}
		return wrapped
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(limited).Decode(out); err != nil {
		// A torn or garbled body usually means the connection died
		// mid-answer; a fresh attempt gets a fresh stream.
		return fmt.Errorf("serve: decode %s response: %w", path, err)
	}
	return nil
}

// Predict asks the server for the optimal thread count of one GEMM shape.
func (c *Client) Predict(m, k, n int) (int, error) {
	return c.PredictCtx(context.Background(), m, k, n) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictCtx is Predict bounded by the caller's context.
func (c *Client) PredictCtx(ctx context.Context, m, k, n int) (int, error) {
	return c.PredictOpCtx(ctx, OpGEMM, m, k, n)
}

// PredictOp asks the server for the optimal thread count of one shape under
// an explicit operation kind (SYRK shapes pass the (n, k, n) triple).
func (c *Client) PredictOp(op Op, m, k, n int) (int, error) {
	return c.PredictOpCtx(context.Background(), op, m, k, n) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictOpCtx is PredictOp bounded by the caller's context.
func (c *Client) PredictOpCtx(ctx context.Context, op Op, m, k, n int) (int, error) {
	var resp PredictResponse
	if err := c.do(ctx, http.MethodPost, "/predict", PredictRequest{M: m, K: k, N: n, Op: op.String()}, &resp); err != nil {
		return 0, err
	}
	return resp.Threads, nil
}

// PredictDetail returns the full candidate ranking for one GEMM shape.
func (c *Client) PredictDetail(m, k, n int) (PredictResponse, error) {
	return c.PredictDetailOpCtx(context.Background(), OpGEMM, m, k, n) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictDetailOp is PredictDetail under an explicit operation kind.
func (c *Client) PredictDetailOp(op Op, m, k, n int) (PredictResponse, error) {
	return c.PredictDetailOpCtx(context.Background(), op, m, k, n) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictDetailOpCtx is PredictDetailOp bounded by the caller's context.
func (c *Client) PredictDetailOpCtx(ctx context.Context, op Op, m, k, n int) (PredictResponse, error) {
	var resp PredictResponse
	err := c.do(ctx, http.MethodPost, "/predict?detail=1", PredictRequest{M: m, K: k, N: n, Op: op.String()}, &resp)
	return resp, err
}

// PredictBatch asks the server for the optimal thread counts of many GEMM
// shapes in one round trip.
func (c *Client) PredictBatch(shapes []sampling.Shape) ([]int, error) {
	return c.PredictBatchCtx(context.Background(), shapes) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictBatchCtx is PredictBatch bounded by the caller's context.
func (c *Client) PredictBatchCtx(ctx context.Context, shapes []sampling.Shape) ([]int, error) {
	return c.PredictBatchOpCtx(ctx, OpGEMM, shapes)
}

// PredictBatchOp is PredictBatch under an explicit operation kind.
func (c *Client) PredictBatchOp(op Op, shapes []sampling.Shape) ([]int, error) {
	return c.PredictBatchOpCtx(context.Background(), op, shapes) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictBatchOpCtx is PredictBatchOp bounded by the caller's context.
func (c *Client) PredictBatchOpCtx(ctx context.Context, op Op, shapes []sampling.Shape) ([]int, error) {
	reqs := make([]PredictRequest, len(shapes))
	for i, sh := range shapes {
		reqs[i] = PredictRequest{M: sh.M, K: sh.K, N: sh.N, Op: op.String()}
	}
	return c.PredictBatchRequestsCtx(ctx, reqs)
}

// PredictBatchRequests sends a mixed-operation batch in one round trip:
// each request names its own op (empty = GEMM). Answers align with the
// request order — the server splits per op and maps every decision back to
// its slot.
func (c *Client) PredictBatchRequests(reqs []PredictRequest) ([]int, error) {
	return c.PredictBatchRequestsCtx(context.Background(), reqs) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// PredictBatchRequestsCtx is PredictBatchRequests bounded by the caller's
// context.
func (c *Client) PredictBatchRequestsCtx(ctx context.Context, reqs []PredictRequest) ([]int, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/batch", BatchRequest{Shapes: reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Threads) != len(reqs) {
		return nil, fmt.Errorf("serve: batch answered %d decisions for %d shapes", len(resp.Threads), len(reqs))
	}
	return resp.Threads, nil
}

// ReportMeasured reports executed kernel wall times back to the daemon
// through POST /measured, feeding its drift monitor and flight recorder.
// Returns the number of records the server accepted (the whole batch, or
// zero — ingestion is all-or-nothing).
func (c *Client) ReportMeasured(records []MeasuredRecord) (int, error) {
	return c.ReportMeasuredCtx(context.Background(), records) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// ReportMeasuredCtx is ReportMeasured bounded by the caller's context.
func (c *Client) ReportMeasuredCtx(ctx context.Context, records []MeasuredRecord) (int, error) {
	var resp MeasuredResponse
	if err := c.do(ctx, http.MethodPost, "/measured", MeasuredRequest{Records: records}, &resp); err != nil {
		return 0, err
	}
	return resp.Accepted, nil
}

// Drift fetches the server's online drift report (404 unless the daemon
// runs with drift monitoring on).
func (c *Client) Drift() (*DriftReport, error) {
	return c.DriftCtx(context.Background()) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// DriftCtx is Drift bounded by the caller's context.
func (c *Client) DriftCtx(ctx context.Context) (*DriftReport, error) {
	var resp DriftReport
	if err := c.do(ctx, http.MethodGet, "/drift", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's engine and HTTP metrics.
func (c *Client) Stats() (StatsResponse, error) {
	return c.StatsCtx(context.Background()) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// StatsCtx is Stats bounded by the caller's context.
func (c *Client) StatsCtx(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &resp)
	return resp, err
}

// Healthz checks server liveness.
func (c *Client) Healthz() (HealthResponse, error) {
	return c.HealthzCtx(context.Background()) //adsala:ignore ctxflow context-less compat method; use the Ctx sibling to bound the call
}

// HealthzCtx is Healthz bounded by the caller's context.
func (c *Client) HealthzCtx(ctx context.Context) (HealthResponse, error) {
	var resp HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}

// Reload asks the server to hot-swap its artefact through POST
// /admin/reload, authenticating with token. The answer is the post-swap
// health body (new generation, format version and op list).
func (c *Client) Reload(ctx context.Context, token string) (HealthResponse, error) {
	var resp HealthResponse
	err := retry.Do(ctx, c.retry, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/admin/reload", nil)
		if err != nil {
			return retry.Fatalf("serve: build request: %w", err)
		}
		req.Header.Set("X-Adsala-Admin-Token", token)
		hr, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("serve: POST /admin/reload: %w", err)
		}
		defer func() {
			// Drain a bounded remainder before closing so the keep-alive
			// connection is reusable (same contract as attempt).
			_, _ = io.Copy(io.Discard, io.LimitReader(hr.Body, 4096))
			hr.Body.Close()
		}()
		limited := io.LimitReader(hr.Body, maxResponseBytes)
		if hr.StatusCode != http.StatusOK {
			sErr := &StatusError{Status: hr.StatusCode}
			var apiErr apiError
			if json.NewDecoder(limited).Decode(&apiErr) == nil && apiErr.Error != "" {
				sErr.Message = apiErr.Error
			}
			wrapped := fmt.Errorf("serve: POST /admin/reload: %w", sErr)
			if !sErr.Retryable() {
				return retry.Fatal(wrapped)
			}
			return wrapped
		}
		if err := json.NewDecoder(limited).Decode(&resp); err != nil {
			return fmt.Errorf("serve: decode /admin/reload response: %w", err)
		}
		return nil
	})
	return resp, err
}

// retryAfter parses a Retry-After header in seconds (the only form the
// server emits); 0 means absent or unparseable.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
