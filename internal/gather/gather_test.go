package gather

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// testGatherConfig returns a small simulated-Gadi gather config. The
// Coordinator ignores the Timer; the single-node reference builds it from
// the same spec, so both sides time identically.
func testGatherConfig(t *testing.T, op ops.Op, shapes int) (core.GatherConfig, simtime.Spec) {
	t.Helper()
	spec := simtime.SimSpec("Gadi", 7, true)
	timer, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return core.GatherConfig{
		Timer:      timer,
		Domain:     sampling.DefaultDomain().WithCapMB(100),
		NumShapes:  shapes,
		Candidates: []int{1, 2, 4, 8, 16, 48},
		Iters:      2,
		Seed:       7,
		Op:         op,
	}, spec
}

// startWorker runs an in-process Worker and returns its base URL.
func startWorker(t *testing.T, opts WorkerOptions) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(opts)
	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	return w, srv
}

// fastCoordinator returns a Config tuned for test latencies.
func fastCoordinator(workers []string, spec simtime.Spec) Config {
	return Config{
		Workers:      workers,
		Timer:        spec,
		UnitShapes:   3,
		PollInterval: 2 * time.Millisecond,
		UnitTimeout:  5 * time.Second,
	}
}

// TestDistributedMatchesSingleNode pins the headline invariant: a
// coordinator with two workers on the simulator backend produces a merged
// sweep byte-identical to the single-node gather with the same seed and
// domain — for every registered op.
func TestDistributedMatchesSingleNode(t *testing.T) {
	for _, op := range ops.All() {
		t.Run(op.String(), func(t *testing.T) {
			gcfg, spec := testGatherConfig(t, op, 14)
			want, err := core.Gather(gcfg)
			if err != nil {
				t.Fatal(err)
			}

			_, s1 := startWorker(t, WorkerOptions{Name: "w1"})
			_, s2 := startWorker(t, WorkerOptions{Name: "w2"})
			coord := New(fastCoordinator([]string{s1.URL, s2.URL}, spec))
			got, err := coord.Gather(context.Background(), gcfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("distributed sweep differs from single-node gather for %v", op)
			}
			st := coord.Stats()
			if st.Units != 5 || st.Dispatched != 5 || st.Duplicates != 0 {
				t.Errorf("stats = %+v, want 5 units all dispatched, none duplicated", st)
			}
			if st.WorkersRegistered != 2 {
				t.Errorf("WorkersRegistered = %d, want 2", st.WorkersRegistered)
			}
		})
	}
}

// TestCoordinatorFeedsTrain runs the full installation workflow through the
// distributed gatherer and checks the trained artefact round-trips and
// predicts — the distributed path is a drop-in core.Gatherer.
func TestCoordinatorFeedsTrain(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 48)
	gcfg.Candidates = core.DefaultCandidates(96)

	_, s1 := startWorker(t, WorkerOptions{Name: "w1"})
	_, s2 := startWorker(t, WorkerOptions{Name: "w2"})
	coord := New(fastCoordinator([]string{s1.URL, s2.URL}, spec))

	cfg := core.DefaultTrainConfig(gcfg, "Gadi", 48)
	cfg.Models = core.DefaultModels(7, true)
	cfg.Gatherer = coord
	res, err := core.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dist.adsala.json")
	if err := res.Library.Save(path); err != nil {
		t.Fatal(err)
	}
	lib, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.OptimalThreads(512, 512, 512); got < 1 {
		t.Fatalf("loaded library predicted %d threads", got)
	}

	// Train consumed exactly the sweep the single-node gather would have
	// produced. (Model *selection* additionally depends on eval latency
	// measured on the wall clock, so decisions — not data — may differ
	// between any two Train runs, distributed or not.)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Data, want) {
		t.Fatal("distributed Train consumed a different sweep than the single-node gather")
	}
}

// TestKilledWorkerMidUnit kills one worker while it executes a unit; the
// sweep must still complete, identical to single-node, with every unit
// accounted for exactly once.
func TestKilledWorkerMidUnit(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 14)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: slow enough that the kill lands mid-unit.
	victim := NewWorker(WorkerOptions{
		Name:      "victim",
		ExecDelay: func(Unit) time.Duration { return 100 * time.Millisecond },
	})
	var kill sync.Once
	var victimSrv *httptest.Server
	victimSrv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		victim.ServeHTTP(rw, r)
		if r.URL.Path == "/work" {
			kill.Do(func() {
				go func() {
					time.Sleep(20 * time.Millisecond) // mid-unit: exec sleeps 100ms
					victimSrv.CloseClientConnections()
					victimSrv.Close()
				}()
			})
		}
	}))
	t.Cleanup(func() {
		defer func() { recover() }() // double-Close on the happy path
		victimSrv.Close()
	})
	_, healthy := startWorker(t, WorkerOptions{Name: "healthy"})

	cfg := fastCoordinator([]string{victimSrv.URL, healthy.URL}, spec)
	cfg.WorkerFailureLimit = 2
	// Transport failures during polling retry until the unit deadline, so
	// keep it short: the dead victim's in-flight unit must requeue fast.
	cfg.UnitTimeout = 700 * time.Millisecond
	coord := New(cfg)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep after worker kill differs from single-node gather")
	}
	st := coord.Stats()
	if st.Retries < 1 {
		t.Errorf("expected at least one retried unit after the kill, stats = %+v", st)
	}
	if st.Dispatched+st.Resumed < st.Units {
		t.Errorf("units not all accounted for: %+v", st)
	}
}

// TestSlowWorkerReassigned times out a unit on a slow worker and completes
// it elsewhere.
func TestSlowWorkerReassigned(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 9)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	_, slow := startWorker(t, WorkerOptions{
		Name:      "slow",
		ExecDelay: func(Unit) time.Duration { return 500 * time.Millisecond },
	})
	_, fast := startWorker(t, WorkerOptions{Name: "fast"})

	cfg := fastCoordinator([]string{slow.URL, fast.URL}, spec)
	cfg.UnitTimeout = 50 * time.Millisecond
	cfg.WorkerFailureLimit = 1 // first timeout retires the slow worker
	coord := New(cfg)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep with slow worker differs from single-node gather")
	}
	if st := coord.Stats(); st.Retries < 1 {
		t.Errorf("expected the slow worker's unit to be retried, stats = %+v", st)
	}
}

// byzantineWorker implements the worker protocol but answers every /result
// poll with a replay of the first unit it completed — the duplicate-result
// fault. The coordinator must reject the mismatched replays and reassign.
type byzantineWorker struct {
	inner  *Worker
	mu     sync.Mutex
	replay *UnitResult
}

func (b *byzantineWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/result" {
		b.inner.ServeHTTP(rw, r)
		return
	}
	// Serve the genuine result once to capture it, then replay it forever.
	b.mu.Lock()
	replay := b.replay
	b.mu.Unlock()
	if replay != nil {
		writeJSON(rw, http.StatusOK, replay)
		return
	}
	rec := httptest.NewRecorder()
	b.inner.ServeHTTP(rec, r)
	if rec.Code == http.StatusOK {
		var res UnitResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err == nil {
			b.mu.Lock()
			b.replay = &res
			b.mu.Unlock()
		}
	}
	for k, v := range rec.Header() {
		rw.Header()[k] = v
	}
	rw.WriteHeader(rec.Code)
	rw.Write(rec.Body.Bytes())
}

// TestDuplicateResultRejected injects replayed (duplicate) results from a
// byzantine worker: the coordinator must refuse to merge a result that does
// not match the dispatched unit, reassign, and still finish with every unit
// exactly once and a byte-identical sweep.
func TestDuplicateResultRejected(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 12)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	byz := &byzantineWorker{inner: NewWorker(WorkerOptions{Name: "byzantine"})}
	byzSrv := httptest.NewServer(byz)
	t.Cleanup(byzSrv.Close)
	_, honest := startWorker(t, WorkerOptions{Name: "honest"})

	cfg := fastCoordinator([]string{byzSrv.URL, honest.URL}, spec)
	cfg.WorkerFailureLimit = 2
	coord := New(cfg)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep with byzantine worker differs from single-node gather")
	}
}

// TestMergeDedup pins the merge invariant directly: a second result for an
// already-merged unit is dropped, not double-counted.
func TestMergeDedup(t *testing.T) {
	completed := make(map[int][]core.ShapeTimings)
	res := UnitResult{UnitID: 3, Timings: []core.ShapeTimings{{}}}
	if !mergeResult(completed, res) {
		t.Fatal("first result should merge")
	}
	if mergeResult(completed, res) {
		t.Fatal("duplicate result should be dropped")
	}
	if len(completed) != 1 || len(completed[3]) != 1 {
		t.Fatalf("completed corrupted by duplicate: %v", completed)
	}
}

// recordingWorker wraps a Worker and records the unit IDs it is asked to
// execute.
func recordingWorker(t *testing.T, opts WorkerOptions) (*httptest.Server, *sync.Map) {
	t.Helper()
	w := NewWorker(opts)
	var seen sync.Map
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/work" && r.Method == http.MethodPost {
			var req WorkRequest
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if json.Unmarshal(body, &req) == nil {
				seen.Store(req.Unit.ID, true)
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		w.ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &seen
}

// TestCheckpointResume interrupts a sweep, restarts the coordinator on the
// same checkpoint, and verifies only the remaining units are dispatched
// while the merged sweep still matches single-node exactly.
func TestCheckpointResume(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 15) // 5 units of 3
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "gather.ckpt")

	// Phase 1: a worker that accepts two units then refuses all work. With
	// a single worker and retries exhausted, the gather errors out
	// mid-sweep — but the two completed units are checkpointed.
	w2 := NewWorker(WorkerOptions{Name: "flaky"})
	var accepted atomic.Int64
	flakySrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/work" && accepted.Load() >= 2 {
			writeError(rw, http.StatusInternalServerError, "injected failure")
			return
		}
		if r.URL.Path == "/work" {
			accepted.Add(1)
		}
		w2.ServeHTTP(rw, r)
	}))
	t.Cleanup(flakySrv.Close)

	cfg := fastCoordinator([]string{flakySrv.URL}, spec)
	cfg.Checkpoint = ckpt
	cfg.WorkerFailureLimit = 2
	cfg.MaxUnitRetries = 2
	coord1 := New(cfg)
	if _, err := coord1.Gather(context.Background(), gcfg); err == nil {
		t.Fatal("interrupted sweep should error")
	}
	// Stats are recorded for failed runs too — they are the diagnostic.
	if st := coord1.Stats(); st.Units != 5 || st.WorkersRegistered != 1 || st.Retries < 1 {
		t.Errorf("failed-run stats = %+v, want 5 units, 1 worker, >=1 retry", st)
	}

	blob, err := os.ReadFile(ckpt + ".gemm")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimRight(string(blob), "\n"), "\n") + 1
	done := lines - 1 // minus header
	if done < 1 || done >= 5 {
		t.Fatalf("phase 1 checkpointed %d of 5 units; want a partial sweep", done)
	}

	// Phase 2: restart on a healthy worker. Only the remaining units may be
	// dispatched.
	healthySrv, seen := recordingWorker(t, WorkerOptions{Name: "healthy"})
	cfg2 := fastCoordinator([]string{healthySrv.URL}, spec)
	cfg2.Checkpoint = ckpt
	coord := New(cfg2)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from single-node gather")
	}
	st := coord.Stats()
	if st.Resumed != done {
		t.Errorf("Resumed = %d, want %d", st.Resumed, done)
	}
	dispatched := 0
	seen.Range(func(k, v any) bool { dispatched++; return true })
	if dispatched != 5-done {
		t.Errorf("phase 2 dispatched %d units, want only the %d remaining", dispatched, 5-done)
	}

	// Phase 3: a fully complete checkpoint needs no fleet at all — the
	// workers are gone (dead address) and the sweep still assembles.
	cfg3 := fastCoordinator([]string{"127.0.0.1:1"}, spec)
	cfg3.Checkpoint = ckpt
	cfg3.HTTP = &http.Client{Timeout: 200 * time.Millisecond}
	coord3 := New(cfg3)
	got3, err := coord3.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3, want) {
		t.Fatal("fully-resumed sweep differs from single-node gather")
	}
	if st := coord3.Stats(); st.Resumed != 5 || st.Dispatched != 0 {
		t.Errorf("full-resume stats = %+v", st)
	}
}

// blippyWorker fails the first two /result polls at the transport level
// (connection closed mid-request) — a network blip, not a worker failure.
type blippyWorker struct {
	inner *Worker
	blips atomic.Int64
}

func (b *blippyWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/result" && b.blips.Add(1) <= 2 {
		hj, ok := rw.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close() // client sees EOF: a transport error
		}
		return
	}
	b.inner.ServeHTTP(rw, r)
}

// TestTransientPollBlipDoesNotDiscardUnit pins the poll-retry contract: a
// dropped connection during /result polling must not throw away the
// in-flight unit or count toward retiring the worker.
func TestTransientPollBlipDoesNotDiscardUnit(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	blippy := &blippyWorker{inner: NewWorker(WorkerOptions{Name: "blippy"})}
	srv := httptest.NewServer(blippy)
	t.Cleanup(srv.Close)

	cfg := fastCoordinator([]string{srv.URL}, spec)
	cfg.WorkerFailureLimit = 1 // a single counted failure would retire the only worker
	coord := New(cfg)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep with poll blips differs from single-node gather")
	}
	if st := coord.Stats(); st.Retries != 0 {
		t.Errorf("poll blips caused %d retries; units should not have been discarded", st.Retries)
	}
}

// TestCheckpointRejectsForeignSweep refuses to mix checkpoints across
// sweeps: a different seed fingerprints differently.
func TestCheckpointRejectsForeignSweep(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6)
	ckpt := filepath.Join(t.TempDir(), "gather.ckpt")
	_, srv := startWorker(t, WorkerOptions{Name: "w"})
	cfg := fastCoordinator([]string{srv.URL}, spec)
	cfg.Checkpoint = ckpt
	if _, err := New(cfg).Gather(context.Background(), gcfg); err != nil {
		t.Fatal(err)
	}
	gcfg.Seed = 99 // different sweep, same checkpoint path
	if _, err := New(cfg).Gather(context.Background(), gcfg); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

// TestCheckpointToleratesPartialLine simulates a crash mid-append: the
// truncated final line is discarded, earlier units still resume.
func TestCheckpointToleratesPartialLine(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 9)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "gather.ckpt")
	_, srv := startWorker(t, WorkerOptions{Name: "w"})
	cfg := fastCoordinator([]string{srv.URL}, spec)
	cfg.Checkpoint = ckpt
	if _, err := New(cfg).Gather(context.Background(), gcfg); err != nil {
		t.Fatal(err)
	}

	path := ckpt + ".gemm"
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the last line mid-JSON.
	trimmed := strings.TrimRight(string(blob), "\n")
	cut := trimmed[:len(trimmed)-20]
	if err := os.WriteFile(path, []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}

	_, srv2 := startWorker(t, WorkerOptions{Name: "w2"})
	cfg2 := fastCoordinator([]string{srv2.URL}, spec)
	cfg2.Checkpoint = ckpt
	coord := New(cfg2)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resume after truncated checkpoint differs from single-node gather")
	}
	if st := coord.Stats(); st.Resumed != 2 || st.Dispatched != 1 {
		t.Errorf("stats after truncated resume = %+v, want 2 resumed + 1 redispatched", st)
	}

	// The resumed file must be fully valid again (the partial line was
	// truncated before appending, not appended onto): a further resume
	// with no workers at all reads every unit back cleanly.
	cfg3 := fastCoordinator([]string{"127.0.0.1:1"}, spec)
	cfg3.Checkpoint = ckpt
	cfg3.HTTP = &http.Client{Timeout: 200 * time.Millisecond}
	coord3 := New(cfg3)
	got3, err := coord3.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatalf("checkpoint corrupted by the truncated-line resume: %v", err)
	}
	if !reflect.DeepEqual(got3, want) {
		t.Fatal("second resume differs from single-node gather")
	}
}

// TestConcurrentMerge shards a larger sweep over four workers with 1-shape
// units — the -race exercise of the dispatch/merge machinery.
func TestConcurrentMerge(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 32)
	want, err := core.Gather(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 4; i++ {
		_, srv := startWorker(t, WorkerOptions{Name: "w", Concurrency: 2})
		urls = append(urls, srv.URL)
	}
	cfg := fastCoordinator(urls, spec)
	cfg.UnitShapes = 1
	coord := New(cfg)
	got, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("4-worker sweep differs from single-node gather")
	}
	if st := coord.Stats(); st.Units != 32 || st.Dispatched != 32 {
		t.Errorf("stats = %+v, want all 32 units dispatched", st)
	}
}

// TestWorkerEndpoints covers the protocol edges: bad session fingerprints,
// -sim enforcement, drain refusing work, unknown results.
func TestWorkerEndpoints(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6)
	sweep := SweepSpec{
		Op:         "gemm",
		Timer:      spec,
		Domain:     gcfg.Domain,
		Seed:       gcfg.Seed,
		Candidates: gcfg.Candidates,
		Iters:      gcfg.Iters,
	}
	sweep.Session = sweep.Fingerprint()

	_, srv := startWorker(t, WorkerOptions{Name: "w", RequireSim: true})
	post := func(path string, body any) *http.Response {
		t.Helper()
		blob, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Tampered session fingerprint.
	bad := sweep
	bad.Session = "deadbeefdeadbeef"
	if resp := post("/register", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tampered session: HTTP %d, want 400", resp.StatusCode)
	}
	// Real-backend sweep against a -sim worker.
	real := sweep
	real.Timer = simtime.RealSpec(2)
	real.Session = real.Fingerprint()
	if resp := post("/register", real); resp.StatusCode != http.StatusConflict {
		t.Errorf("-sim worker accepted a real sweep: HTTP %d, want 409", resp.StatusCode)
	}
	// Work before registration.
	if resp := post("/work", WorkRequest{Session: sweep.Session, Unit: Unit{ID: 0, Count: 1}}); resp.StatusCode != http.StatusConflict {
		t.Errorf("work before register: HTTP %d, want 409", resp.StatusCode)
	}
	// Happy registration.
	if resp := post("/register", sweep); resp.StatusCode != http.StatusOK {
		t.Errorf("register: HTTP %d, want 200", resp.StatusCode)
	}
	// Unknown unit result.
	resp, err := http.Get(srv.URL + "/result?session=" + sweep.Session + "&id=42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown unit: HTTP %d, want 404", resp.StatusCode)
	}
	// Drain refuses new work.
	if resp := post("/drain", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("drain: HTTP %d, want 200", resp.StatusCode)
	}
	if resp := post("/work", WorkRequest{Session: sweep.Session, Unit: Unit{ID: 0, Count: 1}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("work while draining: HTTP %d, want 503", resp.StatusCode)
	}
	// Healthz reports draining.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health StatusResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining || health.Status != "draining" {
		t.Errorf("healthz after drain = %+v", health)
	}
}

// TestFailedUnitReexecutesOnRedispatch pins the retry contract: a unit
// whose previous execution FAILED on this worker must run again when
// re-dispatched — a cached error replayed as "done" would burn the
// coordinator's retry budget without any actual retry.
func TestFailedUnitReexecutesOnRedispatch(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6)
	sweep := SweepSpec{
		Op:         "gemm",
		Timer:      spec,
		Domain:     gcfg.Domain,
		Seed:       gcfg.Seed,
		Candidates: gcfg.Candidates,
		Iters:      gcfg.Iters,
	}
	sweep.Session = sweep.Fingerprint()

	w, srv := startWorker(t, WorkerOptions{Name: "w"})
	post := func(path string, body any) int {
		t.Helper()
		blob, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/register", sweep); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}
	// Simulate a transient failure having been recorded for unit 0.
	w.mu.Lock()
	w.units[0] = &unitState{status: statusDone, err: "injected transient failure"}
	w.mu.Unlock()

	if code := post("/work", WorkRequest{Session: sweep.Session, Unit: Unit{ID: 0, Start: 0, Count: 2}}); code != http.StatusAccepted {
		t.Fatalf("re-dispatch of failed unit: HTTP %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/result?session=" + sweep.Session + "&id=0")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break // re-executed and succeeded
		}
		if code != http.StatusAccepted {
			t.Fatalf("re-dispatched unit polled HTTP %d: the stale error was replayed", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("re-dispatched unit never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRepeatedGatherReexecutes pins the run-nonce contract: a second
// identical sweep against the same long-lived workers re-executes every
// unit instead of replaying the first run's cached results — on a real
// timing backend those would be stale measurements.
func TestRepeatedGatherReexecutes(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6) // 2 units of 3
	w := NewWorker(WorkerOptions{Name: "w"})
	var works atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/work" {
			works.Add(1)
		}
		w.ServeHTTP(rw, r)
	}))
	t.Cleanup(srv.Close)

	coord := New(fastCoordinator([]string{srv.URL}, spec))
	got1, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := coord.Gather(context.Background(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := works.Load(); got != 4 {
		t.Errorf("two runs dispatched %d units, want 4 (2 units × 2 runs, no cached replay)", got)
	}
	// On the deterministic simulator the re-executed run still matches.
	if !reflect.DeepEqual(got1, got2) {
		t.Error("re-executed sweep differs on the deterministic backend")
	}
}

// TestWorkerUnfetchedTracking pins the drain-linger primitive: a completed
// result counts as unfetched until /result serves it.
func TestWorkerUnfetchedTracking(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 4)
	sweep := SweepSpec{
		Op: "gemm", Timer: spec, Domain: gcfg.Domain, Seed: gcfg.Seed,
		Candidates: gcfg.Candidates, Iters: gcfg.Iters,
	}
	sweep.Session = sweep.Fingerprint()
	w, srv := startWorker(t, WorkerOptions{Name: "w"})

	blob, _ := json.Marshal(sweep)
	resp, err := http.Post(srv.URL+"/register", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	blob, _ = json.Marshal(WorkRequest{Session: sweep.Session, Unit: Unit{ID: 0, Start: 0, Count: 2}})
	resp, err = http.Post(srv.URL+"/work", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for w.Unfetched() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unit never reached the unfetched-done state")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = http.Get(srv.URL + "/result?session=" + sweep.Session + "&id=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	if n := w.Unfetched(); n != 0 {
		t.Errorf("Unfetched after serving the result = %d, want 0", n)
	}
	// WaitFetched returns immediately once everything is fetched.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := w.WaitFetched(ctx); err != nil {
		t.Errorf("WaitFetched = %v", err)
	}
}

// TestCoordinatorNoWorkers errors out early instead of hanging.
func TestCoordinatorNoWorkers(t *testing.T) {
	gcfg, spec := testGatherConfig(t, ops.GEMM, 6)
	if _, err := New(Config{Timer: spec}).Gather(context.Background(), gcfg); err == nil {
		t.Error("no workers should error")
	}
	// All workers unreachable.
	cfg := fastCoordinator([]string{"127.0.0.1:1"}, spec)
	cfg.HTTP = &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := New(cfg).Gather(context.Background(), gcfg); err == nil {
		t.Error("unreachable workers should error")
	}
}
