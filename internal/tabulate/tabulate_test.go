package tabulate

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("name", "value")
	tb.Row("x", "1").Row("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// All lines equal width (trailing spaces pad the last column).
	w := len(lines[0])
	for i, ln := range lines {
		if len(strings.TrimRight(ln, " ")) > w+2 {
			t.Errorf("line %d wider than header: %q", i, ln)
		}
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("no rule: %q", lines[1])
	}
	if !strings.Contains(lines[3], "longer-name") {
		t.Errorf("row content lost: %q", lines[3])
	}
}

func TestRowPadsAndTruncates(t *testing.T) {
	tb := New("a", "b")
	tb.Row("only")              // missing cell -> empty
	tb.Row("x", "y", "dropped") // extra cell -> dropped
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if F(2, 0) != "2" {
		t.Errorf("F(2,0) = %q", F(2, 0))
	}
	if D(42) != "42" {
		t.Errorf("D = %q", D(42))
	}
}

func TestEmptyTable(t *testing.T) {
	out := New("h").String()
	if !strings.Contains(out, "h") {
		t.Errorf("header missing: %q", out)
	}
}
