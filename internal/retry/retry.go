// Package retry is the one retry/backoff implementation shared by every
// component that talks over a network: the serve client, the gather
// coordinator, and anything later that needs to survive transient failure.
// It provides capped exponential backoff with deterministic-seedable jitter,
// per-attempt deadlines, a total wall-clock budget propagated through
// context.Context, and a typed retryable-vs-fatal error split so callers
// classify failures once instead of re-implementing ad-hoc loops.
//
// The default classification is optimistic: every error is retryable unless
// wrapped with Fatal. That matches the call sites — transport errors,
// timeouts and 5xx answers are transient by default, while a 4xx protocol
// answer (the server understood the request and refused it) is marked fatal
// at the point the caller can tell the difference.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy describes one retry discipline. The zero value selects the
// defaults; policies are plain values, safe to copy and share.
type Policy struct {
	// MaxAttempts bounds the number of operation invocations (not
	// re-invocations): 1 means no retry at all. 0 selects the default (4).
	// Negative means unbounded — the Budget or the caller's context must
	// then terminate the loop.
	MaxAttempts int
	// Initial is the backoff before the second attempt (default 50ms).
	Initial time.Duration
	// Max caps the backoff between any two attempts (default 2s).
	Max time.Duration
	// Multiplier grows the backoff between attempts (default 2.0).
	Multiplier float64
	// Jitter is the fraction of each backoff randomised away (0..1,
	// default 0.2): a backoff b sleeps in [b*(1-Jitter), b]. Jitter
	// de-synchronises fleets of clients retrying against one server.
	Jitter float64
	// AttemptTimeout bounds one invocation: each attempt runs under a
	// context that expires this long after it starts. 0 means no
	// per-attempt deadline beyond the caller's context.
	AttemptTimeout time.Duration
	// Budget bounds the whole loop — attempts plus backoffs — as a
	// deadline on the derived context, so it propagates into the operation
	// and into any nested retry.Do. 0 means no budget beyond the caller's
	// context.
	Budget time.Duration
	// Rand supplies jitter randomness in [0, 1); nil selects the global
	// math/rand source. Tests inject a seeded source for determinism.
	Rand func() float64
	// Sleep replaces the inter-attempt wait; nil selects a real timer
	// honouring ctx cancellation. Tests inject instant sleeps.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes each scheduled retry: the attempt
	// that just failed (1-based), its error, and the backoff about to be
	// slept. Used for logging and metrics; must not block.
	OnRetry func(attempt int, err error, backoff time.Duration)
}

// Defaults for the zero Policy.
const (
	DefaultMaxAttempts = 4
	DefaultInitial     = 50 * time.Millisecond
	DefaultMax         = 2 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.2
)

// norm returns the policy with defaults applied.
func (p Policy) norm() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.Initial <= 0 {
		p.Initial = DefaultInitial
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = DefaultJitter
	}
	if p.Rand == nil {
		p.Rand = globalFloat64
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// globalRand guards the shared jitter source: policies are copied across
// goroutines, so the default source must be safe for concurrent use.
var (
	globalMu   sync.Mutex
	globalRand = rand.New(rand.NewSource(1))
)

func globalFloat64() float64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRand.Float64()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Backoff returns the wait before attempt+2 (Backoff(0) is the wait after
// the first failure) for a normalised policy, before jitter: capped
// exponential growth Initial * Multiplier^attempt.
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.norm()
	b := float64(p.Initial)
	for i := 0; i < attempt; i++ {
		b *= p.Multiplier
		if b >= float64(p.Max) {
			return p.Max
		}
	}
	if b > float64(p.Max) {
		return p.Max
	}
	return time.Duration(b)
}

// jittered applies the policy's jitter to a base backoff.
func (p Policy) jittered(base time.Duration) time.Duration {
	if p.Jitter == 0 || base <= 0 {
		return base
	}
	f := 1 - p.Jitter*p.Rand()
	return time.Duration(float64(base) * f)
}

// fatalError marks an error as non-retryable.
type fatalError struct{ err error }

func (f *fatalError) Error() string { return f.err.Error() }
func (f *fatalError) Unwrap() error { return f.err }

// Fatal marks err as fatal: Do stops immediately and returns it (still
// unwrappable to the original via errors.Is/As). A nil err stays nil.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &fatalError{err: err}
}

// Fatalf is Fatal over fmt.Errorf.
func Fatalf(format string, args ...any) error {
	return Fatal(fmt.Errorf(format, args...))
}

// IsFatal reports whether err (or anything it wraps) was marked with Fatal.
func IsFatal(err error) bool {
	var f *fatalError
	return errors.As(err, &f)
}

// ExhaustedError reports a loop that gave up: it carries the attempts made
// and wraps the last operation error.
type ExhaustedError struct {
	// Attempts is the number of invocations performed.
	Attempts int
	// Last is the error of the final attempt.
	Last error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("after %d attempts: %v", e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// Do runs op under the policy until it succeeds, returns a fatal error, the
// attempts are exhausted, or the context (including the policy Budget)
// expires. The context passed to op carries the per-attempt deadline when
// AttemptTimeout is set and always carries the budget deadline, so the
// operation's own network calls inherit both.
//
// The returned error is nil on success; the fatal error as marked; an
// *ExhaustedError wrapping the last attempt's error when retries ran out;
// or the context error when the caller's context or the budget expired
// between attempts. When the budget expires the last attempt error (if any)
// is attached via ExhaustedError so the caller sees why the time was spent.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.norm()
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Budget)
		defer cancel()
	}
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return budgetError(err, attempt-1, last)
		}
		actx := ctx
		var cancel context.CancelFunc = func() {}
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		if IsFatal(err) {
			return err
		}
		last = err
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return &ExhaustedError{Attempts: attempt, Last: last}
		}
		backoff := p.jittered(p.Backoff(attempt - 1))
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, backoff)
		}
		if err := p.Sleep(ctx, backoff); err != nil {
			return budgetError(err, attempt, last)
		}
	}
}

// budgetError wraps a context expiry with the last attempt error when one
// exists, so "the budget ran out" still explains what it ran out doing.
func budgetError(ctxErr error, attempts int, last error) error {
	if last == nil {
		return ctxErr
	}
	return &ExhaustedError{Attempts: attempts, Last: fmt.Errorf("%w (last error: %v)", ctxErr, last)}
}

// DoValue is Do for operations producing a value.
func DoValue[T any](ctx context.Context, p Policy, op func(ctx context.Context) (T, error)) (T, error) {
	var out T
	err := Do(ctx, p, func(ctx context.Context) error {
		v, err := op(ctx)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}
