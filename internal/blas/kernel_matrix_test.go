package blas

// Cross-validation of every execution path of the packed GEMM — all
// supported micro-tiles × all four transpose combinations × edge dimensions
// (1, MR±1, non-multiples of MC/KC/NC) × non-unit strides — against the
// naive reference, plus the same matrix through the small-shape path, a
// context-reuse test, steady-state allocation checks, and a concurrent
// stress test that hammers the pooled contexts (run under -race in CI).

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
)

// forcePath pins the small-shape threshold for the duration of a test so a
// case exercises exactly one execution path.
func forcePath(t *testing.T, limit int) {
	t.Helper()
	old := smallShapeLimit
	smallShapeLimit = limit
	t.Cleanup(func() { smallShapeLimit = old })
}

const (
	forcePacked = 0       // every shape takes the packed kernel
	forceSmall  = 1 << 40 // every shape takes the small path
	sentinelF32 = float32(9.25e18)
	sentinelF64 = float64(9.25e18)
)

// stridedF32 builds an r×c matrix with the given extra stride padding,
// random logical content and sentinel-filled padding.
func stridedF32(r, c, extra int, rng *rand.Rand) *mat.F32 {
	stride := c + extra
	m := &mat.F32{Rows: r, Cols: c, Stride: stride, Data: make([]float32, r*stride)}
	for i := range m.Data {
		m.Data[i] = sentinelF32
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, float32(rng.NormFloat64()))
		}
	}
	return m
}

func stridedF64(r, c, extra int, rng *rand.Rand) *mat.F64 {
	stride := c + extra
	m := &mat.F64{Rows: r, Cols: c, Stride: stride, Data: make([]float64, r*stride)}
	for i := range m.Data {
		m.Data[i] = sentinelF64
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// checkPaddingF32 fails if any sentinel outside the logical region of m was
// overwritten.
func checkPaddingF32(t *testing.T, m *mat.F32, label string) {
	t.Helper()
	for i := 0; i < m.Rows; i++ {
		for j := m.Cols; j < m.Stride; j++ {
			if m.Data[i*m.Stride+j] != sentinelF32 {
				t.Fatalf("%s: wrote outside logical region at (%d,%d)", label, i, j)
			}
		}
	}
}

// matrixDims returns the edge-dimension set for a tile: 1, MR−1, MR+1,
// and values that leave remainders against the small MC/KC/NC blocking the
// matrix test runs with.
func matrixDims(r int) []int {
	set := map[int]bool{}
	var dims []int
	for _, d := range []int{1, r - 1, r + 1, 2*r + 1, 17, 33} {
		if d >= 1 && !set[d] {
			set[d] = true
			dims = append(dims, d)
		}
	}
	return dims
}

// TestPackedMatchesNaiveMatrix is the exhaustive edge-case matrix for the
// packed path. Blocking parameters are shrunk so MC/KC/NC boundaries land
// inside the test dimensions, and the transpose combination, thread count,
// and stride padding rotate per shape so the whole matrix stays fast while
// covering every axis.
func TestPackedMatchesNaiveMatrix(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(20))
	for _, tile := range [][2]int{{4, 4}, {8, 4}, {4, 8}} {
		mr, nr := tile[0], tile[1]
		prm := Params{MC: 2 * mr, KC: 10, NC: 2 * nr, MR: mr, NR: nr}
		if err := prm.Validate(); err != nil {
			t.Fatalf("tile %dx%d params: %v", mr, nr, err)
		}
		mDims := matrixDims(mr)
		nDims := matrixDims(nr)
		kDims := []int{1, 9, 10, 11, 21}
		combo := 0
		for _, m := range mDims {
			for _, k := range kDims {
				for _, n := range nDims {
					transA := combo&1 != 0
					transB := combo&2 != 0
					threads := 1 + combo%4
					extra := (combo % 3) * 3 // 0, 3, 6 stride padding
					alpha := float32(1.25)
					beta := float32(0.5)
					if combo%5 == 0 {
						beta = 0
					}
					combo++

					ar, ac := m, k
					if transA {
						ar, ac = k, m
					}
					br, bc := k, n
					if transB {
						br, bc = n, k
					}
					a := stridedF32(ar, ac, extra, rng)
					b := stridedF32(br, bc, extra, rng)
					c := stridedF32(m, n, extra, rng)
					want := c.Clone()
					NaiveSGEMM(transA, transB, alpha, a, b, beta, want)
					if err := SGEMMWithParams(transA, transB, alpha, a, b, beta, c, threads, prm); err != nil {
						t.Fatalf("tile %dx%d m=%d k=%d n=%d ta=%v tb=%v: %v", mr, nr, m, k, n, transA, transB, err)
					}
					if d := c.Clone().MaxAbsDiff(want); d > tolF32(k) {
						t.Errorf("tile %dx%d m=%d k=%d n=%d ta=%v tb=%v threads=%d: max diff %v > %v",
							mr, nr, m, k, n, transA, transB, threads, d, tolF32(k))
					}
					checkPaddingF32(t, c, "packed C")
				}
			}
		}
	}
}

// TestSmallPathMatchesNaiveMatrix runs the same transpose × edge-dimension ×
// stride matrix through the no-packing small path, in both precisions.
func TestSmallPathMatchesNaiveMatrix(t *testing.T) {
	forcePath(t, forceSmall)
	rng := rand.New(rand.NewSource(21))
	dims := []int{1, 2, 3, 5, 8, 13}
	combo := 0
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				transA := combo&1 != 0
				transB := combo&2 != 0
				extra := (combo % 3) * 2
				beta := 0.75
				if combo%4 == 0 {
					beta = 0
				}
				combo++

				ar, ac := m, k
				if transA {
					ar, ac = k, m
				}
				br, bc := k, n
				if transB {
					br, bc = n, k
				}
				a := stridedF64(ar, ac, extra, rng)
				b := stridedF64(br, bc, extra, rng)
				c := stridedF64(m, n, extra, rng)
				want := c.Clone()
				NaiveDGEMM(transA, transB, -1.5, a, b, beta, want)
				if err := DGEMM(transA, transB, -1.5, a, b, beta, c, 3); err != nil {
					t.Fatalf("m=%d k=%d n=%d ta=%v tb=%v: %v", m, k, n, transA, transB, err)
				}
				if d := c.Clone().MaxAbsDiff(want); d > tolF64(k) {
					t.Errorf("m=%d k=%d n=%d ta=%v tb=%v: max diff %v", m, k, n, transA, transB, d)
				}
			}
		}
	}
}

// TestPackedThreadDeterminism pins the bit-exactness guarantee on the packed
// path: block ownership depends only on (w, parts), and per-element
// summation order is independent of the team size, so any thread count must
// reproduce the serial result exactly.
func TestPackedThreadDeterminism(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(22))
	for _, sh := range [][3]int{{97, 53, 41}, {129, 256, 65}, {64, 300, 48}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randF32(m, k, rng)
		b := randF32(k, n, rng)
		ref := mat.NewF32(m, n)
		if err := SGEMM(false, false, 1, a, b, 0, ref, 1); err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 3, 5, 8} {
			c := mat.NewF32(m, n)
			if err := SGEMM(false, false, 1, a, b, 0, c, threads); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(ref); d != 0 {
				t.Errorf("shape %v threads=%d: differs from serial by %v (want bit-identical)", sh, threads, d)
			}
		}
	}
}

// TestContextReuse drives one Context through mixed precisions, shapes,
// thread counts, and blocking parameters, with Close in the middle — the
// team and buffers must regrow transparently.
func TestContextReuse(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(23))
	ctx := NewContext()
	defer ctx.Close()
	shapes := [][4]int{{30, 20, 25, 1}, {64, 64, 64, 4}, {10, 10, 10, 2}, {80, 33, 47, 3}}
	for round := 0; round < 2; round++ {
		for _, sh := range shapes {
			m, k, n, threads := sh[0], sh[1], sh[2], sh[3]
			a32 := randF32(m, k, rng)
			b32 := randF32(k, n, rng)
			c32 := mat.NewF32(m, n)
			want32 := mat.NewF32(m, n)
			NaiveSGEMM(false, false, 1, a32, b32, 0, want32)
			if err := ctx.SGEMM(false, false, 1, a32, b32, 0, c32, threads); err != nil {
				t.Fatal(err)
			}
			if d := c32.MaxAbsDiff(want32); d > tolF32(k) {
				t.Errorf("round %d f32 %v: diff %v", round, sh, d)
			}
			a64 := randF64(m, k, rng)
			b64 := randF64(k, n, rng)
			c64 := mat.NewF64(m, n)
			want64 := mat.NewF64(m, n)
			NaiveDGEMM(false, false, 2, a64, b64, 0, want64)
			if m != k {
				// Dimension errors must not corrupt the reused context.
				if err := ctx.DGEMM(true, false, 2, a64, b64, 0, c64, threads); err == nil {
					t.Fatalf("round %d: transposed A with untransposed dims should error", round)
				}
			}
			if err := ctx.DGEMM(false, false, 2, a64, b64, 0, c64, threads); err != nil {
				t.Fatal(err)
			}
			if d := c64.MaxAbsDiff(want64); d > tolF64(k) {
				t.Errorf("round %d f64 %v: diff %v", round, sh, d)
			}
		}
		ctx.Close() // next round must recreate the team
	}
	ctx.Close() // idempotent
}

// TestContextWorkersReclaimedByGC drops an un-Closed Context after parallel
// use and verifies its parked workers exit: the GC cleanup must reach the
// team, which requires run() to drop its job closure (the closure references
// the Context) after every round.
func TestContextWorkersReclaimedByGC(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(26))
	a := randF32(64, 64, rng)
	b := randF32(64, 64, rng)
	c := mat.NewF32(64, 64)
	// Let workers of previously-Closed teams finish exiting so the baseline
	// is stable.
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur >= before {
			before = cur
			break
		}
		before = cur
	}
	func() {
		ctx := NewContext() // deliberately not Closed
		for i := 0; i < 2; i++ {
			if err := ctx.SGEMM(false, false, 1, a, b, 0, c, 4); err != nil {
				t.Fatal(err)
			}
		}
		if got := runtime.NumGoroutine(); got < before+3 {
			t.Fatalf("expected 3 parked workers, goroutines %d -> %d", before, got)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("worker goroutines not reclaimed after GC: %d -> %d", before, runtime.NumGoroutine())
}

// TestSGEMMZeroAllocSteadyState enforces the zero-allocation guarantee of
// both the Context path and the pooled package path once warm.
func TestSGEMMZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(24))
	a := randF32(128, 96, rng)
	b := randF32(96, 112, rng)
	c := mat.NewF32(128, 112)
	for _, tc := range []struct {
		name    string
		threads int
	}{{"serial", 1}, {"team2", 2}, {"team4", 4}} {
		ctx := NewContext()
		for i := 0; i < 2; i++ { // warm: buffers, team, worker closure
			if err := ctx.SGEMM(false, false, 1, a, b, 0, c, tc.threads); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := ctx.SGEMM(false, false, 1, a, b, 0, c, tc.threads); err != nil {
				t.Fatal(err)
			}
		})
		ctx.Close()
		if allocs != 0 {
			t.Errorf("Context.SGEMM %s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	for i := 0; i < 3; i++ { // warm the package pool
		if err := SGEMM(false, false, 1, a, b, 0, c, 2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := SGEMM(false, false, 1, a, b, 0, c, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled blas.SGEMM: %v allocs/op, want 0", allocs)
	}
}

// TestConcurrentGemmPoolStress hammers the pooled contexts from concurrent
// callers with mixed shapes and thread counts. Run under -race in CI: it is
// the guard against buffer sharing between pooled contexts and against
// worker-team wakeup races.
func TestConcurrentGemmPoolStress(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(25))
	type problem struct {
		a, b, want *mat.F32
		m, n, k    int
	}
	problems := make([]problem, 6)
	for i := range problems {
		m := 32 + 16*i
		k := 48 + 8*i
		n := 96 - 8*i
		a := randF32(m, k, rng)
		b := randF32(k, n, rng)
		want := mat.NewF32(m, n)
		NaiveSGEMM(false, false, 1, a, b, 0, want)
		problems[i] = problem{a: a, b: b, want: want, m: m, n: n, k: k}
	}
	goroutines := 8
	iters := 30
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				p := problems[(g+it)%len(problems)]
				threads := 1 + (g+it)%4
				c := mat.NewF32(p.m, p.n)
				if err := SGEMM(false, false, 1, p.a, p.b, 0, c, threads); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if d := c.MaxAbsDiff(p.want); d > tolF32(p.k) {
					select {
					case errs <- fmt.Errorf("goroutine %d iter %d: diff %v", g, it, d):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	runtime.GC() // exercise the context-cleanup path under race too
}
