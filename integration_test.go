package adsala

// Integration tests exercising the full public workflow across platforms:
// the "architecture aware" behaviour (same shape, different machine,
// different decision), end-to-end numerical correctness through the ML
// front end, and artefact portability.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/simtime"
)

// trainBoth trains one quick library per simulated platform.
func trainBoth(t *testing.T) (setonix, gadi *Library) {
	t.Helper()
	var err error
	setonix, _, err = Train(TrainOptions{Platform: "Setonix", Shapes: 160, Quick: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	gadi, _, err = Train(TrainOptions{Platform: "Gadi", Shapes: 160, Quick: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return setonix, gadi
}

func TestArchitectureAwareness(t *testing.T) {
	setonix, gadi := trainBoth(t)
	// Large square GEMM: each platform should commit a large fraction of its
	// own machine — so the two decisions must differ substantially, because
	// the machines do.
	sBig := setonix.OptimalThreads(8000, 8000, 8000)
	gBig := gadi.OptimalThreads(8000, 8000, 8000)
	if sBig < 64 {
		t.Errorf("Setonix big-GEMM choice %d; want a large fraction of 256", sBig)
	}
	if gBig < 24 {
		t.Errorf("Gadi big-GEMM choice %d; want a large fraction of 96", gBig)
	}
	if sBig <= gBig {
		t.Errorf("128-core machine chose %d threads <= 48-core machine's %d", sBig, gBig)
	}
	// Small GEMM above the library's dynamic-threading grain: the realised
	// time of each model's choice must be close to the sweep optimum on its
	// own machine (labels inside the throttled flat region are all
	// equivalent, so we judge times, not labels).
	for _, tc := range []struct {
		name string
		lib  *Library
		node func() *machine.Node
		ht   bool
	}{
		{"Setonix", setonix, machine.Setonix, true},
		{"Gadi", gadi, machine.Gadi, true},
	} {
		sim := simtime.New(simtime.DefaultConfig(tc.node()))
		const m, k, n = 200, 200, 200
		choice := tc.lib.OptimalThreads(m, k, n)
		tChoice := sim.Breakdown(m, k, n, choice).Total()
		best := tChoice
		for p := 1; p <= sim.MaxThreads(); p++ {
			if tt := sim.Breakdown(m, k, n, p).Total(); tt < best {
				best = tt
			}
		}
		if tChoice > 2.5*best {
			t.Errorf("%s: 200^3 choice %d realises %.1fus vs optimum %.1fus",
				tc.name, choice, tChoice*1e6, best*1e6)
		}
	}
}

func TestEndToEndArtefactPortability(t *testing.T) {
	setonix, _ := trainBoth(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "setonix.adsala.json")
	if err := setonix.Save(path); err != nil {
		t.Fatal(err)
	}
	lib, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// The restored artefact must reproduce decisions AND run numerically
	// correct GEMMs through the front end.
	for _, sh := range [][3]int{{100, 200, 50}, {64, 2048, 64}, {2000, 2000, 2000}} {
		if a, b := setonix.OptimalThreads(sh[0], sh[1], sh[2]), lib.OptimalThreads(sh[0], sh[1], sh[2]); a != b {
			t.Errorf("shape %v: decision changed %d -> %d across save/load", sh, a, b)
		}
	}
	g := lib.NewGemm()
	rng := rand.New(rand.NewSource(5))
	const m, k, n = 31, 63, 17
	a := NewMatrixF32(m, k)
	b := NewMatrixF32(k, n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c := NewMatrixF32(m, n)
	if err := g.SGEMM(false, false, 2, a, b, 0, c); err != nil {
		t.Fatal(err)
	}
	var want float64
	for p := 0; p < k; p++ {
		want += 2 * float64(a.At(7, p)) * float64(b.At(p, 11))
	}
	if got := float64(c.At(7, 11)); got-want > 1e-3 || want-got > 1e-3 {
		t.Errorf("C[7,11] = %v, want %v", got, want)
	}
}

func TestSkinnyShapeDecisionQuality(t *testing.T) {
	// The Table VII regime end to end through the public API: for the
	// pathological 64×2048×64, the trained model must choose a count whose
	// *simulated* runtime beats max threads by a wide margin.
	_, gadi := trainBoth(t)
	choice := gadi.OptimalThreads(64, 2048, 64)
	if choice > 48 {
		t.Errorf("chose %d threads for 64x2048x64; paper's model chose 14", choice)
	}
	// Judge the decision against the simulated ground truth: the chosen
	// count must realise a large fraction of the available speedup.
	sim := simtime.New(simtime.DefaultConfig(machine.Gadi()))
	tChoice := sim.Breakdown(64, 2048, 64, choice).Total()
	tMax := sim.Breakdown(64, 2048, 64, 96).Total()
	if ratio := tMax / tChoice; ratio < 10 {
		t.Errorf("realised speedup %.1fx at %d threads; paper's regime is >>10x", ratio, choice)
	}
}
