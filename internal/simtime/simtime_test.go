package simtime

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func gadiSim() *Simulator {
	cfg := DefaultConfig(machine.Gadi())
	cfg.NoiseSigma = 0
	return New(cfg)
}

func setonixSim() *Simulator {
	cfg := DefaultConfig(machine.Setonix())
	cfg.NoiseSigma = 0
	return New(cfg)
}

func optimal(s *Simulator, m, k, n int) (int, float64) {
	best, bt := 1, math.Inf(1)
	for p := 1; p <= s.MaxThreads(); p++ {
		if t := s.Breakdown(m, k, n, p).Total(); t < bt {
			best, bt = p, t
		}
	}
	return best, bt
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil node should panic")
		}
	}()
	New(Config{})
}

func TestBreakdownComponentsNonNegative(t *testing.T) {
	s := gadiSim()
	for _, c := range [][4]int{{1, 1, 1, 1}, {64, 64, 64, 96}, {5000, 5000, 5000, 48}, {64, 2048, 64, 96}} {
		b := s.Breakdown(c[0], c[1], c[2], c[3])
		if b.Spawn < 0 || b.Sync < 0 || b.Copy < 0 || b.Kernel <= 0 {
			t.Errorf("%v: breakdown %+v has non-positive component", c, b)
		}
		if b.Total() <= 0 {
			t.Errorf("%v: total %v", c, b.Total())
		}
	}
}

func TestSingleThreadHasNoParallelOverhead(t *testing.T) {
	s := setonixSim()
	b := s.Breakdown(500, 500, 500, 1)
	if b.Spawn != 0 || b.Sync != 0 {
		t.Errorf("single thread: spawn=%v sync=%v, want 0", b.Spawn, b.Sync)
	}
	// Small single-thread GEMM fits L3: no packing copy either (Table VII's
	// zero copy at 1 thread).
	if b.Copy != 0 {
		t.Errorf("cache-resident single-thread copy = %v, want 0", b.Copy)
	}
}

func TestLargeSquareWantsManyThreads(t *testing.T) {
	s := gadiSim()
	opt, _ := optimal(s, 6000, 6000, 6000)
	if opt < 24 {
		t.Errorf("6000³ optimal threads = %d, want near core count", opt)
	}
	t1 := s.Breakdown(6000, 6000, 6000, 1).Total()
	t48 := s.Breakdown(6000, 6000, 6000, 48).Total()
	if t48 >= t1/8 {
		t.Errorf("poor scaling: t1=%v t48=%v", t1, t48)
	}
}

func TestSmallGEMMWantsFewThreads(t *testing.T) {
	s := gadiSim()
	opt, _ := optimal(s, 64, 64, 64)
	if opt > 24 {
		t.Errorf("64³ optimal threads = %d, want far below 96", opt)
	}
}

func TestTableVIIShapeGadi(t *testing.T) {
	// 64×2048×64: paper found optimum 14 threads with ~80-150× advantage
	// over 96 threads. Require the same regime: optimum in [4, 32] and at
	// least 20× speedup.
	s := gadiSim()
	opt, bt := optimal(s, 64, 2048, 64)
	if opt < 4 || opt > 32 {
		t.Errorf("64×2048×64 optimal = %d, want 4..32 (paper: 14)", opt)
	}
	t96 := s.Breakdown(64, 2048, 64, 96)
	if ratio := t96.Total() / bt; ratio < 20 {
		t.Errorf("max-thread pathology ratio = %v, want >= 20 (paper: ~80)", ratio)
	}
	// Data copy must dominate the 96-thread time (Table VII's key finding).
	if t96.Copy < t96.Kernel || t96.Copy < t96.Sync {
		t.Errorf("copy should dominate at 96 threads: %+v", t96)
	}
}

func TestSetonixSpeedupExceedsGadi(t *testing.T) {
	// Headline: the 128-core platform gains more from thread selection than
	// the 48-core one (1.41× vs 1.26× at ≤100 MB). Check on a moderate shape.
	check := func(s *Simulator, ref int) float64 {
		_, bt := optimal(s, 700, 700, 700)
		return s.Breakdown(700, 700, 700, ref).Total() / bt
	}
	gadi := check(gadiSim(), 48)
	set := check(setonixSim(), 128)
	if set <= 1 || gadi <= 0.5 {
		t.Errorf("implausible speedups: setonix %v gadi %v", set, gadi)
	}
}

func TestAffinityCoreBeatsThreadAtLowCounts(t *testing.T) {
	// Fig 7: below half the hardware threads, core-based affinity wins.
	node := machine.Gadi()
	mk := func(pol machine.AffinityPolicy) *Simulator {
		cfg := DefaultConfig(node)
		cfg.NoiseSigma = 0
		cfg.Policy = pol
		return New(cfg)
	}
	core, thread := mk(machine.CoreBased), mk(machine.ThreadBased)
	m, k, n := 2000, 2000, 2000
	for _, p := range []int{8, 16, 24, 40} {
		tc := core.Breakdown(m, k, n, p).Total()
		tt := thread.Breakdown(m, k, n, p).Total()
		if tc >= tt {
			t.Errorf("p=%d: core-based %v not faster than thread-based %v", p, tc, tt)
		}
	}
	// At full occupancy both policies place identically.
	tc := core.Breakdown(m, k, n, 96).Total()
	tt := thread.Breakdown(m, k, n, 96).Total()
	if math.Abs(tc-tt)/tc > 1e-9 {
		t.Errorf("p=96: policies should agree: %v vs %v", tc, tt)
	}
}

func TestHyperThreadingBounds(t *testing.T) {
	node := machine.Setonix()
	cfg := DefaultConfig(node)
	cfg.HT = false
	s := New(cfg)
	if s.MaxThreads() != 128 {
		t.Errorf("no-HT max = %d", s.MaxThreads())
	}
	cfg.HT = true
	if New(cfg).MaxThreads() != 256 {
		t.Error("HT max should be 256")
	}
}

func TestEffectiveThreadsThrottle(t *testing.T) {
	s := gadiSim()
	// Tiny problem: 2·4·4·4 = 128 flops → 1 thread regardless of request.
	if got := s.EffectiveThreads(4, 4, 4, 96); got != 1 {
		t.Errorf("tiny GEMM effective threads = %d, want 1", got)
	}
	// Large problem: no throttle.
	if got := s.EffectiveThreads(4096, 4096, 4096, 96); got != 96 {
		t.Errorf("big GEMM effective threads = %d, want 96", got)
	}
	if got := s.EffectiveThreads(100, 100, 100, -3); got != 1 {
		t.Errorf("negative request = %d, want 1", got)
	}
	// Throttle flattens the time curve: requesting far more threads than
	// the grain admits must cost the same as requesting the cap.
	cap := s.EffectiveThreads(32, 32, 32, 96)
	tAtCap := s.Breakdown(32, 32, 32, cap).Total()
	tAt96 := s.Breakdown(32, 32, 32, 96).Total()
	if tAtCap != tAt96 {
		t.Errorf("throttle leak: %v vs %v", tAtCap, tAt96)
	}
}

func TestNoiseStatistics(t *testing.T) {
	cfg := DefaultConfig(machine.Gadi())
	cfg.NoiseSigma = 0.05
	s := New(cfg)
	base := s.Breakdown(512, 512, 512, 16).Total()
	var sum float64
	const reps = 400
	for r := 0; r < reps; r++ {
		v := s.TimeRep(512, 512, 512, 16, r)
		if v <= 0 {
			t.Fatalf("rep %d: non-positive time", r)
		}
		sum += v
	}
	mean := sum / reps
	if math.Abs(mean-base)/base > 0.02 {
		t.Errorf("noisy mean %v deviates from base %v", mean, base)
	}
	// Determinism: same rep gives same draw.
	if s.TimeRep(512, 512, 512, 16, 3) != s.TimeRep(512, 512, 512, 16, 3) {
		t.Error("noise not deterministic")
	}
	// Different reps give different draws.
	if s.TimeRep(512, 512, 512, 16, 1) == s.TimeRep(512, 512, 512, 16, 2) {
		t.Error("noise constant across reps")
	}
}

func TestMeasureMeanMatchesManualAverage(t *testing.T) {
	cfg := DefaultConfig(machine.Setonix())
	cfg.NoiseSigma = 0.04
	s := New(cfg)
	var manual float64
	for r := 0; r < 10; r++ {
		manual += s.TimeRep(300, 300, 300, 8, r)
	}
	manual /= 10
	if got := s.MeasureMean(300, 300, 300, 8, 10); got != manual {
		t.Errorf("MeasureMean = %v, manual = %v", got, manual)
	}
	if got := s.MeasureMean(300, 300, 300, 8, 0); got <= 0 {
		t.Error("iters<1 should clamp to 1")
	}
}

func TestGFLOPSBelowPeak(t *testing.T) {
	s := setonixSim()
	peak := machine.Setonix().PeakGFLOPS(true)
	for _, p := range []int{1, 16, 64, 128, 256} {
		g := s.GFLOPS(4096, 4096, 4096, p)
		if g <= 0 || g > peak {
			t.Errorf("p=%d: GFLOPS %v outside (0, %v]", p, g, peak)
		}
	}
}

func TestPrecisionF64Slower(t *testing.T) {
	cfg := DefaultConfig(machine.Gadi())
	cfg.NoiseSigma = 0
	f32 := New(cfg)
	cfg.Precision = F64
	f64 := New(cfg)
	t32 := f32.Breakdown(2048, 2048, 2048, 48).Total()
	t64 := f64.Breakdown(2048, 2048, 2048, 48).Total()
	if t64 <= t32 {
		t.Errorf("DGEMM %v not slower than SGEMM %v", t64, t32)
	}
	if F32.Bytes() != 4 || F64.Bytes() != 8 {
		t.Error("Precision.Bytes wrong")
	}
}

// Property: time is positive and finite over the whole request space.
func TestTimePositiveProperty(t *testing.T) {
	s := gadiSim()
	f := func(mr, kr, nr uint16, pr uint8) bool {
		m, k, n := 1+int(mr%8192), 1+int(kr%8192), 1+int(nr%8192)
		p := 1 + int(pr%96)
		v := s.Breakdown(m, k, n, p).Total()
		return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRealTimerRuns(t *testing.T) {
	rt := NewRealTimer(2)
	t1 := rt.Time(64, 64, 64, 1)
	if t1 <= 0 {
		t.Fatalf("real time = %v", t1)
	}
	// Bigger problem must take longer (same thread count).
	t2 := rt.Time(256, 256, 256, 1)
	if t2 <= t1 {
		t.Errorf("256³ (%v) not slower than 64³ (%v)", t2, t1)
	}
	// Operand cache: repeated shape reuses buffers (no crash, sane value).
	if again := rt.Time(64, 64, 64, 2); again <= 0 {
		t.Error("cached-shape timing failed")
	}
	if NewRealTimer(0).Iters != 1 {
		t.Error("iters clamp failed")
	}
}

// TestRealTimerRepetitionCount pins the repetition accounting: Time runs
// exactly Iters GEMMs and MeasureMean exactly its iters argument —
// MeasureMean must not additionally multiply by the constructor's Iters
// (the iters² bug the core gather regression test guards end to end).
func TestRealTimerRepetitionCount(t *testing.T) {
	rt := NewRealTimer(3)
	if rt.Time(16, 16, 16, 1); rt.GemmCalls() != 3 {
		t.Errorf("Time ran %d GEMMs, want Iters=3", rt.GemmCalls())
	}
	before := rt.GemmCalls()
	if rt.MeasureMean(16, 16, 16, 1, 5); rt.GemmCalls()-before != 5 {
		t.Errorf("MeasureMean(iters=5) ran %d GEMMs, want 5", rt.GemmCalls()-before)
	}
	before = rt.GemmCalls()
	if rt.MeasureMean(16, 16, 16, 1, 0); rt.GemmCalls()-before != 1 {
		t.Errorf("MeasureMean(iters=0) ran %d GEMMs, want clamp to 1", rt.GemmCalls()-before)
	}
}
