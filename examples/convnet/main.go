// Convnet: the paper's motivating workload (§I) — convolution layers lowered
// to GEMM produce small and irregular shapes (e.g. ResNet's 64×3000-style
// operands) for which max-thread BLAS is far from optimal. This example
// replays the im2col GEMM stream of a ResNet-like network on the simulated
// Gadi node and compares default max-thread execution against ADSALA.
//
//	go run ./examples/convnet
package main

import (
	"fmt"
	"log"

	adsala "repro"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/tabulate"
)

// layer is one conv layer lowered to GEMM: C(filters × pixels) =
// W(filters × patch) · X(patch × pixels).
type layer struct {
	name    string
	filters int // m
	patch   int // k = in_channels * kh * kw
	pixels  int // n = out_h * out_w * batch
}

// resnetLayers approximates the GEMM shapes of a ResNet-18 forward pass at
// batch size 1 — latency-bound inference, where every GEMM is small or
// irregular (the shapes the paper's introduction cites).
func resnetLayers() []layer {
	return []layer{
		{"conv1 7x7/2", 64, 147, 12544},
		{"conv2.x 3x3", 64, 576, 3136},
		{"conv3.1 3x3/2", 128, 1152, 784},
		{"conv3.x 3x3", 128, 1152, 784},
		{"conv4.1 3x3/2", 256, 2304, 196},
		{"conv4.x 3x3", 256, 2304, 196},
		{"conv5.1 3x3/2", 512, 4608, 49},
		{"conv5.x 3x3", 512, 4608, 49},
		{"fc", 1000, 512, 1},
	}
}

func main() {
	log.SetFlags(0)
	fmt.Println("== ADSALA on a ResNet-like im2col GEMM stream (simulated Gadi) ==")
	lib, _, err := adsala.Train(adsala.TrainOptions{
		Platform: "Gadi", Shapes: 120, Quick: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	node := machine.Gadi()
	sim := simtime.New(simtime.DefaultConfig(node))
	const defaultThreads = 48 // one thread per physical core
	const repeats = 10        // forward passes; the shape cache amortises eval

	tb := tabulate.New("layer", "m", "k", "n", "default us", "ml threads", "adsala us", "speedup")
	var totDefault, totML float64
	pred := libPredictor(lib)
	for _, l := range resnetLayers() {
		tDef := sim.MeasureMean(l.filters, l.patch, l.pixels, defaultThreads, 3) * repeats
		threads := pred.OptimalThreads(l.filters, l.patch, l.pixels)
		tML := sim.MeasureMean(l.filters, l.patch, l.pixels, threads, 3)*repeats + lib.EvalLatency()
		totDefault += tDef
		totML += tML
		tb.Row(l.name, tabulate.D(l.filters), tabulate.D(l.patch), tabulate.D(l.pixels),
			tabulate.F(tDef*1e6, 1), tabulate.D(threads), tabulate.F(tML*1e6, 1),
			tabulate.F(tDef/tML, 2))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nnetwork GEMM time over %d passes: default %.2f ms, ADSALA %.2f ms — %.2fx speedup\n",
		repeats, totDefault*1e3, totML*1e3, totDefault/totML)
	fmt.Println("(one model evaluation per distinct layer shape; repeats hit the cache)")
}

// libPredictor exposes the cached predictor of a facade library for the
// simulation-side comparison.
func libPredictor(lib *adsala.Library) *core.Predictor {
	return lib.Predictor()
}
