package blas

import (
	"fmt"
	"sync"

	"repro/internal/mat"
)

// SSYRK computes the symmetric rank-k update C ← alpha·A·Aᵀ + beta·C
// (trans=false) or C ← alpha·Aᵀ·A + beta·C (trans=true), updating only the
// lower triangle of C and mirroring it, using the given number of worker
// goroutines.
//
// SYRK is the first of the paper's future-work targets ("extend our
// ML-driven runtime thread selection approach to other BLAS operations",
// §VII): its cost profile differs from GEMM — half the FLOPs for the same C,
// and triangular load imbalance across the thread team — so a thread-count
// model trained on GEMM timings does not transfer directly.
func SSYRK(trans bool, alpha float32, a *mat.F32, beta float32, c *mat.F32, threads int) error {
	n, k := a.Rows, a.Cols
	if trans {
		n, k = a.Cols, a.Rows
	}
	if c.Rows != n || c.Cols != n {
		return fmt.Errorf("blas: SYRK C is %dx%d, want %dx%d", c.Rows, c.Cols, n, n)
	}
	if threads < 1 {
		threads = 1
	}
	if n == 0 {
		return nil
	}
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	cv := view[float32]{c.Rows, c.Cols, c.Stride, c.Data}

	if alpha == 0 || k == 0 {
		scaleC(cv, beta)
		return nil
	}

	// Row-band parallelisation over the lower triangle: band b owns rows
	// [lo, hi). Bands are sized so each carries a similar number of lower-
	// triangle elements (rows near the bottom are longer), which keeps the
	// triangular load balanced.
	if threads > n {
		threads = n
	}
	bounds := triangularBands(n, threads)
	var wg sync.WaitGroup
	for b := 0; b < threads; b++ {
		lo, hi := bounds[b], bounds[b+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				row := cv.data[i*cv.stride:]
				for j := 0; j <= i; j++ {
					var sum float32
					if trans {
						for p := 0; p < k; p++ {
							sum += av.at(p, i) * av.at(p, j)
						}
					} else {
						for p := 0; p < k; p++ {
							sum += av.at(i, p) * av.at(j, p)
						}
					}
					row[j] = alpha*sum + beta*row[j]
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Mirror the lower triangle into the upper.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cv.data[i*cv.stride+j] = cv.data[j*cv.stride+i]
		}
	}
	return nil
}

// triangularBands returns threads+1 row boundaries splitting the lower
// triangle of an n×n matrix into bands of roughly equal element count.
func triangularBands(n, threads int) []int {
	total := float64(n) * float64(n+1) / 2
	bounds := make([]int, threads+1)
	bounds[threads] = n
	row := 0
	var acc float64
	for b := 1; b < threads; b++ {
		target := total * float64(b) / float64(threads)
		for row < n && acc < target {
			row++
			acc += float64(row)
		}
		bounds[b] = row
	}
	return bounds
}
