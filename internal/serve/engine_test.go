package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

var (
	libOnce sync.Once
	testLib *core.Library
	libErr  error
)

// lib trains one quick simulated-Gadi library shared by the package tests.
func lib(t *testing.T) *core.Library {
	t.Helper()
	libOnce.Do(func() {
		sim := simtime.New(simtime.DefaultConfig(machine.Gadi()))
		gather := core.GatherConfig{
			Timer:      sim,
			Domain:     sampling.DefaultDomain().WithCapMB(100),
			NumShapes:  80,
			Candidates: core.DefaultCandidates(96),
			Iters:      3,
			Seed:       1,
		}
		cfg := core.DefaultTrainConfig(gather, "Gadi", 48)
		cfg.Models = core.DefaultModels(1, true)
		var res *core.TrainResult
		res, libErr = core.Train(cfg)
		if libErr == nil {
			testLib = res.Library
		}
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return testLib
}

// mixedShapes returns n deterministic mixed GEMM shapes.
func mixedShapes(n int) []sampling.Shape {
	sampler, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), 7)
	if err != nil {
		panic(err)
	}
	return sampler.Sample(n)
}

// TestEngineMatchesLibrary verifies the cache never changes a decision:
// every engine answer (cold, cached, batched) equals the uncached
// Library.OptimalThreads ranking.
func TestEngineMatchesLibrary(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 256, Shards: 8})
	shapes := mixedShapes(40)
	want := make([]int, len(shapes))
	for i, sh := range shapes {
		want[i] = l.OptimalThreads(sh.M, sh.K, sh.N)
	}
	for i, sh := range shapes {
		if got := eng.Predict(sh.M, sh.K, sh.N); got != want[i] {
			t.Fatalf("cold %v: engine %d, library %d", sh, got, want[i])
		}
	}
	for i, sh := range shapes { // now served from cache
		if got := eng.Predict(sh.M, sh.K, sh.N); got != want[i] {
			t.Fatalf("cached %v: engine %d, library %d", sh, got, want[i])
		}
	}
	batch := eng.PredictBatch(shapes, nil)
	for i := range shapes {
		if batch[i] != want[i] {
			t.Fatalf("batch %v: engine %d, library %d", shapes[i], batch[i], want[i])
		}
	}
	st := eng.Stats()
	if st.CacheHits == 0 || st.CacheMisses != int64(len(shapes)) {
		t.Errorf("stats: hits %d misses %d, want misses = %d", st.CacheHits, st.CacheMisses, len(shapes))
	}
	if st.HitRate <= 0 || st.HitRate >= 1 {
		t.Errorf("hit rate %v out of (0,1)", st.HitRate)
	}
	if st.MeanEvalMicros <= 0 {
		t.Errorf("mean eval latency %v, want > 0", st.MeanEvalMicros)
	}
}

func TestEngineRankDetail(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{})
	scores, best := eng.Rank(512, 512, 512)
	cands := eng.Candidates()
	if len(scores) != len(cands) {
		t.Fatalf("%d scores for %d candidates", len(scores), len(cands))
	}
	bestIdx := 0
	for i := range scores {
		if scores[i] <= 0 {
			t.Fatalf("candidate %d predicted %v s", cands[i], scores[i])
		}
		if scores[i] < scores[bestIdx] {
			bestIdx = i
		}
	}
	if cands[bestIdx] != best {
		t.Errorf("argmin of scores is %d, Rank chose %d", cands[bestIdx], best)
	}
	if got := l.OptimalThreads(512, 512, 512); got != best {
		t.Errorf("Rank chose %d, library %d", best, got)
	}
}

func TestEngineBatchWorkers(t *testing.T) {
	l := lib(t)
	shapes := mixedShapes(33)
	seq := NewEngine(l, Options{Workers: 1}).PredictBatch(shapes, nil)
	par := NewEngine(l, Options{Workers: 8}).PredictBatch(shapes, nil)
	for i := range shapes {
		if seq[i] != par[i] {
			t.Fatalf("shape %v: sequential %d, parallel %d", shapes[i], seq[i], par[i])
		}
	}
	// Reusing an output slice must not reallocate.
	eng := NewEngine(l, Options{})
	out := make([]int, len(shapes))
	got := eng.PredictBatch(shapes, out)
	if &got[0] != &out[0] {
		t.Error("PredictBatch reallocated a sufficient out slice")
	}
}

// TestEngineBatchDedup verifies that identical shapes within one batch are
// ranked once: a batch of N copies of a cold shape performs exactly one
// model evaluation, and every copy receives the same (correct) decision.
func TestEngineBatchDedup(t *testing.T) {
	l := lib(t)
	base := mixedShapes(4)
	batch := make([]sampling.Shape, 0, 40)
	for i := 0; i < 10; i++ {
		batch = append(batch, base...)
	}
	for _, workers := range []int{1, 8} {
		eng := NewEngine(l, Options{Workers: workers})
		out := eng.PredictBatch(batch, nil)
		for i, sh := range batch {
			if want := l.OptimalThreads(sh.M, sh.K, sh.N); out[i] != want {
				t.Fatalf("workers=%d shape %v: got %d, want %d", workers, sh, out[i], want)
			}
		}
		st := eng.Stats()
		if st.CacheMisses != int64(len(base)) {
			t.Errorf("workers=%d: %d cache misses for %d distinct shapes (dedup not applied)",
				workers, st.CacheMisses, len(base))
		}
		// Counters keep per-request semantics: every served decision counts
		// as a prediction, and batch-local duplicates count as hits.
		if st.Predictions != int64(len(batch)) {
			t.Errorf("workers=%d: predictions = %d, want %d", workers, st.Predictions, len(batch))
		}
		if want := int64(len(batch) - len(base)); st.CacheHits != want {
			t.Errorf("workers=%d: cache hits = %d, want %d", workers, st.CacheHits, want)
		}
	}
	// Order must be preserved when duplicates are interleaved.
	interleaved := []sampling.Shape{base[0], base[1], base[0], base[2], base[1], base[0]}
	eng := NewEngine(l, Options{Workers: 1})
	out := eng.PredictBatch(interleaved, nil)
	for i, sh := range interleaved {
		if want := l.OptimalThreads(sh.M, sh.K, sh.N); out[i] != want {
			t.Fatalf("interleaved %d (%v): got %d, want %d", i, sh, out[i], want)
		}
	}
}

func TestEngineWarmup(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 512})
	dom := sampling.DefaultDomain().WithCapMB(100)
	n, err := eng.Warmup(dom, 100, 7)
	if err != nil || n != 100 {
		t.Fatalf("Warmup = (%d, %v)", n, err)
	}
	if eng.Cache().Len() == 0 {
		t.Fatal("warm-up left the cache empty")
	}
	// The warmed shapes (same domain, same seed) now hit.
	h0, _ := eng.Cache().Stats()
	eng.PredictBatch(mixedShapes(100), nil)
	h1, m1 := eng.Cache().Stats()
	if h1-h0 != 100 {
		t.Errorf("warmed shapes produced %d hits (misses %d), want 100", h1-h0, m1)
	}
	if n, err := eng.Warmup(dom, 0, 1); n != 0 || err != nil {
		t.Errorf("Warmup(0) = (%d, %v)", n, err)
	}
	if _, err := eng.Warmup(sampling.Domain{}, 5, 1); err == nil {
		t.Error("invalid domain should error")
	}
}

// TestShardedThroughputVsMutexPredictor is the tentpole acceptance check:
// with 8 goroutines issuing mixed-shape predictions, the warmed sharded
// cache must deliver at least 5x the throughput of the single-mutex
// core.Predictor, while agreeing on every decision.
func TestShardedThroughputVsMutexPredictor(t *testing.T) {
	l := lib(t)
	shapes := mixedShapes(64)

	const goroutines = 8
	const itersPer = 400

	run := func(choose func(m, k, n int) int) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < itersPer; i++ {
					sh := shapes[(g+i)%len(shapes)]
					choose(sh.M, sh.K, sh.N)
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}

	eng := NewEngine(l, Options{CacheSize: 256, Shards: 16})
	eng.PredictBatch(shapes, nil) // warm the sharded cache
	pred := l.NewPredictor()

	// Decisions must agree exactly before any timing comparison.
	for _, sh := range shapes {
		if e, p := eng.Predict(sh.M, sh.K, sh.N), pred.OptimalThreads(sh.M, sh.K, sh.N); e != p {
			t.Fatalf("shape %v: engine %d, predictor %d", sh, e, p)
		}
	}

	mutexTime := run(pred.OptimalThreads)
	shardedTime := run(eng.Predict)
	ratio := float64(mutexTime) / float64(shardedTime)
	t.Logf("mixed-shape throughput: mutex predictor %v, sharded cache %v (%.0fx)",
		mutexTime, shardedTime, ratio)
	if ratio < 5 {
		t.Errorf("sharded cache only %.1fx faster than the mutex predictor, want >= 5x", ratio)
	}
}
