package blas

// Panel packing. The packed layouts are unchanged from the original kernel —
// packA produces MR-row panels stored p-major, packB produces NR-column
// panels stored p-major — but the copy loops are specialised per transpose
// case so every element moves through a contiguous source-row slice instead
// of a per-element opAt call (bounds-checked, branchy, two multiplies per
// element). Packing is pure data movement, so this is the part of the
// paper's Table VII cost breakdown labelled "data copy".

// packA copies the mc×kc block of op(A) starting at (ic, pc) into buf in
// MR-row panel order: panel 0 holds rows ic..ic+MR-1 stored p-major, padded
// with zeros when mc is not a multiple of MR. This layout lets the
// micro-kernel stream A with unit stride.
func packA[T float32 | float64](a view[T], trans bool, ic, pc, mc, kc int, buf []T, mr int) {
	for i0 := 0; i0 < mc; i0 += mr {
		ib := min(mr, mc-i0)
		panel := buf[(i0/mr)*kc*mr : (i0/mr)*kc*mr+kc*mr]
		if trans {
			// op(A)(i, p) = A(p, i): source rows run along the panel's i
			// axis, so each p step is one contiguous copy of ib elements.
			for p := 0; p < kc; p++ {
				src := a.data[(pc+p)*a.stride+ic+i0 : (pc+p)*a.stride+ic+i0+ib]
				dst := panel[p*mr : p*mr+mr]
				copy(dst, src)
				for i := ib; i < mr; i++ {
					dst[i] = 0
				}
			}
			continue
		}
		// op(A)(i, p) = A(i, p): source rows run along the panel's p axis;
		// read each row contiguously and scatter with stride mr.
		for i := 0; i < ib; i++ {
			src := a.data[(ic+i0+i)*a.stride+pc : (ic+i0+i)*a.stride+pc+kc]
			idx := i
			for _, v := range src {
				panel[idx] = v
				idx += mr
			}
		}
		for i := ib; i < mr; i++ {
			idx := i
			for p := 0; p < kc; p++ {
				panel[idx] = 0
				idx += mr
			}
		}
	}
}

// packBRange packs the NR-column panels [loPanel, hiPanel) of the kc×nc
// block of op(B) starting at (pc, jc) into packed, zero-padding the last
// panel to NR. Workers call it with disjoint panel ranges to split the
// packing phase across the team.
func packBRange[T float32 | float64](b view[T], trans bool, pc, jc, kc, nc, loPanel, hiPanel int, packed []T, nr int) {
	for pn := loPanel; pn < hiPanel; pn++ {
		j0 := pn * nr
		nb := min(nr, nc-j0)
		panel := packed[pn*kc*nr : (pn+1)*kc*nr]
		if trans {
			// op(B)(p, j) = B(j, p): source rows run along the panel's p
			// axis; read each row contiguously and scatter with stride nr.
			for j := 0; j < nb; j++ {
				src := b.data[(jc+j0+j)*b.stride+pc : (jc+j0+j)*b.stride+pc+kc]
				idx := j
				for _, v := range src {
					panel[idx] = v
					idx += nr
				}
			}
			for j := nb; j < nr; j++ {
				idx := j
				for p := 0; p < kc; p++ {
					panel[idx] = 0
					idx += nr
				}
			}
			continue
		}
		// op(B)(p, j) = B(p, j): each p step is one contiguous copy of nb
		// elements.
		for p := 0; p < kc; p++ {
			src := b.data[(pc+p)*b.stride+jc+j0 : (pc+p)*b.stride+jc+j0+nb]
			dst := panel[p*nr : p*nr+nr]
			copy(dst, src)
			for j := nb; j < nr; j++ {
				dst[j] = 0
			}
		}
	}
}
