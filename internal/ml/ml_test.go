package ml

import (
	"math"
	"testing"
)

type constModel struct {
	V float64 `json:"v"`
}

func (c *constModel) Name() string                         { return "Const" }
func (c *constModel) Fit(X [][]float64, y []float64) error { return nil }
func (c *constModel) Predict(x []float64) float64          { return c.V }

func init() { RegisterKind("const-test", func() Regressor { return &constModel{} }) }

func TestMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	y := []float64{1, 2, 5}
	if got := RMSE(pred, y); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAE(pred, y); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if got := R2(y, y); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	if got := R2([]float64{2, 2, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("mean-predictor R2 = %v, want 0", got)
	}
	if RMSE(nil, nil) != 0 || MAE(nil, nil) != 0 || R2(nil, nil) != 0 {
		t.Error("empty metrics should be 0")
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"RMSE": func() { RMSE([]float64{1}, []float64{1, 2}) },
		"MAE":  func() { MAE([]float64{1}, []float64{1, 2}) },
		"R2":   func() { R2([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestValidateXY(t *testing.T) {
	if err := ValidateXY(nil, nil); err == nil {
		t.Error("empty X should error")
	}
	if err := ValidateXY([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if err := ValidateXY([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-width rows should error")
	}
	if err := ValidateXY([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	if err := ValidateXY([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Errorf("valid data rejected: %v", err)
	}
}

func TestNormalise(t *testing.T) {
	out := Normalise(map[string]float64{"a": 1, "b": 4, "c": 2})
	if out["b"] != 1 || out["a"] != 0.25 || out["c"] != 0.5 {
		t.Errorf("Normalise = %v", out)
	}
	zero := Normalise(map[string]float64{"a": 0})
	if zero["a"] != 0 {
		t.Errorf("all-zero Normalise = %v", zero)
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames(map[string]int{"z": 1, "a": 2, "m": 3})
	if names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Errorf("SortedNames = %v", names)
	}
}

func TestPredictBatch(t *testing.T) {
	m := &constModel{V: 7}
	out := PredictBatch(m, [][]float64{{1}, {2}, {3}})
	if len(out) != 3 || out[0] != 7 || out[2] != 7 {
		t.Errorf("PredictBatch = %v", out)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	m := &constModel{V: 3.5}
	blob, err := Marshal("const-test", m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Predict(nil); got != 3.5 {
		t.Errorf("restored Predict = %v, want 3.5", got)
	}
}

func TestPersistenceErrors(t *testing.T) {
	if _, err := Marshal("never-registered", &constModel{}); err == nil {
		t.Error("unregistered kind should error")
	}
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Error("corrupt envelope should error")
	}
	if _, err := Unmarshal([]byte(`{"kind":"nope","model":{}}`)); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestRegisterKindDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	RegisterKind("const-test", func() Regressor { return &constModel{} })
}
