package trace

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ops"
)

// collect scans a prefix and returns copies of every record.
func collect(t *testing.T, prefix string) ([]Record, ScanStats) {
	t.Helper()
	files, err := Files(prefix)
	if err != nil {
		t.Fatalf("Files: %v", err)
	}
	var out []Record
	st, err := ScanFiles(files, func(r *Record) error {
		out = append(out, *r)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanFiles: %v", err)
	}
	return out, st
}

func testRecord(i int) Record {
	return Record{
		TS:          int64(i) * 1500,
		PredictedNs: int64(1000 + i),
		MeasuredNs:  int64(i % 3 * 900),
		M:           int32(64 + i),
		K:           int32(32 + i),
		N:           int32(16 + i),
		Threads:     int32(1 + i%96),
		Op:          ops.Op(i % 3),
		Flags:       uint8(i % 16),
	}
}

// TestWriterRoundTrip pins that everything appended comes back verbatim,
// across multiple blocks.
func TestWriterRoundTrip(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	w, err := NewWriter(prefix, time.Now(), WriterOptions{BlockBytes: 256})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	const n = 500
	want := make([]Record, n)
	for i := range want {
		want[i] = testRecord(i)
		if err := w.Append(&want[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, st := collect(t, prefix)
	if len(got) != n {
		t.Fatalf("decoded %d records, want %d", len(got), n)
	}
	if st.DroppedBlocks != 0 || st.DroppedBytes != 0 {
		t.Fatalf("clean trace reported drops: %+v", st)
	}
	if st.Blocks < 2 {
		t.Fatalf("expected multiple blocks with BlockBytes=256, got %d", st.Blocks)
	}
	for i, r := range got {
		if r != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, r, want[i])
		}
	}
}

// TestWriterRotation pins size-based rotation and that a restarted writer
// continues after the highest existing index instead of clobbering.
func TestWriterRotation(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	w, err := NewWriter(prefix, time.Now(), WriterOptions{BlockBytes: 128, MaxFileBytes: 512})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if err := w.Append(&rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, err := Files(prefix)
	if err != nil {
		t.Fatalf("Files: %v", err)
	}
	if len(files) < 2 {
		t.Fatalf("expected rotation to produce multiple files, got %v", files)
	}
	got, _ := collect(t, prefix)
	if len(got) != n {
		t.Fatalf("decoded %d records across %d files, want %d", len(got), len(files), n)
	}

	// Restart on the same prefix: must not clobber, must extend the sequence.
	w2, err := NewWriter(prefix, time.Now(), WriterOptions{})
	if err != nil {
		t.Fatalf("NewWriter (restart): %v", err)
	}
	rec := testRecord(0)
	if err := w2.Append(&rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files2, _ := Files(prefix)
	if len(files2) != len(files)+1 {
		t.Fatalf("restart produced %d files, want %d", len(files2), len(files)+1)
	}
	got2, _ := collect(t, prefix)
	if len(got2) != n+1 {
		t.Fatalf("decoded %d records after restart, want %d", len(got2), n+1)
	}
}

// TestRecorderConcurrent hammers the ring from several producers and checks
// accounting: accepted records all land on disk, accepted+dropped equals
// what was offered.
func TestRecorderConcurrent(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	r, err := Open(prefix, Options{RingSize: 1 << 12})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const (
		producers = 8
		each      = 5000
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(testRecord(p*each + i))
			}
		}(p)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	accepted, dropped := r.Records(), r.Dropped()
	if accepted+dropped != producers*each {
		t.Fatalf("accepted %d + dropped %d != offered %d", accepted, dropped, producers*each)
	}
	got, st := collect(t, prefix)
	if int64(len(got)) != accepted {
		t.Fatalf("disk has %d records, recorder accepted %d", len(got), accepted)
	}
	if st.DroppedBlocks != 0 {
		t.Fatalf("clean trace reported dropped blocks: %+v", st)
	}
	// Timestamps must be monotone non-decreasing after the clamped-delta
	// encoding, even if producers raced.
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("timestamp regression at %d: %d < %d", i, got[i].TS, got[i-1].TS)
		}
	}
}

// TestRecorderBackpressure pins drop-don't-block: with a tiny ring and a
// stalled drain (huge flush interval keeps it polling but the test floods
// faster than 2ms polls can drain), Record never blocks and drops are
// counted.
func TestRecorderBackpressure(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	r, err := Open(prefix, Options{RingSize: 16, FlushInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const offered = 100000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < offered; i++ {
			r.Record(testRecord(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Record blocked under backpressure")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if r.Records()+r.Dropped() != offered {
		t.Fatalf("accepted %d + dropped %d != offered %d", r.Records(), r.Dropped(), offered)
	}
	got, _ := collect(t, prefix)
	if int64(len(got)) != r.Records() {
		t.Fatalf("disk has %d records, recorder accepted %d", len(got), r.Records())
	}
}

// TestRecorderFlush pins that Flush makes accepted records durable without
// closing the recorder.
func TestRecorderFlush(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	r, err := Open(prefix, Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	for i := 0; i < 10; i++ {
		r.Record(testRecord(i))
	}
	r.Flush()
	got, _ := collect(t, prefix)
	if len(got) != 10 {
		t.Fatalf("after Flush disk has %d records, want 10", len(got))
	}
	if r.BytesWritten() <= int64(headerLen) {
		t.Fatalf("BytesWritten = %d, want > header", r.BytesWritten())
	}
}

// TestFilesAcceptsSingleFile pins that tools can pass either a prefix or a
// concrete trace file path.
func TestFilesAcceptsSingleFile(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "cap")
	w, err := NewWriter(prefix, time.Now(), WriterOptions{})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	rec := testRecord(1)
	if err := w.Append(&rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	byPrefix, err := Files(prefix)
	if err != nil || len(byPrefix) != 1 {
		t.Fatalf("Files(prefix) = %v, %v", byPrefix, err)
	}
	byPath, err := Files(byPrefix[0])
	if err != nil || len(byPath) != 1 || byPath[0] != byPrefix[0] {
		t.Fatalf("Files(path) = %v, %v", byPath, err)
	}
}
