package obs

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWindowedMomentsMergeEqualsWhole pins the merge contract: observations
// spread across every sub-window of one live window aggregate, via the
// per-slot reconstruction and Moments.Merge, to the same statistics as one
// flat Moments over the same values — up to floating-point rounding.
func TestWindowedMomentsMergeEqualsWhole(t *testing.T) {
	const slots = 8
	w := NewWindowedMoments(8*time.Second, slots)
	rng := rand.New(rand.NewSource(7))
	var whole Moments
	// Timestamps walk forward through all 8 sub-windows (no eviction:
	// everything stays inside the window ending at the last timestamp).
	var last int64
	for i := 0; i < 4000; i++ {
		ts := int64(i) * (8 * int64(time.Second)) / 4000
		x := rng.NormFloat64()*3 + 1.5
		w.Add(ts, x)
		whole.Add(x)
		last = ts
	}
	got := w.MomentsAt(last)
	if got.Count() != whole.Count() {
		t.Fatalf("count: got %d, want %d", got.Count(), whole.Count())
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}
	approx("mean", got.Mean(), whole.Mean())
	approx("std", got.Std(), whole.Std())
	approx("min", got.Min(), whole.Min())
	approx("max", got.Max(), whole.Max())
}

// TestWindowedMomentsEviction pins eviction: once timestamps advance past
// the window, old sub-windows drop out of the aggregate — first partially
// (slot by slot), then entirely.
func TestWindowedMomentsEviction(t *testing.T) {
	slot := int64(time.Second)
	w := NewWindowedMoments(4*time.Second, 4)

	// One observation per sub-window: values 1, 2, 3, 4 at t = 0s..3s.
	for i := 0; i < 4; i++ {
		w.Add(int64(i)*slot, float64(i+1))
	}
	m := w.MomentsAt(3 * slot)
	if m.Count() != 4 || m.Min() != 1 || m.Max() != 4 {
		t.Fatalf("pre-eviction: count=%d min=%v max=%v, want 4/1/4", m.Count(), m.Min(), m.Max())
	}

	// Advance the read point one sub-window: the t=0 slot (value 1) expires.
	m = w.MomentsAt(4 * slot)
	if m.Count() != 3 || m.Min() != 2 {
		t.Fatalf("after one slot expiry: count=%d min=%v, want 3/2", m.Count(), m.Min())
	}

	// A new observation at t=4s recycles the expired slot in place.
	w.Add(4*slot, 5)
	m = w.MomentsAt(4 * slot)
	if m.Count() != 4 || m.Max() != 5 || m.Min() != 2 {
		t.Fatalf("after recycle: count=%d min=%v max=%v, want 4/2/5", m.Count(), m.Min(), m.Max())
	}

	// Far future: everything expired.
	m = w.MomentsAt(100 * slot)
	if m.Count() != 0 {
		t.Fatalf("after full expiry: count=%d, want 0", m.Count())
	}

	// A stale observation (older than the window at the time its ring slot
	// was last recycled) is dropped, not resurrected.
	w.Add(100*slot, 9)
	w.Add(96*slot, 123) // same ring position as t=100s, 4 slots older
	m = w.MomentsAt(100 * slot)
	if m.Count() != 1 || m.Max() != 9 {
		t.Fatalf("stale add leaked in: count=%d max=%v, want 1/9", m.Count(), m.Max())
	}
}

// TestWindowedMomentsHammer races concurrent Adds (with advancing
// timestamps crossing sub-window boundaries) against concurrent snapshots,
// under -race in CI. Correctness checks are necessarily loose — boundary
// races may drop observations by design — but the aggregate must stay
// internally sane and never exceed what was added.
func TestWindowedMomentsHammer(t *testing.T) {
	w := NewWindowedMoments(time.Second, 4)
	var clock atomic.Int64 // shared fake clock, advanced by the adders
	var added atomic.Int64
	const (
		adders  = 4
		perG    = 5000
		tick    = int64(time.Second) / 10000
		loBound = -1.0
		hiBound = 2.0
	)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // snapshot reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := w.MomentsAt(clock.Load())
			if n := m.Count(); n > 0 {
				if n > added.Load() {
					t.Errorf("snapshot counted %d > %d added", n, added.Load())
					return
				}
				if m.Min() < loBound || m.Max() > hiBound {
					t.Errorf("snapshot range [%v, %v] escaped [%v, %v]", m.Min(), m.Max(), loBound, hiBound)
					return
				}
			}
		}
	}()
	var addWG sync.WaitGroup
	for g := 0; g < adders; g++ {
		addWG.Add(1)
		go func(g int) {
			defer addWG.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				ts := clock.Add(tick)
				added.Add(1)
				w.Add(ts, loBound+rng.Float64()*(hiBound-loBound))
			}
		}(g)
	}
	addWG.Wait()
	close(stop)
	readerWG.Wait()

	m := w.MomentsAt(clock.Load())
	if m.Count() > added.Load() {
		t.Fatalf("final count %d > %d added", m.Count(), added.Load())
	}
	if m.Count() > 0 && (m.Min() < loBound || m.Max() > hiBound) {
		t.Fatalf("final range [%v, %v] escaped [%v, %v]", m.Min(), m.Max(), loBound, hiBound)
	}
}

// TestWindowedMomentsAddZeroAlloc pins the hot-path contract: Add is
// allocation-free once constructed.
func TestWindowedMomentsAddZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	w := NewWindowedMoments(time.Second, 8)
	var ts int64
	if n := testing.AllocsPerRun(500, func() {
		ts += int64(time.Millisecond)
		w.Add(ts, 0.25)
	}); n != 0 {
		t.Errorf("Add allocates %.1f/op, want 0", n)
	}
}

// TestWindowedMomentsDefaults pins the constructor clamps.
func TestWindowedMomentsDefaults(t *testing.T) {
	w := NewWindowedMoments(0, 0)
	if w.Slots() != 8 {
		t.Errorf("default slots = %d, want 8", w.Slots())
	}
	if w.WindowNanos() != time.Minute.Nanoseconds() {
		t.Errorf("default window = %dns, want 1m", w.WindowNanos())
	}
	if w := NewWindowedMoments(time.Second, -3); w.Slots() != 1 {
		t.Errorf("negative slots clamp = %d, want 1", w.Slots())
	}
}
