// Serving: train a quick library, stand up the prediction-serving subsystem
// (sharded decision cache + HTTP API), and drive it like a multi-tenant
// client — single queries, a mixed-shape batch, and a look at the metrics.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	adsala "repro"
	"repro/internal/sampling"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)

	// 1. Installation (quick mode, simulated Gadi node).
	fmt.Println("== training a quick library for Gadi ==")
	lib, _, err := adsala.Train(adsala.TrainOptions{Platform: "Gadi", Shapes: 120, Quick: true, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected model: %s\n\n", lib.ModelKind())

	// 2. Build the engine, warm the decision cache from the trained
	// sampling domain, and serve it over HTTP on an ephemeral port.
	eng := lib.Engine(serve.Options{CacheSize: 1024, Shards: 16})
	warmed, err := eng.Warmup(sampling.DefaultDomain().WithCapMB(100), 128, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== warmed %d decisions into the sharded cache ==\n", warmed)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.NewServer(eng)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 3. Single predictions over the wire.
	client := serve.NewClient(base, nil)
	fmt.Println("== /predict ==")
	for _, s := range [][3]int{{64, 64, 64}, {64, 2048, 64}, {4000, 4000, 4000}} {
		threads, err := client.Predict(s[0], s[1], s[2])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5dx%5dx%5d -> %3d threads\n", s[0], s[1], s[2], threads)
	}

	// 4. A mixed-shape batch in one round trip.
	sampler, err := sampling.NewSampler(sampling.DefaultDomain().WithCapMB(100), 42)
	if err != nil {
		log.Fatal(err)
	}
	shapes := sampler.Sample(32)
	start := time.Now()
	threads, err := client.PredictBatch(shapes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== /batch: %d shapes in %v ==\n", len(shapes), time.Since(start).Round(time.Microsecond))
	for i := 0; i < 4; i++ {
		fmt.Printf("  %v -> %d threads\n", shapes[i], threads[i])
	}
	fmt.Printf("  ... and %d more\n", len(shapes)-4)

	// 5. Metrics.
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== /stats ==\n")
	fmt.Printf("  predictions: %d, cache %d/%d entries, hit rate %.0f%%\n",
		st.Engine.Predictions, st.Engine.CacheLen, st.Engine.CacheCap, 100*st.Engine.HitRate)
	fmt.Printf("  mean ranking latency: %.1f us\n", st.Engine.MeanEvalMicros)
	fmt.Printf("  /predict: %d requests, mean %.0f us\n",
		st.HTTP["predict"].Requests, st.HTTP["predict"].MeanMicros)
}
