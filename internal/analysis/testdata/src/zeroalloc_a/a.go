// Package zeroalloc_a exercises the zeroalloc analyzer: every allocating
// construct class, the transitive walk, and the suppression directive.
package zeroalloc_a

import "fmt"

//adsala:zeroalloc
func makesSlice(n int) []int {
	return make([]int, n) // want `makesSlice is //adsala:zeroalloc but make allocates`
}

//adsala:zeroalloc
func news() *int {
	return new(int) // want `new allocates`
}

//adsala:zeroalloc
func appends(dst []int) []int {
	return append(dst, 1) // want `append may grow its backing array`
}

//adsala:zeroalloc
func closes(x int) func() int {
	return func() int { return x } // want `function literal may allocate a closure`
}

//adsala:zeroalloc
func spawns(f func()) {
	go f() // want `go statement allocates a goroutine`
}

//adsala:zeroalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//adsala:zeroalloc
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

type point struct{ x, y int }

//adsala:zeroalloc
func escapes() *point {
	return &point{1, 2} // want `&T{...} composite literal escapes to the heap`
}

//adsala:zeroalloc
func prints(x int) {
	fmt.Println(x) // want `call to fmt.Println allocates`
}

//adsala:zeroalloc
func converts(s string) []byte {
	return []byte(s) // want `string/\[\]byte conversion copies and allocates`
}

//adsala:zeroalloc
func boxes(x int) any {
	return any(x) // want `conversion of int to interface boxes and allocates`
}

func sink(v any) { _ = v }

//adsala:zeroalloc
func boxesArg(x int) {
	sink(x) // want `passing int as interface .* boxes and allocates`
}

func allocHelper(n int) []int {
	return make([]int, n)
}

//adsala:zeroalloc
func callsHelper(n int) []int {
	return allocHelper(n) // want `call to zeroalloc_a.allocHelper allocates: make allocates`
}

// cleanHelper allocates nothing; calling it transitively is fine.
func cleanHelper(a, b int) int { return a*b + a }

//adsala:zeroalloc
func clean(a, b int) int {
	s := 0
	for i := a; i < b; i++ {
		s += cleanHelper(i, a)
	}
	return s
}

// pooledHelper carries a justified suppression: annotated callers trust it.
func pooledHelper(n int) []int {
	//adsala:ignore zeroalloc test fixture: the allocation is justified here
	return make([]int, n)
}

//adsala:zeroalloc
func callsPooled(n int) []int {
	return pooledHelper(n)
}

// boxesPointer passes a pointer-shaped value to an interface parameter:
// no allocation, no finding.
//
//adsala:zeroalloc
func boxesPointer(p *point) {
	sink(p)
}

// boxesConst passes a small constant: the runtime's static boxes make it
// allocation-free.
//
//adsala:zeroalloc
func boxesConst() {
	sink(7)
}
