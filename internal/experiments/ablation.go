package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ops"
	"repro/internal/preprocess"
	"repro/internal/stats"
	"repro/internal/tabulate"
)

// AblationPreproc quantifies the contribution of the preprocessing stack
// (DESIGN.md §5): estimated mean speedup of the shipped XGBoost model with
// the full pipeline vs no Yeo-Johnson/LOF/correlation pruning.
func AblationPreproc(w io.Writer, lab *Lab) error {
	p, _ := PlatformByName("Gadi")
	full, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}
	cfg := core.DefaultTrainConfig(lab.gatherConfig(p, 500, true), p.Name, p.RefThreads)
	cfg.Models = xgbOnly(lab)
	cfg.Preproc = preprocess.Options{LogTarget: true} // no YJ? YJ always applies; disable LOF+pruning
	cfg.Preproc.LOFNeighbours = 0
	cfg.Preproc.CorrThreshold = 0
	bare, err := core.TrainOnData(cfg, full.Data)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: preprocessing stack (Gadi, <= 500 MB, XGBoost)")
	tb := tabulate.New("pipeline", "features kept", "est mean speedup", "est agg speedup")
	fullXGB := reportFor(full.Reports, "xgb")
	bareXGB := reportFor(bare.Reports, "xgb")
	tb.Row("full (YJ+LOF+corr prune)", tabulate.D(len(full.Library.ModelFor(ops.GEMM).Pipeline.Keep)),
		tabulate.F(fullXGB.EstMean, 2), tabulate.F(fullXGB.EstAgg, 2))
	tb.Row("no LOF / no pruning", tabulate.D(len(bare.Library.ModelFor(ops.GEMM).Pipeline.Keep)),
		tabulate.F(bareXGB.EstMean, 2), tabulate.F(bareXGB.EstAgg, 2))
	fmt.Fprint(w, tb.String())
	return nil
}

// AblationFeatures compares the full Table II feature set against Group 1
// (serial terms) alone.
func AblationFeatures(w io.Writer, lab *Lab) error {
	p, _ := PlatformByName("Gadi")
	full, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}

	// Retrain XGBoost with only Group 1 columns by re-deriving the dataset.
	cfg := core.DefaultTrainConfig(lab.gatherConfig(p, 500, true), p.Name, p.RefThreads)
	cfg.Models = xgbOnly(lab)
	g1, err := core.TrainOnDataWithColumns(cfg, full.Data, features.Group1Columns())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: feature groups (Gadi, <= 500 MB, XGBoost)")
	tb := tabulate.New("feature set", "est mean speedup", "norm RMSE")
	fullXGB := reportFor(full.Reports, "xgb")
	g1XGB := reportFor(g1.Reports, "xgb")
	tb.Row("Group 1 + Group 2 (Table II)", tabulate.F(fullXGB.EstMean, 2), tabulate.F(fullXGB.NormRMSE, 2))
	tb.Row("Group 1 only (serial terms)", tabulate.F(g1XGB.EstMean, 2), tabulate.F(g1XGB.NormRMSE, 2))
	fmt.Fprint(w, tb.String())
	fmt.Fprintln(w, "expected: parallel (per-thread) features carry the thread-count signal;")
	fmt.Fprintln(w, "dropping them degrades both accuracy and speedup.")
	return nil
}

// AblationTarget compares the paper's runtime-regression-plus-argmin scheme
// against directly regressing the optimal thread count.
func AblationTarget(w io.Writer, lab *Lab) error {
	p, _ := PlatformByName("Gadi")
	full, err := lab.Train(p, 500, true)
	if err != nil {
		return err
	}
	holdout, err := lab.Holdout(p, 500, true)
	if err != nil {
		return err
	}

	// Direct scheme: one row per shape, target = measured-best thread count.
	direct, err := core.TrainDirectThreadModel(full.Data, lab.Scale.Seed, lab.Scale.QuickModels)
	if err != nil {
		return err
	}

	var runtimeSp, directSp []float64
	for _, st := range holdout {
		ref, ok := st.TimeAt(p.RefThreads)
		if !ok {
			continue
		}
		if t, ok := st.TimeAt(full.Library.OptimalThreads(st.Shape.M, st.Shape.K, st.Shape.N)); ok {
			runtimeSp = append(runtimeSp, ref/t)
		}
		if t, ok := nearestTime(st, direct.Predict(st.Shape.M, st.Shape.K, st.Shape.N)); ok {
			directSp = append(directSp, ref/t)
		}
	}
	fmt.Fprintln(w, "Ablation: prediction target (Gadi, <= 500 MB)")
	tb := tabulate.New("scheme", "mean speedup", "median speedup")
	a, b := stats.Describe(runtimeSp), stats.Describe(directSp)
	tb.Row("runtime regression + argmin (paper)", tabulate.F(a.Mean, 2), tabulate.F(a.Median, 2))
	tb.Row("direct thread-count regression", tabulate.F(b.Mean, 2), tabulate.F(b.Median, 2))
	fmt.Fprint(w, tb.String())
	fmt.Fprintln(w, "the runtime-regression scheme can rank arbitrary candidate sets and is")
	fmt.Fprintln(w, "what §IV-A adopts; direct regression collapses the per-candidate signal.")
	return nil
}

// nearestTime returns the measured time at the candidate closest to want.
func nearestTime(st core.ShapeTimings, want int) (float64, bool) {
	bestDiff := 1 << 30
	var bestSec float64
	found := false
	for _, ct := range st.Times {
		d := ct.Threads - want
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestDiff, bestSec, found = d, ct.Seconds, true
		}
	}
	return bestSec, found
}

func xgbOnly(lab *Lab) []core.ModelSpec {
	specs := core.DefaultModels(lab.Scale.Seed, lab.Scale.QuickModels)
	for _, s := range specs {
		if s.Kind == "xgb" {
			return []core.ModelSpec{s}
		}
	}
	return specs[:1]
}

func reportFor(reports []core.ModelReport, kind string) core.ModelReport {
	for _, r := range reports {
		if r.Kind == kind {
			return r
		}
	}
	return core.ModelReport{}
}
