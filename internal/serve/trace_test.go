package serve

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sampling"
	"repro/internal/trace"
)

// openRecorder attaches a fresh flight recorder to the engine and returns
// it with a collector that flushes and re-reads the capture.
func openRecorder(t *testing.T, e *Engine) (*trace.Recorder, func() []trace.Record) {
	t.Helper()
	prefix := filepath.Join(t.TempDir(), "cap")
	rec, err := trace.Open(prefix, trace.Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatalf("trace.Open: %v", err)
	}
	t.Cleanup(func() { rec.Close() })
	e.SetRecorder(rec)
	return rec, func() []trace.Record {
		rec.Flush()
		files, err := trace.Files(prefix)
		if err != nil {
			t.Fatalf("trace.Files: %v", err)
		}
		var out []trace.Record
		if _, err := trace.ScanFiles(files, func(r *trace.Record) error {
			out = append(out, *r)
			return nil
		}); err != nil {
			t.Fatalf("ScanFiles: %v", err)
		}
		return out
	}
}

// TestEngineTraceFlags pins what each decision path records: a miss carries
// the model's predicted ns and no flags, a hit carries FlagCacheHit, a
// fallback FlagFallback, and the recorded (op, shape, threads) match the
// answers the engine returned.
func TestEngineTraceFlags(t *testing.T) {
	e := NewEngine(lib(t), Options{})
	_, collect := openRecorder(t, e)

	missThreads := e.PredictOp(OpGEMM, 512, 256, 384)
	hitThreads := e.PredictOp(OpGEMM, 512, 256, 384)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired context forces the heuristic fallback on a miss
	fbThreads, fb := e.PredictOpCtx(ctx, OpGEMM, 100, 100, 100)
	if !fb {
		t.Fatal("expected a fallback decision from the cancelled context")
	}
	e.RecordMeasured(OpGEMM, 512, 256, 384, missThreads, 4242)

	recs := collect()
	if len(recs) != 4 {
		t.Fatalf("captured %d records, want 4: %+v", len(recs), recs)
	}
	miss, hit, fall, meas := recs[0], recs[1], recs[2], recs[3]

	if miss.Flags != 0 {
		t.Errorf("miss flags = %b, want 0", miss.Flags)
	}
	if miss.PredictedNs <= 0 {
		t.Errorf("miss PredictedNs = %d, want > 0 (model ranking ran)", miss.PredictedNs)
	}
	if int(miss.Threads) != missThreads || miss.M != 512 || miss.K != 256 || miss.N != 384 {
		t.Errorf("miss record %+v disagrees with answer %d", miss, missThreads)
	}

	if hit.Flags != trace.FlagCacheHit {
		t.Errorf("hit flags = %b, want FlagCacheHit", hit.Flags)
	}
	if hit.PredictedNs != 0 {
		t.Errorf("hit PredictedNs = %d, want 0 (no ranking ran)", hit.PredictedNs)
	}
	if int(hit.Threads) != hitThreads {
		t.Errorf("hit record threads %d disagrees with answer %d", hit.Threads, hitThreads)
	}

	if fall.Flags != trace.FlagFallback {
		t.Errorf("fallback flags = %b, want FlagFallback", fall.Flags)
	}
	if int(fall.Threads) != fbThreads {
		t.Errorf("fallback record threads %d disagrees with answer %d", fall.Threads, fbThreads)
	}

	if meas.Flags != trace.FlagMeasured || meas.IsDecision() {
		t.Errorf("measurement flags = %b, want FlagMeasured", meas.Flags)
	}
	if meas.MeasuredNs != 4242 || int(meas.Threads) != missThreads {
		t.Errorf("measurement record mangled: %+v", meas)
	}

	// Timestamps are monotone within the capture.
	for i := 1; i < len(recs); i++ {
		if recs[i].TS < recs[i-1].TS {
			t.Errorf("timestamp regression at record %d", i)
		}
	}
}

// TestEngineTraceWarmupFlagged pins the satellite contract: Warmup traffic
// is flagged in the trace (matching the /stats exclusion), and real serving
// decisions recorded after the warm pass are not.
func TestEngineTraceWarmupFlagged(t *testing.T) {
	e := NewEngine(lib(t), Options{})
	_, collect := openRecorder(t, e)

	dom := sampling.DefaultDomain().WithCapMB(100)
	warmed, err := e.Warmup(dom, 16, 3, OpGEMM)
	if err != nil {
		t.Fatalf("Warmup: %v", err)
	}
	if warmed == 0 {
		t.Fatal("Warmup warmed nothing")
	}
	e.PredictOp(OpGEMM, 512, 256, 384) // real traffic after the warm pass

	// The warm pass dedups shapes batch-locally, so it records one decision
	// per unique shape (≤ warmed); the final record is the serving call.
	recs := collect()
	if len(recs) < 2 || len(recs) > warmed+1 {
		t.Fatalf("captured %d records, want 2..%d", len(recs), warmed+1)
	}
	for i, r := range recs[:len(recs)-1] {
		if !r.IsWarmup() {
			t.Fatalf("warm-pass record %d not flagged: %+v", i, r)
		}
	}
	if last := recs[len(recs)-1]; last.IsWarmup() {
		t.Fatalf("post-warmup serving record flagged as warm-up: %+v", last)
	}
}

// TestEngineTraceDetached pins that detaching the recorder stops recording
// without disturbing serving.
func TestEngineTraceDetached(t *testing.T) {
	e := NewEngine(lib(t), Options{})
	rec, collect := openRecorder(t, e)

	e.PredictOp(OpGEMM, 512, 256, 384)
	e.SetRecorder(nil)
	if e.Recorder() != nil {
		t.Fatal("Recorder() non-nil after detach")
	}
	e.PredictOp(OpGEMM, 128, 128, 128)
	if got := collect(); len(got) != 1 {
		t.Fatalf("captured %d records after detach, want 1", len(got))
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped %d", rec.Dropped())
	}
}
