package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	adsala "repro"
	"repro/internal/serve"
)

var (
	libOnce sync.Once
	libPath string
	libErr  error
)

// savedLibrary trains one quick library and saves it for the daemon tests.
func savedLibrary(t *testing.T) string {
	t.Helper()
	libOnce.Do(func() {
		// Not t.TempDir(): the artefact must outlive the first test that
		// happens to trigger training.
		dir, err := os.MkdirTemp("", "adsala-serve-test")
		if err != nil {
			libErr = err
			return
		}
		lib, _, err := adsala.Train(adsala.TrainOptions{Platform: "Gadi", Shapes: 80, Quick: true, Seed: 3})
		if err != nil {
			libErr = err
			return
		}
		libPath = filepath.Join(dir, "lib.json")
		libErr = lib.Save(libPath)
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return libPath
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-lib", "x.json", "-addr", ":9090", "-warmup", "32", "-cache", "100", "-shards", "3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.libPath != "x.json" || cfg.addr != ":9090" || cfg.warmup != 32 || cfg.cacheSize != 100 || cfg.shards != 3 {
		t.Errorf("parsed %+v", cfg)
	}

	cfg, err = parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.libPath != "adsala.json" || cfg.addr != ":8080" || cfg.cacheSize != 4096 {
		t.Errorf("defaults %+v", cfg)
	}

	for _, bad := range [][]string{
		{"-warmup", "-1"},
		{"-warmup-cap", "0"},
		{"-no-such-flag"},
		{"-warmup", "abc"},
	} {
		if _, err := parseFlags(bad, io.Discard); err == nil {
			t.Errorf("parseFlags(%v) should error", bad)
		}
	}
}

func TestHelpPrintsUsage(t *testing.T) {
	var usage bytes.Buffer
	if _, err := parseFlags([]string{"-h"}, &usage); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("parseFlags(-h) = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(usage.String(), "-lib") || !strings.Contains(usage.String(), "-warmup") {
		t.Errorf("usage text missing flags:\n%s", usage.String())
	}
	// run treats a help request as success.
	usage.Reset()
	if err := run([]string{"--help"}, &usage); err != nil {
		t.Errorf("run(--help) = %v, want nil", err)
	}
	if !strings.Contains(usage.String(), "-addr") {
		t.Errorf("run(--help) printed no usage:\n%s", usage.String())
	}
}

func TestNewServerBadLibrary(t *testing.T) {
	if _, err := newServer(config{libPath: "/does/not/exist.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing library file should error")
	}
}

// TestCacheSnapshotAcrossRestart simulates a daemon restart with
// -cache-snapshot: decisions cached by the first instance are served warm
// by the second.
func TestCacheSnapshotAcrossRestart(t *testing.T) {
	path := savedLibrary(t)
	snap := filepath.Join(t.TempDir(), "decisions.json")
	cfg, err := parseFlags([]string{"-lib", path, "-cache-snapshot", snap}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	srv, err := newServer(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	want := srv.Engine().Predict(320, 640, 320)
	// The daemon's shutdown path saves the snapshot.
	if err := srv.Engine().Cache().Save(snap); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	srv2, err := newServer(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "restored 1 cached decisions") {
		t.Errorf("restore not reported: %q", out.String())
	}
	if got, ok := srv2.Engine().CachedChoice(serve.OpGEMM, 320, 640, 320); !ok || got != want {
		t.Errorf("restored decision = (%d, %v), want (%d, true)", got, ok, want)
	}
	// Serving the restored shape is a cache hit, no ranking.
	if got := srv2.Engine().Predict(320, 640, 320); got != want {
		t.Errorf("restored cache served %d, want %d", got, want)
	}
	if st := srv2.Engine().Stats(); st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Errorf("restored cache did not serve warm: %+v", st)
	}
}

// TestCorruptSnapshotStartsCold pins the robustness satellite: a damaged
// snapshot file must not kill the daemon at boot. It logs a warning, moves
// the corrupt file aside (so the shutdown save cannot be blamed for
// destroying evidence) and serves cold.
func TestCorruptSnapshotStartsCold(t *testing.T) {
	path := savedLibrary(t)
	snap := filepath.Join(t.TempDir(), "decisions.json")
	if err := os.WriteFile(snap, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := parseFlags([]string{"-lib", path, "-cache-snapshot", snap}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	srv, err := newServer(cfg, &out)
	if err != nil {
		t.Fatalf("corrupt snapshot killed the boot: %v", err)
	}
	if !strings.Contains(out.String(), "WARNING") || !strings.Contains(out.String(), "starting cold") {
		t.Errorf("corruption not reported: %q", out.String())
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot still in place (stat err %v)", err)
	}
	if blob, err := os.ReadFile(snap + ".corrupt"); err != nil || string(blob) != "{torn" {
		t.Errorf("corrupt bytes not preserved aside: (%q, %v)", blob, err)
	}
	if st := srv.Engine().Stats(); st.CacheLen != 0 {
		t.Errorf("cache holds %d entries after rejected snapshot", st.CacheLen)
	}
	// The daemon still serves.
	if got := srv.Engine().Predict(64, 64, 64); got < 1 {
		t.Errorf("cold daemon predicted %d", got)
	}
}

// TestReloadFlags pins the new resilience flag surface.
func TestReloadFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-lib", "x.json", "-admin-token", "s3cret", "-reload-on", "SIGHUP",
		"-max-inflight", "32", "-request-timeout", "500ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.adminToken != "s3cret" || cfg.reloadOn != "SIGHUP" || cfg.maxInflight != 32 ||
		cfg.reqTimeout != 500*time.Millisecond {
		t.Errorf("parsed %+v", cfg)
	}
	// HUP normalises; unknown signals error.
	if cfg, err = parseFlags([]string{"-reload-on", "HUP"}, io.Discard); err != nil || cfg.reloadOn != "SIGHUP" {
		t.Errorf("HUP alias: (%+v, %v)", cfg, err)
	}
	if _, err := parseFlags([]string{"-reload-on", "SIGUSR1"}, io.Discard); err == nil {
		t.Error("unsupported reload signal should error")
	}
}

// TestDaemonAdminReload boots the daemon with an admin token, swaps the
// artefact through POST /admin/reload, and checks the generation advances
// while the server keeps answering.
func TestDaemonAdminReload(t *testing.T) {
	path := savedLibrary(t)
	var out bytes.Buffer
	cfg, err := parseFlags([]string{"-lib", path, "-admin-token", "sesame"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := serve.NewClient(ts.URL, nil)

	if _, err := client.Predict(96, 96, 96); err != nil {
		t.Fatal(err)
	}
	h, err := client.Reload(context.Background(), "sesame")
	if err != nil {
		t.Fatal(err)
	}
	if h.Generation != 1 {
		t.Errorf("generation after reload = %d, want 1", h.Generation)
	}
	// Wrong token is rejected.
	if _, err := client.Reload(context.Background(), "wrong"); err == nil {
		t.Error("wrong admin token accepted")
	}
	// Still serving after the swap.
	if _, err := client.Predict(96, 96, 96); err != nil {
		t.Errorf("predict after reload: %v", err)
	}
	if h, err = client.Healthz(); err != nil || h.Generation != 1 || h.Status != "ok" {
		t.Errorf("healthz after reload = (%+v, %v)", h, err)
	}
}

// TestDaemonRoundTrip is the end-to-end integration test of the acceptance
// criteria: the daemon loads a saved library and answers /predict, /batch,
// /stats and /healthz over HTTP.
func TestDaemonRoundTrip(t *testing.T) {
	path := savedLibrary(t)
	var out bytes.Buffer
	cfg, err := parseFlags([]string{"-lib", path, "-warmup", "16", "-cache", "256", "-shards", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warmed 16 decisions") {
		t.Errorf("warm-up not reported: %q", out.String())
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := serve.NewClient(ts.URL, nil)

	lib, err := adsala.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// /healthz
	h, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Platform != "Gadi" {
		t.Errorf("healthz %+v", h)
	}

	// /predict agrees with the loaded library.
	threads, err := client.Predict(256, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	if want := lib.OptimalThreads(256, 1024, 256); threads != want {
		t.Errorf("daemon chose %d, library %d", threads, want)
	}

	// /batch via raw JSON (wire-format check).
	body := `{"shapes":[{"m":64,"k":64,"n":64},{"m":2048,"k":2048,"n":2048}]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch HTTP %d", resp.StatusCode)
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Threads) != 2 {
		t.Fatalf("batch answered %d decisions", len(br.Threads))
	}
	if want := lib.OptimalThreads(2048, 2048, 2048); br.Threads[1] != want {
		t.Errorf("batch chose %d for 2048^3, library %d", br.Threads[1], want)
	}

	// /stats reflects the traffic and the warm-up.
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Serving counters exclude the warm-up pass, which is reported
	// separately.
	if st.Engine.Predictions != 3 { // predict + batch of 2
		t.Errorf("serving predictions %d, want 3", st.Engine.Predictions)
	}
	if st.Engine.WarmupDecisions != 16 {
		t.Errorf("warm-up decisions %d, want 16", st.Engine.WarmupDecisions)
	}
	if st.Engine.CacheLen == 0 {
		t.Error("cache empty after warm-up")
	}
	if st.HTTP["predict"].Requests != 1 || st.HTTP["batch"].Requests != 1 {
		t.Errorf("http stats %+v", st.HTTP)
	}
}
