package adsala

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/simtime"
)

// TestSharedEngineAcrossFacades is the regression test for the split-cache
// bug: NewGemm()/NewSyrk() used to construct a private serve.Engine each,
// so two facades from the same library kept disjoint decision caches and
// their CacheStats never agreed with Library.Engine's /stats. Every facade
// must now observe one cache.
func TestSharedEngineAcrossFacades(t *testing.T) {
	lib, _ := trainQuick(t)
	b := lib.BLAS()
	g := lib.NewGemm()
	s := lib.NewSyrk()
	g.SetMaxLocalThreads(2)

	rng := rand.New(rand.NewSource(9))
	a := NewMatrixF32(16, 16)
	x := NewMatrixF32(16, 16)
	c := NewMatrixF32(16, 16)
	a.FillRandom(rng)
	x.FillRandom(rng)
	for i := 0; i < 5; i++ {
		if err := g.SGEMM(false, false, 1, a, x, 0, c); err != nil {
			t.Fatal(err)
		}
	}
	gh, gm := g.CacheStats()
	if gh < 4 || gm < 1 {
		t.Fatalf("gemm facade stats (%d, %d), want ≥4 hits and ≥1 miss", gh, gm)
	}
	// The other facades and the default engine see the same counters.
	if bh, bm := b.CacheStats(); bh != gh || bm != gm {
		t.Errorf("BLAS facade sees (%d, %d), gemm facade (%d, %d)", bh, bm, gh, gm)
	}
	if sh, sm := s.CacheStats(); sh != gh || sm != gm {
		t.Errorf("syrk facade sees (%d, %d), gemm facade (%d, %d)", sh, sm, gh, gm)
	}
	st := lib.Engine(ServeOptions{}).Stats()
	if st.CacheHits != gh || st.CacheMisses != gm {
		t.Errorf("Library.Engine stats (%d, %d) disagree with facade (%d, %d)",
			st.CacheHits, st.CacheMisses, gh, gm)
	}
	// A decision warmed through one facade is a cached choice for another.
	if got := b.LastChoice(OpGEMM, 16, 16, 16); got < 1 {
		t.Errorf("BLAS.LastChoice after Gemm facade calls = %d, want cached decision", got)
	}
	// Non-zero options still build a private engine.
	if priv := lib.Engine(ServeOptions{CacheSize: 64}); priv == lib.Engine(ServeOptions{}) {
		t.Error("custom-option engine must not be the shared engine")
	}
}

// TestNoHTReachesSimulator pins the TrainOptions.NoHT contract: the flag
// must reach simtime.Config.HT (it disables hyper-threading) and cap the
// candidate thread counts at the physical core count.
func TestNoHTReachesSimulator(t *testing.T) {
	cfg, err := buildConfig(TrainOptions{Platform: "Gadi", NoHT: true})
	if err != nil {
		t.Fatal(err)
	}
	sim, ok := cfg.Gather.Timer.(*simtime.Simulator)
	if !ok {
		t.Fatalf("timer is %T, want *simtime.Simulator", cfg.Gather.Timer)
	}
	if sim.Config().HT {
		t.Error("NoHT: true did not reach simtime.Config.HT = false")
	}
	if max := cfg.Gather.Candidates[len(cfg.Gather.Candidates)-1]; max != 48 {
		t.Errorf("NoHT candidates top out at %d, want Gadi's 48 physical cores", max)
	}
	// Default: hyper-threading on, 96 hardware threads.
	cfg, err = buildConfig(TrainOptions{Platform: "Gadi"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Gather.Timer.(*simtime.Simulator).Config().HT {
		t.Error("default TrainOptions should enable hyper-threading")
	}
	if max := cfg.Gather.Candidates[len(cfg.Gather.Candidates)-1]; max != 96 {
		t.Errorf("default candidates top out at %d, want 96", max)
	}
}

// TestV1ArtefactBackwardCompat loads the committed pre-registry (format v1)
// artefact and pins that GEMM predictions are identical to the decisions
// recorded when it was saved.
func TestV1ArtefactBackwardCompat(t *testing.T) {
	lib, err := Load(filepath.Join("testdata", "v1.adsala.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.TrainedOps(); len(got) != 1 || got[0] != OpGEMM {
		t.Fatalf("v1 artefact trained ops = %v, want [gemm]", got)
	}
	blob, err := os.ReadFile(filepath.Join("testdata", "v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden []struct {
		Shape   [3]int `json:"shape"`
		Threads int    `json:"threads"`
	}
	if err := json.Unmarshal(blob, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty golden file")
	}
	for _, g := range golden {
		if got := lib.OptimalThreads(g.Shape[0], g.Shape[1], g.Shape[2]); got != g.Threads {
			t.Errorf("shape %v: v1 artefact now predicts %d, recorded %d", g.Shape, got, g.Threads)
		}
	}
	// A v1 artefact round-trips through the v2 writer and keeps predicting
	// the same.
	path := filepath.Join(t.TempDir(), "rewritten.adsala.json")
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golden {
		if got := back.OptimalThreads(g.Shape[0], g.Shape[1], g.Shape[2]); got != g.Threads {
			t.Errorf("shape %v: v1→v2 rewrite predicts %d, recorded %d", g.Shape, got, g.Threads)
		}
	}
}

// TestPerOpTrainingThroughPublicAPI trains GEMM + SYRK models and pins that
// the serving path stops borrowing the GEMM model for SYRK.
func TestPerOpTrainingThroughPublicAPI(t *testing.T) {
	lib, rep, err := Train(TrainOptions{
		Platform: "Gadi", Shapes: 40, Quick: true, CapMB: 100,
		Ops: []Op{OpSYRK},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.TrainedOps(); len(got) != 2 || got[0] != OpGEMM || got[1] != OpSYRK {
		t.Fatalf("trained ops = %v, want [gemm syrk]", got)
	}
	if len(rep.PerOp) != 2 || rep.PerOp[1].Op != "syrk" || len(rep.PerOp[1].Rows) == 0 {
		t.Fatalf("per-op report sections missing: %+v", rep.PerOp)
	}
	// The SYRK model prices the triangular cost profile below GEMM's.
	g := lib.PredictRuntimeOp(OpGEMM, 600, 400, 600, 8)
	s := lib.PredictRuntimeOp(OpSYRK, 600, 400, 600, 8)
	if !(s > 0 && s < g) {
		t.Errorf("predicted runtimes gemm=%v syrk=%v, want 0 < syrk < gemm", g, s)
	}
	// End to end: SYR2K executes through the facade (GEMM model fallback)
	// and produces the right numbers.
	b := lib.BLAS()
	b.SetMaxLocalThreads(2)
	rng := rand.New(rand.NewSource(10))
	a := NewMatrixF32(24, 9)
	x := NewMatrixF32(24, 9)
	c := NewMatrixF32(24, 24)
	a.FillRandom(rng)
	x.FillRandom(rng)
	if err := b.SSYR2K(false, 1, a, x, 0, c); err != nil {
		t.Fatal(err)
	}
	var want float32
	for p := 0; p < 9; p++ {
		want += a.At(5, p)*x.At(2, p) + x.At(5, p)*a.At(2, p)
	}
	if d := c.At(5, 2) - want; d > 1e-4 || d < -1e-4 {
		t.Errorf("SYR2K C[5,2] = %v, want %v", c.At(5, 2), want)
	}
	if c.At(2, 5) != c.At(5, 2) {
		t.Error("SYR2K result not symmetric")
	}
	if got := b.LastChoice(OpSYR2K, 24, 9, 24); got < 1 || got > 2 {
		t.Errorf("LastChoice(syr2k) = %d, want clamped selection in [1,2]", got)
	}
	// Per-op bundle round-trips through save/load with per-op decisions.
	path := filepath.Join(t.TempDir(), "bundle.adsala.json")
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []Op{OpGEMM, OpSYRK, OpSYR2K} {
		if a, b := lib.OptimalThreadsOp(op, 512, 256, 512), back.OptimalThreadsOp(op, 512, 256, 512); a != b {
			t.Errorf("op %v decision changed %d -> %d across save/load", op, a, b)
		}
	}
	// The double-precision SYR2K path runs too.
	ad := NewMatrixF64(7, 13)
	xd := NewMatrixF64(7, 13)
	cd := NewMatrixF64(13, 13)
	ad.FillRandom(rng)
	xd.FillRandom(rng)
	if err := b.DSYR2K(true, 2, ad, xd, 0, cd); err != nil {
		t.Fatal(err)
	}
	if cd.At(3, 8) != cd.At(8, 3) {
		t.Error("DSYR2K result not symmetric")
	}
}
