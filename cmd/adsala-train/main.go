// adsala-train runs the ADSALA installation workflow (Fig 2): it gathers
// GEMM timings on the selected platform, preprocesses them, tunes and trains
// the eight candidate models, prints the Table III/IV-style comparison, and
// saves the selected model plus preprocessing configuration to a library
// file for the runtime (Fig 3).
//
// Usage:
//
//	adsala-train -platform Gadi -cap 500 -shapes 300 -out gadi.adsala.json
//	adsala-train -platform local -out local.adsala.json
//	adsala-train -platform Gadi -ops gemm,syrk -out gadi.adsala.json
//
// -ops trains one model per listed operation (GEMM is always trained); the
// artefact stores the per-op bundle in format v2, and the report prints one
// comparison table per op.
package main

import (
	"flag"
	"fmt"
	"log"

	adsala "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-train: ")
	var (
		platform = flag.String("platform", "Gadi", "Setonix, Gadi (simulated) or local")
		capMB    = flag.Int("cap", 0, "memory cap in MB for sampled GEMMs (0 = platform default)")
		shapes   = flag.Int("shapes", 0, "number of sampled shapes (0 = platform default; paper used 1763)")
		iters    = flag.Int("iters", 3, "timing repetitions per configuration (paper: 10)")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "smaller model grids and ensembles")
		noHT     = flag.Bool("no-ht", false, "disable hyper-threading on the simulated platform")
		opsFlag  = flag.String("ops", "gemm", "comma-separated operations to train models for (gemm,syrk,syr2k); gemm is always included")
		out      = flag.String("out", "adsala.json", "output library file")
	)
	flag.Parse()

	trainOps, err := adsala.ParseOps(*opsFlag)
	if err != nil {
		log.Fatal(err)
	}
	lib, report, err := adsala.Train(adsala.TrainOptions{
		Platform: *platform,
		CapMB:    *capMB,
		Shapes:   *shapes,
		Iters:    *iters,
		Seed:     *seed,
		Quick:    *quick,
		NoHT:     *noHT,
		Ops:      trainOps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Model comparison on %s:\n%s\n", lib.Platform(), report)
	fmt.Printf("trained ops: %v\n", lib.TrainedOps())
	fmt.Printf("selected model: %s (eval latency %.1f us)\n",
		lib.ModelKind(), lib.EvalLatency()*1e6)
	if err := lib.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library written to %s\n", *out)
}
