package main

// The GEMM trajectory harness: -gemm-json measures the executed kernel
// (GFLOPS and allocations per shape × thread count) with testing.Benchmark
// and writes a machine-readable report, so kernel performance is tracked
// across changes instead of living in one-off benchmark logs. CI runs a
// 1-iteration smoke of the same harness; committed BENCH_gemm.json files
// record the trajectory per development machine.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
)

// gemmBenchCase is one measured configuration.
type gemmBenchCase struct {
	Name    string `json:"name"`
	M       int    `json:"m"`
	K       int    `json:"k"`
	N       int    `json:"n"`
	Threads int    `json:"threads"`
}

// gemmBenchEntry is one row of the report.
type gemmBenchEntry struct {
	gemmBenchCase
	NsPerOp     float64 `json:"ns_per_op"`
	GFLOPS      float64 `json:"gflops"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// gemmBenchReport is the file layout of BENCH_gemm.json.
type gemmBenchReport struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	Note        string           `json:"note"`
	Baseline    []gemmBenchEntry `json:"baseline,omitempty"`
	Results     []gemmBenchEntry `json:"results"`
}

// seedBaseline pins the pre-overhaul kernel's numbers (commit 63af8e0,
// fork/join team + per-call allocation + rolled 4×4 kernel) measured on the
// same development machine, so the report carries its own before/after.
func seedBaseline() []gemmBenchEntry {
	mk := func(name string, m, k, n, threads int, nsPerOp float64, allocs, bytes int64) gemmBenchEntry {
		return gemmBenchEntry{
			gemmBenchCase: gemmBenchCase{Name: name, M: m, K: k, N: n, Threads: threads},
			NsPerOp:       nsPerOp,
			GFLOPS:        2 * float64(m) * float64(k) * float64(n) / nsPerOp,
			AllocsPerOp:   allocs,
			BytesPerOp:    bytes,
		}
	}
	return []gemmBenchEntry{
		mk("sgemm-64", 64, 64, 64, 1, 195670, 10, 33176),
		mk("sgemm-256", 256, 256, 256, 1, 10274571, 10, 393630),
		mk("sgemm-256-t4", 256, 256, 256, 4, 10258009, 24, 787983),
		mk("sgemm-skinny", 64, 2048, 64, 1, 5381165, 38, 134002),
	}
}

// gemmBenchCases is the measured sweep: the cube sizes the paper's shape
// domain centres on, each at the thread counts a 1–4 core machine can
// express, plus the skinny and small-path shapes.
func gemmBenchCases() []gemmBenchCase {
	var cases []gemmBenchCase
	for _, size := range []int{64, 128, 256, 512} {
		for _, threads := range []int{1, 2, 4} {
			cases = append(cases, gemmBenchCase{
				Name: fmt.Sprintf("sgemm-%d-t%d", size, threads),
				M:    size, K: size, N: size, Threads: threads,
			})
		}
	}
	cases = append(cases,
		gemmBenchCase{Name: "sgemm-skinny-t1", M: 64, K: 2048, N: 64, Threads: 1},
		gemmBenchCase{Name: "sgemm-small-t1", M: 32, K: 32, N: 32, Threads: 1},
	)
	return cases
}

// runGemmBench measures every case and writes the JSON report to path.
// smoke restricts each case to a single iteration (the CI regression guard:
// it exercises the full harness without paying benchmark time).
func runGemmBench(path string, smoke bool) error {
	cases := gemmBenchCases()
	report := gemmBenchReport{
		Schema:      "adsala/bench-gemm/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Note:        "flops = 2*m*k*n; steady-state pooled-context path; baseline = pre-overhaul kernel at commit 63af8e0",
		Baseline:    seedBaseline(),
	}
	if smoke {
		report.Note += "; SMOKE RUN (1 iteration per case, timings not meaningful)"
	}
	for _, bc := range cases {
		rng := rand.New(rand.NewSource(1))
		a := mat.NewF32(bc.M, bc.K)
		b := mat.NewF32(bc.K, bc.N)
		c := mat.NewF32(bc.M, bc.N)
		a.FillRandom(rng)
		b.FillRandom(rng)
		ctx := blas.NewContext()
		// Warm outside the measurement so steady-state allocation is
		// reported (buffers, team, and worker closure are created once).
		if err := ctx.SGEMM(false, false, 1, a, b, 0, c, bc.Threads); err != nil {
			return fmt.Errorf("gemm bench %s: %w", bc.Name, err)
		}
		entry := gemmBenchEntry{gemmBenchCase: bc}
		if !smoke {
			res := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					if err := ctx.SGEMM(false, false, 1, a, b, 0, c, bc.Threads); err != nil {
						tb.Fatal(err)
					}
				}
			})
			entry.NsPerOp = float64(res.T.Nanoseconds()) / float64(res.N)
			entry.GFLOPS = 2 * float64(bc.M) * float64(bc.K) * float64(bc.N) / entry.NsPerOp
			entry.AllocsPerOp = res.AllocsPerOp()
			entry.BytesPerOp = res.AllocedBytesPerOp()
		}
		ctx.Close()
		report.Results = append(report.Results, entry)
		benchLog.Infof("gemm-bench %-16s %8.2f GFLOPS  %3d allocs/op",
			bc.Name, entry.GFLOPS, entry.AllocsPerOp)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
