// Package ignore_a holds a deliberately malformed suppression: the reason
// is mandatory, so the bare directive is itself reported — and it
// suppresses nothing, so the allocation it sits on is still found.
package ignore_a

//adsala:zeroalloc
func alloc(n int) []int {
	//adsala:ignore zeroalloc
	return make([]int, n)
}
