package core

import (
	"repro/internal/ml"
	"repro/internal/ml/boost"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/linear"
	"repro/internal/ml/tree"
	"repro/internal/ml/tune"
)

// ModelSpec describes one candidate model family of Tables III/IV: its
// persistence kind, display name, and a hyper-parameter grid searched by
// cross validation during installation.
type ModelSpec struct {
	Kind string
	Name string
	Grid []tune.Candidate
}

// DefaultModels returns the paper's eight candidate families. quick shrinks
// the grids and ensemble sizes for tests and examples.
func DefaultModels(seed int64, quick bool) []ModelSpec {
	xgbRounds, forestTrees, lgbmRounds, adaRounds := 120, 200, 100, 40
	if quick {
		xgbRounds, forestTrees, lgbmRounds, adaRounds = 30, 20, 20, 10
	}

	specs := []ModelSpec{
		{
			Kind: "linear",
			Name: "Linear Regression",
			Grid: []tune.Candidate{
				{Label: "ols", Factory: func() ml.Regressor { return &linear.Regression{} }},
			},
		},
		{
			Kind: "elasticnet",
			Name: "ElasticNet",
			Grid: []tune.Candidate{
				{Label: "a=0.001", Factory: func() ml.Regressor { return linear.NewElasticNet(0.001, 0.5) }},
				{Label: "a=0.1", Factory: func() ml.Regressor { return linear.NewElasticNet(0.1, 0.5) }},
			},
		},
		{
			Kind: "bayesridge",
			Name: "Bayes Regression",
			Grid: []tune.Candidate{
				{Label: "default", Factory: func() ml.Regressor { return linear.NewBayesianRidge() }},
			},
		},
		{
			Kind: "tree",
			Name: "Decision Tree",
			Grid: []tune.Candidate{
				{Label: "d=8", Factory: func() ml.Regressor { return tree.NewRegressor(tree.Params{MaxDepth: 8, Seed: seed}) }},
				{Label: "d=12", Factory: func() ml.Regressor { return tree.NewRegressor(tree.Params{MaxDepth: 12, Seed: seed}) }},
			},
		},
		{
			Kind: "forest",
			Name: "Random Forest",
			Grid: []tune.Candidate{
				{Label: "default", Factory: func() ml.Regressor {
					return ensemble.NewRandomForest(ensemble.ForestParams{
						NTrees: forestTrees, MaxDepth: 18, Seed: seed,
					})
				}},
			},
		},
		{
			Kind: "adaboost",
			Name: "AdaBoost",
			Grid: []tune.Candidate{
				{Label: "default", Factory: func() ml.Regressor {
					return ensemble.NewAdaBoostR2(ensemble.AdaParams{
						NEstimators: adaRounds, MaxDepth: 4, Seed: seed,
					})
				}},
			},
		},
		{
			Kind: "xgb",
			Name: "XGBoost",
			Grid: []tune.Candidate{
				{Label: "d4", Factory: func() ml.Regressor {
					return boost.NewXGB(boost.XGBParams{
						NRounds: xgbRounds, MaxDepth: 4, LearningRate: 0.15, Seed: seed,
					})
				}},
				{Label: "d6", Factory: func() ml.Regressor {
					return boost.NewXGB(boost.XGBParams{
						NRounds: xgbRounds, MaxDepth: 6, LearningRate: 0.1, Seed: seed,
					})
				}},
			},
		},
		{
			Kind: "lgbm",
			Name: "LightGBM",
			Grid: []tune.Candidate{
				{Label: "default", Factory: func() ml.Regressor {
					return boost.NewLGBM(boost.LGBMParams{NRounds: lgbmRounds, MaxLeaves: 31})
				}},
			},
		},
	}
	return specs
}

// SpecByKind returns the spec with the given kind from specs, or false.
func SpecByKind(specs []ModelSpec, kind string) (ModelSpec, bool) {
	for _, s := range specs {
		if s.Kind == kind {
			return s, true
		}
	}
	return ModelSpec{}, false
}
