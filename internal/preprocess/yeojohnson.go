// Package preprocess implements the paper's §II-C / §IV-C data-preparation
// stack: the Yeo-Johnson power transform with maximum-likelihood λ
// estimation, feature standardisation, Local Outlier Factor row filtering,
// and the 80%-correlation feature pruning — composed into a serialisable
// Pipeline that the runtime library replays on each prediction.
package preprocess

import (
	"fmt"
	"math"
)

// YeoJohnson is a fitted single-feature Yeo-Johnson power transform.
type YeoJohnson struct {
	Lambda float64 `json:"lambda"`
}

// Transform applies ψ(λ, y): the Yeo-Johnson mapping, defined for all real
// inputs (unlike Box-Cox, which requires positive values — §II-C).
func (t YeoJohnson) Transform(y float64) float64 {
	l := t.Lambda
	if y >= 0 {
		if math.Abs(l) < 1e-12 {
			return math.Log1p(y)
		}
		return (math.Pow(y+1, l) - 1) / l
	}
	if math.Abs(l-2) < 1e-12 {
		return -math.Log1p(-y)
	}
	return -(math.Pow(1-y, 2-l) - 1) / (2 - l)
}

// Inverse applies the inverse mapping ψ⁻¹(λ, z).
func (t YeoJohnson) Inverse(z float64) float64 {
	l := t.Lambda
	if z >= 0 {
		if math.Abs(l) < 1e-12 {
			return math.Expm1(z)
		}
		return math.Pow(z*l+1, 1/l) - 1
	}
	if math.Abs(l-2) < 1e-12 {
		return -math.Expm1(-z)
	}
	return 1 - math.Pow(1-z*(2-l), 1/(2-l))
}

// FitYeoJohnson estimates λ by maximum likelihood (§II-C) using
// golden-section search over λ ∈ [-5, 5], the same bracket scipy uses by
// default. It returns an error on empty or constant input, for which no
// informative λ exists.
func FitYeoJohnson(xs []float64) (YeoJohnson, error) {
	if len(xs) == 0 {
		return YeoJohnson{}, fmt.Errorf("preprocess: Yeo-Johnson fit on empty data")
	}
	constant := true
	for _, v := range xs[1:] {
		if v != xs[0] {
			constant = false
			break
		}
	}
	if constant {
		// Identity transform: λ=1 maps y to y (up to an additive constant).
		return YeoJohnson{Lambda: 1}, nil
	}

	// Profile log-likelihood of λ (up to constants):
	//   ll(λ) = -n/2·ln(var(ψ_λ(x))) + (λ-1)·Σ sign(x)·ln(|x|+1)
	n := float64(len(xs))
	var jacobian float64
	for _, v := range xs {
		jacobian += math.Copysign(math.Log1p(math.Abs(v)), v)
	}
	ll := func(lambda float64) float64 {
		t := YeoJohnson{Lambda: lambda}
		var sum, sumSq float64
		for _, v := range xs {
			z := t.Transform(v)
			sum += z
			sumSq += z * z
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance <= 0 || math.IsNaN(variance) || math.IsInf(variance, 0) {
			return math.Inf(-1)
		}
		return -0.5*n*math.Log(variance) + (lambda-1)*jacobian
	}

	lambda := goldenMax(ll, -5, 5, 1e-6)
	return YeoJohnson{Lambda: lambda}, nil
}

// goldenMax maximises f over [lo, hi] by golden-section search to the given
// absolute tolerance on the argument.
func goldenMax(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
