package preprocess

import (
	"fmt"
	"math"
	"sort"
)

// LOFScores computes the Local Outlier Factor (Breunig et al., 2000) of each
// row with k neighbours. A score near 1 means the point sits in a region of
// density similar to its neighbourhood; scores well above 1 flag local
// outliers that global statistical filters miss (§II-C).
//
// The implementation is the standard O(n²) exact algorithm: pairwise
// Euclidean distances, k-distance neighbourhoods, reachability distances,
// local reachability density, and the LOF ratio. The paper applies it after
// standardisation because the density estimate assumes comparable scales.
func LOFScores(X [][]float64, k int) ([]float64, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("preprocess: LOF on empty data")
	}
	if k < 1 {
		return nil, fmt.Errorf("preprocess: LOF needs k >= 1, got %d", k)
	}
	if k >= n {
		k = n - 1
	}
	if k == 0 {
		// Single point: trivially not an outlier.
		return []float64{1}, nil
	}

	// Pairwise distances and k-nearest neighbourhoods.
	type neighbour struct {
		idx  int
		dist float64
	}
	neighbours := make([][]neighbour, n)
	for i := 0; i < n; i++ {
		all := make([]neighbour, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			all = append(all, neighbour{j, euclid(X[i], X[j])})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].dist < all[b].dist })
		// k-distance neighbourhood includes ties at the k-th distance.
		kd := all[k-1].dist
		cut := k
		for cut < len(all) && all[cut].dist == kd {
			cut++
		}
		neighbours[i] = all[:cut]
	}

	kDist := make([]float64, n)
	for i := range neighbours {
		kDist[i] = neighbours[i][len(neighbours[i])-1].dist
	}

	// Local reachability density.
	lrd := make([]float64, n)
	for i := range neighbours {
		var sum float64
		for _, nb := range neighbours[i] {
			reach := nb.dist
			if kDist[nb.idx] > reach {
				reach = kDist[nb.idx]
			}
			sum += reach
		}
		if sum == 0 {
			lrd[i] = math.Inf(1) // duplicated points: infinite density
		} else {
			lrd[i] = float64(len(neighbours[i])) / sum
		}
	}

	// LOF ratio.
	scores := make([]float64, n)
	for i := range neighbours {
		if math.IsInf(lrd[i], 1) {
			scores[i] = 1
			continue
		}
		var sum float64
		for _, nb := range neighbours[i] {
			if math.IsInf(lrd[nb.idx], 1) {
				// Neighbour in a zero-radius cluster dominates the ratio;
				// treat as very dense.
				sum += 1e12
			} else {
				sum += lrd[nb.idx]
			}
		}
		scores[i] = sum / float64(len(neighbours[i])) / lrd[i]
	}
	return scores, nil
}

// FilterLOF returns the indices of rows whose LOF score is at most
// threshold. Typical settings: k=20, threshold=1.5.
func FilterLOF(X [][]float64, k int, threshold float64) ([]int, error) {
	scores, err := LOFScores(X, k)
	if err != nil {
		return nil, err
	}
	keep := make([]int, 0, len(X))
	for i, s := range scores {
		if s <= threshold {
			keep = append(keep, i)
		}
	}
	return keep, nil
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
