package obs

import "math"

// Moments is a constant-memory one-pass aggregator of count, mean,
// variance (Welford's algorithm), min, and max. Aggregators built over
// disjoint streams merge exactly (Chan et al.'s parallel update), which is
// what lets replay scoring stay single-pass per shard and still report
// global statistics. The zero value is ready to use. Not safe for
// concurrent use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.mean, m.m2 = x, 0
		m.min, m.max = x, x
		return
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	if x < m.min {
		m.min = x
	}
	if x > m.max {
		m.max = x
	}
}

// Merge folds another aggregator's stream into m, as if every observation
// had been Added here.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.n = n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean returns the running mean (0 with no observations).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance (0 with fewer than two observations).
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation (0 with no observations).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 with no observations).
func (m *Moments) Max() float64 { return m.max }
