package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a field
// that is passed to sync/atomic anywhere in a package must be accessed
// through sync/atomic at every site in that package. Mixed atomic/plain
// access is exactly the torn-read class of bug fixed in serve.Stats —
// a plain load can observe a half-updated value and a plain store can lose
// a concurrent atomic update. Fields of the atomic.Int64-style wrapper
// types are immune by construction (every access is a method call) and
// are the recommended fix.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic must be accessed atomically at every site",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find fields whose address is taken for a sync/atomic call,
	// remembering one atomic site per field for the diagnostic, plus every
	// selector node that is itself part of an atomic access (allowed).
	atomicFields := make(map[*types.Var]token.Pos)
	allowed := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOp(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				sel := addrOfField(pass.Info, arg)
				if sel == nil {
					continue
				}
				field := fieldOf(pass.Info, sel)
				if field == nil {
					continue
				}
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = call.Pos()
				}
				allowed[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields is a torn-read hazard.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || allowed[sel] {
				return true
			}
			field := fieldOf(pass.Info, sel)
			if field == nil {
				return true
			}
			atomicPos, isAtomic := atomicFields[field]
			if !isAtomic {
				return true
			}
			p := pass.Fset.Position(atomicPos)
			pass.Reportf(sel.Pos(),
				"field %s is accessed atomically (e.g. at %s:%d) but plainly here — mixed access tears; use sync/atomic or an atomic.%s-typed field",
				field.Name(), p.Filename, p.Line, atomicTypeFor(field.Type()))
			return true
		})
	}
	return nil
}

// isAtomicOp reports whether name is a sync/atomic operation that takes
// the address of its operand (the APIs that define a field as atomic).
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addrOfField unwraps &x.f (possibly parenthesized) to the selector.
func addrOfField(info *types.Info, e ast.Expr) *ast.SelectorExpr {
	u, ok := unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// fieldOf resolves a selector to the struct field it names, or nil when
// the selector is not a field access.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}

// atomicTypeFor suggests the sync/atomic wrapper type for a raw field
// type ("Int64" for int64, and so on; "Value" as the catch-all).
func atomicTypeFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return "Pointer"
		}
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
