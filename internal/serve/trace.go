package serve

import (
	"repro/internal/trace"
)

// SetRecorder attaches (or detaches, with nil) a flight recorder: every
// subsequent decision — cache hit, model ranking, heuristic fallback — and
// every RecordMeasured call is appended to it. The engine does not own the
// recorder's lifecycle; whoever attached it closes it after the engine
// stops producing (adsala-serve does so after graceful shutdown).
func (e *Engine) SetRecorder(r *trace.Recorder) { e.recorder.Store(r) }

// Recorder returns the attached flight recorder, or nil when tracing is
// off.
func (e *Engine) Recorder() *trace.Recorder { return e.recorder.Load() }

// traceDecision appends one decision record to the attached recorder, if
// any. Warm-up attribution happens here (not at the call sites) so every
// decision path inherits it.
//
//adsala:zeroalloc
func (e *Engine) traceDecision(op Op, m, k, n, threads int, predNs int64, flags uint8) {
	r := e.recorder.Load()
	if r == nil {
		return
	}
	if e.warming.Load() > 0 {
		flags |= trace.FlagWarmup
	}
	r.Record(trace.Record{
		PredictedNs: predNs,
		M:           int32(m),
		K:           int32(k),
		N:           int32(n),
		Threads:     int32(threads),
		Op:          op,
		Flags:       flags,
	})
}

// RecordMeasured folds one measurement — the measured wall time of one
// executed kernel call at the given thread count — into the engine's
// measured-prediction stream: the flight recorder appends a measurement
// record, and the drift monitor (when attached) scores the pair online.
// The in-process BLAS facade calls it after each successful execution; a
// serving daemon itself only decides, so its stream fills through POST
// /measured, where executing clients report their kernel wall times back.
// A no-op with neither recorder nor monitor attached.
//
//adsala:zeroalloc
func (e *Engine) RecordMeasured(op Op, m, k, n, threads int, measuredNs int64) {
	if d := e.drift.Load(); d != nil {
		st := e.state.Load()
		var predNs int64
		if st.lib.ModelFor(op) != nil {
			// Score the executed configuration with the pooled scratch — the
			// same model evaluation replay runs offline, so online residuals
			// and a replay of the capture are directly comparable.
			rs := st.scratch.Get().(*rankScratch)
			predNs = int64(st.lib.PredictOpSecondsInto(op, m, k, n, threads, rs.s) * 1e9)
			st.scratch.Put(rs)
		}
		d.Observe(op, m, k, n, predNs, measuredNs)
	}
	r := e.recorder.Load()
	if r == nil {
		return
	}
	flags := trace.FlagMeasured
	if e.warming.Load() > 0 {
		flags |= trace.FlagWarmup
	}
	r.Record(trace.Record{
		MeasuredNs: measuredNs,
		M:          int32(m),
		K:          int32(k),
		N:          int32(n),
		Threads:    int32(threads),
		Op:         op,
		Flags:      flags,
	})
}
