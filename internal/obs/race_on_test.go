//go:build race

package obs

// raceEnabled reports whether the race detector is active; allocation-count
// tests skip under it because instrumentation perturbs the counts.
const raceEnabled = true
