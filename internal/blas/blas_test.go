package blas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// tolerances: the blocked kernel reorders additions, so allow accumulation
// slack proportional to k.
func tolF32(k int) float64 { return 1e-4 * float64(k+1) }
func tolF64(k int) float64 { return 1e-12 * float64(k+1) }

func randF32(r, c int, rng *rand.Rand) *mat.F32 {
	m := mat.NewF32(r, c)
	m.FillRandom(rng)
	return m
}

func randF64(r, c int, rng *rand.Rand) *mat.F64 {
	m := mat.NewF64(r, c)
	m.FillRandom(rng)
	return m
}

func TestSGEMMMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {5, 7, 3}, {16, 16, 16},
		{17, 19, 23}, {64, 8, 64}, {1, 100, 1}, {100, 1, 100},
		{33, 257, 65}, {128, 128, 128}, {3, 300, 5},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randF32(m, k, rng)
		b := randF32(k, n, rng)
		c := randF32(m, n, rng)
		want := c.Clone()
		NaiveSGEMM(false, false, 1.25, a, b, 0.5, want)
		for _, threads := range []int{1, 2, 4} {
			got := c.Clone()
			if err := SGEMM(false, false, 1.25, a, b, 0.5, got, threads); err != nil {
				t.Fatalf("%v threads=%d: %v", sh, threads, err)
			}
			if d := got.MaxAbsDiff(want); d > tolF32(k) {
				t.Errorf("shape %v threads=%d: max diff %v > %v", sh, threads, d, tolF32(k))
			}
		}
	}
}

func TestDGEMMMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range [][3]int{{7, 11, 13}, {64, 64, 64}, {129, 65, 33}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randF64(m, k, rng)
		b := randF64(k, n, rng)
		c := randF64(m, n, rng)
		want := c.Clone()
		NaiveDGEMM(false, false, -0.75, a, b, 2.0, want)
		got := c.Clone()
		if err := DGEMM(false, false, -0.75, a, b, 2.0, got, 3); err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if d := got.MaxAbsDiff(want); d > tolF64(k) {
			t.Errorf("shape %v: max diff %v", sh, d)
		}
	}
}

func TestTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 13, 17, 9
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			var a *mat.F32
			if ta {
				a = randF32(k, m, rng)
			} else {
				a = randF32(m, k, rng)
			}
			var b *mat.F32
			if tb {
				b = randF32(n, k, rng)
			} else {
				b = randF32(k, n, rng)
			}
			c := randF32(m, n, rng)
			want := c.Clone()
			NaiveSGEMM(ta, tb, 1, a, b, 1, want)
			got := c.Clone()
			if err := SGEMM(ta, tb, 1, a, b, 1, got, 2); err != nil {
				t.Fatalf("ta=%v tb=%v: %v", ta, tb, err)
			}
			if d := got.MaxAbsDiff(want); d > tolF32(k) {
				t.Errorf("ta=%v tb=%v: max diff %v", ta, tb, d)
			}
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	a := mat.NewF32(3, 4)
	b := mat.NewF32(5, 6) // inner mismatch
	c := mat.NewF32(3, 6)
	if err := SGEMM(false, false, 1, a, b, 0, c, 1); err == nil {
		t.Error("inner-dimension mismatch should error")
	}
	b2 := mat.NewF32(4, 6)
	cBad := mat.NewF32(2, 6)
	if err := SGEMM(false, false, 1, a, b2, 0, cBad, 1); err == nil {
		t.Error("C shape mismatch should error")
	}
}

func TestAlphaZeroScalesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randF32(8, 8, rng)
	b := randF32(8, 8, rng)
	c := randF32(8, 8, rng)
	want := c.Clone()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want.Set(i, j, want.At(i, j)*0.5)
		}
	}
	if err := SGEMM(false, false, 0, a, b, 0.5, c, 2); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-6 {
		t.Errorf("alpha=0 should only scale C: diff %v", d)
	}
}

func TestBetaZeroOverwritesC(t *testing.T) {
	// beta=0 must overwrite even NaN-free garbage in C.
	rng := rand.New(rand.NewSource(5))
	a := randF32(6, 6, rng)
	b := randF32(6, 6, rng)
	c := mat.NewF32(6, 6)
	c.Fill(1e30)
	want := mat.NewF32(6, 6)
	NaiveSGEMM(false, false, 1, a, b, 0, want)
	if err := SGEMM(false, false, 1, a, b, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > tolF32(6) {
		t.Errorf("beta=0 result differs: %v", d)
	}
}

func TestEmptyDims(t *testing.T) {
	a := mat.NewF32(0, 4)
	b := mat.NewF32(4, 3)
	c := mat.NewF32(0, 3)
	if err := SGEMM(false, false, 1, a, b, 0, c, 2); err != nil {
		t.Errorf("m=0: %v", err)
	}
	// k=0 means C <- beta*C.
	a2 := mat.NewF32(2, 0)
	b2 := mat.NewF32(0, 3)
	c2 := mat.NewF32(2, 3)
	c2.Fill(4)
	if err := SGEMM(false, false, 1, a2, b2, 0.25, c2, 1); err != nil {
		t.Errorf("k=0: %v", err)
	}
	if c2.At(1, 2) != 1 {
		t.Errorf("k=0 should scale C by beta: got %v", c2.At(1, 2))
	}
}

func TestThreadCountClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randF32(8, 8, rng)
	b := randF32(8, 8, rng)
	want := mat.NewF32(8, 8)
	NaiveSGEMM(false, false, 1, a, b, 0, want)
	for _, threads := range []int{-5, 0, 1, 64, 1000} {
		c := mat.NewF32(8, 8)
		if err := SGEMM(false, false, 1, a, b, 0, c, threads); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if d := c.MaxAbsDiff(want); d > tolF32(8) {
			t.Errorf("threads=%d: diff %v", threads, d)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := good
	bad.MC = 0
	if err := bad.Validate(); err == nil {
		t.Error("MC=0 should fail")
	}
	bad = good
	bad.MR, bad.NR = 8, 8
	if err := bad.Validate(); err == nil {
		t.Error("unsupported micro-tile should fail")
	}
	bad = good
	bad.MC = 130 // not a multiple of MR=4
	if err := bad.Validate(); err == nil {
		t.Error("MC not multiple of MR should fail")
	}
	for _, tile := range [][2]int{{4, 4}, {8, 4}, {4, 8}} {
		wide := Params{MC: 16 * tile[0], KC: 64, NC: 16 * tile[1], MR: tile[0], NR: tile[1]}
		if err := wide.Validate(); err != nil {
			t.Errorf("tile %dx%d should validate: %v", tile[0], tile[1], err)
		}
	}
}

func TestCustomParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randF32(50, 70, rng)
	b := randF32(70, 40, rng)
	want := mat.NewF32(50, 40)
	NaiveSGEMM(false, false, 1, a, b, 0, want)
	p := Params{MC: 16, KC: 8, NC: 12, MR: 4, NR: 4}
	c := mat.NewF32(50, 40)
	if err := SGEMMWithParams(false, false, 1, a, b, 0, c, 3, p); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > tolF32(70) {
		t.Errorf("custom params diff %v", d)
	}
}

// Property: parallel result equals serial result exactly (same summation
// order regardless of team size, since block ownership is deterministic).
func TestParallelDeterminismProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(mRaw, kRaw, nRaw, tRaw uint8) bool {
		m, k, n := 1+int(mRaw%40), 1+int(kRaw%40), 1+int(nRaw%40)
		threads := 1 + int(tRaw%8)
		a := randF32(m, k, rng)
		b := randF32(k, n, rng)
		c1 := mat.NewF32(m, n)
		c2 := mat.NewF32(m, n)
		if SGEMM(false, false, 1, a, b, 0, c1, 1) != nil {
			return false
		}
		if SGEMM(false, false, 1, a, b, 0, c2, threads) != nil {
			return false
		}
		return c1.MaxAbsDiff(c2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: GEMM is linear in alpha: gemm(2a) == 2*gemm(a) with beta=0.
func TestAlphaLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := 1+int(mRaw%24), 1+int(kRaw%24), 1+int(nRaw%24)
		a := randF64(m, k, rng)
		b := randF64(k, n, rng)
		c1 := mat.NewF64(m, n)
		c2 := mat.NewF64(m, n)
		if DGEMM(false, false, 1, a, b, 0, c1, 2) != nil {
			return false
		}
		if DGEMM(false, false, 2, a, b, 0, c2, 2) != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d := c2.At(i, j) - 2*c1.At(i, j)
				if d > 1e-10 || d < -1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStridedMatrices(t *testing.T) {
	// Matrices whose stride exceeds cols (submatrix views).
	rng := rand.New(rand.NewSource(10))
	a := &mat.F32{Rows: 9, Cols: 7, Stride: 12, Data: make([]float32, 9*12)}
	b := &mat.F32{Rows: 7, Cols: 5, Stride: 9, Data: make([]float32, 7*9)}
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			a.Set(i, j, float32(rng.NormFloat64()))
		}
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			b.Set(i, j, float32(rng.NormFloat64()))
		}
	}
	c := &mat.F32{Rows: 9, Cols: 5, Stride: 11, Data: make([]float32, 9*11)}
	want := mat.NewF32(9, 5)
	NaiveSGEMM(false, false, 1, a, b, 0, want)
	if err := SGEMM(false, false, 1, a, b, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	if d := c.Clone().MaxAbsDiff(want); d > tolF32(7) {
		t.Errorf("strided diff %v", d)
	}
	// Elements outside the logical region must be untouched.
	for i := 0; i < 9; i++ {
		for j := 5; j < 11; j++ {
			if c.Data[i*11+j] != 0 {
				t.Fatalf("GEMM wrote outside C at (%d,%d)", i, j)
			}
		}
	}
}
