package adsala

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func trainQuick(t *testing.T) (*Library, *Report) {
	t.Helper()
	lib, rep, err := Train(TrainOptions{Platform: "Gadi", Shapes: 60, Quick: true, CapMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	return lib, rep
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(TrainOptions{Platform: "Frontier"}); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestTrainAndFacade(t *testing.T) {
	lib, rep := trainQuick(t)
	if lib.Platform() != "Gadi" {
		t.Errorf("Platform = %q", lib.Platform())
	}
	if lib.ModelKind() == "" {
		t.Error("no model kind")
	}
	if len(lib.Candidates()) == 0 || lib.Candidates()[0] != 1 {
		t.Errorf("candidates = %v", lib.Candidates())
	}
	if got := lib.OptimalThreads(512, 512, 512); got < 1 || got > 96 {
		t.Errorf("OptimalThreads = %d", got)
	}
	if rt := lib.PredictRuntime(512, 512, 512, 8); rt <= 0 {
		t.Errorf("PredictRuntime = %v", rt)
	}
	if lib.EvalLatency() <= 0 {
		t.Errorf("EvalLatency = %v", lib.EvalLatency())
	}
	if !strings.Contains(rep.String(), "XGBoost") {
		t.Errorf("report missing models:\n%s", rep)
	}
	if _, ok := rep.Best(lib.ModelKind()); !ok {
		t.Error("selected model missing from report")
	}
}

func TestSaveLoadFacade(t *testing.T) {
	lib, _ := trainQuick(t)
	path := filepath.Join(t.TempDir(), "adsala.json")
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.OptimalThreads(300, 300, 300) != lib.OptimalThreads(300, 300, 300) {
		t.Error("choice changed after reload")
	}
}

func TestGemmProducesCorrectResult(t *testing.T) {
	lib, _ := trainQuick(t)
	g := lib.NewGemm()
	rng := rand.New(rand.NewSource(1))
	m, k, n := 33, 47, 29
	a := NewMatrixF32(m, k)
	b := NewMatrixF32(k, n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c := NewMatrixF32(m, n)
	if err := g.SGEMM(false, false, 1, a, b, 0, c); err != nil {
		t.Fatal(err)
	}
	// Verify one element against a manual inner product.
	var want float64
	for p := 0; p < k; p++ {
		want += float64(a.At(3, p)) * float64(b.At(p, 5))
	}
	got := float64(c.At(3, 5))
	if d := got - want; d > 1e-3 || d < -1e-3 {
		t.Errorf("C[3,5] = %v, want %v", got, want)
	}
	// DGEMM path too.
	ad := NewMatrixF64(4, 5)
	bd := NewMatrixF64(5, 6)
	ad.FillRandom(rng)
	bd.FillRandom(rng)
	cd := NewMatrixF64(4, 6)
	if err := g.DGEMM(false, false, 1, ad, bd, 0, cd); err != nil {
		t.Fatal(err)
	}
}

func TestGemmCacheAndClamp(t *testing.T) {
	lib, _ := trainQuick(t)
	g := lib.NewGemm()
	g.SetMaxLocalThreads(2)
	// LastChoice is a read-only peek: before any call the shape is uncached
	// and it must report 0 without running a prediction or moving counters.
	if got := g.LastChoice(16, 16, 16); got != 0 {
		t.Errorf("LastChoice before any call = %d, want 0", got)
	}
	if hits, misses := g.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("LastChoice moved counters: hits=%d misses=%d", hits, misses)
	}
	rng := rand.New(rand.NewSource(2))
	a := NewMatrixF32(16, 16)
	b := NewMatrixF32(16, 16)
	c := NewMatrixF32(16, 16)
	a.FillRandom(rng)
	b.FillRandom(rng)
	for i := 0; i < 5; i++ {
		if err := g.SGEMM(false, false, 1, a, b, 0, c); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := g.CacheStats()
	if hits < 4 {
		t.Errorf("cache hits = %d after 5 repeated shapes (misses %d)", hits, misses)
	}
	// Now cached: LastChoice reports the clamped selection, still without
	// counting.
	if got := g.LastChoice(16, 16, 16); got < 1 || got > 2 {
		t.Errorf("LastChoice after calls = %d, want in [1,2]", got)
	}
	if h2, m2 := g.CacheStats(); h2 != hits || m2 != misses {
		t.Errorf("LastChoice moved counters: (%d,%d) -> (%d,%d)", hits, misses, h2, m2)
	}
}

func TestSyrkFacade(t *testing.T) {
	lib, _ := trainQuick(t)
	s := lib.NewSyrk()
	s.SetMaxLocalThreads(2)
	rng := rand.New(rand.NewSource(3))
	a := NewMatrixF32(24, 9)
	c := NewMatrixF32(24, 24)
	a.FillRandom(rng)
	if err := s.SSYRK(false, 1, a, 0, c); err != nil {
		t.Fatal(err)
	}
	// Spot-check one entry against a direct dot product and symmetry.
	var want float32
	for p := 0; p < 9; p++ {
		want += a.At(5, p) * a.At(2, p)
	}
	if d := c.At(5, 2) - want; d > 1e-4 || d < -1e-4 {
		t.Errorf("C[5,2] = %v, want %v", c.At(5, 2), want)
	}
	if c.At(2, 5) != c.At(5, 2) {
		t.Error("result not symmetric")
	}
	if got := s.LastChoice(24, 9); got < 1 || got > 2 {
		t.Errorf("LastChoice = %d, want clamped selection in [1,2]", got)
	}
	// Transposed double-precision path.
	ad := NewMatrixF64(7, 13)
	cd := NewMatrixF64(13, 13)
	ad.FillRandom(rng)
	if err := s.DSYRK(true, 2, ad, 0, cd); err != nil {
		t.Fatal(err)
	}
	if cd.At(3, 8) != cd.At(8, 3) {
		t.Error("DSYRK result not symmetric")
	}
	// Repeated shapes hit the cache.
	for i := 0; i < 4; i++ {
		if err := s.SSYRK(false, 1, a, 0, c); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _ := s.CacheStats(); hits < 4 {
		t.Errorf("cache hits = %d after repeated SYRKs", hits)
	}
}

func TestTrainLocalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("local timing in -short mode")
	}
	lib, _, err := Train(TrainOptions{Platform: "local", Shapes: 12, Quick: true, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.OptimalThreads(256, 256, 256); got < 1 {
		t.Errorf("local OptimalThreads = %d", got)
	}
}
