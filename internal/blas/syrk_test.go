package blas

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// syrkRef computes the SYRK reference via NaiveSGEMM against Aᵀ.
func syrkRef(trans bool, alpha float32, a *mat.F32, beta float32, c *mat.F32) {
	NaiveSGEMM(trans, !trans, alpha, a, a, beta, c)
}

// symmetrise copies the lower triangle into the upper so the full-GEMM
// reference and the lower-triangle SYRK agree on the beta update.
func symmetrise(c *mat.F32) {
	for i := 0; i < c.Rows; i++ {
		for j := i + 1; j < c.Cols; j++ {
			c.Set(i, j, c.At(j, i))
		}
	}
}

func TestSSYRKMatchesGEMMReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n, k    int
		trans   bool
		threads int
	}{
		{5, 7, false, 1}, {16, 4, false, 3}, {33, 17, false, 4},
		{9, 12, true, 2}, {25, 25, true, 5}, {1, 1, false, 1},
		// Large enough to take the packed path under default params.
		{70, 40, false, 3}, {70, 40, true, 2},
	} {
		var a *mat.F32
		if tc.trans {
			a = randF32(tc.k, tc.n, rng)
		} else {
			a = randF32(tc.n, tc.k, rng)
		}
		c := randF32(tc.n, tc.n, rng)
		symmetrise(c)
		want := c.Clone()
		syrkRef(tc.trans, 1.5, a, 0.5, want)
		got := c.Clone()
		if err := SSYRK(tc.trans, 1.5, a, 0.5, got, tc.threads); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := got.MaxAbsDiff(want); d > tolF32(tc.k) {
			t.Errorf("%+v: max diff %v", tc, d)
		}
		// Result must be exactly symmetric.
		for i := 0; i < tc.n; i++ {
			for j := 0; j < i; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("%+v: asymmetric at (%d,%d)", tc, i, j)
				}
			}
		}
	}
}

// TestSyrkPackedMatchesNaiveMatrix is the exhaustive edge-case matrix for
// the packed SYRK path, mirroring TestPackedMatchesNaiveMatrix: every
// supported micro-tile × {trans} × {alpha, beta ∈ 0/1/other} × strided C ×
// n values that leave remainders against every blocking boundary, in both
// precisions (rotating), checked against the naive reference.
func TestSyrkPackedMatchesNaiveMatrix(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(30))
	alphas := []float32{0, 1, 1.25}
	betas := []float32{0, 1, -0.5}
	for _, tile := range [][2]int{{4, 4}, {8, 4}, {4, 8}} {
		mr, nr := tile[0], tile[1]
		prm := Params{MC: 2 * mr, KC: 10, NC: 2 * nr, MR: mr, NR: nr}
		if err := prm.Validate(); err != nil {
			t.Fatalf("tile %dx%d params: %v", mr, nr, err)
		}
		// Dimensions straddling MR/NR/MC/NC boundaries: 1, tile±1, one and
		// two full MC blocks ± 1, and a KC-boundary k set.
		nDims := []int{1, mr - 1, mr + 1, 2*mr - 1, 2 * mr, 4*mr + 1, 17, 33}
		kDims := []int{1, 9, 10, 11, 21}
		combo := 0
		for _, n := range nDims {
			if n < 1 {
				continue
			}
			for _, k := range kDims {
				trans := combo&1 != 0
				threads := 1 + combo%4
				extra := (combo % 3) * 3 // 0, 3, 6 stride padding
				alpha := alphas[combo%len(alphas)]
				beta := betas[(combo/2)%len(betas)]
				combo++

				ar, ac := n, k
				if trans {
					ar, ac = k, n
				}
				a := stridedF32(ar, ac, extra, rng)
				c := stridedF32(n, n, extra, rng)
				symmetrise(c)
				want := c.Clone()
				NaiveSSYRK(trans, alpha, a, beta, want)
				if err := SSYRKWithParams(trans, alpha, a, beta, c, threads, prm); err != nil {
					t.Fatalf("tile %dx%d n=%d k=%d trans=%v: %v", mr, nr, n, k, trans, err)
				}
				if d := c.Clone().MaxAbsDiff(want); d > tolF32(k) {
					t.Errorf("tile %dx%d n=%d k=%d trans=%v threads=%d alpha=%v beta=%v: max diff %v",
						mr, nr, n, k, trans, threads, alpha, beta, d)
				}
				checkPaddingF32(t, c, "syrk C")
			}
		}
	}
}

// TestDSYRKMatchesNaiveMatrix runs the double-precision path (packed and
// small) over the same trans × alpha/beta × stride axes.
func TestDSYRKMatchesNaiveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, limit := range []int{forcePacked, forceSmall} {
		forcePath(t, limit)
		combo := 0
		for _, n := range []int{1, 3, 7, 16, 33} {
			for _, k := range []int{1, 5, 12} {
				trans := combo&1 != 0
				threads := 1 + combo%3
				extra := (combo % 2) * 3
				beta := 0.75
				if combo%4 == 0 {
					beta = 0
				}
				combo++

				ar, ac := n, k
				if trans {
					ar, ac = k, n
				}
				a := stridedF64(ar, ac, extra, rng)
				c := stridedF64(n, n, extra, rng)
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						c.Set(i, j, c.At(j, i))
					}
				}
				want := c.Clone()
				NaiveDSYRK(trans, -1.5, a, beta, want)
				if err := DSYRK(trans, -1.5, a, beta, c, threads); err != nil {
					t.Fatalf("n=%d k=%d trans=%v: %v", n, k, trans, err)
				}
				if d := c.Clone().MaxAbsDiff(want); d > tolF64(k) {
					t.Errorf("limit=%d n=%d k=%d trans=%v: max diff %v", limit, n, k, trans, d)
				}
			}
		}
	}
}

// TestSyrkThreadDeterminism pins the bit-exactness guarantee on the packed
// SYRK path: block ownership and the mirror band split affect only which
// worker computes an element, never its summation order, so any thread
// count must reproduce the serial result exactly.
func TestSyrkThreadDeterminism(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(32))
	for _, sh := range [][2]int{{97, 53}, {129, 256}, {64, 300}} {
		n, k := sh[0], sh[1]
		a := randF32(n, k, rng)
		ref := mat.NewF32(n, n)
		if err := SSYRK(false, 1, a, 0, ref, 1); err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 3, 5, 8} {
			c := mat.NewF32(n, n)
			if err := SSYRK(false, 1, a, 0, c, threads); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(ref); d != 0 {
				t.Errorf("n=%d k=%d threads=%d: differs from serial by %v (want bit-identical)", n, k, threads, d)
			}
		}
	}
}

// TestSyrkZeroAllocSteadyState enforces the zero-allocation guarantee of the
// SYRK Context path and the pooled package path once warm.
func TestSyrkZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(33))
	a := randF32(128, 96, rng)
	c := mat.NewF32(128, 128)
	for _, tc := range []struct {
		name    string
		threads int
	}{{"serial", 1}, {"team2", 2}, {"team4", 4}} {
		ctx := NewContext()
		for i := 0; i < 2; i++ { // warm: buffers, team, worker closure
			if err := ctx.SSYRK(false, 1, a, 0, c, tc.threads); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := ctx.SSYRK(false, 1, a, 0, c, tc.threads); err != nil {
				t.Fatal(err)
			}
		})
		ctx.Close()
		if allocs != 0 {
			t.Errorf("Context.SSYRK %s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	for i := 0; i < 3; i++ { // warm the package pool
		if err := SSYRK(false, 1, a, 0, c, 2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := SSYRK(false, 1, a, 0, c, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled blas.SSYRK: %v allocs/op, want 0", allocs)
	}
}

// TestSyrkGemmInterleavedContext drives one Context through alternating GEMM
// and SYRK calls: the shared buffers and dispatch must not bleed state
// between operations.
func TestSyrkGemmInterleavedContext(t *testing.T) {
	forcePath(t, forcePacked)
	rng := rand.New(rand.NewSource(34))
	ctx := NewContext()
	defer ctx.Close()
	for round := 0; round < 3; round++ {
		n, k := 48+16*round, 33+round
		a := randF32(n, k, rng)
		b := randF32(k, n, rng)
		cg := mat.NewF32(n, n)
		wantG := mat.NewF32(n, n)
		NaiveSGEMM(false, false, 1, a, b, 0, wantG)
		if err := ctx.SGEMM(false, false, 1, a, b, 0, cg, 1+round); err != nil {
			t.Fatal(err)
		}
		if d := cg.MaxAbsDiff(wantG); d > tolF32(k) {
			t.Errorf("round %d gemm: diff %v", round, d)
		}
		cs := mat.NewF32(n, n)
		wantS := mat.NewF32(n, n)
		NaiveSSYRK(false, 2, a, 0, wantS)
		if err := ctx.SSYRK(false, 2, a, 0, cs, 4-round); err != nil {
			t.Fatal(err)
		}
		if d := cs.MaxAbsDiff(wantS); d > tolF32(k) {
			t.Errorf("round %d syrk: diff %v", round, d)
		}
	}
}

func TestSSYRKValidation(t *testing.T) {
	a := mat.NewF32(4, 3)
	cBad := mat.NewF32(3, 4)
	if err := SSYRK(false, 1, a, 0, cBad, 1); err == nil {
		t.Error("non-square C should error")
	}
	if err := DSYRK(true, 1, mat.NewF64(4, 3), 0, mat.NewF64(4, 4), 1); err == nil {
		t.Error("transposed dims mismatching C should error")
	}
}

func TestSSYRKAlphaZero(t *testing.T) {
	a := mat.NewF32(3, 2)
	c := mat.NewF32(3, 3)
	c.Fill(4)
	if err := SSYRK(false, 0, a, 0.5, c, 2); err != nil {
		t.Fatal(err)
	}
	if c.At(1, 1) != 2 {
		t.Errorf("alpha=0 should scale C by beta: %v", c.At(1, 1))
	}
	if c.At(0, 2) != c.At(2, 0) {
		t.Errorf("alpha=0 result not symmetric: %v vs %v", c.At(0, 2), c.At(2, 0))
	}
}

// triangularBands returns threads+1 row boundaries splitting the lower
// triangle of an n×n matrix into bands of roughly equal element count (row i
// carries i+1 elements). It was the pre-packed SSYRK's partitioner; the
// packed path splits per panel with syrkBlockRange instead, so it survives
// only as the reference the partition tests compare intuitions against.
func triangularBands(n, threads int) []int {
	total := float64(n) * float64(n+1) / 2
	bounds := make([]int, threads+1)
	bounds[threads] = n
	row := 0
	var acc float64
	for b := 1; b < threads; b++ {
		target := total * float64(b) / float64(threads)
		for row < n && acc < target {
			row++
			acc += float64(row)
		}
		bounds[b] = row
	}
	return bounds
}

func TestTriangularBands(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{{10, 3}, {100, 8}, {5, 5}, {7, 1}} {
		b := triangularBands(tc.n, tc.threads)
		if len(b) != tc.threads+1 || b[0] != 0 || b[tc.threads] != tc.n {
			t.Fatalf("n=%d t=%d: bounds %v", tc.n, tc.threads, b)
		}
		for i := 1; i <= tc.threads; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("bounds not monotone: %v", b)
			}
		}
		// Element counts roughly balanced (within 2x of ideal for n >> t).
		if tc.n >= 10*tc.threads {
			ideal := float64(tc.n) * float64(tc.n+1) / 2 / float64(tc.threads)
			for i := 1; i <= tc.threads; i++ {
				var count float64
				for r := b[i-1]; r < b[i]; r++ {
					count += float64(r + 1)
				}
				if count > 2*ideal {
					t.Errorf("band %d has %v elements, ideal %v", i, count, ideal)
				}
			}
		}
	}
}

// TestSyrkBlockRangePartition checks that the per-panel block partition is a
// disjoint contiguous cover of all blocks for every worker count.
func TestSyrkBlockRangePartition(t *testing.T) {
	prm := DefaultParams()
	for _, n := range []int{1, 100, 257, 1000} {
		for _, parts := range []int{1, 2, 3, 7, 16} {
			for jc := 0; jc < n; jc += prm.NC {
				nc := min(prm.NC, n-jc)
				nBlocks := (n + prm.MC - 1) / prm.MC
				next := 0
				for w := 0; w < parts; w++ {
					blo, bhi := syrkBlockRange(n, jc, nc, prm, w, parts)
					if blo != next {
						t.Fatalf("n=%d parts=%d jc=%d w=%d: range starts at %d, want %d", n, parts, jc, w, blo, next)
					}
					if bhi < blo {
						t.Fatalf("n=%d parts=%d jc=%d w=%d: inverted range [%d,%d)", n, parts, jc, w, blo, bhi)
					}
					next = bhi
				}
				if next != nBlocks {
					t.Fatalf("n=%d parts=%d jc=%d: partition covers %d of %d blocks", n, parts, jc, next, nBlocks)
				}
			}
		}
	}
}

// TestMirrorRangePartition checks the mirror-band split covers every row
// exactly once.
func TestMirrorRangePartition(t *testing.T) {
	for _, n := range []int{1, 2, 17, 256} {
		for _, parts := range []int{1, 2, 5, 9} {
			next := 0
			for w := 0; w < parts; w++ {
				lo, hi := mirrorRange(n, w, parts)
				if lo != next || hi < lo {
					t.Fatalf("n=%d parts=%d w=%d: band [%d,%d), want start %d", n, parts, w, lo, hi, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: bands cover %d rows", n, parts, next)
			}
		}
	}
}
