// Package halton generates scrambled Halton low-discrepancy sequences.
//
// The paper samples the GEMM shape domain with a scrambled Halton sequence to
// obtain an even coverage of (m, k, n) space while avoiding the correlation
// artefacts of the plain Halton construction in higher dimensions. Scrambling
// follows the random-digit-permutation scheme of Mascagni & Chi (2004): each
// base b gets a fixed random permutation of {0..b-1} applied to every digit
// (with the convention that digit 0 maps to 0 so the sequence stays in [0,1)).
package halton

import (
	"fmt"
	"math/rand"
)

// Primes suitable as Halton bases, in order. The paper states bases 2, 3 and
// 4; base 4 is composite and breaks the equidistribution guarantee of the
// van der Corput radical inverse, so this implementation uses consecutive
// primes instead (see DESIGN.md §2).
var defaultBases = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}

// Sequence is a scrambled Halton sequence over a fixed number of dimensions.
// The zero value is not usable; construct with New.
type Sequence struct {
	bases []int
	perms [][]int // perms[d][digit] = scrambled digit, perms[d][0] == 0
	index int64   // next index to emit (starts at 1: index 0 is all-zeros)
}

// New returns a scrambled Halton sequence with dim dimensions, using the
// first dim primes as bases and a digit-scrambling permutation derived from
// seed. dim must be between 1 and len(defaultBases).
func New(dim int, seed int64) (*Sequence, error) {
	if dim < 1 || dim > len(defaultBases) {
		return nil, fmt.Errorf("halton: dimension %d out of range [1,%d]", dim, len(defaultBases))
	}
	return NewWithBases(defaultBases[:dim], seed)
}

// NewWithBases returns a scrambled Halton sequence with the given bases.
// Each base must be >= 2. Bases should be pairwise coprime (primes) for the
// sequence to be low-discrepancy; this is not enforced.
func NewWithBases(bases []int, seed int64) (*Sequence, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("halton: no bases supplied")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Sequence{
		bases: append([]int(nil), bases...),
		perms: make([][]int, len(bases)),
		index: 1,
	}
	for d, b := range bases {
		if b < 2 {
			return nil, fmt.Errorf("halton: base %d must be >= 2", b)
		}
		s.perms[d] = scramblePermutation(b, rng)
	}
	return s, nil
}

// scramblePermutation builds a random permutation of {0..b-1} that fixes 0,
// so that the radical inverse of trailing zero digits remains zero and the
// sequence stays inside [0, 1).
func scramblePermutation(b int, rng *rand.Rand) []int {
	p := make([]int, b)
	for i := range p {
		p[i] = i
	}
	// Fisher–Yates over positions 1..b-1 only.
	for i := b - 1; i > 1; i-- {
		j := 1 + rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Dim returns the number of dimensions of the sequence.
func (s *Sequence) Dim() int { return len(s.bases) }

// Next returns the next point of the sequence. Every coordinate lies in
// [0, 1). The returned slice is freshly allocated.
func (s *Sequence) Next() []float64 {
	p := make([]float64, len(s.bases))
	s.NextInto(p)
	return p
}

// NextInto fills dst with the next point of the sequence. dst must have
// length Dim().
func (s *Sequence) NextInto(dst []float64) {
	if len(dst) != len(s.bases) {
		panic(fmt.Sprintf("halton: NextInto dst length %d != dim %d", len(dst), len(s.bases)))
	}
	for d := range s.bases {
		dst[d] = radicalInverse(s.index, s.bases[d], s.perms[d])
	}
	s.index++
}

// Skip advances the sequence by n points without emitting them.
func (s *Sequence) Skip(n int64) {
	if n > 0 {
		s.index += n
	}
}

// Sample returns the next n points as an n × Dim matrix (row per point).
func (s *Sequence) Sample(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// radicalInverse computes the scrambled van der Corput radical inverse of i
// in the given base: digits of i in that base are permuted and mirrored
// around the radix point.
func radicalInverse(i int64, base int, perm []int) float64 {
	b := int64(base)
	inv := 1.0 / float64(base)
	f := inv
	var r float64
	for i > 0 {
		digit := int(i % b)
		r += f * float64(perm[digit])
		i /= b
		f *= inv
	}
	return r
}
