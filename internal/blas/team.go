package blas

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// team is a persistent group of parked worker goroutines. Workers are
// spawned once (per Context, not per GEMM call and certainly not per
// blocking iteration) and woken through pre-allocated channels, so
// dispatching a parallel region costs one channel send per worker instead
// of a goroutine spawn — the "fork" half of the paper's fork/join overhead
// drops to a wakeup.
//
// The worker goroutines reference only the inner teamState, never the team
// or its owning Context. That keeps the owner collectible: a GC cleanup on
// the Context closes quit and the parked workers exit, so Contexts dropped
// from a sync.Pool do not leak goroutines.
type team struct {
	st   *teamState
	size int // worker goroutine count (excludes the calling goroutine)
}

type teamState struct {
	wake []chan struct{}
	quit chan struct{}
	stop sync.Once
	job  func(w int)
	wg   sync.WaitGroup
}

func newTeam(workers int) *team {
	st := &teamState{
		wake: make([]chan struct{}, workers),
		quit: make(chan struct{}),
	}
	for i := range st.wake {
		st.wake[i] = make(chan struct{}, 1)
		go teamWorker(st, i)
	}
	return &team{st: st, size: workers}
}

func teamWorker(st *teamState, id int) {
	for {
		select {
		case <-st.wake[id]:
			st.job(id + 1)
			st.wg.Done()
		case <-st.quit:
			return
		}
	}
}

// run executes job(w) for w in [0, parts), with the caller as part 0 and one
// parked worker per remaining part, and returns when all parts finish. The
// job is published before the wakeup sends and the WaitGroup closes the
// round, so run allocates nothing. parts-1 must not exceed the team size.
func (t *team) run(parts int, job func(w int)) {
	if parts <= 1 {
		job(0)
		return
	}
	st := t.st
	st.job = job
	st.wg.Add(parts - 1)
	for i := 0; i < parts-1; i++ {
		st.wake[i] <- struct{}{}
	}
	job(0)
	st.wg.Wait()
	// Drop the closure reference: the job closes over the owning Context,
	// and the parked workers keep st alive, so a retained job would keep a
	// pool-evicted Context reachable and block its GC cleanup (leaking the
	// workers themselves).
	st.job = nil
}

// close releases the team's workers. Idempotent; must not race with run
// (owners only stop teams between calls).
func (st *teamState) close() {
	st.stop.Do(func() { close(st.quit) })
}

// barrier is a centralised sense-reversing spin barrier. GEMM phases are
// compute-bound and short, so spinning with Gosched beats parking on a
// channel: no allocation, no scheduler round-trip in the common case where
// all workers arrive within a timeslice.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

// reset prepares the barrier for a round of waits by n participants. Must
// not be called while a wait is in flight.
func (b *barrier) reset(n int) {
	b.n = int32(n)
	b.count.Store(0)
	b.gen.Store(0)
}

// wait blocks until all n participants arrive. The last arriver reopens the
// barrier for the next phase before advancing the generation, so back-to-back
// waits are safe.
func (b *barrier) wait() {
	if b.n <= 1 {
		return
	}
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}
