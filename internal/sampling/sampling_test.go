package sampling

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestShapeAccounting(t *testing.T) {
	s := Shape{M: 10, K: 20, N: 30}
	if s.Bytes(4) != 4*(200+600+300) {
		t.Errorf("Bytes = %d", s.Bytes(4))
	}
	if s.Flops() != 2*10*20*30 {
		t.Errorf("Flops = %d", s.Flops())
	}
	if s.MinDim() != 10 {
		t.Errorf("MinDim = %d", s.MinDim())
	}
	if (Shape{M: 5, K: 2, N: 9}).MinDim() != 2 {
		t.Error("MinDim should pick k")
	}
	if s.String() != "10x20x30" {
		t.Errorf("String = %q", s.String())
	}
}

func TestDomainContains(t *testing.T) {
	d := Domain{MaxDim: 100, MaxBytes: 4 * (100 + 100 + 100), ElemBytes: 4}
	if !d.Contains(Shape{10, 10, 10}) {
		t.Error("10x10x10 should fit")
	}
	if d.Contains(Shape{0, 10, 10}) {
		t.Error("zero dim should not fit")
	}
	if d.Contains(Shape{101, 1, 1}) {
		t.Error("dim above MaxDim should not fit")
	}
	if d.Contains(Shape{100, 100, 100}) {
		t.Error("over-cap shape should not fit")
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(Domain{MaxDim: 0, MaxBytes: 1000, ElemBytes: 4}, 1); err == nil {
		t.Error("MaxDim=0 should fail")
	}
	if _, err := NewSampler(Domain{MaxDim: 10, MaxBytes: 1000, ElemBytes: 3}, 1); err == nil {
		t.Error("ElemBytes=3 should fail")
	}
	if _, err := NewSampler(Domain{MaxDim: 10, MaxBytes: 4, ElemBytes: 4}, 1); err == nil {
		t.Error("cap below 1x1x1 should fail")
	}
}

func TestSamplerRespectsDomain(t *testing.T) {
	dom := DefaultDomain().WithCapMB(100)
	s, err := NewSampler(dom, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range s.Sample(500) {
		if !dom.Contains(sh) {
			t.Fatalf("sample %d out of domain: %v (%d bytes)", i, sh, sh.Bytes(4))
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	dom := DefaultDomain().WithCapMB(100)
	a, _ := NewSampler(dom, 7)
	b, _ := NewSampler(dom, 7)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("samplers with same seed diverged at %d", i)
		}
	}
}

func TestSamplerCoversSmallAndLarge(t *testing.T) {
	dom := DefaultDomain() // 500 MB
	s, _ := NewSampler(dom, 1)
	shapes := s.Sample(1000)
	small, large := 0, 0
	for _, sh := range shapes {
		if sh.MinDim() < 1000 {
			small++
		}
		if sh.M > 10000 || sh.K > 10000 || sh.N > 10000 {
			large++
		}
	}
	if small < 100 {
		t.Errorf("only %d/1000 shapes have a dim < 1000; want broad coverage", small)
	}
	if large < 100 {
		t.Errorf("only %d/1000 shapes have a dim > 10000", large)
	}
}

func TestWithCapMB(t *testing.T) {
	d := DefaultDomain().WithCapMB(100)
	if d.MaxBytes != 100*1000*1000 {
		t.Errorf("cap = %d", d.MaxBytes)
	}
}

func TestPredesignedGrid(t *testing.T) {
	pts := Predesigned()
	if len(pts) != 6*4*6 {
		t.Fatalf("grid has %d points, want 144", len(pts))
	}
	families := map[string]int{}
	for _, p := range pts {
		families[p.Family]++
		if p.Shape.M < 1 || p.Shape.K < 1 || p.Shape.N < 1 {
			t.Fatalf("bad shape %v", p.Shape)
		}
	}
	if len(families) != 24 {
		t.Errorf("expected 24 family labels, got %d", len(families))
	}
	for f, c := range families {
		if c != 6 {
			t.Errorf("family %q has %d points, want 6", f, c)
		}
	}
	// Spot-check the Table VII shapes exist in the grid.
	found := 0
	for _, p := range pts {
		if p.Shape == (Shape{64, 2048, 64}) || p.Shape == (Shape{64, 64, 4096}) {
			found++
		}
	}
	if found < 2 {
		t.Errorf("Table VII shapes missing from predesigned grid (found %d)", found)
	}
	// Family naming sanity.
	if !strings.Contains(pts[0].Family, "m=32") {
		t.Errorf("unexpected family name %q", pts[0].Family)
	}
}

// TestSamplerSkip pins the distributed-gather sharding primitive: skipping
// n accepted samples lands exactly where drawing n would have, so unit
// (start, count) slices reassemble the full sweep for any partition.
func TestSamplerSkip(t *testing.T) {
	dom := DefaultDomain().WithCapMB(100)
	ref, err := NewSampler(dom, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Sample(20)

	for _, start := range []int{0, 1, 7, 19} {
		s, err := NewSampler(dom, 7)
		if err != nil {
			t.Fatal(err)
		}
		s.Skip(start)
		got := s.Sample(20 - start)
		for i, sh := range got {
			if sh != want[start+i] {
				t.Fatalf("Skip(%d): sample %d = %v, want %v", start, i, sh, want[start+i])
			}
		}
	}
}

// Property: every sampled shape is in-domain for arbitrary caps.
func TestSamplerDomainProperty(t *testing.T) {
	f := func(capMB uint8, seed int64) bool {
		mb := 1 + int(capMB%200)
		dom := DefaultDomain().WithCapMB(mb)
		s, err := NewSampler(dom, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			if !dom.Contains(s.Next()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
