// Package metricname_a exercises the metricname analyzer against the real
// obs registry API.
package metricname_a

import "repro/internal/obs"

// register holds the conventional (negative) cases and each naming
// violation class.
func register(r *obs.Registry) {
	r.Counter("adsala_requests_total", "requests served")
	r.Gauge("adsala_queue_depth", "queued requests")
	r.Histogram("adsala_rank_seconds", "ranking latency", 1e-9)

	r.Counter("adsala_Requests_total", "uppercase")      // want `does not match the project scheme`
	r.Counter("adsala_requests", "missing suffix")       // want `counter "adsala_requests" must end in _total`
	r.Gauge("adsala_flushes_total", "counter suffix")    // want `gauge "adsala_flushes_total" must not end in _total`
	r.Histogram("adsala_rank_latency", "unitless", 1e-9) // want `histogram "adsala_rank_latency" must end in a unit suffix`
	r.Counter(dynamicName(), "computed name")            // want `must be a literal string`
}

func dynamicName() string { return "adsala_dynamic_total" }

// conflict registers one name as two different metric types — the class
// that panics inside obs at serve time.
func conflict(r *obs.Registry) {
	r.Gauge("adsala_depth_size", "as a gauge")
	r.RegisterHistogram("adsala_depth_size", "as a histogram", nil) // want `already registered as a gauge .* registering it as a histogram panics at runtime`
}

// dupA/dupB register the same name at two sites with nothing to tell the
// series apart.
func dupA(r *obs.Registry) {
	r.Counter("adsala_dup_total", "site one")
}

func dupB(r *obs.Registry) {
	r.Counter("adsala_dup_total", "site two") // want `registered at multiple sites .* without labels`
}

// workerA/workerB are the sanctioned multi-site shape: labels distinguish
// the series (mirrors the gather worker registrations) — no finding.
func workerA(r *obs.Registry) {
	r.Counter("adsala_worker_units_total", "units", obs.Label{Name: "worker", Value: "a"})
}

func workerB(r *obs.Registry) {
	r.Counter("adsala_worker_units_total", "units", obs.Label{Name: "worker", Value: "b"})
}
