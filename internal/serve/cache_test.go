package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheSizing(t *testing.T) {
	c := NewCache(0, 0)
	if c.Capacity() != 4096 || c.Shards() != 16 {
		t.Errorf("defaults: cap %d shards %d", c.Capacity(), c.Shards())
	}
	c = NewCache(100, 3)
	if c.Capacity() != 128 || c.Shards() != 4 {
		t.Errorf("rounding: cap %d shards %d, want 128/4", c.Capacity(), c.Shards())
	}
	// Shards clamp to capacity.
	c = NewCache(2, 64)
	if c.Shards() != 2 {
		t.Errorf("shards %d > capacity 2", c.Shards())
	}
	// Absurd sizes clamp instead of overflowing or hanging.
	c = NewCache(1<<62+1, 1<<40)
	if c.Capacity() != maxCapacity || c.Shards() != maxShards {
		t.Errorf("clamp: cap %d shards %d, want %d/%d", c.Capacity(), c.Shards(), maxCapacity, maxShards)
	}
}

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64, 4)
	if _, ok := c.Get(OpGEMM, 1, 2, 3); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(OpGEMM, 1, 2, 3, 8)
	if th, ok := c.Get(OpGEMM, 1, 2, 3); !ok || th != 8 {
		t.Fatalf("got (%d,%v), want (8,true)", th, ok)
	}
	// Overwrite in place.
	c.Put(OpGEMM, 1, 2, 3, 16)
	if th, _ := c.Get(OpGEMM, 1, 2, 3); th != 16 {
		t.Fatalf("overwrite: got %d, want 16", th)
	}
	if c.Len() != 1 {
		t.Fatalf("Len %d, want 1", c.Len())
	}
	// Permuted dimensions are distinct keys.
	c.Put(OpGEMM, 3, 2, 1, 4)
	if th, ok := c.Get(OpGEMM, 3, 2, 1); !ok || th != 4 {
		t.Fatalf("permuted key collided: (%d,%v)", th, ok)
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats (%d,%d), want (3,1)", hits, misses)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len %d after Reset", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats (%d,%d) after Reset", h, m)
	}
	// Reusable after reset.
	c.Put(OpGEMM, 9, 9, 9, 2)
	if th, ok := c.Get(OpGEMM, 9, 9, 9); !ok || th != 2 {
		t.Fatalf("post-reset put lost: (%d,%v)", th, ok)
	}
}

// TestCacheLRUEviction drives one shard past capacity and checks that the
// least recently used entries fall out first.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4, 1) // single shard, 4 slots
	for i := 1; i <= 4; i++ {
		c.Put(OpGEMM, i, i, i, i)
	}
	c.Get(OpGEMM, 1, 1, 1) // refresh 1: now 2 is the LRU
	c.Put(OpGEMM, 5, 5, 5, 5)
	if _, ok := c.Get(OpGEMM, 2, 2, 2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, want := range []int{1, 3, 4, 5} {
		if th, ok := c.Get(OpGEMM, want, want, want); !ok || th != want {
			t.Fatalf("entry %d: (%d,%v)", want, th, ok)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len %d, want 4", c.Len())
	}
}

// TestCacheEvictionChurn pushes far more keys than capacity through the
// cache and verifies the size invariant and internal consistency hold.
func TestCacheEvictionChurn(t *testing.T) {
	c := NewCache(64, 8)
	for i := 0; i < 10000; i++ {
		c.Put(OpGEMM, i, i*7, i*13, 1+i%32)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	// The most recent keys of each shard should still resolve correctly.
	found := 0
	for i := 9900; i < 10000; i++ {
		if th, ok := c.Get(OpGEMM, i, i*7, i*13); ok {
			found++
			if th != 1+i%32 {
				t.Fatalf("key %d: threads %d, want %d", i, th, 1+i%32)
			}
		}
	}
	if found == 0 {
		t.Fatal("no recent keys survived churn")
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run under
// -race this validates the locking discipline.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := (g*2000 + i) % 300
				c.Put(OpGEMM, key, key+1, key+2, key%32+1)
				if th, ok := c.Get(OpGEMM, key, key+1, key+2); ok && th != key%32+1 {
					panic(fmt.Sprintf("key %d read %d", key, th))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

func TestShapeKeyHashSpread(t *testing.T) {
	// Sequential small dimensions must not all land in one shard.
	const shards = 16
	var hist [shards]int
	for m := 1; m <= 32; m++ {
		for k := 1; k <= 8; k++ {
			hist[shapeKey{OpGEMM, m, k, m + k}.hash()&(shards-1)]++
		}
	}
	for i, n := range hist {
		if n == 0 {
			t.Errorf("shard %d received no keys", i)
		}
	}
}
