// Package dataset provides the column-named tabular container shared by the
// sampling, preprocessing, training and experiment layers, with CSV
// round-tripping for the install-time artefacts.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
)

// Dataset is a feature matrix with named columns and a regression target.
// Rows of X and elements of Y correspond one-to-one.
type Dataset struct {
	Cols []string    // feature column names
	X    [][]float64 // row-major feature rows
	Y    []float64   // regression target (GEMM runtime in seconds)
}

// New returns an empty dataset with the given column names.
func New(cols []string) *Dataset {
	return &Dataset{Cols: append([]string(nil), cols...)}
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one row. It panics if the row width disagrees with Cols —
// construction is programmer-controlled.
func (d *Dataset) Append(row []float64, y float64) {
	if len(row) != len(d.Cols) {
		panic(fmt.Sprintf("dataset: row width %d != %d columns", len(row), len(d.Cols)))
	}
	d.X = append(d.X, row)
	d.Y = append(d.Y, y)
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := New(d.Cols)
	c.X = make([][]float64, len(d.X))
	for i, r := range d.X {
		c.X[i] = append([]float64(nil), r...)
	}
	c.Y = append([]float64(nil), d.Y...)
	return c
}

// Column returns a copy of the values of the named column.
func (d *Dataset) Column(name string) ([]float64, error) {
	idx := -1
	for i, c := range d.Cols {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("dataset: no column %q", name)
	}
	out := make([]float64, len(d.X))
	for i, r := range d.X {
		out[i] = r[idx]
	}
	return out, nil
}

// Select returns a new dataset containing only the named columns (in the
// given order), sharing no storage with the receiver.
func (d *Dataset) Select(cols []string) (*Dataset, error) {
	idx := make([]int, len(cols))
	for j, want := range cols {
		idx[j] = -1
		for i, c := range d.Cols {
			if c == want {
				idx[j] = i
				break
			}
		}
		if idx[j] < 0 {
			return nil, fmt.Errorf("dataset: no column %q", want)
		}
	}
	out := New(cols)
	for i, r := range d.X {
		row := make([]float64, len(cols))
		for j, ix := range idx {
			row[j] = r[ix]
		}
		out.Append(row, d.Y[i])
	}
	return out, nil
}

// Subset returns the rows at the given indices as a new dataset (rows are
// deep-copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	out := New(d.Cols)
	for _, i := range indices {
		out.Append(append([]float64(nil), d.X[i]...), d.Y[i])
	}
	return out
}

// Shuffle permutes rows in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset into train and test sets with testFrac of
// rows (rounded) in the test set, after a seeded shuffle of row indices.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	n := d.Len()
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n)*testFrac + 0.5)
	return d.Subset(idx[nTest:]), d.Subset(idx[:nTest])
}

// StratifiedSplit partitions rows into train/test keeping the distribution
// of Y similar in both parts (§IV-C): rows are sorted by Y, grouped into
// contiguous strata of size ~1/testFrac, and one random row per stratum
// goes to the test set.
func (d *Dataset) StratifiedSplit(testFrac float64, seed int64) (train, test *Dataset) {
	n := d.Len()
	if n == 0 || testFrac <= 0 {
		return d.Subset(seqIndices(n)), New(d.Cols)
	}
	if testFrac >= 1 {
		return New(d.Cols), d.Subset(seqIndices(n))
	}
	order := seqIndices(n)
	sort.Slice(order, func(a, b int) bool { return d.Y[order[a]] < d.Y[order[b]] })

	rng := rand.New(rand.NewSource(seed))
	stratum := int(1/testFrac + 0.5)
	if stratum < 2 {
		stratum = 2
	}
	var trainIdx, testIdx []int
	for lo := 0; lo < n; lo += stratum {
		hi := lo + stratum
		if hi > n {
			hi = n
		}
		pick := lo + rng.Intn(hi-lo)
		for i := lo; i < hi; i++ {
			if i == pick && hi-lo > 1 {
				testIdx = append(testIdx, order[i])
			} else {
				trainIdx = append(trainIdx, order[i])
			}
		}
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

func seqIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// WriteCSV writes the dataset with a header row; the target column is
// written last under the name "y".
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), d.Cols...), "y")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < 1 || header[len(header)-1] != "y" {
		return nil, fmt.Errorf("dataset: last column must be \"y\", got %v", header)
	}
	d := New(header[:len(header)-1])
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		row := make([]float64, len(rec)-1)
		for j := range row {
			if row[j], err = strconv.ParseFloat(rec[j], 64); err != nil {
				return nil, fmt.Errorf("dataset: line %d col %d: %w", line, j, err)
			}
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d target: %w", line, err)
		}
		d.Append(row, y)
	}
	return d, nil
}
