package main

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	adsala "repro"
)

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, bad := range [][]string{
		{"-m", "0"},
		{"-k", "-5"},
		{"-n", "0"},
		{"-m", "abc"},
		{"-no-such-flag"},
	} {
		if err := run(bad, &out); err == nil {
			t.Errorf("run(%v) should error", bad)
		}
	}
	if err := run([]string{"-lib", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing library should error")
	}
}

func TestRunHelpPrintsUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h) = %v, want nil", err)
	}
	for _, flagName := range []string{"-lib", "-m", "-k", "-n"} {
		if !strings.Contains(out.String(), flagName) {
			t.Errorf("usage missing %s:\n%s", flagName, out.String())
		}
	}
}

func TestRunPrintsRanking(t *testing.T) {
	lib, _, err := adsala.Train(adsala.TrainOptions{Platform: "Gadi", Shapes: 80, Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-lib", path, "-m", "512", "-k", "512", "-n", "512"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	opt := lib.OptimalThreads(512, 512, 512)
	if !strings.Contains(got, "optimal threads: "+strconv.Itoa(opt)) {
		t.Errorf("output missing the selected optimum %d:\n%s", opt, got)
	}
	if !strings.Contains(got, "<== selected") {
		t.Errorf("output missing the selection marker:\n%s", got)
	}
	if !strings.Contains(got, "platform=Gadi") {
		t.Errorf("output missing the platform line:\n%s", got)
	}
	// One table row per candidate.
	for _, c := range lib.Candidates() {
		if !strings.Contains(got, "\n"+strconv.Itoa(c)) && !strings.Contains(got, " "+strconv.Itoa(c)) {
			t.Errorf("candidate %d missing from the table:\n%s", c, got)
		}
	}
}
