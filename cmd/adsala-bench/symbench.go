package main

// Shared trajectory harness for the symmetric-update kernels: -syrk-json
// and -syr2k-json measure the packed kernel (GFLOPS and allocations per
// shape × thread count) with testing.Benchmark and write machine-readable
// reports with one common layout (the GEMM harness in gemmbench.go predates
// it and carries its own committed-baseline schema). The single-thread
// cases also time the naive per-element reference. CI runs 1-iteration
// smokes of the same harness; committed BENCH_syrk.json / BENCH_syr2k.json
// files record the trajectories per development machine.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
)

// symBenchCase is one measured configuration of an n×n rank-k update.
type symBenchCase struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	Threads int    `json:"threads"`
}

// symBenchEntry is one row of the report.
type symBenchEntry struct {
	symBenchCase
	NsPerOp     float64 `json:"ns_per_op"`
	GFLOPS      float64 `json:"gflops"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// NaiveNsPerOp and SpeedupVsNaive compare against the per-element
	// reference; measured only for the single-thread cases.
	NaiveNsPerOp   float64 `json:"naive_ns_per_op,omitempty"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// symBenchReport is the file layout of BENCH_syrk.json / BENCH_syr2k.json.
type symBenchReport struct {
	Schema      string          `json:"schema"`
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	Note        string          `json:"note"`
	Results     []symBenchEntry `json:"results"`
}

// symBenchSpec parameterises the harness per operation — the op-specific
// facts (FLOP formula, operand setup, kernel and naive bindings), so a new
// symmetric op is one spec, not a third copy of the harness.
type symBenchSpec struct {
	// label prefixes the stderr progress lines ("syrk-bench" etc.).
	label string
	// schema and note are the report header fields.
	schema, note string
	// casePrefix names the cases ("ssyrk" → "ssyrk-256-t2").
	casePrefix string
	// smallN/smallK is the small-path shape appended to the sweep (the
	// no-packing threshold differs per op).
	smallN, smallK int
	// flops returns the op's FLOP count at (n, k).
	flops func(n, k int) float64
	// newRunners allocates operands for (n, k) and returns the packed
	// kernel closure (on the given context) and the naive reference.
	newRunners func(ctx *blas.Context, n, k int, rng *rand.Rand) (run func(threads int) error, naive func())
}

// syrkBenchSpec is the -syrk-json harness configuration.
func syrkBenchSpec() symBenchSpec {
	return symBenchSpec{
		label:      "syrk-bench",
		schema:     "adsala/bench-syrk/v1",
		note:       "flops = n*(n+1)*k; steady-state pooled-context path; naive = serial per-element reference (pre-packed SYRK)",
		casePrefix: "ssyrk",
		smallN:     32, smallK: 32,
		flops: func(n, k int) float64 { return float64(n) * float64(n+1) * float64(k) },
		newRunners: func(ctx *blas.Context, n, k int, rng *rand.Rand) (func(threads int) error, func()) {
			a := mat.NewF32(n, k)
			c := mat.NewF32(n, n)
			a.FillRandom(rng)
			return func(threads int) error { return ctx.SSYRK(false, 1, a, 0, c, threads) },
				func() { blas.NaiveSSYRK(false, 1, a, 0, c) }
		},
	}
}

// syr2kBenchSpec is the -syr2k-json harness configuration.
func syr2kBenchSpec() symBenchSpec {
	return symBenchSpec{
		label:      "syr2k-bench",
		schema:     "adsala/bench-syr2k/v1",
		note:       "flops = 2*n*(n+1)*k; steady-state pooled-context path; naive = serial per-element reference",
		casePrefix: "ssyr2k",
		smallN:     24, smallK: 24, // the rank-2k no-packing threshold halves in k
		flops: func(n, k int) float64 { return 2 * float64(n) * float64(n+1) * float64(k) },
		newRunners: func(ctx *blas.Context, n, k int, rng *rand.Rand) (func(threads int) error, func()) {
			a := mat.NewF32(n, k)
			b := mat.NewF32(n, k)
			c := mat.NewF32(n, n)
			a.FillRandom(rng)
			b.FillRandom(rng)
			return func(threads int) error { return ctx.SSYR2K(false, 1, a, b, 0, c, threads) },
				func() { blas.NaiveSSYR2K(false, 1, a, b, 0, c) }
		},
	}
}

func runSyrkBench(path string, smoke bool) error { return runSymBench(syrkBenchSpec(), path, smoke) }

func runSyr2kBench(path string, smoke bool) error { return runSymBench(syr2kBenchSpec(), path, smoke) }

// symBenchCases is the measured sweep: the cube sizes of the GEMM
// trajectory at the thread counts a 1–4 core machine can express, plus a
// wide-k panel shape and the op's small-path shape.
func symBenchCases(spec symBenchSpec) []symBenchCase {
	var cases []symBenchCase
	for _, size := range []int{64, 128, 256, 512} {
		for _, threads := range []int{1, 2, 4} {
			cases = append(cases, symBenchCase{
				Name: fmt.Sprintf("%s-%d-t%d", spec.casePrefix, size, threads),
				N:    size, K: size, Threads: threads,
			})
		}
	}
	cases = append(cases,
		symBenchCase{Name: spec.casePrefix + "-widek-t1", N: 64, K: 2048, Threads: 1},
		symBenchCase{Name: spec.casePrefix + "-small-t1", N: spec.smallN, K: spec.smallK, Threads: 1},
	)
	return cases
}

// runSymBench measures every case and writes the JSON report to path.
// smoke restricts each case to a single iteration (the CI regression guard:
// it exercises the full harness without paying benchmark time).
func runSymBench(spec symBenchSpec, path string, smoke bool) error {
	report := symBenchReport{
		Schema:      spec.schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Note:        spec.note,
	}
	if smoke {
		report.Note += "; SMOKE RUN (1 iteration per case, timings not meaningful)"
	}
	for _, bc := range symBenchCases(spec) {
		ctx := blas.NewContext()
		run, naive := spec.newRunners(ctx, bc.N, bc.K, rand.New(rand.NewSource(1)))
		// Warm outside the measurement so steady-state allocation is
		// reported (buffers, team, and worker closure are created once).
		if err := run(bc.Threads); err != nil {
			return fmt.Errorf("%s %s: %w", spec.label, bc.Name, err)
		}
		entry := symBenchEntry{symBenchCase: bc}
		if !smoke {
			res := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					if err := run(bc.Threads); err != nil {
						tb.Fatal(err)
					}
				}
			})
			entry.NsPerOp = float64(res.T.Nanoseconds()) / float64(res.N)
			entry.GFLOPS = spec.flops(bc.N, bc.K) / entry.NsPerOp
			entry.AllocsPerOp = res.AllocsPerOp()
			entry.BytesPerOp = res.AllocedBytesPerOp()
			if bc.Threads == 1 {
				nres := testing.Benchmark(func(tb *testing.B) {
					for i := 0; i < tb.N; i++ {
						naive()
					}
				})
				entry.NaiveNsPerOp = float64(nres.T.Nanoseconds()) / float64(nres.N)
				entry.SpeedupVsNaive = entry.NaiveNsPerOp / entry.NsPerOp
			}
		} else {
			naive() // smoke the reference too
		}
		ctx.Close()
		report.Results = append(report.Results, entry)
		benchLog.Infof("%s %-17s %8.2f GFLOPS  %3d allocs/op  %5.2fx vs naive",
			spec.label, bc.Name, entry.GFLOPS, entry.AllocsPerOp, entry.SpeedupVsNaive)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
