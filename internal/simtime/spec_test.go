package simtime

import (
	"encoding/json"
	"testing"

	"repro/internal/machine"
	"repro/internal/ops"
)

// TestSpecBuildSim pins the distributed-gather contract: a Spec that
// travelled over the wire builds a Simulator timing identically to the one
// the training path constructs locally.
func TestSpecBuildSim(t *testing.T) {
	spec := SimSpec("Gadi", 5, true)
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wired Spec
	if err := json.Unmarshal(blob, &wired); err != nil {
		t.Fatal(err)
	}
	timer, err := wired.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(machine.Gadi())
	cfg.HT = true
	cfg.Seed = 5
	local := New(cfg)

	for _, c := range [][4]int{{64, 2048, 64, 96}, {512, 512, 512, 12}, {33, 7, 1025, 1}} {
		want := local.MeasureMean(c[0], c[1], c[2], c[3], 3)
		got := timer.(*Simulator).MeasureMean(c[0], c[1], c[2], c[3], 3)
		if got != want {
			t.Errorf("%v: wired simulator %v, local %v", c, got, want)
		}
		wantOp := local.MeasureMeanOp(ops.SYRK, c[0], c[1], c[0], c[3], 2)
		gotOp := timer.(*Simulator).MeasureMeanOp(ops.SYRK, c[0], c[1], c[0], c[3], 2)
		if gotOp != wantOp {
			t.Errorf("syrk %v: wired simulator %v, local %v", c, gotOp, wantOp)
		}
	}
}

// TestSpecBuildSimNoHT checks the HT flag reaches the built simulator.
func TestSpecBuildSimNoHT(t *testing.T) {
	timer, err := SimSpec("Gadi", 1, false).Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := timer.(*Simulator)
	if sim.Config().HT {
		t.Error("HT=false spec built an HT simulator")
	}
	if got, want := sim.MaxThreads(), machine.Gadi().PhysicalCores(); got != want {
		t.Errorf("MaxThreads = %d, want the physical core count %d", got, want)
	}
}

// TestSpecBuildReal covers the real backend and the error paths.
func TestSpecBuildReal(t *testing.T) {
	timer, err := RealSpec(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if rt, ok := timer.(*RealTimer); !ok || rt.Iters != 2 {
		t.Errorf("RealSpec built %T (iters?)", timer)
	}
	if _, err := (Spec{Backend: "quantum"}).Build(); err == nil {
		t.Error("unknown backend should error")
	}
	if _, err := (Spec{Backend: BackendSim, Platform: "NoSuchMachine"}).Build(); err == nil {
		t.Error("unknown platform should error")
	}
}
