package preprocess

import (
	"fmt"
	"math"
)

// StandardScaler is a fitted per-feature standardisation: z = (x - Mean)/Std.
type StandardScaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FitScaler computes per-column means and (population) standard deviations.
// Constant columns get Std 1 so their transform is a pure shift.
func FitScaler(X [][]float64) (StandardScaler, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return StandardScaler{}, fmt.Errorf("preprocess: scaler fit on empty data")
	}
	w := len(X[0])
	s := StandardScaler{Mean: make([]float64, w), Std: make([]float64, w)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform standardises row in place and returns it.
func (s StandardScaler) Transform(row []float64) []float64 {
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
	return row
}
