// Package simtime provides GEMM wall-time measurement backends for ADSALA.
//
// Two backends implement the Timer interface:
//
//   - Simulator: an analytical performance model of multi-threaded GEMM on a
//     machine.Node topology. It decomposes wall time into the same three
//     components the paper's VTune profiling isolates in Table VII — thread
//     synchronisation, data copy (panel packing) and kernel FLOPs — plus the
//     per-call thread-team fork/join cost, and adds seeded log-normal
//     measurement noise. This stands in for exclusive access to the Setonix
//     and Gadi nodes, which cannot be reproduced on this container.
//
//   - RealTimer (realtimer.go): wall-clock timing of the pure-Go blas GEMM
//     on the local host, used by tests and the quickstart example.
//
// The mechanisms modelled, and the paper observations they reproduce:
//
//   - fork/join and barrier costs grow linearly in the thread count, so
//     small GEMMs prefer few threads (Figs 1, 8);
//   - packing traffic becomes increasingly redundant as threads shrink the
//     per-thread block below panel granularity, which is what makes
//     64×2048×64 at max threads ~100× slower than at 14 threads (Table VII);
//   - kernel efficiency needs enough K to amortise tile load/store and
//     enough M×N tiles to feed all threads, so skinny shapes cannot use the
//     full machine (Figs 13, 14);
//   - aggregate memory bandwidth saturates per NUMA domain and crossing the
//     socket boundary adds latency, so the optimal count often sits near a
//     topology boundary (Fig 9);
//   - thread-based affinity halves the physical cores used for p below half
//     the hardware-thread count (Fig 7); SMT siblings yield only ~15-20%
//     extra throughput (Tables V vs VI).
package simtime

import (
	"math"

	"repro/internal/machine"
)

// Timer measures (or predicts) the wall time in seconds of one GEMM of the
// given dimensions executed with the given number of threads.
type Timer interface {
	Time(m, k, n, threads int) float64
}

// Precision selects the GEMM data type.
type Precision int

const (
	F32 Precision = iota // single precision (SGEMM)
	F64                  // double precision (DGEMM)
)

// Bytes returns the element size in bytes.
func (p Precision) Bytes() int64 {
	if p == F64 {
		return 8
	}
	return 4
}

// Config parameterises a Simulator.
type Config struct {
	Node      *machine.Node
	Policy    machine.AffinityPolicy
	HT        bool // hyper-threading enabled (thread counts may exceed cores)
	Precision Precision

	// NoiseSigma is the standard deviation of the multiplicative log-normal
	// measurement noise. Zero disables noise. The paper runs 10 iterations
	// per configuration to suppress exactly this noise.
	NoiseSigma float64
	Seed       int64

	// Blocking parameters of the simulated BLAS (panel sizes driving barrier
	// counts and packing volume).
	NC, KC, MC int
}

// DefaultConfig returns a Simulator configuration for the given node with
// hyper-threading on, core-based affinity, SGEMM, and 4% measurement noise.
func DefaultConfig(node *machine.Node) Config {
	return Config{
		Node:       node,
		Policy:     machine.CoreBased,
		HT:         true,
		Precision:  F32,
		NoiseSigma: 0.04,
		Seed:       1,
		NC:         4096,
		KC:         256,
		MC:         144,
	}
}

// Breakdown is the wall-time decomposition of one GEMM call, in seconds.
// It matches the component split of Table VII (spawn folded into Sync there).
type Breakdown struct {
	Spawn  float64 // thread-team fork/join
	Sync   float64 // barrier synchronisation
	Copy   float64 // panel packing data movement
	Kernel float64 // micro-kernel FLOPs (incl. memory-bound stalls)
}

// Total returns the summed wall time.
func (b Breakdown) Total() float64 { return b.Spawn + b.Sync + b.Copy + b.Kernel }

// Simulator is an analytical GEMM timing model over a node topology.
// It is safe for concurrent use.
type Simulator struct {
	cfg Config
}

// New returns a Simulator for the configuration. It panics if the node is
// missing or invalid — configuration is programmer error, not runtime input.
func New(cfg Config) *Simulator {
	if cfg.Node == nil {
		panic("simtime: Config.Node is nil")
	}
	if err := cfg.Node.Validate(); err != nil {
		panic("simtime: " + err.Error())
	}
	if cfg.NC <= 0 {
		cfg.NC = 4096
	}
	if cfg.KC <= 0 {
		cfg.KC = 256
	}
	if cfg.MC <= 0 {
		cfg.MC = 144
	}
	return &Simulator{cfg: cfg}
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// MaxThreads returns the largest thread count the simulated platform runs.
func (s *Simulator) MaxThreads() int { return s.cfg.Node.MaxThreads(s.cfg.HT) }

// grainFlops is the library's internal dynamic-threading grain: like MKL
// with MKL_DYNAMIC (the default) or BLIS's small-matrix paths, the simulated
// BLAS never spawns more threads than flops/grainFlops, however many the
// caller requests. This is why even the max-thread baseline is not
// arbitrarily slow on minuscule GEMMs.
const grainFlops = 50_000

// EffectiveThreads returns the thread count the simulated library actually
// runs for the given problem when threads are requested.
func (s *Simulator) EffectiveThreads(m, k, n, threads int) int {
	flops := 2 * float64(m) * float64(k) * float64(n)
	cap := int(math.Ceil(flops / grainFlops))
	if cap < 1 {
		cap = 1
	}
	if threads > cap {
		return cap
	}
	if threads < 1 {
		return 1
	}
	return threads
}

// Breakdown returns the noiseless wall-time decomposition for one GEMM.
func (s *Simulator) Breakdown(m, k, n, threads int) Breakdown {
	node := s.cfg.Node
	pl := node.Place(s.EffectiveThreads(m, k, n, threads), s.cfg.Policy, s.cfg.HT)
	p := float64(pl.Threads)
	prec := s.cfg.Precision.Bytes()

	flops := 2 * float64(m) * float64(k) * float64(n)

	// --- Fork/join -------------------------------------------------------
	spawn := node.SpawnPerThreadNs * p * 1e-9

	// --- Barriers --------------------------------------------------------
	// One barrier after the shared B-pack and one closing each (jc, pc)
	// iteration, plus the final join.
	iters := float64(ceilDiv(n, s.cfg.NC) * ceilDiv(k, s.cfg.KC))
	barrier := node.SyncBaseNs + node.SyncPerThreadNs*p
	if pl.SocketsUsed > 1 {
		barrier += node.SyncCrossSocketNs * p
	}
	sync := (2*iters + 1) * barrier * 1e-9
	if pl.Threads == 1 {
		sync = 0 // single thread: no barriers at all
		spawn = 0
	}

	// --- Effective memory bandwidth --------------------------------------
	// Interleaved NUMA policy spreads pages over every domain; accesses from
	// the occupied domains to the rest cross the socket link.
	bw := s.effectiveBandwidth(pl)

	// --- Packing (data copy) ---------------------------------------------
	copySec := s.copyTime(m, k, n, pl, prec, bw, flops)

	// --- Kernel ------------------------------------------------------------
	kernel := s.kernelTime(m, k, n, pl, prec, bw, flops)

	return Breakdown{Spawn: spawn, Sync: sync, Copy: copySec, Kernel: kernel}
}

// effectiveBandwidth returns the aggregate streaming bandwidth, in bytes/s,
// available to the placed team under the interleave NUMA policy.
func (s *Simulator) effectiveBandwidth(pl machine.Placement) float64 {
	node := s.cfg.Node
	numaTotal := float64(node.NUMADomains())
	numaUsed := float64(pl.NUMAUsed)
	// A single core cannot saturate a domain: per-core streaming capability.
	perCore := node.MemBWPerNUMA / 3.0
	demand := float64(pl.PhysicalCores) * perCore

	// Interleaved pages: fraction local to the occupied domains vs remote.
	localFrac := numaUsed / numaTotal
	localCap := numaUsed * node.MemBWPerNUMA
	remoteCap := node.InterSocketBW
	if pl.SocketsUsed == node.Sockets {
		// Team spans all sockets: every domain is "local" to some thread.
		localFrac, localCap = 1, numaTotal*node.MemBWPerNUMA
	}
	cap := localFrac*localCap + (1-localFrac)*minF(remoteCap, localCap)
	return minF(demand, cap) * 1e9 // GB/s → B/s
}

// tileDim is the register tile edge of the simulated vendor kernel; C
// exposes ceil(m/tileDim)*ceil(n/tileDim) independent tiles of parallelism.
const tileDim = 8

// cTiles returns the number of independent C tiles.
func cTiles(m, n int) float64 {
	return math.Ceil(float64(m)/tileDim) * math.Ceil(float64(n)/tileDim)
}

// copyTime models panel-packing cost. Packed volume is the BLIS baseline
// (B packed once per panel sweep, A repacked per jc block). Two degradations
// apply:
//
//   - mild duplication and bandwidth loss as the per-thread work shrinks
//     (threads touch overlapping panels);
//   - the k-split regime: when the team is larger than the number of C
//     tiles, threads must split the K dimension and reduce into shared C
//     through contended cache lines. This coherence storm is the mechanism
//     behind the 163 ms data-copy time of 64×2048×64 at 96 threads in
//     Table VII.
func (s *Simulator) copyTime(m, k, n int, pl machine.Placement, prec int64, bw, flops float64) float64 {
	node := s.cfg.Node
	p := float64(pl.Threads)

	if pl.Threads == 1 {
		// Single-threaded small GEMM takes the unpacked direct path when the
		// operands fit in the last-level cache.
		bytes := float64(prec) * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
		l3 := node.L3MBPerCCX * 1e6 * float64(pl.CCXUsed)
		if bytes <= l3 {
			return 0
		}
	}

	volA := float64(m) * float64(k) * float64(ceilDiv(n, s.cfg.NC))
	volB := float64(k) * float64(n)
	vol := (volA + volB) * float64(prec)

	// Mild duplication: per-thread useful work below ~1 MFLOP makes packing
	// partially duplicated across the team.
	perThreadWork := flops / p
	smallness := 1.0 / (1.0 + perThreadWork/3e5)
	redundancy := 1 + 0.12*(p-1)*smallness
	copyBW := bw / (1 + 0.03*p*smallness)
	t := vol * redundancy / copyBW

	// K-split coherence storm: with s = p/tiles threads sharing each C tile,
	// s partial results are reduced into shared cache lines, re-walked once
	// per KC panel (bounded: the library re-blocks very deep K).
	tiles := cTiles(m, n)
	if p > tiles {
		sharers := p / tiles
		rounds := math.Min(float64(ceilDiv(k, s.cfg.KC)), 6)
		linesC := float64(m) * float64(n) * float64(prec) / 64
		t += linesC * sharers * rounds * p * node.CoherenceNs * 1e-9
	}
	return t
}

// kernelTime models the packed micro-kernel phase as a roofline of compute
// and memory streaming, degraded by K-amortisation, tile granularity and
// load imbalance.
func (s *Simulator) kernelTime(m, k, n int, pl machine.Placement, prec int64, bw, flops float64) float64 {
	node := s.cfg.Node
	perCoreGF := node.BaseGHz * node.FlopsPerCycleF32
	if s.cfg.Precision == F64 {
		perCoreGF /= 2
	}

	// Tile-level parallelism: the jr/ir loops expose ceil(m/8)*ceil(n/8)
	// register tiles.
	tiles := cTiles(m, n)
	busy := minF(float64(pl.Threads), tiles)
	// Load imbalance: each busy thread owns ceil(tiles/busy) tiles.
	imbalance := math.Ceil(tiles/busy) * busy / tiles

	// Fraction of the team that has work, converted to compute units.
	units := pl.ComputeUnits * busy / float64(pl.Threads)

	// K-amortisation: short K cannot hide tile load/store latency.
	eK := float64(k) / (float64(k) + 48)
	// Achievable fraction of peak for well-formed panels.
	const eBase = 0.80
	// Tiny M or N leaves vector lanes idle inside the tile.
	eM := minF(1, float64(m)/tileDim)
	eN := minF(1, float64(n)/tileDim)

	rate := units * perCoreGF * 1e9 * eBase * eK * eM * eN
	tFlops := flops * imbalance / rate

	// K-split regime: threads sharing a C tile run tiny rank-k chunks whose
	// per-invocation overhead dwarfs the FLOPs.
	if p := float64(pl.Threads); p > tiles {
		tFlops *= 1 + 0.3*(p-tiles)
	}

	// Memory-bound floor: each operand streamed at least once per KC sweep.
	bytes := float64(prec) * (float64(m)*float64(k) + float64(k)*float64(n) + 2*float64(m)*float64(n))
	tMem := bytes / bw
	return maxF(tFlops, tMem)
}

// Time returns one noisy wall-time measurement in seconds. The noise draw is
// a deterministic function of (dims, threads, seed) and an internal sequence
// position derived from the inputs, so identical experiments reproduce.
func (s *Simulator) Time(m, k, n, threads int) float64 {
	return s.TimeRep(m, k, n, threads, 0)
}

// TimeRep returns the rep-th noisy measurement of the configuration. Reps
// differ only in their noise draw.
func (s *Simulator) TimeRep(m, k, n, threads, rep int) float64 {
	t := s.Breakdown(m, k, n, threads).Total()
	if s.cfg.NoiseSigma <= 0 {
		return t
	}
	z := gaussian(hash6(s.cfg.Seed, int64(m), int64(k), int64(n), int64(threads), int64(rep)))
	return t * math.Exp(s.cfg.NoiseSigma*z-0.5*s.cfg.NoiseSigma*s.cfg.NoiseSigma)
}

// MeasureMean returns the mean of iters noisy measurements, matching the
// paper's 10-iteration timing loop (§V-B.3).
func (s *Simulator) MeasureMean(m, k, n, threads, iters int) float64 {
	if iters < 1 {
		iters = 1
	}
	var sum float64
	for r := 0; r < iters; r++ {
		sum += s.TimeRep(m, k, n, threads, r)
	}
	return sum / float64(iters)
}

// GFLOPS returns the noiseless throughput of the configuration in GFLOPS.
func (s *Simulator) GFLOPS(m, k, n, threads int) float64 {
	t := s.Breakdown(m, k, n, threads).Total()
	return 2 * float64(m) * float64(k) * float64(n) / t / 1e9
}

var _ Timer = (*Simulator)(nil)

// hash6 mixes six 64-bit values with a splitmix64-style finaliser.
func hash6(vals ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// gaussian converts a uniform hash to a standard normal via Box-Muller.
func gaussian(h uint64) float64 {
	u1 := (float64(h>>11) + 0.5) / float64(1<<53)
	u2 := (float64((h*0x9e3779b97f4a7c15)>>11) + 0.5) / float64(1<<53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
