// Package blas implements the level-3 GEMM routine (C ← αAB + βC) in pure
// Go, following the BLIS five-loop blocked-and-packed design: the operand
// matrices are partitioned into cache-sized panels (NC/KC/MC), panels are
// packed into contiguous buffers, and an MR×NR register micro-kernel performs
// the innermost rank-KC update. A goroutine team parallelises the MC loop,
// mirroring how MKL/BLIS thread the same loop with OpenMP.
//
// The package plays the role of the paper's vendor BLAS: ADSALA treats it as
// a black box whose only tunable is the thread count. Its cost structure —
// per-call fork/join, per-panel packing copies, per-iteration barriers and
// the FLOP kernel — is exactly the decomposition the paper's VTune profiling
// reports in Table VII.
package blas

import (
	"fmt"
	"sync"

	"repro/internal/mat"
)

// Params holds the blocking parameters of the five-loop algorithm.
type Params struct {
	MC, KC, NC int // cache block sizes (rows of A, depth, cols of B)
	MR, NR     int // register micro-tile
}

// DefaultParams returns blocking parameters sized for typical L1/L2/L3
// capacities. MR and NR match the hand-unrolled micro-kernel and must not be
// changed independently of it.
func DefaultParams() Params {
	return Params{MC: 128, KC: 256, NC: 2048, MR: microMR, NR: microNR}
}

// Validate reports whether the parameters can drive the packed kernel.
func (p Params) Validate() error {
	if p.MC < 1 || p.KC < 1 || p.NC < 1 {
		return fmt.Errorf("blas: non-positive block sizes %+v", p)
	}
	if p.MR != microMR || p.NR != microNR {
		return fmt.Errorf("blas: micro-tile %dx%d unsupported (kernel is %dx%d)", p.MR, p.NR, microMR, microNR)
	}
	if p.MC%p.MR != 0 {
		return fmt.Errorf("blas: MC=%d must be a multiple of MR=%d", p.MC, p.MR)
	}
	if p.NC%p.NR != 0 {
		return fmt.Errorf("blas: NC=%d must be a multiple of NR=%d", p.NC, p.NR)
	}
	return nil
}

// SGEMM computes C ← alpha·op(A)·op(B) + beta·C in single precision using
// the given number of worker goroutines (threads < 1 is treated as 1).
// op(A) is A when transA is false and Aᵀ otherwise; likewise for B.
// Dimension compatibility follows the BLAS convention: with m×k = op(A),
// k×n = op(B), C must be m×n.
func SGEMM(transA, transB bool, alpha float32, a *mat.F32, b *mat.F32, beta float32, c *mat.F32, threads int) error {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float32]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float32]{c.Rows, c.Cols, c.Stride, c.Data}
	return gemm(transA, transB, alpha, av, bv, beta, cv, threads, DefaultParams())
}

// DGEMM is the double-precision counterpart of SGEMM.
func DGEMM(transA, transB bool, alpha float64, a *mat.F64, b *mat.F64, beta float64, c *mat.F64, threads int) error {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float64]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float64]{c.Rows, c.Cols, c.Stride, c.Data}
	return gemm(transA, transB, alpha, av, bv, beta, cv, threads, DefaultParams())
}

// SGEMMWithParams is SGEMM with explicit blocking parameters; it exists for
// the blocking-parameter benchmarks.
func SGEMMWithParams(transA, transB bool, alpha float32, a *mat.F32, b *mat.F32, beta float32, c *mat.F32, threads int, p Params) error {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float32]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float32]{c.Rows, c.Cols, c.Stride, c.Data}
	return gemm(transA, transB, alpha, av, bv, beta, cv, threads, p)
}

// view is a type-parameterised matrix header over a flat backing slice.
type view[T float32 | float64] struct {
	rows, cols, stride int
	data               []T
}

func (v view[T]) at(i, j int) T { return v.data[i*v.stride+j] }

// opDims returns the dimensions of op(X).
func opDims[T float32 | float64](v view[T], trans bool) (rows, cols int) {
	if trans {
		return v.cols, v.rows
	}
	return v.rows, v.cols
}

// opAt reads element (i, j) of op(X).
func opAt[T float32 | float64](v view[T], trans bool, i, j int) T {
	if trans {
		return v.at(j, i)
	}
	return v.at(i, j)
}

func gemm[T float32 | float64](transA, transB bool, alpha T, a, b view[T], beta T, c view[T], threads int, prm Params) error {
	if err := prm.Validate(); err != nil {
		return err
	}
	m, ka := opDims(a, transA)
	kb, n := opDims(b, transB)
	if ka != kb {
		return fmt.Errorf("blas: inner dimensions differ: op(A) is %dx%d, op(B) is %dx%d", m, ka, kb, n)
	}
	if c.rows != m || c.cols != n {
		return fmt.Errorf("blas: C is %dx%d, want %dx%d", c.rows, c.cols, m, n)
	}
	k := ka
	if threads < 1 {
		threads = 1
	}

	// Degenerate cases per the BLAS spec: no FLOPs, only the beta scaling.
	if m == 0 || n == 0 {
		return nil
	}
	if alpha == 0 || k == 0 {
		scaleC(c, beta)
		return nil
	}

	parallelGemm(transA, transB, alpha, a, b, beta, c, m, n, k, threads, prm)
	return nil
}

// scaleC applies C ← beta·C.
func scaleC[T float32 | float64](c view[T], beta T) {
	for i := 0; i < c.rows; i++ {
		row := c.data[i*c.stride : i*c.stride+c.cols]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		if beta != 1 {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

// parallelGemm runs the five-loop algorithm with a fork-join goroutine team.
// Loop structure (outer to inner): jc over NC columns of C, pc over KC depth,
// ic over MC rows (parallelised across the team), then the packed macro- and
// micro-kernels. beta is applied on the first pc iteration only.
func parallelGemm[T float32 | float64](transA, transB bool, alpha T, a, b view[T], beta T, c view[T], m, n, k, threads int, prm Params) {
	if threads > m/prm.MR+1 {
		// No point having workers with no MR-row band to own.
		threads = m/prm.MR + 1
	}

	type task struct {
		jc, pc, ic int
		nc, kc, mc int
		first      bool // first pc iteration: apply beta
	}

	// Per-worker packed-A buffers; shared packed-B panel per (jc, pc).
	// Buffers are sized to the actual problem so small GEMMs do not pay for
	// full cache-sized panels.
	kcEff := min(prm.KC, k)
	ncEff := min(prm.NC, (n+prm.NR-1)/prm.NR*prm.NR)
	mcEff := min(prm.MC, (m+prm.MR-1)/prm.MR*prm.MR)
	packedB := make([]T, kcEff*ncEff)
	bufA := make([][]T, threads)
	for w := range bufA {
		bufA[w] = make([]T, mcEff*kcEff)
	}

	for jc := 0; jc < n; jc += prm.NC {
		nc := min(prm.NC, n-jc)
		for pc := 0; pc < k; pc += prm.KC {
			kc := min(prm.KC, k-pc)
			first := pc == 0

			// Pack B(pc:pc+kc, jc:jc+nc) into column-panel layout, split
			// across the team (this is the shared packing phase that the
			// cost model charges as data-copy plus one barrier).
			packBParallel(b, transB, pc, jc, kc, nc, packedB, prm.NR, threads)

			// Parallel ic loop: each worker owns a contiguous band of MC
			// blocks. A second barrier closes the iteration.
			var wg sync.WaitGroup
			nBlocks := (m + prm.MC - 1) / prm.MC
			for w := 0; w < threads; w++ {
				lo := nBlocks * w / threads
				hi := nBlocks * (w + 1) / threads
				if lo == hi {
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for blk := lo; blk < hi; blk++ {
						ic := blk * prm.MC
						mc := min(prm.MC, m-ic)
						packA(a, transA, ic, pc, mc, kc, bufA[w], prm.MR)
						macroKernel(alpha, bufA[w], packedB, beta, c, ic, jc, mc, nc, kc, first, prm)
					}
				}(w, lo, hi)
			}
			wg.Wait()
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
