// Quickstart: train an ADSALA library against the simulated Gadi node, look
// at the model comparison, ask it for thread counts, and run a real GEMM
// through the ML-driven front end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	adsala "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Installation: gather timings on the (simulated) platform, train and
	// select the model. Quick mode keeps this to a few seconds.
	fmt.Println("== training ADSALA for the Gadi platform (2x 24-core Cascade Lake) ==")
	lib, report, err := adsala.Train(adsala.TrainOptions{
		Platform: "Gadi", Shapes: 120, Quick: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("selected model: %s, evaluation latency %.0f us\n\n",
		lib.ModelKind(), lib.EvalLatency()*1e6)

	// 2. Ask the model for thread counts across very different shapes.
	fmt.Println("== model-selected thread counts (max on Gadi: 96) ==")
	shapes := [][3]int{
		{64, 64, 64},       // tiny: parallel overheads dominate
		{64, 2048, 64},     // the Table VII pathology: skinny K-panel
		{512, 512, 512},    // medium square
		{6000, 6000, 6000}, // large square: wants the whole machine
	}
	for _, s := range shapes {
		threads := lib.OptimalThreads(s[0], s[1], s[2])
		pred := lib.PredictRuntime(s[0], s[1], s[2], threads)
		fmt.Printf("  %5dx%5dx%5d -> %3d threads (predicted %8.1f us)\n",
			s[0], s[1], s[2], threads, pred*1e6)
	}

	// 3. Run an actual GEMM through the front end: the model picks the
	// thread count (clamped to this machine's cores), the built-in blocked
	// GEMM executes it.
	fmt.Println("\n== executing a real SGEMM through the ADSALA front end ==")
	g := lib.NewGemm()
	rng := rand.New(rand.NewSource(1))
	m, k, n := 256, 384, 128
	a := adsala.NewMatrixF32(m, k)
	b := adsala.NewMatrixF32(k, n)
	c := adsala.NewMatrixF32(m, n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	if err := g.SGEMM(false, false, 1, a, b, 0, c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A(%dx%d) * B(%dx%d) done with %d threads; C[0,0] = %f\n",
		m, k, k, n, g.LastChoice(m, k, n), c.At(0, 0))
}
