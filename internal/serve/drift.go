package serve

import (
	"repro/internal/drift"
)

// SetDriftMonitor attaches (or detaches, with nil) the online drift
// monitor: every subsequent RecordMeasured call scores its
// measured-prediction pair into the monitor's sliding windows. Like the
// flight recorder, the engine does not own the monitor's lifecycle, and
// the hot path pays one atomic pointer load when monitoring is off.
func (e *Engine) SetDriftMonitor(m *drift.Monitor) { e.drift.Store(m) }

// DriftMonitor returns the attached drift monitor, or nil when drift
// monitoring is off.
func (e *Engine) DriftMonitor() *drift.Monitor { return e.drift.Load() }
