package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRegisterProcessMetrics pins the process-identity exposition:
// adsala_build_info carries the version labels with constant value 1, and
// adsala_uptime_seconds is a non-negative gauge.
func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	RegisterProcessMetrics(r) // idempotent

	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	if !strings.Contains(text, `adsala_build_info{go_version="`) {
		t.Errorf("exposition missing adsala_build_info go_version label:\n%s", text)
	}
	if !strings.Contains(text, `version="`+Version()+`"`) {
		t.Errorf("exposition missing version=%q label:\n%s", Version(), text)
	}
	if !strings.Contains(text, "} 1\n") {
		t.Errorf("adsala_build_info should expose constant 1:\n%s", text)
	}
	if !strings.Contains(text, "adsala_uptime_seconds ") {
		t.Errorf("exposition missing adsala_uptime_seconds:\n%s", text)
	}
	if strings.Contains(text, "adsala_uptime_seconds -") {
		t.Errorf("uptime went negative:\n%s", text)
	}
}

// TestMountPprof pins the shared pprof wiring: the index answers under
// /debug/pprof/ on a mux it was mounted on.
func TestMountPprof(t *testing.T) {
	mux := http.NewServeMux()
	MountPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index body missing profile listing")
	}
}
