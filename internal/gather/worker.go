package gather

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/simtime"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Name is reported in results and /register answers (diagnostics).
	Name string
	// RequireSim rejects registrations asking for the real-timing backend —
	// the cmd/adsala-worker -sim guard, so a CI or test worker can never be
	// talked into wall-clock timing.
	RequireSim bool
	// Concurrency bounds simultaneously executing units. The default 1 is
	// deliberate: timing wants an otherwise idle machine, and a worker
	// running two units concurrently would perturb both measurements.
	Concurrency int
	// Logf receives lifecycle progress lines (sweep registration); nil
	// discards them.
	Logf func(format string, args ...any)
	// DebugLogf receives per-unit progress lines — one per executed unit,
	// noisy on big sweeps. Nil falls back to Logf, so embedders that wire
	// only one sink keep today's behaviour.
	DebugLogf func(format string, args ...any)
	// ExecDelay, when non-nil, returns an artificial delay inserted before
	// a unit executes — the fault-injection hook the slow-worker tests use.
	ExecDelay func(u Unit) time.Duration
}

// unitState tracks one dispatched unit on the worker.
type unitState struct {
	status  string // statusRunning or statusDone
	err     string // non-empty: execution failed
	fetched bool   // a successful result has been served to the coordinator
	result  *UnitResult
}

// Worker executes timing-sweep work units for a coordinator. It is an
// http.Handler exposing /register, /work, /result, /healthz and /drain; the
// cmd/adsala-worker daemon mounts it behind an http.Server.
//
// Protocol: the coordinator POSTs the SweepSpec to /register (building the
// timing backend from the wire Spec), POSTs units to /work (accepted and
// executed asynchronously, one at a time by default), and polls
// GET /result?session=&id= until the unit reports done. /drain stops the
// worker accepting new units while in-flight ones finish — the graceful
// shutdown path.
type Worker struct {
	opts WorkerOptions
	mux  *http.ServeMux
	sem  chan struct{}

	draining atomic.Bool
	inflight sync.WaitGroup
	running  atomic.Int64

	reg            *obs.Registry
	unitsAccepted  *obs.Counter
	unitsCompleted *obs.Counter
	unitsFailed    *obs.Counter
	unitSeconds    *obs.Histogram

	mu      sync.Mutex
	session string
	run     string
	spec    SweepSpec
	op      ops.Op
	timer   simtime.Timer
	units   map[int]*unitState
}

// NewWorker returns a Worker with the given options.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		opts.Name = "adsala-worker"
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.DebugLogf == nil {
		opts.DebugLogf = opts.Logf
	}
	w := &Worker{
		opts:  opts,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, opts.Concurrency),
		units: make(map[int]*unitState),
		reg:   obs.NewRegistry(),
	}
	w.unitsAccepted = w.reg.Counter("adsala_worker_units_accepted_total",
		"Work units accepted for execution.")
	w.unitsCompleted = w.reg.Counter("adsala_worker_units_completed_total",
		"Work units executed to a successful result.")
	w.unitsFailed = w.reg.Counter("adsala_worker_units_failed_total",
		"Work unit executions that ended in an error.")
	w.unitSeconds = w.reg.Histogram("adsala_worker_unit_seconds",
		"Wall time of one unit execution.", 1e-9)
	w.reg.GaugeFunc("adsala_worker_inflight_units",
		"Units currently executing.",
		func() float64 { return float64(w.running.Load()) })
	w.reg.GaugeFunc("adsala_worker_draining",
		"1 once drain has begun, else 0.",
		func() float64 {
			if w.draining.Load() {
				return 1
			}
			return 0
		})
	w.reg.GaugeFunc("adsala_worker_registered",
		"1 once a sweep session is registered, else 0.",
		func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			if w.session != "" {
				return 1
			}
			return 0
		})
	w.reg.GaugeFunc("adsala_worker_results_unfetched",
		"Completed results not yet collected by a coordinator.",
		func() float64 { return float64(w.Unfetched()) })
	w.mux.HandleFunc("/register", w.handleRegister)
	w.mux.HandleFunc("/work", w.handleWork)
	w.mux.HandleFunc("/result", w.handleResult)
	w.mux.HandleFunc("/healthz", w.handleHealthz)
	w.mux.HandleFunc("/livez", w.handleLivez)
	w.mux.HandleFunc("/drain", w.handleDrain)
	w.mux.Handle("/metrics", w.reg.Handler())
	obs.RegisterProcessMetrics(w.reg)
	return w
}

// Registry returns the worker's metrics registry (served at /metrics), so
// the daemon can attach process-level instruments alongside the worker's.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the worker's mux
// — the same guarded wiring adsala-serve uses. Off by default; a timing
// worker's whole job is to keep the machine quiet, so profiling is strictly
// opt-in (-pprof).
func (w *Worker) EnablePprof() { obs.MountPprof(w.mux) }

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// Drain stops the worker accepting new units and waits for in-flight ones
// to finish (or ctx to expire). Completed results stay queryable via
// /result until the process exits.
func (w *Worker) Drain(ctx context.Context) error {
	w.draining.Store(true)
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(rw http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(rw, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (w *Worker) handleRegister(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var spec SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(rw, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if err := spec.validate(); err != nil {
		writeError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if got := spec.Fingerprint(); spec.Session != got {
		writeError(rw, http.StatusBadRequest,
			"session %q does not match the spec fingerprint %q", spec.Session, got)
		return
	}
	if w.opts.RequireSim && spec.Timer.Backend != simtime.BackendSim {
		writeError(rw, http.StatusConflict,
			"worker runs with -sim and only accepts the %q backend, not %q",
			simtime.BackendSim, spec.Timer.Backend)
		return
	}
	op, err := spec.parseOp()
	if err != nil {
		writeError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	timer, err := spec.Timer.Build()
	if err != nil {
		writeError(rw, http.StatusBadRequest, "%v", err)
		return
	}

	w.mu.Lock()
	if w.session != spec.Session || w.run != spec.Run {
		// A new sweep — or a fresh run of the same sweep — supersedes the
		// previous unit state; results of in-flight old units are discarded
		// when they land. Resetting on a new Run is what makes a repeated
		// real-timing install re-measure instead of replaying cached
		// wall-clock data from the previous run.
		w.session = spec.Session
		w.run = spec.Run
		w.spec = spec
		w.op = op
		w.timer = timer
		w.units = make(map[int]*unitState)
	}
	w.mu.Unlock()
	w.opts.Logf("registered sweep %s: op=%s backend=%s candidates=%d iters=%d",
		spec.Session, spec.Op, spec.Timer.Backend, len(spec.Candidates), spec.Iters)
	writeJSON(rw, http.StatusOK, RegisterResponse{Worker: w.opts.Name, Backend: spec.Timer.Backend})
}

func (w *Worker) handleWork(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if w.draining.Load() {
		writeError(rw, http.StatusServiceUnavailable, "worker is draining")
		return
	}
	var req WorkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "decode work request: %v", err)
		return
	}
	if req.Unit.Start < 0 || req.Unit.Count < 1 {
		writeError(rw, http.StatusBadRequest, "unit %d has invalid range [%d, %d)",
			req.Unit.ID, req.Unit.Start, req.Unit.Start+req.Unit.Count)
		return
	}

	w.mu.Lock()
	if w.session == "" || req.Session != w.session {
		w.mu.Unlock()
		writeError(rw, http.StatusConflict, "session %q is not registered", req.Session)
		return
	}
	if st, ok := w.units[req.Unit.ID]; ok && st.err == "" {
		// Re-dispatch of a unit this worker already has running or done
		// (e.g. after a coordinator-side poll failure): idempotent. A unit
		// that FAILED falls through instead — caching the error would turn
		// every retry into a replay of the stale failure, retiring a
		// healthy worker without ever re-executing.
		status := st.status
		w.mu.Unlock()
		writeJSON(rw, http.StatusAccepted, StatusResponse{Status: status})
		return
	}
	w.units[req.Unit.ID] = &unitState{status: statusRunning}
	session, run, spec, op, timer := w.session, w.run, w.spec, w.op, w.timer
	w.mu.Unlock()

	w.unitsAccepted.Inc()
	w.inflight.Add(1)
	go w.exec(session, run, spec, op, timer, req.Unit)
	writeJSON(rw, http.StatusAccepted, StatusResponse{Status: statusAccepted})
}

// exec runs one unit to completion and records its state. Units execute
// through exactly the single-node sweep code path (core.SampleOpShapes +
// core.MeasureSweep), which is what makes the distributed merge reproduce
// the local gather.
func (w *Worker) exec(session, run string, spec SweepSpec, op ops.Op, timer simtime.Timer, u Unit) {
	defer w.inflight.Done()
	w.sem <- struct{}{}
	defer func() { <-w.sem }()
	w.running.Add(1)
	defer w.running.Add(-1)

	if w.opts.ExecDelay != nil {
		if d := w.opts.ExecDelay(u); d > 0 {
			time.Sleep(d)
		}
	}

	start := time.Now()
	res, err := runUnit(spec, op, timer, u, w.opts.Name)
	w.unitSeconds.ObserveSince(start)
	if err != nil {
		w.unitsFailed.Inc()
	} else {
		w.unitsCompleted.Inc()
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.session != session || w.run != run {
		return // superseded by a new registration; drop the stale result
	}
	st := w.units[u.ID]
	if st == nil {
		return
	}
	if err != nil {
		st.status = statusDone
		st.err = err.Error()
		w.opts.DebugLogf("unit %d failed: %v", u.ID, err)
		return
	}
	st.status = statusDone
	st.result = res
	w.opts.DebugLogf("unit %d done: shapes [%d, %d)", u.ID, u.Start, u.Start+u.Count)
}

// runUnit executes one unit against the spec and returns its result.
func runUnit(spec SweepSpec, op ops.Op, timer simtime.Timer, u Unit, worker string) (*UnitResult, error) {
	shapes, err := core.SampleOpShapes(spec.Domain, spec.Seed, op, u.Start, u.Count)
	if err != nil {
		return nil, err
	}
	timings, err := core.MeasureSweep(timer, op, shapes, spec.Candidates, spec.Iters)
	if err != nil {
		return nil, err
	}
	return &UnitResult{
		Session: spec.Session,
		UnitID:  u.ID,
		Start:   u.Start,
		Count:   u.Count,
		Worker:  worker,
		Timings: timings,
	}, nil
}

func (w *Worker) handleResult(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	session := r.URL.Query().Get("session")
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		writeError(rw, http.StatusBadRequest, "query parameter %q: want a unit id", "id")
		return
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.session == "" || session != w.session {
		writeError(rw, http.StatusConflict, "session %q is not registered", session)
		return
	}
	st, ok := w.units[id]
	if !ok {
		writeError(rw, http.StatusNotFound, "unit %d is not known to this worker", id)
		return
	}
	switch {
	case st.status == statusRunning:
		writeJSON(rw, http.StatusAccepted, StatusResponse{Status: statusRunning})
	case st.err != "":
		writeError(rw, http.StatusInternalServerError, "unit %d failed: %s", id, st.err)
	default:
		st.fetched = true
		writeJSON(rw, http.StatusOK, st.result)
	}
}

// Unfetched returns the number of successfully completed units whose result
// has not yet been served to a coordinator — the work a draining daemon
// should linger for so it is not thrown away.
func (w *Worker) Unfetched() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, st := range w.units {
		if st.status == statusDone && st.err == "" && !st.fetched {
			n++
		}
	}
	return n
}

// WaitFetched blocks until every completed result has been fetched or ctx
// expires — the post-drain linger that lets the coordinator collect the
// final in-flight units before the daemon exits.
func (w *Worker) WaitFetched(ctx context.Context) error {
	for {
		if w.Unfetched() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// statusBody assembles the shared health payload and whether the worker is
// ready for coordinator traffic: registered and not draining.
func (w *Worker) statusBody() (StatusResponse, bool) {
	w.mu.Lock()
	session := w.session
	completed := 0
	for _, st := range w.units {
		if st.status == statusDone {
			completed++
		}
	}
	w.mu.Unlock()
	draining := w.draining.Load()
	status := "ok"
	switch {
	case draining:
		status = "draining"
	case session == "":
		status = "starting"
	}
	return StatusResponse{
		Status:     status,
		Session:    session,
		Registered: session != "",
		Completed:  completed,
		Inflight:   int(w.running.Load()),
		Draining:   draining,
	}, status == "ok"
}

// handleHealthz is the readiness probe: 200 only once a sweep session has
// been registered and drain has not begun, 503 otherwise — so a load
// balancer (or the CI wait loop) routing coordinator traffic by readiness
// skips workers that would refuse it anyway.
func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	body, ready := w.statusBody()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(rw, status, body)
}

// handleLivez is the liveness probe: 200 whenever the process answers,
// registered or not.
func (w *Worker) handleLivez(rw http.ResponseWriter, r *http.Request) {
	body, _ := w.statusBody()
	writeJSON(rw, http.StatusOK, body)
}

func (w *Worker) handleDrain(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	w.draining.Store(true)
	writeJSON(rw, http.StatusOK, StatusResponse{Status: "draining", Draining: true})
}
