package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// instant is a Sleep that never waits but still honours cancellation.
func instant(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestDoSucceedsFirstAttempt(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Sleep: instant}, func(ctx context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want nil after 1", err, calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Sleep: instant}, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	base := errors.New("boom")
	err := Do(context.Background(), Policy{MaxAttempts: 3, Sleep: instant}, func(ctx context.Context) error {
		calls++
		return base
	})
	if calls != 3 {
		t.Fatalf("made %d attempts, want 3", calls)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("error %v, want ExhaustedError with 3 attempts", err)
	}
	if !errors.Is(err, base) {
		t.Fatalf("exhausted error does not wrap the last attempt error: %v", err)
	}
}

func TestFatalStopsImmediately(t *testing.T) {
	calls := 0
	base := errors.New("bad request")
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: instant}, func(ctx context.Context) error {
		calls++
		return Fatal(base)
	})
	if calls != 1 {
		t.Fatalf("made %d attempts after a fatal error, want 1", calls)
	}
	if !IsFatal(err) || !errors.Is(err, base) {
		t.Fatalf("error %v: want fatal wrapping %v", err, base)
	}
}

func TestFatalNilStaysNil(t *testing.T) {
	if Fatal(nil) != nil {
		t.Fatal("Fatal(nil) != nil")
	}
	if IsFatal(errors.New("x")) {
		t.Fatal("plain error reported fatal")
	}
}

func TestFatalSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("outer: %w", Fatal(errors.New("inner")))
	if !IsFatal(err) {
		t.Fatal("fatal marker lost through fmt.Errorf %w wrapping")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestJitterDeterministicWithSeededSource(t *testing.T) {
	mk := func() Policy {
		rng := rand.New(rand.NewSource(42))
		return Policy{Initial: time.Second, Jitter: 0.5, Rand: rng.Float64}.norm()
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		da := a.jittered(a.Backoff(i))
		db := b.jittered(b.Backoff(i))
		if da != db {
			t.Fatalf("seeded jitter diverged at step %d: %v vs %v", i, da, db)
		}
		base := a.Backoff(i)
		if da > base || da < time.Duration(float64(base)*0.5) {
			t.Fatalf("jittered backoff %v outside [%v, %v]", da, time.Duration(float64(base)*0.5), base)
		}
	}
}

func TestBudgetPropagatesIntoAttemptContext(t *testing.T) {
	var deadline time.Time
	start := time.Now()
	err := Do(context.Background(), Policy{Budget: time.Minute, MaxAttempts: 1}, func(ctx context.Context) error {
		d, ok := ctx.Deadline()
		if !ok {
			t.Fatal("attempt context carries no budget deadline")
		}
		deadline = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := deadline.Sub(start); got > time.Minute+time.Second || got < 50*time.Second {
		t.Fatalf("budget deadline %v from start, want ~1m", got)
	}
}

func TestAttemptTimeoutTighterThanBudget(t *testing.T) {
	err := Do(context.Background(), Policy{
		Budget:         time.Minute,
		AttemptTimeout: 5 * time.Millisecond,
		MaxAttempts:    2,
		Sleep:          instant,
	}, func(ctx context.Context) error {
		<-ctx.Done() // the per-attempt deadline must fire, not the budget
		return ctx.Err()
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v, want exhaustion after per-attempt timeouts", err)
	}
	if !errors.Is(ex.Last, context.DeadlineExceeded) {
		t.Fatalf("last error %v, want DeadlineExceeded", ex.Last)
	}
}

func TestBudgetExpiryReportsLastError(t *testing.T) {
	base := errors.New("still failing")
	err := Do(context.Background(), Policy{
		Budget:      10 * time.Millisecond,
		MaxAttempts: -1, // unbounded: only the budget stops the loop
		Initial:     2 * time.Millisecond,
		Max:         2 * time.Millisecond,
	}, func(ctx context.Context) error {
		return base
	})
	if err == nil {
		t.Fatal("unbounded loop with expired budget returned nil")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want budget DeadlineExceeded", err)
	}
}

func TestCallerCancellationStopsLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{Sleep: instant}, func(ctx context.Context) error {
		calls++
		return errors.New("x")
	})
	if calls != 0 {
		t.Fatalf("cancelled context still ran %d attempts", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want Canceled", err)
	}
}

func TestOnRetryObservesEveryRetry(t *testing.T) {
	var seen []int
	_ = Do(context.Background(), Policy{MaxAttempts: 4, Sleep: instant,
		OnRetry: func(attempt int, err error, backoff time.Duration) {
			seen = append(seen, attempt)
		}}, func(ctx context.Context) error {
		return errors.New("x")
	})
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("OnRetry saw %v, want [1 2 3]", seen)
	}
}

func TestDoValue(t *testing.T) {
	calls := 0
	v, err := DoValue(context.Background(), Policy{Sleep: instant}, func(ctx context.Context) (int, error) {
		calls++
		if calls < 2 {
			return 0, errors.New("transient")
		}
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("DoValue = (%d, %v), want (7, nil)", v, err)
	}
}
