package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/tune"
	"repro/internal/ops"
	"repro/internal/preprocess"
	"repro/internal/tabulate"
)

// TrainConfig drives the full installation workflow.
type TrainConfig struct {
	Gather GatherConfig

	// Platform is a display name recorded in the artefact.
	Platform string
	// ReferenceThreads is the baseline thread count for speedup computation
	// (the paper uses the physical core count). It must be a member of
	// Gather.Candidates.
	ReferenceThreads int
	// TestFrac is the held-out fraction of shapes (paper: 0.30).
	TestFrac float64
	// TuneFolds is k for cross validation during hyper-parameter tuning.
	TuneFolds int
	Preproc   preprocess.Options
	Models    []ModelSpec
	Seed      int64
	// Ops lists the operations to gather timings for and train per-op
	// models on (§VII future work: ML thread selection beyond GEMM). Empty
	// means GEMM only. GEMM is always trained — it is the primary model and
	// the fallback for operations without one of their own.
	Ops []ops.Op
	// Gatherer produces each op's timing sweep. Nil selects LocalGatherer
	// (the in-process single-node sweep); a gather.Coordinator shards the
	// same sweep across a worker fleet.
	Gatherer Gatherer
	// Context bounds the installation: cancelling it abandons the gather
	// between units (adsala-train wires SIGINT here so a distributed sweep
	// shuts its fleet dispatch down cleanly). Nil means Background.
	Context context.Context
}

// DefaultTrainConfig assembles the paper's settings around a gather config.
func DefaultTrainConfig(g GatherConfig, platform string, referenceThreads int) TrainConfig {
	return TrainConfig{
		Gather:           g,
		Platform:         platform,
		ReferenceThreads: referenceThreads,
		TestFrac:         0.30,
		TuneFolds:        3,
		Preproc:          preprocess.DefaultOptions(),
		Models:           DefaultModels(g.Seed, false),
		Seed:             g.Seed,
	}
}

// ModelReport is one row of Table III/IV.
type ModelReport struct {
	// Op is the wire name of the operation the row was trained for
	// ("gemm", "syrk", ...).
	Op         string
	Name       string
	Kind       string
	GridChoice string
	RMSE       float64 // test-set RMSE in the (possibly log) target space
	NormRMSE   float64 // divided by the worst model's RMSE
	IdealMean  float64 // mean speedup ignoring evaluation latency
	IdealAgg   float64 // aggregate (total-time ratio) speedup, no latency
	EvalMicros float64 // measured per-selection model evaluation time
	EstMean    float64 // mean speedup including evaluation latency
	EstAgg     float64 // aggregate speedup including evaluation latency
}

// TrainResult is the outcome of the installation workflow.
type TrainResult struct {
	Library *Library
	// Reports is the primary (GEMM) model comparison.
	Reports []ModelReport
	// OpReports holds the comparison per trained operation (GEMM included).
	OpReports map[ops.Op][]ModelReport
	// Data and TestIdx expose the GEMM sweep and its held-out shape indices
	// so experiments can reuse them without re-timing; OpData holds every
	// op's sweep.
	Data    []ShapeTimings
	TestIdx []int
	OpData  map[ops.Op][]ShapeTimings
}

// trainOps normalises cfg.Ops: GEMM first and exactly once, order of the
// rest preserved.
func trainOps(cfg TrainConfig) []ops.Op {
	out := []ops.Op{ops.GEMM}
	for _, op := range cfg.Ops {
		dup := false
		for _, have := range out {
			if op == have {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, op)
		}
	}
	return out
}

// Train executes the installation workflow of Fig 2 end to end — once per
// requested operation — and returns the deployable per-op Library bundle
// plus the model-comparison reports.
func Train(cfg TrainConfig) (*TrainResult, error) {
	res := &TrainResult{
		OpReports: make(map[ops.Op][]ModelReport),
		OpData:    make(map[ops.Op][]ShapeTimings),
	}
	lib := &Library{Platform: cfg.Platform}
	gatherer := cfg.Gatherer
	if gatherer == nil {
		gatherer = LocalGatherer{}
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	for _, op := range trainOps(cfg) {
		g := cfg.Gather
		g.Op = op
		data, err := gatherer.Gather(ctx, g)
		if err != nil {
			return nil, fmt.Errorf("core: gather %v: %w", op, err)
		}
		model, reports, testIdx, err := trainSweep(cfg, op, data, nil)
		if err != nil {
			return nil, fmt.Errorf("core: train %v: %w", op, err)
		}
		lib.SetModel(op, model)
		res.OpReports[op] = reports
		res.OpData[op] = data
		if op == ops.GEMM {
			lib.Candidates = candidatesOf(data[0])
			res.Reports = reports
			res.Data = data
			res.TestIdx = testIdx
		}
	}
	res.Library = lib
	return res, nil
}

// TrainOnData runs the workflow on a pre-gathered GEMM sweep (used by
// experiments that share one gather across several studies).
func TrainOnData(cfg TrainConfig, data []ShapeTimings) (*TrainResult, error) {
	return TrainOnDataWithColumns(cfg, data, nil)
}

// TrainOnDataWithColumns is TrainOnData restricted to a subset of the
// Table II feature columns (nil means all). Used by the feature-set
// ablation.
func TrainOnDataWithColumns(cfg TrainConfig, data []ShapeTimings, cols []string) (*TrainResult, error) {
	model, reports, testIdx, err := trainSweep(cfg, ops.GEMM, data, cols)
	if err != nil {
		return nil, err
	}
	lib := &Library{Platform: cfg.Platform, Candidates: candidatesOf(data[0])}
	lib.SetModel(ops.GEMM, model)
	return &TrainResult{
		Library:   lib,
		Reports:   reports,
		OpReports: map[ops.Op][]ModelReport{ops.GEMM: reports},
		Data:      data,
		TestIdx:   testIdx,
		OpData:    map[ops.Op][]ShapeTimings{ops.GEMM: data},
	}, nil
}

// trainSweep runs preprocess → tune → fit → evaluate → select on one op's
// gathered sweep and returns the selected OpModel, the full model
// comparison, and the held-out shape indices.
func trainSweep(cfg TrainConfig, op ops.Op, data []ShapeTimings, cols []string) (*OpModel, []ModelReport, []int, error) {
	if len(data) < 10 {
		return nil, nil, nil, fmt.Errorf("core: %d shapes is too few to train on", len(data))
	}
	if cfg.TestFrac <= 0 || cfg.TestFrac >= 1 {
		return nil, nil, nil, fmt.Errorf("core: TestFrac %v outside (0,1)", cfg.TestFrac)
	}
	if len(cfg.Models) == 0 {
		return nil, nil, nil, fmt.Errorf("core: no model specs")
	}
	if _, ok := data[0].TimeAt(cfg.ReferenceThreads); !ok {
		return nil, nil, nil, fmt.Errorf("core: reference thread count %d not among timed candidates", cfg.ReferenceThreads)
	}
	if cfg.TuneFolds < 2 {
		cfg.TuneFolds = 3
	}

	// --- Shape-level stratified split -------------------------------------
	// Stratify by the reference-thread runtime so train and test cover the
	// same size spectrum (§IV-C).
	testIdx := stratifiedShapeSplit(data, cfg.ReferenceThreads, cfg.TestFrac, cfg.Seed)
	inTest := make([]bool, len(data))
	for _, i := range testIdx {
		inTest[i] = true
	}
	var trainData, testData []ShapeTimings
	for i, st := range data {
		if inTest[i] {
			testData = append(testData, st)
		} else {
			trainData = append(trainData, st)
		}
	}

	// --- Preprocess --------------------------------------------------------
	trainSet := features.Build(Records(trainData))
	if cols != nil {
		var err error
		if trainSet, err = trainSet.Select(cols); err != nil {
			return nil, nil, nil, err
		}
	}
	pipe, transformed, err := preprocess.Fit(trainSet, cfg.Preproc)
	if err != nil {
		return nil, nil, nil, err
	}

	// Transformed test rows for RMSE.
	testRecs := Records(testData)
	testSet := features.Build(testRecs)
	if cols != nil {
		if testSet, err = testSet.Select(cols); err != nil {
			return nil, nil, nil, err
		}
	}
	testX := make([][]float64, len(testRecs))
	testY := make([]float64, len(testRecs))
	for i := range testRecs {
		testX[i] = pipe.Transform(testSet.X[i])
		y := testRecs[i].Seconds
		if cfg.Preproc.LogTarget {
			y = logOrErr(y)
		}
		testY[i] = y
	}

	// --- Tune, fit and evaluate every candidate family ---------------------
	candidates := candidatesOf(data[0])
	var reports []ModelReport
	models := make(map[string]ml.Regressor, len(cfg.Models))
	for _, spec := range cfg.Models {
		grid, err := tune.GridSearch(spec.Grid, transformed.X, transformed.Y, cfg.TuneFolds, cfg.Seed)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: tuning %s: %w", spec.Name, err)
		}
		model := grid.Best.Factory()
		if err := model.Fit(transformed.X, transformed.Y); err != nil {
			return nil, nil, nil, fmt.Errorf("core: fitting %s: %w", spec.Name, err)
		}
		models[spec.Kind] = model

		rmse := ml.RMSE(ml.PredictBatch(model, testX), testY)
		probe := probeLibrary(cfg.Platform, candidates, op, &OpModel{
			Kind: spec.Kind, Model: model, Pipeline: pipe, Columns: cols,
		})
		evalSec := measureEvalLatency(probe, op, testData)
		idealMean, idealAgg := speedups(probe, op, testData, cfg.ReferenceThreads, 0)
		// The paper's timing protocol (§V-B.3) runs each shape in a
		// 10-iteration loop with the §III-C prediction cache active, so one
		// model evaluation amortises over the loop. Charge the same way.
		iters := cfg.Gather.Iters
		if iters < 1 {
			iters = 10
		}
		estMean, estAgg := speedups(probe, op, testData, cfg.ReferenceThreads, evalSec/float64(iters))
		reports = append(reports, ModelReport{
			Op:   op.String(),
			Name: spec.Name, Kind: spec.Kind, GridChoice: grid.Best.Label,
			RMSE:      rmse,
			IdealMean: idealMean, IdealAgg: idealAgg,
			EvalMicros: evalSec * 1e6,
			EstMean:    estMean, EstAgg: estAgg,
		})
	}

	// Normalised RMSE: worst model = 1.00 (the Tables III/IV convention).
	worst := 0.0
	for _, r := range reports {
		if r.RMSE > worst {
			worst = r.RMSE
		}
	}
	bestIdx := 0
	for i := range reports {
		if worst > 0 {
			reports[i].NormRMSE = reports[i].RMSE / worst
		}
		if reports[i].EstMean > reports[bestIdx].EstMean {
			bestIdx = i
		}
	}

	best := reports[bestIdx]
	return &OpModel{
		Kind:        best.Kind,
		Model:       models[best.Kind],
		Pipeline:    pipe,
		Columns:     cols,
		EvalSeconds: best.EvalMicros / 1e6,
	}, reports, testIdx, nil
}

// probeLibrary builds a throwaway single-model bundle for candidate-model
// evaluation during training.
func probeLibrary(platform string, candidates []int, op ops.Op, m *OpModel) *Library {
	lib := &Library{Platform: platform, Candidates: candidates}
	lib.SetModel(op, m)
	return lib
}

// speedups evaluates the model's thread choices on held-out shapes against
// the reference thread count, returning mean and aggregate speedups. evalSec
// is added to the ADSALA time per call (0 for the "ideal" columns).
func speedups(lib *Library, op ops.Op, test []ShapeTimings, refThreads int, evalSec float64) (mean, agg float64) {
	var sumRatio, sumRef, sumADSALA float64
	n := 0
	for _, st := range test {
		ref, ok := st.TimeAt(refThreads)
		if !ok {
			continue
		}
		choice := lib.OptimalThreadsOp(op, st.Shape.M, st.Shape.K, st.Shape.N)
		chosen, ok := st.TimeAt(choice)
		if !ok {
			continue
		}
		adsala := chosen + evalSec
		sumRatio += ref / adsala
		sumRef += ref
		sumADSALA += adsala
		n++
	}
	if n == 0 || sumADSALA == 0 {
		return 0, 0
	}
	return sumRatio / float64(n), sumRef / sumADSALA
}

// measureEvalLatency times the full thread-selection (pipeline transform +
// model evaluation across every candidate) on this host, averaged over a
// sample of shapes — the t_eval of §IV-D.
func measureEvalLatency(lib *Library, op ops.Op, test []ShapeTimings) float64 {
	probe := test
	if len(probe) > 32 {
		probe = probe[:32]
	}
	if len(probe) == 0 {
		return 0
	}
	// Warm up code paths so the measurement excludes first-call effects.
	for _, st := range probe {
		lib.OptimalThreadsOp(op, st.Shape.M, st.Shape.K, st.Shape.N)
	}
	start := time.Now()
	const reps = 3
	for r := 0; r < reps; r++ {
		for _, st := range probe {
			lib.OptimalThreadsOp(op, st.Shape.M, st.Shape.K, st.Shape.N)
		}
	}
	return time.Since(start).Seconds() / float64(reps*len(probe))
}

// stratifiedShapeSplit picks testFrac of shape indices, stratified by the
// reference-thread runtime.
func stratifiedShapeSplit(data []ShapeTimings, refThreads int, testFrac float64, seed int64) []int {
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	key := func(i int) float64 {
		if t, ok := data[i].TimeAt(refThreads); ok {
			return t
		}
		return data[i].BestMeasured().Seconds
	}
	sort.Slice(order, func(a, b int) bool { return key(order[a]) < key(order[b]) })
	rng := rand.New(rand.NewSource(seed))
	stratum := int(1/testFrac + 0.5)
	if stratum < 2 {
		stratum = 2
	}
	var test []int
	for lo := 0; lo < len(order); lo += stratum {
		hi := lo + stratum
		if hi > len(order) {
			hi = len(order)
		}
		if hi-lo > 1 {
			test = append(test, order[lo+rng.Intn(hi-lo)])
		}
	}
	return test
}

func candidatesOf(st ShapeTimings) []int {
	out := make([]int, len(st.Times))
	for i, ct := range st.Times {
		out[i] = ct.Threads
	}
	return sortedCopy(out)
}

func logOrErr(y float64) float64 {
	if y <= 0 {
		return -30 // degenerate but keeps evaluation going; gather never emits <= 0
	}
	return math.Log(y)
}

// RenderReport formats the model comparison as an aligned text table in the
// layout of Tables III/IV.
func RenderReport(reports []ModelReport) string {
	tb := tabulate.New("Model", "NormRMSE", "IdealMean", "IdealAgg", "Eval(us)", "EstMean", "EstAgg")
	for _, r := range reports {
		tb.Row(r.Name,
			tabulate.F(r.NormRMSE, 2), tabulate.F(r.IdealMean, 2), tabulate.F(r.IdealAgg, 2),
			tabulate.F(r.EvalMicros, 2), tabulate.F(r.EstMean, 2), tabulate.F(r.EstAgg, 2))
	}
	return tb.String()
}
