package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ops"
)

// TestTrainPerOpModels pins the registry-driven training loop: requesting a
// second op gathers its own sweep through the op's cost profile and trains a
// model distinct from GEMM's, and SYRK rankings stop borrowing the GEMM
// model.
func TestTrainPerOpModels(t *testing.T) {
	cfg := DefaultTrainConfig(quickGather(40), "Gadi", 48)
	cfg.Models = DefaultModels(1, true)[:2] // linear + elasticnet: fast
	cfg.Ops = []ops.Op{ops.SYRK}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lib := res.Library
	if !lib.HasModel(ops.GEMM) || !lib.HasModel(ops.SYRK) {
		t.Fatalf("trained ops = %v, want gemm and syrk", lib.TrainedOps())
	}
	if lib.HasModel(ops.SYR2K) {
		t.Error("syr2k model should not exist (falls back to gemm)")
	}
	if lib.ModelFor(ops.SYRK) == lib.ModelFor(ops.GEMM) {
		t.Error("syrk decisions still use the GEMM model object")
	}
	if lib.ModelFor(ops.SYR2K) != lib.ModelFor(ops.GEMM) {
		t.Error("untrained op must fall back to the GEMM model")
	}
	// The SYRK cost profile is roughly half a square GEMM's: the per-op
	// model's runtime estimate at a mid-size square triple must be clearly
	// below the GEMM estimate (not a copy of it).
	const m, k, n = 600, 400, 600
	g := lib.PredictOpSeconds(ops.GEMM, m, k, n, 8)
	s := lib.PredictOpSeconds(ops.SYRK, m, k, n, 8)
	if !(s > 0 && g > 0 && s < g) {
		t.Errorf("predicted seconds gemm=%v syrk=%v, want 0 < syrk < gemm", g, s)
	}
	// Per-op reports carry the op wire name, and both sweeps are exposed.
	for _, op := range []ops.Op{ops.GEMM, ops.SYRK} {
		rows := res.OpReports[op]
		if len(rows) == 0 {
			t.Fatalf("no report rows for %v", op)
		}
		for _, r := range rows {
			if r.Op != op.String() {
				t.Errorf("report row op %q, want %q", r.Op, op)
			}
		}
		if len(res.OpData[op]) != 40 {
			t.Errorf("OpData[%v] has %d shapes, want 40", op, len(res.OpData[op]))
		}
	}
	// SYRK sweeps time canonical (m, k, m) triples.
	for _, st := range res.OpData[ops.SYRK][:5] {
		if st.Shape.N != st.Shape.M {
			t.Fatalf("syrk sweep shape %v not canonical (n != m)", st.Shape)
		}
	}
	// Ranking with the op's own model works end to end.
	if got := lib.OptimalThreadsOp(ops.SYRK, 500, 500, 500); got < 1 || got > 96 {
		t.Errorf("syrk OptimalThreadsOp = %d", got)
	}
}

// TestSaveLoadV2Bundle round-trips a two-op bundle through the v2 artefact
// format and pins that per-op decisions survive.
func TestSaveLoadV2Bundle(t *testing.T) {
	cfg := DefaultTrainConfig(quickGather(40), "Gadi", 48)
	cfg.Models = DefaultModels(1, true)[:1]
	cfg.Ops = []ops.Op{ops.SYRK}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.adsala.json")
	if err := res.Library.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.TrainedOps(), res.Library.TrainedOps(); len(got) != len(want) {
		t.Fatalf("trained ops %v -> %v across save/load", want, got)
	}
	for _, op := range []ops.Op{ops.GEMM, ops.SYRK, ops.SYR2K} {
		for _, sh := range [][3]int{{100, 200, 100}, {512, 512, 512}, {2000, 64, 2000}} {
			a := res.Library.OptimalThreadsOp(op, sh[0], sh[1], sh[2])
			b := back.OptimalThreadsOp(op, sh[0], sh[1], sh[2])
			if a != b {
				t.Errorf("op %v shape %v: decision changed %d -> %d across save/load", op, sh, a, b)
			}
		}
	}
	if back.ModelKind() != res.Library.ModelKind() {
		t.Errorf("primary kind %q -> %q", res.Library.ModelKind(), back.ModelKind())
	}

	// Forward compatibility: an artefact carrying an op this build does not
	// register loads anyway — the unknown entry is skipped and its traffic
	// falls back to the GEMM model, matching the bundle's designed
	// degradation.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	var opsMap map[string]json.RawMessage
	if err := json.Unmarshal(raw["ops"], &opsMap); err != nil {
		t.Fatal(err)
	}
	opsMap["trsm"] = opsMap["syrk"] // pose as a future op's model
	raw["ops"], _ = json.Marshal(opsMap)
	blob, _ = json.Marshal(raw)
	future := filepath.Join(t.TempDir(), "future.adsala.json")
	if err := os.WriteFile(future, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	fwd, err := Load(future)
	if err != nil {
		t.Fatalf("artefact with unknown op entry should load: %v", err)
	}
	if got := fwd.TrainedOps(); len(got) != 2 {
		t.Errorf("forward-compat load trained ops = %v, want the 2 known ops", got)
	}
	if fwd.OptimalThreads(512, 512, 512) != back.OptimalThreads(512, 512, 512) {
		t.Error("forward-compat load changed GEMM decisions")
	}
}

// TestGatherRejectsUnknownOpTimer pins the error path: a Timer without the
// per-op interfaces cannot gather a non-GEMM sweep.
func TestGatherRejectsUnknownOpTimer(t *testing.T) {
	g := quickGather(12)
	g.Timer = timerOnly{g.Timer}
	g.Op = ops.SYRK
	if _, err := Gather(g); err == nil {
		t.Error("gather with a GEMM-only timer should error for syrk")
	}
	g.Op = ops.Op(250)
	if _, err := Gather(g); err == nil {
		t.Error("gather with an unknown op should error")
	}
}

// timerOnly hides every interface beyond simtime.Timer.
type timerOnly struct {
	inner interface{ Time(m, k, n, p int) float64 }
}

func (t timerOnly) Time(m, k, n, p int) float64 { return t.inner.Time(m, k, n, p) }
