package obs

import (
	"math"
	"math/rand"
	"testing"
)

func momentsClose(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestMomentsBasic(t *testing.T) {
	var m Moments
	if m.Count() != 0 || m.Mean() != 0 || m.Var() != 0 {
		t.Fatalf("zero value not empty: %+v", m)
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d, want 8", m.Count())
	}
	momentsClose(t, "Mean", m.Mean(), 5)
	momentsClose(t, "Var", m.Var(), 4)
	momentsClose(t, "Std", m.Std(), 2)
	momentsClose(t, "Min", m.Min(), 2)
	momentsClose(t, "Max", m.Max(), 9)
}

// TestMomentsMerge pins the merge invariant replay relies on: merging
// per-shard aggregators equals aggregating the concatenated stream.
func TestMomentsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	for _, split := range []int{0, 1, 500, 999, 1000} {
		var a, b Moments
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count() != whole.Count() {
			t.Fatalf("split %d: Count = %d, want %d", split, a.Count(), whole.Count())
		}
		momentsClose(t, "merged Mean", a.Mean(), whole.Mean())
		momentsClose(t, "merged Var", a.Var(), whole.Var())
		momentsClose(t, "merged Min", a.Min(), whole.Min())
		momentsClose(t, "merged Max", a.Max(), whole.Max())
	}
}
