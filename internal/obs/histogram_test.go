package obs

import (
	"math"
	"sync"
	"testing"
)

// TestBucketIndexRoundTrip checks that every bucket's upper bound maps
// back into the same bucket and bounds are strictly increasing — the
// invariants exposition and quantile estimation rely on.
func TestBucketIndexRoundTrip(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histNumBuckets; i++ {
		ub := bucketUpper(i)
		if ub <= prev {
			t.Fatalf("bucket %d upper bound %d not above previous %d", i, ub, prev)
		}
		if got := bucketIndex(ub); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, ub, got)
		}
		// The value one past the bound belongs to the next bucket.
		if ub < math.MaxInt64 {
			if got := bucketIndex(ub + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", ub+1, got, i+1)
			}
		}
		prev = ub
	}
	if got := bucketIndex(math.MaxInt64); got != histNumBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", got, histNumBuckets-1)
	}
}

// TestHistogramQuantileError checks the documented 12.5% relative error
// bound on quantile estimates.
func TestHistogramQuantileError(t *testing.T) {
	h := NewHistogram(1)
	// Uniform 1..100000: exact quantiles are q*100000.
	for v := int64(1); v <= 100000; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		got := float64(h.Quantile(q))
		want := q * 100000
		if got < want || got > want*1.125+1 {
			t.Errorf("Quantile(%.2f) = %.0f, want within [%.0f, %.0f]", q, got, want, want*1.125)
		}
	}
	if h.Quantile(0) < 1 {
		t.Errorf("Quantile(0) = %d, want >= 1", h.Quantile(0))
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram(1)
	for i := 0; i < 5; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("median of constant 3 = %d", got)
	}
	if h.Count() != 5 || h.Sum() != 15 {
		t.Errorf("count/sum = %d/%d, want 5/15", h.Count(), h.Sum())
	}
	h.Observe(-7) // clamps to 0
	if got := h.Quantile(0); got != 0 {
		t.Errorf("min after negative observation = %d, want 0", got)
	}
}

// TestHistogramMerge checks that merging per-worker histograms equals
// observing everything into one — the fleet-aggregation contract.
func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(1)
	parts := []*Histogram{NewHistogram(1), NewHistogram(1), NewHistogram(1)}
	for i := int64(1); i <= 3000; i++ {
		whole.Observe(i * 17)
		parts[i%3].Observe(i * 17)
	}
	merged := NewHistogram(1)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d",
			merged.Count(), merged.Sum(), whole.Count(), whole.Sum())
	}
	for i := range whole.buckets {
		if m, w := merged.buckets[i].Load(), whole.buckets[i].Load(); m != w {
			t.Fatalf("bucket %d: merged %d, whole %d", i, m, w)
		}
	}
	merged.Merge(nil) // no-op
	if q1, q2 := merged.Quantile(0.95), whole.Quantile(0.95); q1 != q2 {
		t.Errorf("p95 diverged after merge: %d vs %d", q1, q2)
	}
}

// TestObserveZeroAlloc pins the zero-allocation guarantee of the hot
// path: Observe, ObserveSince and the counter/gauge operations must not
// allocate.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(1e-9)
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(0.5) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op, want 0", n)
	}
}

// TestHistogramConcurrent hammers Observe/Merge/Quantile from many
// goroutines (meaningful under -race) and checks the final tallies.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1)
	scratch := NewHistogram(1)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed*1000 + int64(i))
				if i%512 == 0 {
					scratch.Merge(h)
					_ = h.Quantile(0.99)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}
