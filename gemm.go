package adsala

import (
	"runtime"

	"repro/internal/blas"
	"repro/internal/mat"
	"repro/internal/serve"
)

// Internal aliases backing the exported matrix names.
type (
	matF32 = mat.F32
	matF64 = mat.F64
)

// NewMatrixF32 allocates a zeroed, 64-byte-aligned rows × cols matrix.
func NewMatrixF32(rows, cols int) *MatrixF32 { return mat.NewF32(rows, cols) }

// NewMatrixF64 allocates a zeroed, 64-byte-aligned rows × cols matrix.
func NewMatrixF64(rows, cols int) *MatrixF64 { return mat.NewF64(rows, cols) }

// Gemm is the runtime front end of Fig 3: it wraps the built-in
// multi-threaded GEMM, consulting the library's model for the thread count
// on every call and re-using cached decisions when dimensions repeat. The
// cache generalises §III-C from the single last shape to a sharded LRU over
// many shapes, so concurrent callers with mixed workloads do not serialize
// on one lock. Thread counts are clamped to the local GOMAXPROCS so a
// library trained for a larger platform still runs correctly here.
//
// The full predict→execute path is allocation-free in steady state: cache
// hits rank nothing, and execution draws a warmed blas.Context (packed-panel
// buffers plus a persistent worker team) from the kernel's internal pool.
//
// A Gemm is safe for concurrent use.
type Gemm struct {
	eng *serve.Engine
	// maxLocal caps the executed thread count (0 = GOMAXPROCS).
	maxLocal int
}

// NewGemm returns a GEMM front end bound to the library.
func (l *Library) NewGemm() *Gemm {
	return &Gemm{eng: serve.NewEngine(l.inner, serve.Options{})}
}

// SetMaxLocalThreads overrides the local execution clamp (useful in tests).
func (g *Gemm) SetMaxLocalThreads(n int) { g.maxLocal = n }

// localClamp returns the largest thread count to actually run.
func (g *Gemm) localClamp() int {
	if g.maxLocal > 0 {
		return g.maxLocal
	}
	return runtime.GOMAXPROCS(0)
}

// clampThreads bounds a model decision to [1, max] for local execution
// (shared by the Gemm and Syrk facades).
func clampThreads(threads, max int) int {
	if threads > max {
		threads = max
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// choose returns the model-selected thread count, clamped for local
// execution.
func (g *Gemm) choose(m, k, n int) int {
	return clampThreads(g.eng.Predict(m, k, n), g.localClamp())
}

// SGEMM computes C ← alpha·op(A)·op(B) + beta·C in single precision with the
// model-selected thread count.
func (g *Gemm) SGEMM(transA, transB bool, alpha float32, a, b *MatrixF32, beta float32, c *MatrixF32) error {
	m, n, k := opDimsF32(a, transA, b, transB)
	return blas.SGEMM(transA, transB, alpha, a, b, beta, c, g.choose(m, k, n))
}

// DGEMM is the double-precision counterpart of SGEMM.
func (g *Gemm) DGEMM(transA, transB bool, alpha float64, a, b *MatrixF64, beta float64, c *MatrixF64) error {
	m := a.Rows
	k := a.Cols
	if transA {
		m, k = a.Cols, a.Rows
	}
	n := b.Cols
	if transB {
		n = b.Rows
	}
	return blas.DGEMM(transA, transB, alpha, a, b, beta, c, g.choose(m, k, n))
}

// LastChoice reports the thread count a previous GEMM call (or Predict)
// selected for the given dimensions, clamped the same way execution was. It
// is a read-only peek of the decision cache: no prediction runs and no
// hit/miss counter moves, so introspection cannot distort the serving
// statistics. Returns 0 when the shape has not been selected yet (or its
// entry has been evicted).
func (g *Gemm) LastChoice(m, k, n int) int {
	threads, ok := g.eng.CachedChoice(serve.OpGEMM, m, k, n)
	if !ok {
		return 0
	}
	return clampThreads(threads, g.localClamp())
}

// CacheStats reports (hits, misses) of the repeated-shape prediction cache.
func (g *Gemm) CacheStats() (hits, misses int64) { return g.eng.Cache().Stats() }

func opDimsF32(a *MatrixF32, transA bool, b *MatrixF32, transB bool) (m, n, k int) {
	m, k = a.Rows, a.Cols
	if transA {
		m, k = a.Cols, a.Rows
	}
	n = b.Cols
	if transB {
		n = b.Rows
	}
	return m, n, k
}
