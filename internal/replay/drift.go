package replay

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/trace"
)

// DriftRun runs the online drift detector offline: it streams the trace's
// measurement records through a drift.Monitor on the capture's own clock
// (each record's TS drives the sliding window) and returns the monitor's
// report as of the last record. This is how drift thresholds are tuned —
// run the exact detector the daemon would run over a capture of real
// traffic and see where it would have tripped — and it is the agreement
// oracle for the online /drift endpoint: the same records through the same
// code must produce the same residual statistics.
func DriftRun(lib *core.Library, files []string, cfg drift.Config, includeWarmup bool) (*drift.Report, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("replay: no trace files")
	}
	mon := drift.NewMonitor(cfg)
	scratch := lib.NewScratch()
	var lastTS int64
	_, err := trace.ScanFiles(files, func(rec *trace.Record) error {
		if rec.IsDecision() {
			return nil
		}
		if rec.IsWarmup() && !includeWarmup {
			return nil
		}
		if !rec.Op.Valid() {
			return fmt.Errorf("replay: record with unknown op %d (trace from a newer build?)", rec.Op)
		}
		if rec.MeasuredNs <= 0 || rec.Threads <= 0 {
			return nil
		}
		m, k, n := int(rec.M), int(rec.K), int(rec.N)
		// Score with the same truncation the engine's hot path applies, so
		// online and replayed residuals agree bit-for-bit on shared records.
		var predNs int64
		if lib.ModelFor(rec.Op) != nil {
			predNs = int64(lib.PredictOpSecondsInto(rec.Op, m, k, n, int(rec.Threads), scratch) * 1e9)
		}
		if rec.TS > lastTS {
			lastTS = rec.TS
		}
		mon.ObserveAt(rec.TS, rec.Op, m, k, n, predNs, rec.MeasuredNs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mon.SnapshotAt(lastTS), nil
}
