package gather

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// Config configures a Coordinator.
type Config struct {
	// Workers lists worker daemon addresses ("host:port" or full URLs).
	Workers []string
	// Timer describes the timing backend every worker must build — the
	// wire form of the timer the single-node path would use locally.
	Timer simtime.Spec
	// UnitShapes is the number of sweep shapes per work unit (default 4).
	// Smaller units spread better and lose less work on failure; larger
	// units amortise dispatch overhead.
	UnitShapes int
	// Checkpoint is the path prefix of the resumable JSONL checkpoint;
	// the op's wire name is appended (e.g. "gather.ckpt.gemm"), since
	// core.Train gathers one sweep per op through the same Coordinator.
	// Empty disables checkpointing.
	Checkpoint string
	// UnitTimeout bounds one unit's dispatch-to-result wall time on one
	// worker before the unit is reassigned (default 5m).
	UnitTimeout time.Duration
	// PollInterval is the result polling period (default 50ms).
	PollInterval time.Duration
	// MaxUnitRetries bounds reassignments per unit before the whole gather
	// fails (default 8).
	MaxUnitRetries int
	// WorkerFailureLimit retires a worker after this many consecutive
	// failed units (default 3).
	WorkerFailureLimit int
	// HTTP overrides the transport (default: 15s request timeout).
	HTTP *http.Client
	// Retry is the transport-level retry policy for register and dispatch
	// POSTs (default: 3 attempts, 50 ms initial backoff capped at 500 ms).
	// Result polling derives its own policy from PollInterval and
	// UnitTimeout instead — the poll cadence is the retry cadence.
	Retry retry.Policy
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the coordinator's Prometheus
	// instruments (unit dispatch/retry/duplicate counters, checkpoint
	// writes, per-worker outcome counters and latency histograms).
	// Counters accumulate across Gather calls on the same registry — a
	// multi-op Train shares one set of instruments.
	Metrics *obs.Registry
}

// Stats summarises one completed (or failed) Gather run.
type Stats struct {
	// Units is the size of the sweep plan.
	Units int
	// Resumed counts units satisfied by the checkpoint without dispatch.
	Resumed int
	// Dispatched counts unit executions successfully fetched from workers.
	Dispatched int
	// Retries counts re-dispatches after a worker failure or timeout.
	Retries int
	// Duplicates counts results dropped by the merge dedup (a unit
	// completing on two workers after a reassignment race).
	Duplicates int
	// WorkersRegistered counts workers that accepted the sweep spec.
	WorkersRegistered int
}

// Coordinator shards a timing sweep across a fleet of Workers. It
// implements core.Gatherer, so it plugs straight into core.TrainConfig; the
// merged sweep is ordered by sample index and therefore identical to the
// single-node gather for a deterministic timer.
type Coordinator struct {
	cfg     Config
	metrics *coordMetrics

	mu   sync.Mutex
	last Stats
}

// New returns a Coordinator over the config with defaults applied.
func New(cfg Config) *Coordinator {
	if cfg.UnitShapes < 1 {
		cfg.UnitShapes = 4
	}
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = 5 * time.Minute
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.MaxUnitRetries < 1 {
		cfg.MaxUnitRetries = 8
	}
	if cfg.WorkerFailureLimit < 1 {
		cfg.WorkerFailureLimit = 3
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 15 * time.Second}
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry.MaxAttempts = 3
	}
	if cfg.Retry.Initial <= 0 {
		cfg.Retry.Initial = 50 * time.Millisecond
	}
	if cfg.Retry.Max <= 0 {
		cfg.Retry.Max = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Coordinator{cfg: cfg, metrics: newCoordMetrics(cfg.Metrics)}
}

// Stats returns the statistics of the most recent Gather run.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// pendingUnit is one queued unit with its attempt count.
type pendingUnit struct {
	unit  Unit
	tries int
}

// unitQueue is the mutex-guarded dispatch queue. A plain slice under a lock
// (not a channel): failed units are requeued by worker loops while the
// merger holds no reference to the queue, and a bounded channel could
// deadlock a requeue.
type unitQueue struct {
	mu      sync.Mutex
	pending []pendingUnit
}

func (q *unitQueue) push(pu pendingUnit) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = append(q.pending, pu)
}

func (q *unitQueue) pop() (pendingUnit, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return pendingUnit{}, false
	}
	pu := q.pending[0]
	q.pending = q.pending[1:]
	return pu, true
}

// run is the shared state of one Gather execution.
type run struct {
	ctx    context.Context
	cancel context.CancelFunc
	queue  unitQueue

	fatalOnce sync.Once
	fatalErr  error

	retries    atomic.Int64
	dispatched atomic.Int64
	duplicates atomic.Int64
}

// fail records the first fatal error and stops every loop.
func (r *run) fail(err error) {
	r.fatalOnce.Do(func() {
		r.fatalErr = err
		r.cancel()
	})
}

// Gather implements core.Gatherer: it shards cfg's sweep over the worker
// fleet and returns the merged timings in sample order. cfg.Timer is
// ignored — the workers build their backend from the coordinator's wire
// Spec instead. Cancelling ctx stops dispatch and fails the sweep; the
// checkpoint keeps everything merged so far, so a cancelled gather
// resumes where it stopped.
func (c *Coordinator) Gather(ctx context.Context, gcfg core.GatherConfig) ([]core.ShapeTimings, error) {
	if len(c.cfg.Workers) == 0 {
		return nil, fmt.Errorf("gather: no workers configured")
	}
	if gcfg.NumShapes < 1 {
		return nil, fmt.Errorf("gather: NumShapes %d < 1", gcfg.NumShapes)
	}
	if len(gcfg.Candidates) == 0 {
		return nil, fmt.Errorf("gather: no candidate thread counts")
	}
	if !gcfg.Op.Valid() {
		return nil, fmt.Errorf("gather: unknown op %v", gcfg.Op)
	}
	if _, err := sampling.NewSampler(gcfg.Domain, gcfg.Seed); err != nil {
		return nil, err
	}
	iters := gcfg.Iters
	if iters < 1 {
		iters = 10
	}

	spec := SweepSpec{
		Op:         gcfg.Op.String(),
		Timer:      c.cfg.Timer,
		Domain:     gcfg.Domain,
		Seed:       gcfg.Seed,
		Candidates: append([]int(nil), gcfg.Candidates...),
		Iters:      iters,
	}
	spec.Session = spec.Fingerprint()
	spec.Run = newRunID()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	units := planUnits(gcfg.NumShapes, c.cfg.UnitShapes)
	stats := Stats{Units: len(units)}
	// Record the run's statistics on every exit path — a failed sweep's
	// counters (retries, resumed units, registered workers) are exactly
	// what the operator needs to diagnose it.
	var r *run
	defer func() {
		if r != nil {
			stats.Dispatched = int(r.dispatched.Load())
			stats.Retries = int(r.retries.Load())
			stats.Duplicates = int(r.duplicates.Load())
		}
		c.mu.Lock()
		c.last = stats
		c.mu.Unlock()
	}()

	ckPath := ""
	if c.cfg.Checkpoint != "" {
		ckPath = c.cfg.Checkpoint + "." + spec.Op
	}
	completed, ck, err := openCheckpoint(ckPath, spec, units, gcfg.NumShapes, c.cfg.Logf)
	if err != nil {
		return nil, err
	}
	defer ck.close()
	stats.Resumed = len(completed)
	c.metrics.planned(len(units), len(completed))

	// A fully-checkpointed sweep needs no fleet at all — re-running the
	// install after a post-gather crash must not depend on the workers
	// still being up.
	if len(completed) == len(units) {
		c.cfg.Logf("checkpoint already complete: %d units, nothing to dispatch", len(units))
		return assemble(units, completed, gcfg.NumShapes)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Register the fleet; workers that refuse or cannot be reached (after
	// the transport retry budget) are dropped (and logged) — the sweep
	// needs at least one.
	var live []string
	for _, addr := range c.cfg.Workers {
		base := normalizeWorkerURL(addr)
		var reg RegisterResponse
		if err := c.postJSON(ctx, base+"/register", spec, &reg); err != nil {
			c.cfg.Logf("worker %s: register failed: %v", base, err)
			continue
		}
		c.cfg.Logf("worker %s registered (%s, backend %s)", base, reg.Worker, reg.Backend)
		live = append(live, base)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("gather: none of the %d configured workers accepted the sweep", len(c.cfg.Workers))
	}
	stats.WorkersRegistered = len(live)
	c.metrics.fleetRegistered(len(live))

	r = &run{ctx: ctx, cancel: cancel}
	for _, u := range units {
		if _, done := completed[u.ID]; !done {
			r.queue.push(pendingUnit{unit: u})
		}
	}

	results := make(chan UnitResult, len(live))
	var wg sync.WaitGroup
	for _, base := range live {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			c.workerLoop(r, base, spec, results)
		}(base)
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	// Merge loop: first result per unit wins; late duplicates (a unit
	// reassigned after a timeout that then completes twice) are dropped, so
	// every unit is accounted for exactly once.
	outstanding := len(units) - len(completed)
	merge := func(res UnitResult) error {
		if !mergeResult(completed, res) {
			r.duplicates.Add(1)
			c.metrics.unitDuplicate()
			return nil
		}
		outstanding--
		if err := ck.append(res); err != nil {
			return err
		}
		if ck.enabled() {
			c.metrics.checkpointWrite()
		}
		c.cfg.Logf("unit %d/%d merged (worker %s, %d remaining)",
			res.UnitID+1, len(units), res.Worker, outstanding)
		return nil
	}
	for outstanding > 0 {
		select {
		case res := <-results:
			if err := merge(res); err != nil {
				r.fail(err)
				wg.Wait()
				return nil, err
			}
		case <-workersDone:
			// Drain results delivered just before the last loop exited —
			// a retiring worker may have buffered the final unit.
			for drained := true; drained && outstanding > 0; {
				select {
				case res := <-results:
					if err := merge(res); err != nil {
						return nil, err
					}
				default:
					drained = false
				}
			}
			if outstanding > 0 {
				if r.fatalErr != nil {
					return nil, r.fatalErr
				}
				return nil, fmt.Errorf("gather: every worker retired with %d of %d units outstanding",
					outstanding, len(units))
			}
		}
	}
	cancel()
	wg.Wait()

	return assemble(units, completed, gcfg.NumShapes)
}

// assemble concatenates the completed units in sample order: by
// construction this is the exact sequence the single-node sweep walks.
func assemble(units []Unit, completed map[int][]core.ShapeTimings, numShapes int) ([]core.ShapeTimings, error) {
	out := make([]core.ShapeTimings, 0, numShapes)
	for _, u := range units {
		timings := completed[u.ID]
		if len(timings) != u.Count {
			return nil, fmt.Errorf("gather: unit %d merged %d timings, want %d", u.ID, len(timings), u.Count)
		}
		out = append(out, timings...)
	}
	return out, nil
}

// mergeResult records one unit result into completed and reports whether it
// was fresh. A false return is a duplicate (the unit already completed on
// another worker, or came out of the checkpoint) and must be dropped — the
// merge invariant is every unit accounted for exactly once.
func mergeResult(completed map[int][]core.ShapeTimings, res UnitResult) bool {
	if _, dup := completed[res.UnitID]; dup {
		return false
	}
	completed[res.UnitID] = res.Timings
	return true
}

// workerLoop claims units for one worker until the run ends or the worker
// accumulates too many consecutive failures.
func (c *Coordinator) workerLoop(r *run, base string, spec SweepSpec, results chan<- UnitResult) {
	failures := 0
	wv := c.metrics.worker(base)
	for {
		if r.ctx.Err() != nil {
			return
		}
		pu, ok := r.queue.pop()
		if !ok {
			// Queue drained but other workers may still fail and requeue;
			// idle until the run finishes or work reappears.
			select {
			case <-r.ctx.Done():
				return
			case <-time.After(c.cfg.PollInterval):
			}
			continue
		}
		start := time.Now()
		res, err := c.runUnit(r.ctx, base, spec, pu.unit)
		if err != nil {
			if r.ctx.Err() != nil {
				return
			}
			wv.observe(time.Since(start), true)
			c.cfg.Logf("worker %s: unit %d attempt %d failed: %v", base, pu.unit.ID, pu.tries+1, err)
			c.requeue(r, pu, base, err)
			failures++
			if failures >= c.cfg.WorkerFailureLimit {
				c.cfg.Logf("worker %s retired after %d consecutive failures", base, failures)
				return
			}
			continue
		}
		wv.observe(time.Since(start), false)
		failures = 0
		r.dispatched.Add(1)
		c.metrics.unitDispatched()
		select {
		case results <- *res:
		case <-r.ctx.Done():
			return
		}
	}
}

// requeue puts a failed unit back on the queue, failing the run when the
// unit has exhausted its retries.
func (c *Coordinator) requeue(r *run, pu pendingUnit, base string, err error) {
	pu.tries++
	if pu.tries >= c.cfg.MaxUnitRetries {
		r.fail(fmt.Errorf("gather: unit %d failed %d times (last worker %s): %w", pu.unit.ID, pu.tries, base, err))
		return
	}
	r.retries.Add(1)
	c.metrics.unitRetried()
	r.queue.push(pu)
}

// errUnitPending is the retryable sentinel one /result poll returns while
// the worker is still executing — the retry loop keeps polling on it.
var errUnitPending = errors.New("unit still executing")

// runUnit dispatches one unit to one worker and polls for its result until
// UnitTimeout. The poll loop is a retry.Do with a fixed backoff equal to
// PollInterval, unbounded attempts, and the unit timeout as the budget —
// the single shared retry implementation instead of a bespoke loop.
func (c *Coordinator) runUnit(ctx context.Context, base string, spec SweepSpec, u Unit) (*UnitResult, error) {
	if err := c.postJSON(ctx, base+"/work", WorkRequest{Session: spec.Session, Unit: u}, nil); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	url := fmt.Sprintf("%s/result?session=%s&id=%d", base, spec.Session, u.ID)
	poll := retry.Policy{
		MaxAttempts: -1,
		Initial:     c.cfg.PollInterval,
		Max:         c.cfg.PollInterval,
		Multiplier:  1,
		Budget:      c.cfg.UnitTimeout,
	}
	res, err := retry.DoValue(ctx, poll, func(ctx context.Context) (*UnitResult, error) {
		res, pending, err := c.getResult(ctx, url)
		if err != nil {
			// Definitive worker answers (404/409/500, torn result bodies)
			// fail the unit now; only "still executing" keeps polling.
			return nil, retry.Fatal(err)
		}
		if pending {
			return nil, errUnitPending
		}
		return res, nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("unit %d timed out after %v on %s", u.ID, c.cfg.UnitTimeout, base)
		}
		return nil, err
	}
	// Start matters as much as ID and Count: a result timing the wrong
	// slice of the sample stream would merge into the wrong sweep positions
	// and silently corrupt the trained model.
	if res.UnitID != u.ID || res.Start != u.Start || res.Count != u.Count || len(res.Timings) != u.Count {
		return nil, fmt.Errorf("worker %s answered unit %d [%d,%d) with mismatched result (unit %d [%d,%d), %d timings)",
			base, u.ID, u.Start, u.Start+u.Count, res.UnitID, res.Start, res.Start+res.Count, len(res.Timings))
	}
	return res, nil
}

// getResult performs one poll. pending is true while the worker is still
// executing the unit — including on a transport failure: the unit may be
// minutes into real timing work, and discarding it over one dropped
// connection (or retiring the worker over a brief coordinator-side network
// blip) wastes it all. Polling keeps going until the unit's deadline; a
// permanently dead worker is caught there, and definitively by its next
// dispatch. Definitive worker answers (404/409/500) still fail the unit.
func (c *Coordinator) getResult(ctx context.Context, url string) (res *UnitResult, pending bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The unit budget (or the run) expired mid-request; let the
			// retry loop translate it rather than masking it as a blip.
			return nil, true, nil
		}
		c.cfg.Logf("poll %s: %v (retrying until the unit deadline)", url, err)
		return nil, true, nil
	}
	defer drainAndClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		res = &UnitResult{}
		if err := json.NewDecoder(resp.Body).Decode(res); err != nil {
			return nil, false, fmt.Errorf("decode result: %w", err)
		}
		return res, false, nil
	case http.StatusAccepted:
		return nil, true, nil
	default:
		return nil, false, httpError(resp)
	}
}

// postJSON issues one POST under the transport retry policy and decodes the
// answer into out (when non-nil). 2xx statuses succeed; transport errors and
// 5xx answers retry (the worker's /work handler is idempotent for
// re-dispatch, so a duplicate POST is safe); other statuses fail
// immediately — the worker understood the request and refused it.
func (c *Coordinator) postJSON(ctx context.Context, url string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("encode request: %w", err)
	}
	p := c.cfg.Retry
	p.OnRetry = func(attempt int, err error, backoff time.Duration) {
		c.cfg.Logf("POST %s: attempt %d failed (%v), retrying in %v", url, attempt, err, backoff)
	}
	return retry.Do(ctx, p, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(blob))
		if err != nil {
			return retry.Fatalf("build request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.HTTP.Do(req)
		if err != nil {
			return err
		}
		defer drainAndClose(resp)
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			err := httpError(resp)
			if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
				return err
			}
			return retry.Fatal(err)
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("decode response: %w", err)
		}
		return nil
	})
}

// drainAndClose consumes a bounded remainder of the response body before
// closing it, so the keep-alive connection returns to the pool instead of
// being torn down — with per-unit polling against every worker, leaked
// connections would otherwise accumulate for the whole sweep.
func drainAndClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// httpError converts a non-success response into an error carrying the
// worker's JSON error message when present.
func httpError(resp *http.Response) error {
	var apiErr apiError
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
		return fmt.Errorf("%s (HTTP %d)", apiErr.Error, resp.StatusCode)
	}
	return fmt.Errorf("HTTP %d", resp.StatusCode)
}

// runCounter disambiguates run IDs minted within one nanosecond tick.
var runCounter atomic.Int64

// newRunID mints a nonce unique per Gather invocation.
func newRunID() string {
	return fmt.Sprintf("%x-%x", time.Now().UnixNano(), runCounter.Add(1))
}

// normalizeWorkerURL accepts "host:port" or a full URL and returns a base
// URL without a trailing slash.
func normalizeWorkerURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

var _ core.Gatherer = (*Coordinator)(nil)
