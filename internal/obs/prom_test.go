package obs

import (
	"bufio"
	"io"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry assembles one of every instrument kind with
// deterministic values — the fixture behind the golden-file test.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", L("route", "predict")).Add(42)
	r.Counter("test_requests_total", "Requests served.", L("route", "batch")).Add(7)
	r.Counter("test_errors_total", "Errors encountered.").Inc()
	r.Gauge("test_temperature", "A gauge.").Set(36.6)
	r.GaugeFunc("test_cache_entries", "Entries cached.", func() float64 { return 128 }, L("shard", "0"))
	r.CounterFunc("test_decisions_total", "Decisions made.", func() float64 { return 99 }, L("op", "gemm"))
	r.Counter("test_escaping_total", "Label escaping.",
		L("path", `C:\tmp`), L("quote", `say "hi"`), L("nl", "a\nb"))

	h := r.Histogram("test_latency_seconds", "Latency distribution.", 1e-9, L("op", "gemm"))
	for _, ns := range []int64{500, 900, 1500, 3000, 3100, 64000, 1000000} {
		h.Observe(ns)
	}
	r.Histogram("test_empty_seconds", "Never observed.", 1e-9)
	return r
}

// TestExpositionGolden pins the full text exposition against the
// committed golden file. Regenerate with -update on a deliberate format
// change.
func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	buildTestRegistry().WriteText(&b)
	got := b.String()

	const golden = "testdata/metrics.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (set UPDATE_GOLDEN=1 to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestExpositionInvariants parses the exposition and checks the format
// invariants the satellite task names: every series has HELP/TYPE,
// histogram buckets are cumulative and monotone, +Inf is present and
// equals _count.
func TestExpositionInvariants(t *testing.T) {
	var b strings.Builder
	buildTestRegistry().WriteText(&b)
	checkExposition(t, b.String())
}

// checkExposition validates Prometheus text format invariants.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	lastBucket := map[string]int64{} // per histogram series (labels minus le)
	infSeen := map[string]int64{}
	countSeen := map[string]int64{}

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q: %v", series, valText, err)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && typed[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !helped[base] || typed[base] == "" {
			t.Errorf("series %s has no HELP/TYPE for %s", series, base)
		}
		if typed[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, rest := extractLE(t, labels)
			key := base
			if rest != "" {
				key = base + "{" + rest + "}"
			}
			if int64(val) < lastBucket[key] {
				t.Errorf("histogram %s: cumulative bucket count %v below previous %d", key, val, lastBucket[key])
			}
			lastBucket[key] = int64(val)
			if le == "+Inf" {
				infSeen[key] = int64(val)
			}
		}
		if typed[base] == "histogram" && strings.HasSuffix(name, "_count") {
			countSeen[base+labels] = int64(val)
		}
		if (typed[base] == "counter" || typed[base] == "histogram") && val < 0 {
			t.Errorf("monotone series %s has negative value %v", series, val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(infSeen) == 0 {
		t.Fatal("no histogram +Inf buckets found")
	}
	for key, count := range countSeen {
		inf, ok := infSeen[key]
		if !ok {
			t.Errorf("histogram %s has _count but no +Inf bucket", key)
			continue
		}
		if inf != count {
			t.Errorf("histogram %s: +Inf bucket %d != _count %d", key, inf, count)
		}
	}
}

// extractLE pulls the le label out of a rendered label suffix, returning
// it and the suffix without it.
func extractLE(t *testing.T, labels string) (le, rest string) {
	t.Helper()
	i := strings.Index(labels, `le="`)
	if i < 0 {
		t.Fatalf("bucket labels %q lack le", labels)
	}
	j := strings.Index(labels[i+4:], `"`)
	le = labels[i+4 : i+4+j]
	rest = labels[:i] + labels[i+4+j+1:]
	rest = strings.Trim(strings.Trim(rest, "{}"), ",")
	return le, rest
}

// TestLabelEscaping checks the three escape sequences of the format.
func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	r := NewRegistry()
	r.Counter("esc_total", "x", L("v", "back\\slash \"quoted\"\nnewline")).Inc()
	r.WriteText(&b)
	want := `esc_total{v="back\\slash \"quoted\"\nnewline"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition:\n%s\nwant line:\n%s", b.String(), want)
	}
}

// TestRegistryIdempotent checks that re-registering returns the same
// instrument and type conflicts panic.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("idem_total", "x", L("k", "v"))
	b := r.Counter("idem_total", "x", L("k", "v"))
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	h1 := r.Histogram("idem_seconds", "x", 1e-9)
	h2 := r.Histogram("idem_seconds", "x", 1e-9)
	if h1 != h2 {
		t.Error("re-registration returned a different histogram")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type conflict did not panic")
			}
		}()
		r.Gauge("idem_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("0bad-name", "x")
	}()
}

// TestHandler serves the exposition over HTTP with the text content type.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(buildTestRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkExposition(t, string(body))
}
