package serve

import (
	"testing"
)

// TestRankWithZeroAlloc pins the //adsala:zeroalloc contract on the
// engine's cache-miss ranking path: once the scratch pool is primed,
// rankWith — pooled scratch, full candidate ranking, latency-histogram
// observation — allocates nothing per call.
func TestRankWithZeroAlloc(t *testing.T) {
	e := NewEngine(lib(t), Options{})
	st := e.state.Load()
	// Prime the pool so the steady state (reuse, not construction) is
	// what gets measured.
	e.rankWith(st, OpGEMM, 512, 256, 384, nil)
	if n := testing.AllocsPerRun(200, func() {
		e.rankWith(st, OpGEMM, 512, 256, 384, nil)
	}); n != 0 {
		t.Errorf("rankWith allocates %.1f/op, want 0", n)
	}
}
