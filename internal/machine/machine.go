// Package machine models the shared-memory HPC node topologies the paper
// experiments on: two-socket NUMA nodes with SMT (hyper-threading), cache
// hierarchies and per-domain memory bandwidth.
//
// The container this reproduction runs in has a single CPU, so the paper's
// 48-core and 128-core nodes cannot be measured physically. Instead, the
// topology here parameterises the analytical performance model in
// internal/simtime, which reproduces the mechanisms the paper's profiling
// identifies (thread synchronisation, packing data-copy and kernel compute;
// Table VII) and the affinity/NUMA effects of §V-B.
package machine

import "fmt"

// AffinityPolicy mirrors the OpenMP OMP_PLACES setting studied in Fig 7.
type AffinityPolicy int

const (
	// CoreBased (OMP_PLACES=cores) binds one software thread per physical
	// core until all cores are occupied, then starts doubling up on SMT
	// siblings. This is the policy the paper adopts for all experiments.
	CoreBased AffinityPolicy = iota
	// ThreadBased (OMP_PLACES=threads) binds threads to hardware threads in
	// order, packing both SMT siblings of a core before moving to the next
	// core. For p below half the hardware-thread count it therefore uses
	// only ~p/2 physical cores, which Fig 7 shows is slower.
	ThreadBased
)

// String returns the OpenMP spelling of the policy.
func (a AffinityPolicy) String() string {
	switch a {
	case CoreBased:
		return "cores"
	case ThreadBased:
		return "threads"
	default:
		return fmt.Sprintf("AffinityPolicy(%d)", int(a))
	}
}

// Node describes a two-socket shared-memory compute node.
type Node struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	SMTPerCore     int // hardware threads per core (2 with hyper-threading)
	NUMAPerSocket  int
	CoresPerCCX    int // cores sharing one last-level cache slice

	BaseGHz float64 // sustained clock under vector load

	// FlopsPerCycleF32 is the peak single-precision FLOPs per cycle per core
	// (FMA counted as two FLOPs). FP64 peak is assumed to be half.
	FlopsPerCycleF32 float64

	L2KBPerCore float64
	L3MBPerCCX  float64

	// MemBWPerNUMA is the sustainable memory bandwidth of one NUMA domain in
	// GB/s. InterSocketBW is the cross-socket link bandwidth (UPI / xGMI).
	MemBWPerNUMA  float64
	InterSocketBW float64

	// SMTYield is the aggregate throughput of a core running two SMT threads
	// relative to one (e.g. 1.25 = 25% more than a single thread). FP-bound
	// GEMM gains little from SMT.
	SMTYield float64

	// Synchronisation cost model: a barrier across p threads costs
	// SyncBaseNs + SyncPerThreadNs*p, plus SyncCrossSocketNs per thread when
	// the team spans both sockets.
	SyncBaseNs        float64
	SyncPerThreadNs   float64
	SyncCrossSocketNs float64

	// SpawnPerThreadNs is the per-thread fork/join (team wake-up) cost paid
	// once per GEMM call.
	SpawnPerThreadNs float64

	// CoherenceNs is the cost of one contended cache-line transfer during
	// reductions into shared C when more threads run than there are C tiles
	// (the k-split regime). This drives the pathological max-thread times of
	// Table VII.
	CoherenceNs float64
}

// Validate reports whether the topology is internally consistent.
func (n *Node) Validate() error {
	switch {
	case n.Sockets < 1:
		return fmt.Errorf("machine %q: sockets %d < 1", n.Name, n.Sockets)
	case n.CoresPerSocket < 1:
		return fmt.Errorf("machine %q: cores/socket %d < 1", n.Name, n.CoresPerSocket)
	case n.SMTPerCore < 1:
		return fmt.Errorf("machine %q: SMT/core %d < 1", n.Name, n.SMTPerCore)
	case n.NUMAPerSocket < 1:
		return fmt.Errorf("machine %q: NUMA/socket %d < 1", n.Name, n.NUMAPerSocket)
	case n.CoresPerCCX < 1 || n.CoresPerSocket%n.CoresPerCCX != 0:
		return fmt.Errorf("machine %q: cores/CCX %d must divide cores/socket %d", n.Name, n.CoresPerCCX, n.CoresPerSocket)
	case n.BaseGHz <= 0 || n.FlopsPerCycleF32 <= 0 || n.MemBWPerNUMA <= 0:
		return fmt.Errorf("machine %q: non-positive rate parameters", n.Name)
	case n.SMTYield < 1:
		return fmt.Errorf("machine %q: SMT yield %v < 1", n.Name, n.SMTYield)
	}
	return nil
}

// PhysicalCores returns the number of physical cores in the node.
func (n *Node) PhysicalCores() int { return n.Sockets * n.CoresPerSocket }

// MaxThreads returns the largest usable thread count: hardware threads when
// ht is true, physical cores otherwise.
func (n *Node) MaxThreads(ht bool) int {
	if ht {
		return n.PhysicalCores() * n.SMTPerCore
	}
	return n.PhysicalCores()
}

// NUMADomains returns the total number of NUMA domains.
func (n *Node) NUMADomains() int { return n.Sockets * n.NUMAPerSocket }

// PeakGFLOPS returns the node-wide peak in GFLOPS for single (f32=true) or
// double precision.
func (n *Node) PeakGFLOPS(f32 bool) float64 {
	per := n.FlopsPerCycleF32
	if !f32 {
		per /= 2
	}
	return float64(n.PhysicalCores()) * n.BaseGHz * per
}

// Placement describes how a team of p threads lands on the node under a
// given affinity policy.
type Placement struct {
	Threads       int
	PhysicalCores int     // distinct cores occupied
	DoubledCores  int     // cores carrying two SMT threads
	SocketsUsed   int     // sockets spanned by the team
	NUMAUsed      int     // NUMA domains spanned by the team's cores
	CCXUsed       int     // last-level-cache groups spanned
	ComputeUnits  float64 // core-equivalents of FP throughput
}

// Place computes the placement of p threads under the policy. Threads bind
// "close": cores fill in order within socket 0, then socket 1, matching
// OpenMP's default OMP_PROC_BIND=close used with explicit places. p is
// clamped to [1, MaxThreads(ht)].
func (n *Node) Place(p int, policy AffinityPolicy, ht bool) Placement {
	if p < 1 {
		p = 1
	}
	if max := n.MaxThreads(ht); p > max {
		p = max
	}
	var cores, doubled int
	switch policy {
	case ThreadBased:
		if ht && n.SMTPerCore > 1 {
			// Both SMT siblings of each core are consumed before the next
			// core is touched.
			cores = (p + n.SMTPerCore - 1) / n.SMTPerCore
			doubled = p / n.SMTPerCore
		} else {
			cores, doubled = p, 0
		}
	default: // CoreBased
		if p <= n.PhysicalCores() {
			cores, doubled = p, 0
		} else {
			cores = n.PhysicalCores()
			doubled = p - n.PhysicalCores()
		}
	}

	coresPerNUMA := n.CoresPerSocket / n.NUMAPerSocket
	pl := Placement{
		Threads:       p,
		PhysicalCores: cores,
		DoubledCores:  doubled,
		SocketsUsed:   ceilDiv(cores, n.CoresPerSocket),
		NUMAUsed:      ceilDiv(cores, coresPerNUMA),
		CCXUsed:       ceilDiv(cores, n.CoresPerCCX),
	}
	single := float64(cores - doubled)
	pl.ComputeUnits = single + float64(doubled)*n.SMTYield
	return pl
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Setonix returns the topology of a Setonix compute node: two AMD EPYC
// "Milan" 64-core Zen 3 sockets at 2.55 GHz, eight 8-core CCXs per socket
// each with 32 MB of L3, four NUMA domains per socket (NPS4) and eight
// memory channels per socket (§V-A.1).
func Setonix() *Node {
	return &Node{
		Name:              "Setonix",
		Sockets:           2,
		CoresPerSocket:    64,
		SMTPerCore:        2,
		NUMAPerSocket:     4,
		CoresPerCCX:       8,
		BaseGHz:           2.55,
		FlopsPerCycleF32:  32, // AVX2: 2 FMA pipes × 8 lanes × 2 flops
		L2KBPerCore:       512,
		L3MBPerCCX:        32,
		MemBWPerNUMA:      25, // ~200 GB/s per socket over 4 domains
		InterSocketBW:     50,
		SMTYield:          1.18,
		SyncBaseNs:        2000,
		SyncPerThreadNs:   40,
		SyncCrossSocketNs: 25,
		SpawnPerThreadNs:  250,
		CoherenceNs:       10,
	}
}

// Gadi returns the topology of a Gadi compute node: two Intel Xeon Platinum
// 8274 "Cascade Lake" 24-core sockets at 3.2 GHz, two NUMA domains per
// socket and six memory channels per socket (§V-A.2).
func Gadi() *Node {
	return &Node{
		Name:              "Gadi",
		Sockets:           2,
		CoresPerSocket:    24,
		SMTPerCore:        2,
		NUMAPerSocket:     2,
		CoresPerCCX:       24, // monolithic shared L3 per socket
		BaseGHz:           3.2,
		FlopsPerCycleF32:  64, // AVX-512: 2 FMA pipes × 16 lanes × 2 flops
		L2KBPerCore:       1024,
		L3MBPerCCX:        35.75,
		MemBWPerNUMA:      35, // ~140 GB/s per socket over 2 domains
		InterSocketBW:     41, // 3× UPI links
		SMTYield:          1.15,
		SyncBaseNs:        1500,
		SyncPerThreadNs:   80,
		SyncCrossSocketNs: 60,
		SpawnPerThreadNs:  400,
		CoherenceNs:       30,
	}
}

// Generic returns a single-socket topology with the given core count, used
// for tests, examples and the real-timer path on the local host.
func Generic(cores int) *Node {
	if cores < 1 {
		cores = 1
	}
	return &Node{
		Name:              fmt.Sprintf("Generic-%d", cores),
		Sockets:           1,
		CoresPerSocket:    cores,
		SMTPerCore:        2,
		NUMAPerSocket:     1,
		CoresPerCCX:       cores,
		BaseGHz:           3.0,
		FlopsPerCycleF32:  32,
		L2KBPerCore:       512,
		L3MBPerCCX:        16,
		MemBWPerNUMA:      40,
		InterSocketBW:     40,
		SMTYield:          1.2,
		SyncBaseNs:        1500,
		SyncPerThreadNs:   60,
		SyncCrossSocketNs: 0,
		SpawnPerThreadNs:  300,
		CoherenceNs:       20,
	}
}

// ByName returns a preset topology by (case-sensitive) name.
func ByName(name string) (*Node, error) {
	switch name {
	case "Setonix", "setonix":
		return Setonix(), nil
	case "Gadi", "gadi":
		return Gadi(), nil
	default:
		return nil, fmt.Errorf("machine: unknown preset %q (want Setonix or Gadi)", name)
	}
}
