package machine

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, n := range []*Node{Setonix(), Gadi(), Generic(8), Generic(0)} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestPresetShapes(t *testing.T) {
	s := Setonix()
	if s.PhysicalCores() != 128 {
		t.Errorf("Setonix physical cores = %d, want 128", s.PhysicalCores())
	}
	if s.MaxThreads(true) != 256 {
		t.Errorf("Setonix max HT threads = %d, want 256", s.MaxThreads(true))
	}
	if s.NUMADomains() != 8 {
		t.Errorf("Setonix NUMA domains = %d, want 8", s.NUMADomains())
	}
	g := Gadi()
	if g.PhysicalCores() != 48 {
		t.Errorf("Gadi physical cores = %d, want 48", g.PhysicalCores())
	}
	if g.MaxThreads(true) != 96 {
		t.Errorf("Gadi max HT threads = %d, want 96", g.MaxThreads(true))
	}
	if g.MaxThreads(false) != 48 {
		t.Errorf("Gadi max non-HT threads = %d, want 48", g.MaxThreads(false))
	}
	if g.NUMADomains() != 4 {
		t.Errorf("Gadi NUMA domains = %d, want 4", g.NUMADomains())
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	bad := []*Node{
		{Name: "s0", Sockets: 0, CoresPerSocket: 1, SMTPerCore: 1, NUMAPerSocket: 1, CoresPerCCX: 1, BaseGHz: 1, FlopsPerCycleF32: 1, MemBWPerNUMA: 1, SMTYield: 1},
		{Name: "ccx", Sockets: 1, CoresPerSocket: 10, SMTPerCore: 1, NUMAPerSocket: 1, CoresPerCCX: 3, BaseGHz: 1, FlopsPerCycleF32: 1, MemBWPerNUMA: 1, SMTYield: 1},
		{Name: "ghz", Sockets: 1, CoresPerSocket: 4, SMTPerCore: 1, NUMAPerSocket: 1, CoresPerCCX: 4, BaseGHz: 0, FlopsPerCycleF32: 1, MemBWPerNUMA: 1, SMTYield: 1},
		{Name: "smt", Sockets: 1, CoresPerSocket: 4, SMTPerCore: 2, NUMAPerSocket: 1, CoresPerCCX: 4, BaseGHz: 1, FlopsPerCycleF32: 1, MemBWPerNUMA: 1, SMTYield: 0.5},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("%s: expected validation failure", n.Name)
		}
	}
}

func TestPlaceCoreBased(t *testing.T) {
	g := Gadi()
	// One thread per core until 48, then SMT doubling.
	pl := g.Place(24, CoreBased, true)
	if pl.PhysicalCores != 24 || pl.DoubledCores != 0 || pl.SocketsUsed != 1 {
		t.Errorf("24 threads: %+v", pl)
	}
	pl = g.Place(48, CoreBased, true)
	if pl.PhysicalCores != 48 || pl.SocketsUsed != 2 {
		t.Errorf("48 threads: %+v", pl)
	}
	pl = g.Place(96, CoreBased, true)
	if pl.PhysicalCores != 48 || pl.DoubledCores != 48 {
		t.Errorf("96 threads: %+v", pl)
	}
	if pl.ComputeUnits <= 48 || pl.ComputeUnits >= 96 {
		t.Errorf("96-thread compute units = %v, want in (48, 96)", pl.ComputeUnits)
	}
}

func TestPlaceThreadBased(t *testing.T) {
	g := Gadi()
	// Thread-based packing uses half the cores at p=24.
	pl := g.Place(24, ThreadBased, true)
	if pl.PhysicalCores != 12 || pl.DoubledCores != 12 {
		t.Errorf("thread-based 24: %+v", pl)
	}
	// Core-based at same p uses all 24 — this asymmetry drives Fig 7.
	cb := g.Place(24, CoreBased, true)
	if cb.ComputeUnits <= pl.ComputeUnits {
		t.Errorf("core-based should out-compute thread-based at p=24: %v vs %v",
			cb.ComputeUnits, pl.ComputeUnits)
	}
	// Without HT, thread-based degenerates to core-based.
	a := g.Place(20, ThreadBased, false)
	b := g.Place(20, CoreBased, false)
	if a != b {
		t.Errorf("no-HT placements differ: %+v vs %+v", a, b)
	}
}

func TestPlaceClamping(t *testing.T) {
	s := Setonix()
	pl := s.Place(0, CoreBased, true)
	if pl.Threads != 1 {
		t.Errorf("p=0 clamped to %d, want 1", pl.Threads)
	}
	pl = s.Place(10000, CoreBased, true)
	if pl.Threads != 256 {
		t.Errorf("p=10000 clamped to %d, want 256", pl.Threads)
	}
	pl = s.Place(10000, CoreBased, false)
	if pl.Threads != 128 {
		t.Errorf("no-HT p=10000 clamped to %d, want 128", pl.Threads)
	}
}

func TestPlaceNUMAAndCCX(t *testing.T) {
	s := Setonix()
	// 16 cores per NUMA domain on Setonix (64/4).
	pl := s.Place(16, CoreBased, true)
	if pl.NUMAUsed != 1 {
		t.Errorf("16 threads span %d NUMA domains, want 1", pl.NUMAUsed)
	}
	if pl.CCXUsed != 2 {
		t.Errorf("16 threads span %d CCXs, want 2", pl.CCXUsed)
	}
	pl = s.Place(65, CoreBased, true)
	if pl.SocketsUsed != 2 {
		t.Errorf("65 threads span %d sockets, want 2", pl.SocketsUsed)
	}
}

func TestPeakGFLOPS(t *testing.T) {
	g := Gadi()
	want := 48 * 3.2 * 64.0
	if got := g.PeakGFLOPS(true); got < want*0.999 || got > want*1.001 {
		t.Errorf("Gadi FP32 peak = %v, want ~%v", got, want)
	}
	if got := g.PeakGFLOPS(false); got < want/2*0.999 || got > want/2*1.001 {
		t.Errorf("Gadi FP64 peak = %v, want ~%v", got, want/2)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Setonix", "setonix", "Gadi", "gadi"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("Frontier"); err == nil {
		t.Error("ByName(unknown) should fail")
	}
}

func TestAffinityString(t *testing.T) {
	if CoreBased.String() != "cores" || ThreadBased.String() != "threads" {
		t.Error("affinity Strings wrong")
	}
	if AffinityPolicy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
}

// Property: placements are internally consistent for arbitrary p on every
// preset and policy: occupied cores never exceed physical cores, doubled
// cores never exceed occupied, compute units in [1, threads].
func TestPlaceInvariantsProperty(t *testing.T) {
	nodes := []*Node{Setonix(), Gadi(), Generic(7)}
	f := func(praw uint16, polRaw, htRaw bool) bool {
		p := int(praw%300) - 10 // include out-of-range values
		pol := CoreBased
		if polRaw {
			pol = ThreadBased
		}
		for _, n := range nodes {
			pl := n.Place(p, pol, htRaw)
			if pl.Threads < 1 || pl.Threads > n.MaxThreads(htRaw) {
				return false
			}
			if pl.PhysicalCores < 1 || pl.PhysicalCores > n.PhysicalCores() {
				return false
			}
			if pl.DoubledCores < 0 || pl.DoubledCores > pl.PhysicalCores {
				return false
			}
			if pl.SocketsUsed < 1 || pl.SocketsUsed > n.Sockets {
				return false
			}
			if pl.NUMAUsed < 1 || pl.NUMAUsed > n.NUMADomains() {
				return false
			}
			if pl.ComputeUnits < 1 || pl.ComputeUnits > float64(pl.Threads)+1e-9 {
				return false
			}
			// Total hardware threads must equal p.
			if pl.PhysicalCores+pl.DoubledCores != pl.Threads {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
