package simtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/mat"
)

// RealTimer measures the pure-Go blas GEMM on the local host with the wall
// clock. It allocates operands once per distinct shape and reuses them, and
// averages Iters timing iterations per call — the same loop structure the
// paper uses for its data collection (§V-B.3).
//
// RealTimer exists so the full ADSALA workflow (sample → time → train →
// select threads) runs end-to-end on real silicon: the quickstart example
// and integration tests use it with small shapes. The paper-scale
// experiments use the Simulator.
type RealTimer struct {
	// Iters is the number of timed GEMM repetitions to average (default 3).
	Iters int

	mu    sync.Mutex
	cache map[[3]int]*operands
	rng   *rand.Rand
	calls atomic.Int64
}

type operands struct {
	a, b, c *mat.F32
}

// NewRealTimer returns a RealTimer averaging iters repetitions.
func NewRealTimer(iters int) *RealTimer {
	if iters < 1 {
		iters = 1
	}
	return &RealTimer{
		Iters: iters,
		cache: make(map[[3]int]*operands),
		rng:   rand.New(rand.NewSource(42)),
	}
}

// Time runs the SGEMM threads-wide and returns the mean wall seconds over
// Iters repetitions.
func (t *RealTimer) Time(m, k, n, threads int) float64 {
	return t.MeasureMean(m, k, n, threads, t.Iters)
}

// MeasureMean returns the mean wall seconds of exactly iters timed GEMMs
// (minimum 1). Implementing the core gather's meanTimer interface keeps the
// repetition count in one place: without it, Gather would loop Iters times
// over Time — which itself averages Iters repetitions — running Iters²
// GEMMs per configuration and silently multiplying the installation-time
// budget (Iters: 3 meant 9 timed GEMMs per point).
func (t *RealTimer) MeasureMean(m, k, n, threads, iters int) float64 {
	if iters < 1 {
		iters = 1
	}
	ops := t.operandsFor(m, k, n)
	var total time.Duration
	for i := 0; i < iters; i++ {
		t.calls.Add(1)
		start := time.Now()
		// Benchmarked error path is impossible: shapes are consistent by
		// construction, so any error is a programmer bug worth surfacing.
		if err := blas.SGEMM(false, false, 1, ops.a, ops.b, 0, ops.c, threads); err != nil {
			panic("simtime: RealTimer GEMM failed: " + err.Error())
		}
		total += time.Since(start)
	}
	return total.Seconds() / float64(iters)
}

// GemmCalls returns the cumulative number of timed GEMM invocations — the
// ground truth the iters-accounting regression tests assert against.
func (t *RealTimer) GemmCalls() int64 { return t.calls.Load() }

func (t *RealTimer) operandsFor(m, k, n int) *operands {
	key := [3]int{m, k, n}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ops, ok := t.cache[key]; ok {
		return ops
	}
	ops := &operands{a: mat.NewF32(m, k), b: mat.NewF32(k, n), c: mat.NewF32(m, n)}
	ops.a.FillRandom(t.rng)
	ops.b.FillRandom(t.rng)
	t.cache[key] = ops
	return ops
}

var _ Timer = (*RealTimer)(nil)
