package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sampling"
)

// TestStatsConsistentUnderLoad is the torn-read regression test: it
// hammers the engine from several goroutines while polling Stats, and
// asserts that every snapshot is internally consistent — the derived
// HitRate equals exactly CacheHits/(CacheHits+CacheMisses) of the same
// snapshot, and the counting inequalities the load order guarantees hold.
// Before Stats snapshotted each atomic exactly once, HitRate was computed
// from a second, later load of the hit/miss counters and this test failed
// under -race-style interleavings.
func TestStatsConsistentUnderLoad(t *testing.T) {
	e := NewEngine(lib(t), Options{CacheSize: 64, Shards: 4})
	shapes := mixedShapes(48)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				sh := shapes[(i*7+seed)%len(shapes)]
				op := Op((i + seed) % 3)
				e.PredictOp(op, sh.M, sh.K, sh.N)
			}
		}(w)
	}

	for poll := 0; poll < 300; poll++ {
		st := e.Stats()
		checkStatsConsistent(t, st)
	}
	stop.Store(true)
	wg.Wait()
	checkStatsConsistent(t, e.Stats())
}

// checkStatsConsistent asserts the single-snapshot invariants of one
// Stats value.
func checkStatsConsistent(t *testing.T, st Stats) {
	t.Helper()
	for _, v := range []int64{st.Predictions, st.CacheHits, st.CacheMisses} {
		if v < 0 {
			t.Fatalf("negative counter in %+v", st)
		}
	}
	if st.Predictions < st.CacheHits+st.CacheMisses {
		t.Fatalf("predictions %d < hits %d + misses %d",
			st.Predictions, st.CacheHits, st.CacheMisses)
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		if want := float64(st.CacheHits) / float64(total); st.HitRate != want {
			t.Fatalf("torn hit rate: got %v, counters give exactly %v (%+v)",
				st.HitRate, want, st)
		}
	} else if st.HitRate != 0 {
		t.Fatalf("hit rate %v with no traffic", st.HitRate)
	}
	for name, os := range st.PerOp {
		if os.Predictions < os.CacheHits+os.CacheMisses {
			t.Fatalf("op %s: predictions %d < hits %d + misses %d",
				name, os.Predictions, os.CacheHits, os.CacheMisses)
		}
		if total := os.CacheHits + os.CacheMisses; total > 0 {
			if want := float64(os.CacheHits) / float64(total); os.HitRate != want {
				t.Fatalf("op %s: torn hit rate %v != %v", name, os.HitRate, want)
			}
		}
	}
}

// TestStatsWarmupConsistent checks the warm-up exclusion stays consistent
// within one snapshot after warm passes.
func TestStatsWarmupConsistent(t *testing.T) {
	e := NewEngine(lib(t), Options{CacheSize: 256, Shards: 4})
	dom := sampling.DefaultDomain().WithCapMB(100)
	if _, err := e.Warmup(dom, 16, 3, OpGEMM); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	checkStatsConsistent(t, st)
	if st.WarmupDecisions != 16 {
		t.Errorf("warmup decisions %d, want 16", st.WarmupDecisions)
	}
	if st.Predictions != 0 {
		t.Errorf("serving predictions %d after warm-up only, want 0", st.Predictions)
	}
}

// TestServerReadiness walks the probe lifecycle: ready at construction,
// "starting" when flipped off before first SetReady(true), "ok" when
// ready, "draining" after, with /livez 200 throughout.
func TestServerReadiness(t *testing.T) {
	srv, ts := testServer(t)

	get := func(path string) (int, HealthResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := get("/healthz"); code != http.StatusOK || h.Status != "ok" || !h.Ready {
		t.Fatalf("fresh server healthz = %d %+v", code, h)
	}
	if _, h := get("/healthz"); h.FormatVersion < 1 || len(h.Ops) == 0 {
		t.Errorf("health body lacks artefact info: %+v", h)
	}

	srv.SetReady(false) // never explicitly ready yet → starting
	if code, h := get("/healthz"); code != http.StatusServiceUnavailable || h.Status != "starting" {
		t.Fatalf("pre-ready healthz = %d %+v", code, h)
	}
	if code, h := get("/livez"); code != http.StatusOK || h.Ready {
		t.Fatalf("livez while starting = %d %+v", code, h)
	}

	srv.SetReady(true)
	if code, h := get("/healthz"); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("ready healthz = %d %+v", code, h)
	}

	srv.SetReady(false) // was ready → draining
	if code, h := get("/healthz"); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v", code, h)
	}
	if code, _ := get("/livez"); code != http.StatusOK {
		t.Fatalf("livez while draining = %d", code)
	}
	if srv.Ready() {
		t.Error("Ready() true after SetReady(false)")
	}
}

// TestServerMetricsEndpoint scrapes /metrics after traffic and checks the
// engine and HTTP families appear with per-op labels and histogram series.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	client := NewClient(ts.URL, nil)
	if _, err := client.Predict(96, 96, 96); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PredictBatch(mixedShapes(5)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, want := range []string{
		`adsala_serve_decisions_total{op="gemm"}`,
		`adsala_serve_cache_misses_total{op="gemm"}`,
		`adsala_serve_decision_latency_seconds_bucket{op="gemm",le="+Inf"}`,
		`adsala_serve_decision_latency_seconds_count{op="gemm"}`,
		`adsala_serve_batch_size_count`,
		`adsala_serve_cache_entries{shard="0"}`,
		`adsala_serve_cache_capacity_entries`,
		"adsala_serve_ready 1",
		`adsala_http_requests_total{result="ok",route="predict"}`,
		`adsala_http_request_seconds_count{route="batch"}`,
		"adsala_serve_artefact_format_version",
		`adsala_build_info{go_version="`,
		"adsala_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}
	if strings.Contains(text, "-1") {
		t.Errorf("negative value in exposition:\n%s", text)
	}
}

// TestServerPprofGate checks profiling endpoints stay off until
// explicitly enabled.
func TestServerPprofGate(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}
	srv.EnablePprof()
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d after EnablePprof", resp.StatusCode)
	}
}
