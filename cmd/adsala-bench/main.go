// adsala-bench regenerates the paper's tables and figures as text output,
// and measures the executed-GEMM performance trajectory as JSON.
//
// Usage:
//
//	adsala-bench -list
//	adsala-bench -exp table5
//	adsala-bench -exp all -scale default
//	adsala-bench -gemm-json BENCH_gemm.json
//	adsala-bench -gemm-json - -gemm-smoke
//	adsala-bench -syrk-json BENCH_syrk.json
//	adsala-bench -syrk-json - -syrk-smoke
//	adsala-bench -syr2k-json BENCH_syr2k.json
//	adsala-bench -syr2k-json - -syr2k-smoke
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsala-bench: ")
	var (
		exp        = flag.String("exp", "all", "experiment id or \"all\"")
		scale      = flag.String("scale", "default", "quick, default or paper")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		gemmJSON   = flag.String("gemm-json", "", "measure the GEMM kernel and write a JSON report to this file (\"-\" for stdout), then exit")
		gemmSmoke  = flag.Bool("gemm-smoke", false, "with -gemm-json: run each case once without timing (CI regression guard)")
		syrkJSON   = flag.String("syrk-json", "", "measure the SYRK kernel and write a JSON report to this file (\"-\" for stdout), then exit")
		syrkSmoke  = flag.Bool("syrk-smoke", false, "with -syrk-json: run each case once without timing (CI regression guard)")
		syr2kJSON  = flag.String("syr2k-json", "", "measure the SYR2K kernel and write a JSON report to this file (\"-\" for stdout), then exit")
		syr2kSmoke = flag.Bool("syr2k-smoke", false, "with -syr2k-json: run each case once without timing (CI regression guard)")
	)
	flag.Parse()

	if *gemmJSON != "" {
		if err := runGemmBench(*gemmJSON, *gemmSmoke); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *syrkJSON != "" {
		if err := runSyrkBench(*syrkJSON, *syrkSmoke); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *syr2kJSON != "" {
		if err := runSyr2kBench(*syr2kJSON, *syr2kSmoke); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-18s %s\n", id, experiments.Describe(id))
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		log.Fatalf("unknown scale %q (want quick, default or paper)", *scale)
	}
	lab := experiments.NewLab(sc)

	if *exp == "all" {
		if err := experiments.RunAll(os.Stdout, lab); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := experiments.Run(*exp, os.Stdout, lab); err != nil {
		log.Fatal(err)
	}
}
