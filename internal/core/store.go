package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/ml"
	"repro/internal/preprocess"
)

// libraryFile is the on-disk artefact written at installation time: the
// preprocessing configuration plus the production model of Fig 2.
type libraryFile struct {
	FormatVersion int             `json:"format_version"`
	Platform      string          `json:"platform"`
	ModelKind     string          `json:"model_kind"`
	Columns       []string        `json:"columns,omitempty"`
	Candidates    []int           `json:"candidates"`
	EvalSeconds   float64         `json:"eval_seconds"`
	Pipeline      json.RawMessage `json:"pipeline"`
	Model         json.RawMessage `json:"model"`
}

const formatVersion = 1

// Save writes the library artefact to path.
func (l *Library) Save(path string) error {
	pipe, err := l.Pipeline.Marshal()
	if err != nil {
		return fmt.Errorf("core: save pipeline: %w", err)
	}
	model, err := ml.Marshal(l.ModelKind, l.Model)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	blob, err := json.MarshalIndent(libraryFile{
		FormatVersion: formatVersion,
		Platform:      l.Platform,
		ModelKind:     l.ModelKind,
		Columns:       l.Columns,
		Candidates:    l.Candidates,
		EvalSeconds:   l.EvalSeconds,
		Pipeline:      pipe,
		Model:         model,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("core: encode library: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("core: write library: %w", err)
	}
	return nil
}

// Load restores a library artefact written by Save.
func Load(path string) (*Library, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read library: %w", err)
	}
	var f libraryFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("core: decode library %s: %w", path, err)
	}
	if f.FormatVersion != formatVersion {
		return nil, fmt.Errorf("core: library %s has format %d, want %d", path, f.FormatVersion, formatVersion)
	}
	if len(f.Candidates) == 0 {
		return nil, fmt.Errorf("core: library %s has no candidate thread counts", path)
	}
	pipe, err := preprocess.UnmarshalPipeline(f.Pipeline)
	if err != nil {
		return nil, err
	}
	model, err := ml.Unmarshal(f.Model)
	if err != nil {
		return nil, err
	}
	return &Library{
		Platform:    f.Platform,
		ModelKind:   f.ModelKind,
		Model:       model,
		Pipeline:    pipe,
		Columns:     f.Columns,
		Candidates:  sortedCopy(f.Candidates),
		EvalSeconds: f.EvalSeconds,
	}, nil
}
