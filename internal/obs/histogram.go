package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear (HDR-style) latency histogram over
// non-negative int64 observations. Buckets are powers of two subdivided
// into 2^histSubBits linear sub-buckets, so the relative quantile error
// is bounded by 1/2^histSubBits (12.5%) across the whole int64 range with
// a fixed ~4 KB footprint and no allocation ever — Observe is a handful
// of atomic adds on a fixed array.
//
// Histograms are mergeable: per-shard or per-worker instances aggregate
// with one streaming pass (Merge), the same spirit as the distributed
// gather merge, so a fleet's latency distribution is the sum of its
// parts without coordination on the hot path.
type Histogram struct {
	// scale converts raw observed units into exposition/quantile-report
	// units (1e-9: nanoseconds in, seconds out; 1: raw units).
	scale float64

	count   atomic.Int64
	sum     atomic.Int64 // raw units; scaled at exposition
	buckets [histNumBuckets]atomic.Int64
}

const (
	// histSubBits is the log2 of the linear sub-buckets per power-of-two
	// range: 8 sub-buckets bound the relative error at 12.5%.
	histSubBits  = 3
	histSubCount = 1 << histSubBits

	// histNumBuckets covers 0 through math.MaxInt64: values below
	// histSubCount get exact unit buckets, every power-of-two range above
	// gets histSubCount sub-buckets, up to exponent 62.
	histNumBuckets = (63-histSubBits)*histSubCount + histSubCount
)

// NewHistogram returns a histogram whose exposition values are raw
// observations multiplied by scale (use 1e-9 for nanosecond observations
// exposed as seconds, 1 for dimensionless values). A non-positive scale
// selects 1.
func NewHistogram(scale float64) *Histogram {
	if scale <= 0 {
		scale = 1
	}
	return &Histogram{scale: scale}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> (uint(exp) - histSubBits)) & (histSubCount - 1))
	return (exp-histSubBits)*histSubCount + sub + histSubCount
}

// bucketUpper returns the largest value mapping to bucket i — the
// inclusive upper bound used as the Prometheus `le` boundary.
func bucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	exp := uint(i/histSubCount - 1 + histSubBits)
	sub := int64(i % histSubCount)
	width := int64(1) << (exp - histSubBits)
	return int64(1)<<exp + (sub+1)*width - 1
}

// Observe records one value. Negative values clamp to zero. Safe for
// concurrent use; allocates nothing.
//
//adsala:zeroalloc
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed nanoseconds since start — the common
// latency-instrumentation call.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations in raw units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Scale returns the exposition scale factor.
func (h *Histogram) Scale() float64 { return h.scale }

// Merge adds o's observations into h (one pass over the fixed bucket
// array). Concurrent Observes on either side land entirely or not at all
// per bucket; Merge itself takes no locks, so merging a live histogram
// yields a momentary snapshot, which is exactly what a scrape wants.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
	h.count.Add(o.count.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in raw units: the upper
// bound of the bucket where the cumulative count crosses q·count. The
// estimate is exact for values below histSubCount and within 12.5% above.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histNumBuckets - 1)
}

// QuantileScaled is Quantile in exposition units (raw × scale).
func (h *Histogram) QuantileScaled(q float64) float64 {
	return float64(h.Quantile(q)) * h.scale
}

// Mean returns the mean observation in exposition units (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) * h.scale / float64(n)
}

// snapshotBuckets copies the non-empty buckets as (upperBound, count)
// pairs in ascending bound order — the exposition and test surface.
func (h *Histogram) snapshotBuckets() (bounds []int64, counts []int64) {
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			bounds = append(bounds, bucketUpper(i))
			counts = append(counts, n)
		}
	}
	return bounds, counts
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
