package blas

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// syrkRef computes the SYRK reference via NaiveSGEMM against Aᵀ.
func syrkRef(trans bool, alpha float32, a *mat.F32, beta float32, c *mat.F32) {
	NaiveSGEMM(trans, !trans, alpha, a, a, beta, c)
}

func TestSSYRKMatchesGEMMReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n, k    int
		trans   bool
		threads int
	}{
		{5, 7, false, 1}, {16, 4, false, 3}, {33, 17, false, 4},
		{9, 12, true, 2}, {25, 25, true, 5}, {1, 1, false, 1},
	} {
		var a *mat.F32
		if tc.trans {
			a = randF32(tc.k, tc.n, rng)
		} else {
			a = randF32(tc.n, tc.k, rng)
		}
		c := randF32(tc.n, tc.n, rng)
		// Symmetrise the input C: SYRK's beta-update only reads the lower
		// triangle, so a symmetric C keeps the reference comparable.
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				c.Set(i, j, c.At(j, i))
			}
		}
		want := c.Clone()
		syrkRef(tc.trans, 1.5, a, 0.5, want)
		got := c.Clone()
		if err := SSYRK(tc.trans, 1.5, a, 0.5, got, tc.threads); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := got.MaxAbsDiff(want); d > tolF32(tc.k) {
			t.Errorf("%+v: max diff %v", tc, d)
		}
		// Result must be exactly symmetric.
		for i := 0; i < tc.n; i++ {
			for j := 0; j < i; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("%+v: asymmetric at (%d,%d)", tc, i, j)
				}
			}
		}
	}
}

func TestSSYRKValidation(t *testing.T) {
	a := mat.NewF32(4, 3)
	cBad := mat.NewF32(3, 4)
	if err := SSYRK(false, 1, a, 0, cBad, 1); err == nil {
		t.Error("non-square C should error")
	}
}

func TestSSYRKAlphaZero(t *testing.T) {
	a := mat.NewF32(3, 2)
	c := mat.NewF32(3, 3)
	c.Fill(4)
	if err := SSYRK(false, 0, a, 0.5, c, 2); err != nil {
		t.Fatal(err)
	}
	if c.At(1, 1) != 2 {
		t.Errorf("alpha=0 should scale C by beta: %v", c.At(1, 1))
	}
}

func TestTriangularBands(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{{10, 3}, {100, 8}, {5, 5}, {7, 1}} {
		b := triangularBands(tc.n, tc.threads)
		if len(b) != tc.threads+1 || b[0] != 0 || b[tc.threads] != tc.n {
			t.Fatalf("n=%d t=%d: bounds %v", tc.n, tc.threads, b)
		}
		for i := 1; i <= tc.threads; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("bounds not monotone: %v", b)
			}
		}
		// Element counts roughly balanced (within 2x of ideal for n >> t).
		if tc.n >= 10*tc.threads {
			ideal := float64(tc.n) * float64(tc.n+1) / 2 / float64(tc.threads)
			for i := 1; i <= tc.threads; i++ {
				var count float64
				for r := b[i-1]; r < b[i]; r++ {
					count += float64(r + 1)
				}
				if count > 2*ideal {
					t.Errorf("band %d has %v elements, ideal %v", i, count, ideal)
				}
			}
		}
	}
}
