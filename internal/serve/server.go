package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sampling"
)

// PredictRequest is the JSON body of POST /predict (GET uses ?m=&k=&n=&op=).
// Op selects the operation kind by registry wire name ("gemm", "syrk",
// "syr2k"); empty means GEMM, so pre-op clients keep working. Symmetric
// updates pass the (n, k, n) triple of the output shape.
type PredictRequest struct {
	M  int    `json:"m"`
	K  int    `json:"k"`
	N  int    `json:"n"`
	Op string `json:"op,omitempty"`
}

// PredictResponse is the JSON answer of /predict.
type PredictResponse struct {
	M       int    `json:"m"`
	K       int    `json:"k"`
	N       int    `json:"n"`
	Op      string `json:"op"`
	Threads int    `json:"threads"`
	// Candidates and PredictedMicros are present only when detail was
	// requested: the ranked thread counts and their predicted runtimes.
	Candidates      []int     `json:"candidates,omitempty"`
	PredictedMicros []float64 `json:"predicted_micros,omitempty"`
}

// BatchRequest is the JSON body of POST /batch.
type BatchRequest struct {
	Shapes []PredictRequest `json:"shapes"`
}

// BatchResponse is the JSON answer of /batch.
type BatchResponse struct {
	Threads []int `json:"threads"`
}

// HealthResponse is the JSON answer of /healthz (and /livez). Status is
// "ok" when the daemon is ready to serve, "starting" before warm-up and
// snapshot restore complete, and "draining" once shutdown has begun; the
// latter two answer with 503 so load balancers stop routing, while /livez
// stays 200 for as long as the process can answer at all.
type HealthResponse struct {
	Status   string `json:"status"`
	Ready    bool   `json:"ready"`
	Platform string `json:"platform"`
	Model    string `json:"model"`
	// FormatVersion is the on-disk format version of the loaded artefact
	// and Ops the operations it holds trained models for — enough for an
	// operator to tell a legacy v1 single-model artefact from a v2 bundle
	// without opening the file.
	FormatVersion int      `json:"format_version"`
	Ops           []string `json:"ops"`
}

// endpointMetrics tracks request count and latency for one endpoint. The
// JSON /stats snapshot and the Prometheus exposition are both views over
// the same atomics (plus one shared latency histogram), so the two
// surfaces can never disagree about what the server did.
type endpointMetrics struct {
	count   atomic.Int64
	errors  atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
	latency *obs.Histogram
}

func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.count.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNS.Add(ns)
	if m.latency != nil {
		m.latency.Observe(ns)
	}
	for {
		cur := m.maxNS.Load()
		if ns <= cur || m.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// EndpointStats is the exported snapshot of one endpoint's metrics.
type EndpointStats struct {
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	MeanMicros float64 `json:"mean_micros"`
	MaxMicros  float64 `json:"max_micros"`
}

func (m *endpointMetrics) snapshot() EndpointStats {
	st := EndpointStats{Requests: m.count.Load(), Errors: m.errors.Load()}
	if st.Requests > 0 {
		st.MeanMicros = float64(m.totalNS.Load()) / float64(st.Requests) / 1e3
		st.MaxMicros = float64(m.maxNS.Load()) / 1e3
	}
	return st
}

// register exposes the endpoint's counters and latency histogram under the
// given route label.
func (m *endpointMetrics) register(r *obs.Registry, route string) {
	lbl := obs.L("route", route)
	r.CounterFunc("adsala_http_requests_total",
		"HTTP requests handled, by route and result.",
		func() float64 {
			// Errors loaded first so ok = count - errors never dips negative
			// under concurrent traffic.
			e := m.errors.Load()
			return float64(m.count.Load() - e)
		}, lbl, obs.L("result", "ok"))
	r.CounterFunc("adsala_http_requests_total",
		"HTTP requests handled, by route and result.",
		func() float64 { return float64(m.errors.Load()) },
		lbl, obs.L("result", "error"))
	r.RegisterHistogram("adsala_http_request_seconds",
		"HTTP request latency, by route.", m.latency, lbl)
}

// StatsResponse is the JSON answer of /stats.
type StatsResponse struct {
	Platform string `json:"platform"`
	Model    string `json:"model"`
	// Models lists the per-op model bundle: wire name → selected model
	// family, for every op with a trained model of its own.
	Models map[string]string        `json:"models,omitempty"`
	Engine Stats                    `json:"engine"`
	HTTP   map[string]EndpointStats `json:"http"`
}

// MaxBatchShapes bounds one /batch request (guards against unbounded
// request bodies monopolising the worker pool).
const MaxBatchShapes = 16384

// Server is the HTTP front end of the serving subsystem. It satisfies
// http.Handler; mount it directly or via an http.Server.
type Server struct {
	engine  *Engine
	mux     *http.ServeMux
	reg     *obs.Registry
	predict endpointMetrics
	batch   endpointMetrics

	// ready gates /healthz: NewServer starts ready (an engine implies a
	// loaded artefact), the daemon flips it false while restoring
	// snapshots / warming and again when shutdown begins. everReady is set
	// only by an explicit SetReady(true), so it distinguishes the two
	// unready phases for the health body: not-yet-ready is "starting",
	// previously-ready is "draining".
	ready     atomic.Bool
	everReady atomic.Bool
}

// NewServer returns an HTTP handler exposing the engine at /predict,
// /batch, /stats, /healthz, /livez and /metrics. The server starts ready;
// use SetReady to gate traffic around warm-up and drain.
func NewServer(engine *Engine) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux(), reg: obs.NewRegistry()}
	s.predict.latency = obs.NewHistogram(1e-9)
	s.batch.latency = obs.NewHistogram(1e-9)
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/livez", s.handleLivez)
	s.mux.Handle("/metrics", s.reg.Handler())

	engine.RegisterMetrics(s.reg)
	s.predict.register(s.reg, "predict")
	s.batch.register(s.reg, "batch")
	s.reg.GaugeFunc("adsala_serve_ready",
		"1 when the daemon is accepting traffic, 0 while starting or draining.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("adsala_serve_artefact_format_version",
		"On-disk format version of the loaded artefact.",
		func() float64 { return float64(engine.Library().Format()) })

	// Ready by construction (the engine implies a loaded artefact), but
	// deliberately not via SetReady: a daemon that immediately flips
	// readiness off for its restore/warm-up phase should report "starting",
	// not "draining".
	s.ready.Store(true)
	return s
}

// Engine returns the prediction engine behind the server.
func (s *Server) Engine() *Engine { return s.engine }

// Registry returns the server's metrics registry (served at /metrics), so
// daemons can attach process-level instruments alongside the engine's.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetReady flips the /healthz readiness gate. Daemons call SetReady(false)
// before long restore/warm-up phases and at the start of graceful
// shutdown — before the listener closes — so probes see the drain.
func (s *Server) SetReady(ready bool) {
	s.ready.Store(ready)
	if ready {
		s.everReady.Store(true)
	}
}

// Ready reports whether the server currently answers /healthz with 200.
func (s *Server) Ready() bool { return s.ready.Load() }

// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiling endpoints expose internals and cost CPU, so daemons gate this
// behind a flag.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// parsePredict extracts a shape and operation kind from either query
// parameters (GET) or a JSON body (POST).
func parsePredict(r *http.Request) (PredictRequest, Op, error) {
	var req PredictRequest
	switch r.Method {
	case http.MethodGet:
		for _, f := range []struct {
			name string
			dst  *int
		}{{"m", &req.M}, {"k", &req.K}, {"n", &req.N}} {
			v, err := strconv.Atoi(r.URL.Query().Get(f.name))
			if err != nil {
				return req, 0, fmt.Errorf("query parameter %q: want a positive integer", f.name)
			}
			*f.dst = v
		}
		req.Op = r.URL.Query().Get("op")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, 0, fmt.Errorf("decode body: %v", err)
		}
	default:
		return req, 0, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.M < 1 || req.K < 1 || req.N < 1 {
		return req, 0, fmt.Errorf("dimensions must be positive, got %dx%dx%d", req.M, req.K, req.N)
	}
	op, err := ParseOp(req.Op)
	if err != nil {
		return req, 0, err
	}
	return req, op, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.predict.observe(time.Since(start), failed) }()

	req, op, err := parsePredict(r)
	if err != nil {
		status := http.StatusBadRequest
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
		}
		writeError(w, status, "%v", err)
		return
	}
	resp := PredictResponse{M: req.M, K: req.K, N: req.N, Op: op.String()}
	if r.URL.Query().Get("detail") == "1" {
		scores, best := s.engine.RankOp(op, req.M, req.K, req.N)
		resp.Threads = best
		resp.Candidates = s.engine.Candidates()
		resp.PredictedMicros = make([]float64, len(scores))
		for i, sec := range scores {
			resp.PredictedMicros[i] = sec * 1e6
		}
	} else {
		resp.Threads = s.engine.PredictOp(op, req.M, req.K, req.N)
	}
	failed = false
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.batch.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	if len(req.Shapes) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Shapes) > MaxBatchShapes {
		writeError(w, http.StatusBadRequest, "batch of %d shapes exceeds limit %d", len(req.Shapes), MaxBatchShapes)
		return
	}
	// Mixed-op batches are split into one engine batch per registered
	// operation (the dedup and worker fan-out happen per op); slots maps
	// each sub-batch entry back to its request index. The split is sized by
	// the registry, so new ops flow through without touching this handler.
	shapes := make([][]sampling.Shape, ops.NumOps())
	slots := make([][]int, ops.NumOps())
	for i, sh := range req.Shapes {
		if sh.M < 1 || sh.K < 1 || sh.N < 1 {
			writeError(w, http.StatusBadRequest, "shape %d: dimensions must be positive, got %dx%dx%d", i, sh.M, sh.K, sh.N)
			return
		}
		op, err := ParseOp(sh.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, "shape %d: %v", i, err)
			return
		}
		shapes[op] = append(shapes[op], sampling.Shape{M: sh.M, K: sh.K, N: sh.N})
		slots[op] = append(slots[op], i)
	}
	threads := make([]int, len(req.Shapes))
	for op, batch := range shapes {
		if len(batch) == 0 {
			continue
		}
		for j, t := range s.engine.PredictBatchOp(Op(op), batch, nil) {
			threads[slots[op][j]] = t
		}
	}
	failed = false
	writeJSON(w, http.StatusOK, BatchResponse{Threads: threads})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	lib := s.engine.Library()
	models := make(map[string]string)
	for _, op := range lib.TrainedOps() {
		models[op.String()] = lib.ModelFor(op).Kind
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Platform: lib.Platform,
		Model:    lib.ModelKind(),
		Models:   models,
		Engine:   s.engine.Stats(),
		HTTP: map[string]EndpointStats{
			"predict": s.predict.snapshot(),
			"batch":   s.batch.snapshot(),
		},
	})
}

// healthBody assembles the shared health payload.
func (s *Server) healthBody(ready bool) HealthResponse {
	lib := s.engine.Library()
	status := "ok"
	if !ready {
		status = "starting"
		if s.everReady.Load() {
			status = "draining"
		}
	}
	trained := lib.TrainedOps()
	names := make([]string, len(trained))
	for i, op := range trained {
		names[i] = op.String()
	}
	return HealthResponse{
		Status:        status,
		Ready:         ready,
		Platform:      lib.Platform,
		Model:         lib.ModelKind(),
		FormatVersion: lib.Format(),
		Ops:           names,
	}
}

// handleHealthz is the readiness probe: 200 only when the daemon should
// receive traffic, 503 while starting or draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := s.ready.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, s.healthBody(ready))
}

// handleLivez is the liveness probe: 200 whenever the process can answer,
// ready or not.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthBody(s.ready.Load()))
}
