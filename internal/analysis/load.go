package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Module is the loaded, type-checked view of the current Go module: the
// unit the suite analyzes. Dependencies (standard library included) are
// imported from compiler export data, so loading costs one `go list
// -export` invocation plus a source type-check of the module's own
// packages — and the export data is produced through the Go build cache,
// which is what keeps repeated CI runs fast.
type Module struct {
	Fset *token.FileSet
	// Path is the module path ("repro").
	Path string
	// Pkgs maps import path to loaded package, module-local packages only.
	Pkgs map[string]*Package

	funcs map[string]*FuncSource
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncSource locates the source of one module function — the unit the
// transitive zeroalloc walk resolves callees to.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Sorted returns the module packages in import-path order.
func (m *Module) Sorted() []*Package {
	paths := make([]string, 0, len(m.Pkgs))
	for p := range m.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, p := range paths {
		out[i] = m.Pkgs[p]
	}
	return out
}

// InModule reports whether the import path belongs to the analyzed module.
func (m *Module) InModule(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// FuncKey canonicalizes a function object for cross-package lookup:
// "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for methods
// (pointer receivers stripped). Objects imported from export data and
// objects type-checked from source produce the same key.
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // builtins like error.Error
	}
	key := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch tt := t.(type) {
		case *types.Named:
			key += "." + tt.Obj().Name()
		default:
			key += "." + t.String()
		}
	}
	return key + "." + fn.Name()
}

// FuncSource returns the module source of fn, or nil when fn is not a
// module function with a body (external, interface method, builtin).
func (m *Module) FuncSource(fn *types.Func) *FuncSource {
	if fn == nil || fn.Pkg() == nil || !m.InModule(fn.Pkg().Path()) {
		return nil
	}
	return m.funcs[FuncKey(fn)]
}

// listPackage mirrors the fields of `go list -json` the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	DepsErrors []*struct{ Err string }
	Error      *struct{ Err string }
}

// Load runs `go list -export -deps -json` for the patterns in dir, parses
// and type-checks every module-local package from source (dependencies
// come from export data), and returns the module view.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Standard,Export,GoFiles,Module,Error,DepsErrors"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, &lp)
	}

	mod := &Module{
		Fset:  token.NewFileSet(),
		Pkgs:  make(map[string]*Package),
		funcs: make(map[string]*FuncSource),
	}
	exports := make(map[string]string)
	var local []*listPackage
	for _, lp := range pkgs {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Module != nil && !lp.Standard {
			if mod.Path == "" {
				mod.Path = lp.Module.Path
			}
			local = append(local, lp)
		}
	}
	if mod.Path == "" {
		return nil, fmt.Errorf("analysis: no module packages matched %v", patterns)
	}

	imp := importer.ForCompiler(mod.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	for _, lp := range local {
		pkg, err := checkPackage(mod.Fset, imp, lp)
		if err != nil {
			return nil, err
		}
		mod.Pkgs[lp.ImportPath] = pkg
		indexFuncs(mod, pkg)
	}
	return mod, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}, nil
}

// indexFuncs registers every function declaration of pkg under its
// canonical key.
func indexFuncs(mod *Module, pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			mod.funcs[FuncKey(obj)] = &FuncSource{Pkg: pkg, Decl: fd}
		}
	}
}
