package linear

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

// synthetic linear data y = 3x0 - 2x1 + 5 + noise
func linearData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 3*X[i][0] - 2*X[i][1] + 5 + noise*rng.NormFloat64()
	}
	return X, y
}

func TestRegressionRecoversCoefficients(t *testing.T) {
	X, y := linearData(500, 0.01, 1)
	var r Regression
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Weights[0]-3) > 0.01 || math.Abs(r.Weights[1]+2) > 0.01 ||
		math.Abs(r.Weights[2]) > 0.01 || math.Abs(r.Intercept-5) > 0.01 {
		t.Errorf("weights %v intercept %v", r.Weights, r.Intercept)
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestRegressionExactOnNoiselessData(t *testing.T) {
	X, y := linearData(50, 0, 2)
	var r Regression
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := ml.PredictBatch(&r, X)
	if rmse := ml.RMSE(pred, y); rmse > 1e-6 {
		t.Errorf("noiseless RMSE = %v", rmse)
	}
}

func TestRegressionRejectsBadInput(t *testing.T) {
	var r Regression
	if err := r.Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
}

func TestRegressionCollinearColumns(t *testing.T) {
	// Duplicated column: jitter ridge keeps the system solvable.
	rng := rand.New(rand.NewSource(3))
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		v := rng.NormFloat64()
		X[i] = []float64{v, v}
		y[i] = 2 * v
	}
	var r Regression
	if err := r.Fit(X, y); err != nil {
		t.Fatalf("collinear fit: %v", err)
	}
	// Prediction must still be right even though individual weights are
	// unidentifiable.
	if got := r.Predict([]float64{1, 1}); math.Abs(got-2) > 1e-3 {
		t.Errorf("collinear predict = %v, want 2", got)
	}
}

func TestElasticNetShrinksToZeroAtHugeAlpha(t *testing.T) {
	X, y := linearData(200, 0.1, 4)
	e := NewElasticNet(1e6, 0.5)
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for j, w := range e.Weights {
		if math.Abs(w) > 1e-6 {
			t.Errorf("weight %d = %v, want shrunk to 0", j, w)
		}
	}
	// Intercept should be ~mean(y).
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	if math.Abs(e.Intercept-mean) > 0.1 {
		t.Errorf("intercept %v, want ~%v", e.Intercept, mean)
	}
}

func TestElasticNetApproachesOLSAtTinyAlpha(t *testing.T) {
	X, y := linearData(300, 0.05, 5)
	e := NewElasticNet(1e-6, 0.5)
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Weights[0]-3) > 0.05 || math.Abs(e.Weights[1]+2) > 0.05 {
		t.Errorf("weights %v", e.Weights)
	}
}

func TestElasticNetL1SparsifiesIrrelevantFeature(t *testing.T) {
	X, y := linearData(300, 0.2, 6)
	e := NewElasticNet(0.5, 1.0) // pure lasso
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Weights[2]) > 1e-9 {
		t.Errorf("irrelevant weight = %v, want exactly 0 under L1", e.Weights[2])
	}
	if e.Weights[0] < 1 {
		t.Errorf("relevant weight over-shrunk: %v", e.Weights[0])
	}
}

func TestElasticNetValidation(t *testing.T) {
	e := NewElasticNet(-1, 0.5)
	if err := e.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("negative alpha should error")
	}
	e = NewElasticNet(1, 2)
	if err := e.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("l1 ratio > 1 should error")
	}
}

func TestBayesianRidgeRecoversCoefficients(t *testing.T) {
	X, y := linearData(400, 0.1, 7)
	b := NewBayesianRidge()
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Weights[0]-3) > 0.05 || math.Abs(b.Weights[1]+2) > 0.05 {
		t.Errorf("weights %v", b.Weights)
	}
	if b.AlphaN <= 0 || b.LambdaW <= 0 {
		t.Errorf("precisions α=%v λ=%v, want positive", b.AlphaN, b.LambdaW)
	}
	// Noise precision should roughly match 1/0.1² = 100.
	if b.AlphaN < 20 || b.AlphaN > 500 {
		t.Errorf("noise precision %v implausible for σ=0.1", b.AlphaN)
	}
}

func TestBayesianRidgeShrinksMoreThanOLSOnTinyData(t *testing.T) {
	// With 6 noisy points and 3 features, the Bayesian prior should shrink
	// weights relative to OLS.
	X, y := linearData(6, 2.0, 8)
	var ols Regression
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	b := NewBayesianRidge()
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	olsNorm, bNorm := 0.0, 0.0
	for j := range ols.Weights {
		olsNorm += ols.Weights[j] * ols.Weights[j]
		bNorm += b.Weights[j] * b.Weights[j]
	}
	if bNorm > olsNorm+1e-9 {
		t.Errorf("Bayesian ‖w‖²=%v exceeds OLS ‖w‖²=%v", bNorm, olsNorm)
	}
}

func TestSoftThreshold(t *testing.T) {
	if softThreshold(5, 2) != 3 || softThreshold(-5, 2) != -3 || softThreshold(1, 2) != 0 {
		t.Error("softThreshold wrong")
	}
}

func TestPersistenceAllLinearModels(t *testing.T) {
	X, y := linearData(100, 0.1, 9)
	cases := []struct {
		kind  string
		model ml.Regressor
	}{
		{"linear", &Regression{}},
		{"elasticnet", NewElasticNet(0.01, 0.5)},
		{"bayesridge", NewBayesianRidge()},
	}
	for _, c := range cases {
		if err := c.model.Fit(X, y); err != nil {
			t.Fatalf("%s fit: %v", c.kind, err)
		}
		blob, err := ml.Marshal(c.kind, c.model)
		if err != nil {
			t.Fatalf("%s marshal: %v", c.kind, err)
		}
		back, err := ml.Unmarshal(blob)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", c.kind, err)
		}
		probe := []float64{0.3, -0.7, 1.1}
		if got, want := back.Predict(probe), c.model.Predict(probe); got != want {
			t.Errorf("%s: restored predict %v != %v", c.kind, got, want)
		}
	}
}

// Property: OLS predictions are invariant under feature shift (intercept
// absorbs it).
func TestRegressionShiftInvarianceProperty(t *testing.T) {
	X, y := linearData(120, 0.05, 10)
	var base Regression
	if err := base.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := func(shiftRaw int8) bool {
		shift := float64(shiftRaw) / 4
		Xs := make([][]float64, len(X))
		for i := range X {
			Xs[i] = []float64{X[i][0] + shift, X[i][1] + shift, X[i][2] + shift}
		}
		var r Regression
		if r.Fit(Xs, y) != nil {
			return false
		}
		probe := []float64{0.5, 0.5, 0.5}
		shifted := []float64{0.5 + shift, 0.5 + shift, 0.5 + shift}
		return math.Abs(r.Predict(shifted)-base.Predict(probe)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	if _, err := solveDense(a, []float64{1, 2}); err == nil {
		t.Error("singular system should error")
	}
}
