package blas

import (
	"fmt"

	"repro/internal/mat"
)

// SYR2K — symmetric rank-2k update, C ← alpha·(op(A)·op(B)ᵀ + op(B)·op(A)ᵀ)
// + beta·C with op(X) = X (trans=false) or Xᵀ (trans=true), op(A) and op(B)
// both n×k. Like SYRK, only the lower triangle of C is computed and the
// upper triangle is mirrored from it afterwards, so the result is exactly
// symmetric and the upper-triangle content of the input C is never read.
//
// SYR2K is the registry's proof that the masked-tile machinery closes the
// BLAS-3 extension loop (§VII future work): no new kernel code is needed —
// the update is two SYRK-shaped passes over the same packed buffers, the
// first computing lower(alpha·op(A)·op(B)ᵀ + beta·C), the second
// accumulating lower(alpha·op(B)·op(A)ᵀ) and running the band-parallel
// mirror. Block ownership and summation order depend only on the dimensions
// and the blocking parameters, so results are bit-identical across thread
// counts, and both passes reuse the context's packed panels (steady-state
// calls allocate nothing).

// SSYR2K computes the single-precision symmetric rank-2k update using the
// given number of worker goroutines (threads < 1 is treated as 1). The call
// runs on a pooled Context and allocates nothing in steady state.
func SSYR2K(trans bool, alpha float32, a, b *mat.F32, beta float32, c *mat.F32, threads int) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.SSYR2K(trans, alpha, a, b, beta, c, threads)
}

// DSYR2K is the double-precision counterpart of SSYR2K.
func DSYR2K(trans bool, alpha float64, a, b *mat.F64, beta float64, c *mat.F64, threads int) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.DSYR2K(trans, alpha, a, b, beta, c, threads)
}

// SSYR2KWithParams is SSYR2K with explicit blocking parameters; it exists
// for the edge-case test matrix and blocking ablations.
func SSYR2KWithParams(trans bool, alpha float32, a, b *mat.F32, beta float32, c *mat.F32, threads int, p Params) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.SSYR2KWithParams(trans, alpha, a, b, beta, c, threads, p)
}

// DSYR2KWithParams is DSYR2K with explicit blocking parameters.
func DSYR2KWithParams(trans bool, alpha float64, a, b *mat.F64, beta float64, c *mat.F64, threads int, p Params) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.DSYR2KWithParams(trans, alpha, a, b, beta, c, threads, p)
}

// SSYR2K computes C ← alpha·(op(A)·op(B)ᵀ + op(B)·op(A)ᵀ) + beta·C in single
// precision on this context with the given number of threads (values < 1
// mean 1).
func (c *Context) SSYR2K(trans bool, alpha float32, a, b *mat.F32, beta float32, cm *mat.F32, threads int) error {
	return c.SSYR2KWithParams(trans, alpha, a, b, beta, cm, threads, DefaultParams())
}

// DSYR2K is the double-precision counterpart of SSYR2K.
func (c *Context) DSYR2K(trans bool, alpha float64, a, b *mat.F64, beta float64, cm *mat.F64, threads int) error {
	return c.DSYR2KWithParams(trans, alpha, a, b, beta, cm, threads, DefaultParams())
}

// SSYR2KWithParams is SSYR2K with explicit blocking parameters.
func (c *Context) SSYR2KWithParams(trans bool, alpha float32, a, b *mat.F32, beta float32, cm *mat.F32, threads int, p Params) error {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float32]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float32]{cm.Rows, cm.Cols, cm.Stride, cm.Data}
	return syr2kCtx(c, trans, alpha, av, bv, beta, cv, threads, p)
}

// DSYR2KWithParams is DSYR2K with explicit blocking parameters.
func (c *Context) DSYR2KWithParams(trans bool, alpha float64, a, b *mat.F64, beta float64, cm *mat.F64, threads int, p Params) error {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	bv := view[float64]{b.Rows, b.Cols, b.Stride, b.Data}
	cv := view[float64]{cm.Rows, cm.Cols, cm.Stride, cm.Data}
	return syr2kCtx(c, trans, alpha, av, bv, beta, cv, threads, p)
}

// syr2kCtx is the SYR2K driver: argument checking, degenerate cases, the
// small-shape fast path, and two SYRK-shaped worker dispatches over the
// shared packed buffers — pass 1 applies beta and computes
// lower(alpha·op(A)·op(B)ᵀ), pass 2 accumulates lower(alpha·op(B)·op(A)ᵀ)
// with beta = 1 and mirrors the completed lower triangle.
func syr2kCtx[T float32 | float64](ctx *Context, trans bool, alpha T, a, b view[T], beta T, c view[T], threads int, prm Params) error {
	if err := prm.Validate(); err != nil {
		return err
	}
	n, k := opDims(a, trans)
	if bn, bk := opDims(b, trans); bn != n || bk != k {
		return fmt.Errorf("blas: SYR2K op(B) is %dx%d, want %dx%d to match op(A)", bn, bk, n, k)
	}
	if c.rows != n || c.cols != n {
		return fmt.Errorf("blas: SYR2K C is %dx%d, want %dx%d", c.rows, c.cols, n, n)
	}
	if threads < 1 {
		threads = 1
	}
	if n == 0 {
		return nil
	}
	if alpha == 0 || k == 0 {
		scaleLower(c, beta)
		mirrorLower(c, 0, n)
		return nil
	}

	// Small shapes skip packing, as in GEMM and SYRK. The rank-2k update does
	// twice the FLOPs of SYRK at the same (n, k), so the threshold halves in
	// k; it still depends only on the dimensions, keeping results
	// bit-identical across thread counts.
	if prm == DefaultParams() && smallShape(n, n, 2*k) {
		smallSyr2k(trans, alpha, a, b, beta, c, n, k)
		mirrorLower(c, 0, n)
		return nil
	}

	if threads > n/prm.MR+1 {
		threads = n/prm.MR + 1
	}

	kcEff := min(prm.KC, k)
	ncEff := min(prm.NC, (n+prm.NR-1)/prm.NR*prm.NR)
	mcEff := min(prm.MC, (n+prm.MR-1)/prm.MR*prm.MR)
	bufs := bufsFor[T](ctx)
	bufs.ensure(threads, mcEff*kcEff, kcEff*ncEff)

	dispatch := func() {
		ctx.bar.reset(threads)
		if threads == 1 {
			syrkWorker(ctx, bufs, 0)
		} else {
			ctx.ensureTeam(threads-1).run(threads, bufs.ensureBody(ctx))
		}
	}

	// Pass 1: lower(C) ← alpha·op(A)·op(B)ᵀ + beta·lower(C), no mirror yet.
	bufs.args = callArgs[T]{
		transA: trans, transB: trans,
		alpha: alpha, beta: beta,
		a: a, b: b, c: c,
		m: n, n: n, k: k,
		parts: threads,
		prm:   prm,
		syrk:  true,
	}
	dispatch()

	// Pass 2: lower(C) += alpha·op(B)·op(A)ᵀ (beta = 1 accumulates), then
	// mirror the completed lower triangle band-parallel.
	bufs.args = callArgs[T]{
		transA: trans, transB: trans,
		alpha: alpha, beta: 1,
		a: b, b: a, c: c,
		m: n, n: n, k: k,
		parts: threads,
		prm:   prm,
		syrk:  true, mirror: true,
	}
	dispatch()
	bufs.args = callArgs[T]{}
	return nil
}

// smallSyr2k computes the lower triangle of
// alpha·(op(A)·op(B)ᵀ + op(B)·op(A)ᵀ) + beta·C without packing. Callers
// handle the degenerate n/k = 0 and alpha = 0 cases and the mirror pass.
func smallSyr2k[T float32 | float64](trans bool, alpha T, a, b view[T], beta T, c view[T], n, k int) {
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride : i*c.stride+i+1]
		if !trans {
			// op(X) = X: rows i and j of A and B are contiguous dot operands.
			ai := a.data[i*a.stride : i*a.stride+k]
			bi := b.data[i*b.stride : i*b.stride+k]
			for j := 0; j <= i; j++ {
				aj := a.data[j*a.stride : j*a.stride+k]
				bj := b.data[j*b.stride : j*b.stride+k]
				var sum T
				for p, av := range ai {
					sum += av*bj[p] + bi[p]*aj[p]
				}
				if beta == 0 {
					row[j] = alpha * sum
				} else {
					row[j] = alpha*sum + beta*row[j]
				}
			}
			continue
		}
		// op(X) = Xᵀ: columns i and j, strided reads.
		for j := 0; j <= i; j++ {
			var sum T
			for p := 0; p < k; p++ {
				sum += a.data[p*a.stride+i]*b.data[p*b.stride+j] +
					b.data[p*b.stride+i]*a.data[p*a.stride+j]
			}
			if beta == 0 {
				row[j] = alpha * sum
			} else {
				row[j] = alpha*sum + beta*row[j]
			}
		}
	}
}
