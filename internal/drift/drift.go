// Package drift is the online model-quality monitor: a lock-free,
// constant-memory observer over the serving engine's measured-prediction
// stream. Every executed kernel call whose wall time reaches
// Engine.RecordMeasured — from the in-process BLAS facade or the daemon's
// POST /measured ingestion — is free labelled data: the model predicted a
// runtime, the machine produced one. The monitor folds each pair into
// per-op, shape-bucketed sliding windows of the same residual statistics
// adsala-replay computes offline (residual_log2 = log2(predicted/measured),
// abs_rel_err = |predicted−measured|/measured), so the online numbers and a
// replay of the same capture are directly comparable — and drift becomes
// visible the moment it happens instead of at the next manual backtest.
//
// Shapes bucket into small/medium/large by the op's FLOP count at the
// observed triple (the registry's cost weight), because drift is rarely
// uniform: co-tenancy hits large kernels first, frequency scaling hits
// small ones. Each (op, bucket) cell holds two obs.WindowedMoments rings;
// the observe path is a handful of atomic updates — 0 allocs/op, pinned by
// AllocsPerRun and the adsala-vet zeroalloc analyzer — so it can sit
// directly on the engine's measured hot path.
//
// A cell is "drifting" when its window holds at least MinSamples residuals
// and the windowed |mean residual_log2| exceeds Threshold (log2 units: 1.0
// means predictions are off by 2× on average). Any drifting cell marks its
// op drifting; any drifting op marks the monitor degraded — which
// /healthz surfaces as "degraded": true with the offending ops while
// readiness stays 200 (degraded, not down: the daemon still serves, the
// model is just stale). Thresholds are tuned offline by running the same
// detector over a capture with adsala-replay -drift.
package drift

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/ops"
)

// Schema is the versioned identifier of the /drift JSON report.
const Schema = "adsala/drift/v1"

// Shape buckets: FLOP count of the op at the observed triple, using the
// same decade thresholds family as the engine's heuristic size clamp but
// shifted up to kernel-scale work (a 512³ GEMM is ~2.7e8 FLOPs — medium).
const (
	bucketSmall = iota
	bucketMedium
	bucketLarge
	numBuckets

	smallFlops  = 1e8
	mediumFlops = 1e10
)

// bucketNames are the bucket label values, indexed by bucket.
var bucketNames = [numBuckets]string{"small", "medium", "large"}

// Config tunes a Monitor. The zero value selects the defaults.
type Config struct {
	// Window is the sliding-window span of the residual statistics
	// (default 1m).
	Window time.Duration
	// Slots is the number of mergeable sub-windows per window (default 8);
	// eviction granularity is Window/Slots.
	Slots int
	// Threshold is the drift trip point on |windowed mean residual_log2|
	// (default 1.0 — predictions off by 2× on average).
	Threshold float64
	// MinSamples is the minimum residual count a window needs before it
	// can trip (default 32); sparse traffic must not flap the health body.
	MinSamples int64
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.Threshold <= 0 {
		c.Threshold = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	return c
}

// cell is one (op, bucket) sliding-window aggregation.
type cell struct {
	samples  atomic.Int64 // cumulative measurements routed here
	residual *obs.WindowedMoments
	absRel   *obs.WindowedMoments
}

// opAgg is one op's cumulative aggregation plus event-log edge state.
type opAgg struct {
	measured    atomic.Int64 // measurements observed
	unpredicted atomic.Int64 // measurements with no predicted label
	// measuredLat and predictedLat are cumulative latency histograms
	// (nanosecond observations exposed as seconds), the online counterpart
	// of replay's measured_latency/predicted_latency tails.
	measuredLat  *obs.Histogram
	predictedLat *obs.Histogram
	// lastState/lastEvent drive LogEvents' transition-edge detection:
	// 0 = unknown, 1 = within threshold, 2 = drifting.
	lastState atomic.Int32
	lastEvent atomic.Int64
}

// Monitor is the online drift observer. One instance is attached to a
// serving engine (Engine.SetDriftMonitor) or driven from a capture
// (replay.DriftRun); Observe/ObserveAt are safe for concurrent use and
// allocation-free, everything else is read-side.
type Monitor struct {
	cfg       Config
	base      time.Time
	slotNanos int64
	// flops holds each op's registry FLOP-count function, captured at
	// construction so the observe path never walks the registry (whose
	// unknown-op fallback would cost an allocation).
	flops []func(m, k, n int) float64
	cells []cell  // ops.NumOps() × numBuckets, row-major by op
	perOp []opAgg // indexed by ops.Op
}

// NewMonitor returns a monitor with the given configuration (zero values
// select the defaults). The online clock base is construction time.
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:   cfg,
		base:  time.Now(),
		flops: make([]func(mm, k, n int) float64, ops.NumOps()),
		cells: make([]cell, ops.NumOps()*numBuckets),
		perOp: make([]opAgg, ops.NumOps()),
	}
	for _, spec := range ops.Specs() {
		m.flops[spec.Op] = spec.Flops
	}
	for i := range m.cells {
		m.cells[i].residual = obs.NewWindowedMoments(cfg.Window, cfg.Slots)
		m.cells[i].absRel = obs.NewWindowedMoments(cfg.Window, cfg.Slots)
	}
	m.slotNanos = m.cells[0].residual.WindowNanos() / int64(cfg.Slots)
	for i := range m.perOp {
		m.perOp[i].measuredLat = obs.NewHistogram(1e-9)
		m.perOp[i].predictedLat = obs.NewHistogram(1e-9)
	}
	return m
}

// Config returns the resolved configuration.
func (m *Monitor) Config() Config { return m.cfg }

// nowNanos is the online clock: monotonic nanoseconds since construction.
//
//adsala:zeroalloc
func (m *Monitor) nowNanos() int64 { return int64(time.Since(m.base)) }

// clampOp folds out-of-range ops onto GEMM so a miscast op can never panic
// the hot path (the engine's opCounters convention).
//
//adsala:zeroalloc
func (m *Monitor) clampOp(op ops.Op) ops.Op {
	if int(op) >= len(m.perOp) {
		return ops.GEMM
	}
	return op
}

// bucketOf maps a shape to its FLOP-weight bucket.
//
//adsala:zeroalloc
func (m *Monitor) bucketOf(op ops.Op, mm, k, n int) int {
	f := m.flops[op](mm, k, n)
	switch {
	case f < smallFlops:
		return bucketSmall
	case f < mediumFlops:
		return bucketMedium
	default:
		return bucketLarge
	}
}

// cellFor returns the (op, bucket) cell.
//
//adsala:zeroalloc
func (m *Monitor) cellFor(op ops.Op, bucket int) *cell {
	return &m.cells[int(op)*numBuckets+bucket]
}

// Observe folds one measured-prediction pair in at the current online
// time. predictedNs ≤ 0 means no predicted label was available (no model
// for the op); the measurement still counts into the latency histogram and
// the abs-rel-err window (as 1.0, exactly as replay scores a zero
// prediction), but not into the residual window.
//
//adsala:zeroalloc
func (m *Monitor) Observe(op ops.Op, mm, k, n int, predictedNs, measuredNs int64) {
	m.ObserveAt(m.nowNanos(), op, mm, k, n, predictedNs, measuredNs)
}

// ObserveAt is Observe at an explicit timestamp (nanoseconds on the
// caller's clock — the trace record's TS when replaying a capture). The
// window rotates on these timestamps, so online and replay runs use the
// same code against their own clocks.
//
//adsala:zeroalloc
func (m *Monitor) ObserveAt(ts int64, op ops.Op, mm, k, n int, predictedNs, measuredNs int64) {
	if measuredNs <= 0 {
		return
	}
	op = m.clampOp(op)
	a := &m.perOp[op]
	a.measured.Add(1)
	a.measuredLat.Observe(measuredNs)
	c := m.cellFor(op, m.bucketOf(op, mm, k, n))
	c.samples.Add(1)
	measured := float64(measuredNs) * 1e-9
	if predictedNs > 0 {
		a.predictedLat.Observe(predictedNs)
		predicted := float64(predictedNs) * 1e-9
		c.residual.Add(ts, math.Log2(predicted/measured))
		c.absRel.Add(ts, math.Abs(predicted-measured)/measured)
		return
	}
	a.unpredicted.Add(1)
	c.absRel.Add(ts, 1)
}

// isDrifting applies the trip rule to one windowed residual aggregate.
func (m *Monitor) isDrifting(mo obs.Moments) bool {
	return mo.Count() >= m.cfg.MinSamples && math.Abs(mo.Mean()) > m.cfg.Threshold
}

// DriftingOps returns the wire names of the ops currently drifting, in op
// order — the /healthz body's offending-ops list. Nil when healthy.
func (m *Monitor) DriftingOps() []string { return m.driftingAt(m.nowNanos()) }

// Degraded reports whether any op is currently drifting.
func (m *Monitor) Degraded() bool { return len(m.DriftingOps()) > 0 }

func (m *Monitor) driftingAt(ts int64) []string {
	var out []string
	for op := 0; op < len(m.perOp); op++ {
		for b := 0; b < numBuckets; b++ {
			if m.isDrifting(m.cellFor(ops.Op(op), b).residual.MomentsAt(ts)) {
				out = append(out, ops.Op(op).String())
				break
			}
		}
	}
	return out
}

// Summary is the JSON form of a Moments aggregate — field-compatible with
// replay's, so online and offline residual stats diff cleanly.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

func summarize(mo obs.Moments) Summary {
	return Summary{Count: mo.Count(), Mean: mo.Mean(), Std: mo.Std(), Min: mo.Min(), Max: mo.Max()}
}

// Tails is the JSON form of a latency histogram (seconds) — field-
// compatible with replay's.
type Tails struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func tails(h *obs.Histogram) Tails {
	return Tails{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.QuantileScaled(0.50),
		P90:   h.QuantileScaled(0.90),
		P99:   h.QuantileScaled(0.99),
	}
}

// BucketDrift is one (op, bucket) cell of the report. The windowed
// summaries cover the sliding window only; Samples is cumulative.
type BucketDrift struct {
	Samples      int64   `json:"samples"`
	ResidualLog2 Summary `json:"residual_log2"`
	AbsRelErr    Summary `json:"abs_rel_err"`
	Drifting     bool    `json:"drifting"`
}

// OpDrift is one op's section of the report. ResidualLog2 and AbsRelErr
// are the windowed statistics merged across the op's shape buckets; the
// latency tails are cumulative since monitor construction.
type OpDrift struct {
	Measured         int64                  `json:"measured"`
	Unpredicted      int64                  `json:"unpredicted,omitempty"`
	ResidualLog2     Summary                `json:"residual_log2"`
	AbsRelErr        Summary                `json:"abs_rel_err"`
	MeasuredLatency  Tails                  `json:"measured_latency"`
	PredictedLatency Tails                  `json:"predicted_latency"`
	Drifting         bool                   `json:"drifting"`
	Buckets          map[string]BucketDrift `json:"buckets,omitempty"`
}

// Report is the schema-versioned JSON answer of /drift (and of
// adsala-replay -drift).
type Report struct {
	Schema        string  `json:"schema"`
	WindowSeconds float64 `json:"window_seconds"`
	Slots         int     `json:"slots"`
	Threshold     float64 `json:"threshold"`
	MinSamples    int64   `json:"min_samples"`
	// Observed is the total measurements folded in across ops (cumulative).
	Observed    int64              `json:"observed"`
	Degraded    bool               `json:"degraded"`
	DriftingOps []string           `json:"drifting_ops,omitempty"`
	PerOp       map[string]OpDrift `json:"per_op,omitempty"`
}

// Snapshot builds the report at the current online time.
func (m *Monitor) Snapshot() *Report { return m.SnapshotAt(m.nowNanos()) }

// SnapshotAt builds the report with the sliding window ending at ts (the
// last record's timestamp when replaying a capture).
func (m *Monitor) SnapshotAt(ts int64) *Report {
	rep := &Report{
		Schema:        Schema,
		WindowSeconds: float64(m.slotNanos*int64(m.cfg.Slots)) * 1e-9,
		Slots:         m.cfg.Slots,
		Threshold:     m.cfg.Threshold,
		MinSamples:    m.cfg.MinSamples,
	}
	for op := 0; op < len(m.perOp); op++ {
		a := &m.perOp[op]
		measured := a.measured.Load()
		rep.Observed += measured
		if measured == 0 {
			continue
		}
		od := OpDrift{
			Measured:         measured,
			Unpredicted:      a.unpredicted.Load(),
			MeasuredLatency:  tails(a.measuredLat),
			PredictedLatency: tails(a.predictedLat),
		}
		var res, abs obs.Moments
		for b := 0; b < numBuckets; b++ {
			c := m.cellFor(ops.Op(op), b)
			samples := c.samples.Load()
			if samples == 0 {
				continue
			}
			bres := c.residual.MomentsAt(ts)
			babs := c.absRel.MomentsAt(ts)
			res.Merge(bres)
			abs.Merge(babs)
			bd := BucketDrift{
				Samples:      samples,
				ResidualLog2: summarize(bres),
				AbsRelErr:    summarize(babs),
				Drifting:     m.isDrifting(bres),
			}
			if bd.Drifting {
				od.Drifting = true
			}
			if od.Buckets == nil {
				od.Buckets = make(map[string]BucketDrift, numBuckets)
			}
			od.Buckets[bucketNames[b]] = bd
		}
		od.ResidualLog2 = summarize(res)
		od.AbsRelErr = summarize(abs)
		if od.Drifting {
			rep.Degraded = true
			rep.DriftingOps = append(rep.DriftingOps, ops.Op(op).String())
		}
		if rep.PerOp == nil {
			rep.PerOp = make(map[string]OpDrift)
		}
		rep.PerOp[ops.Op(op).String()] = od
	}
	return rep
}

// LogEvents emits structured drift transition events through the logger:
// one line when an op's windowed residual crosses the threshold
// (event=drift_start) and one when it recovers (event=drift_end). Called
// periodically off the hot path (the daemon runs it on a ticker); edges
// plus a per-op minimum gap of one window slot rate-limit the output, so a
// flapping op cannot flood the log. Returns the number of events logged.
func (m *Monitor) LogEvents(lg *logx.Logger) int {
	now := m.nowNanos()
	logged := 0
	for op := 0; op < len(m.perOp); op++ {
		a := &m.perOp[op]
		if a.measured.Load() == 0 {
			continue
		}
		var mo obs.Moments
		drifting := false
		for b := 0; b < numBuckets; b++ {
			bm := m.cellFor(ops.Op(op), b).residual.MomentsAt(now)
			mo.Merge(bm)
			if m.isDrifting(bm) {
				drifting = true
			}
		}
		state := int32(1)
		if drifting {
			state = 2
		}
		prev := a.lastState.Load()
		if prev == state {
			continue
		}
		if prev == 0 && state == 1 {
			// First evaluation, healthy: record the state silently.
			a.lastState.CompareAndSwap(prev, state)
			continue
		}
		if last := a.lastEvent.Load(); last != 0 && now-last < m.slotNanos {
			continue // rate limit: at most one transition per op per slot
		}
		if !a.lastState.CompareAndSwap(prev, state) {
			continue // another LogEvents raced us; it logs
		}
		a.lastEvent.Store(now)
		event := "drift_end"
		if state == 2 {
			event = "drift_start"
		}
		lg.Infof("drift: event=%s op=%s residual_log2_mean=%.4f window_samples=%d threshold=%.2f window=%s",
			event, ops.Op(op).String(), mo.Mean(), mo.Count(), m.cfg.Threshold,
			time.Duration(m.slotNanos*int64(m.cfg.Slots)))
		logged++
	}
	return logged
}
