package blas

import (
	"fmt"

	"repro/internal/mat"
)

// SYRK — symmetric rank-k update, C ← alpha·op(A)·op(A)ᵀ + beta·C with
// op(A) = A (trans=false) or Aᵀ (trans=true). Only the lower triangle of C
// is computed; the upper triangle is mirrored from it afterwards, so the
// result is exactly symmetric and the upper-triangle content of the input C
// is never read.
//
// SYRK is the first of the paper's future-work targets ("extend our
// ML-driven runtime thread selection approach to other BLAS operations",
// §VII): its cost profile differs from GEMM — half the FLOPs for the same C,
// and triangular load imbalance across the thread team — so the serving
// layer keys its decisions per operation (see internal/serve.Op).
//
// The implementation is the same five-loop blocked-and-packed algorithm as
// GEMM, specialised to the triangular output: op(A)ᵀ plays the role of B
// (packBRange with the transpose flag flipped reads it straight out of A, no
// extra buffer), macro-tiles that lie entirely above the diagonal are
// skipped, diagonal-straddling tiles are masked at store time, and the MC
// loop is partitioned by per-block tile weight so the triangular work stays
// balanced across the persistent worker team.

// SSYRK computes the single-precision symmetric rank-k update using the
// given number of worker goroutines (threads < 1 is treated as 1). The call
// runs on a pooled Context and allocates nothing in steady state.
func SSYRK(trans bool, alpha float32, a *mat.F32, beta float32, c *mat.F32, threads int) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.SSYRK(trans, alpha, a, beta, c, threads)
}

// DSYRK is the double-precision counterpart of SSYRK.
func DSYRK(trans bool, alpha float64, a *mat.F64, beta float64, c *mat.F64, threads int) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.DSYRK(trans, alpha, a, beta, c, threads)
}

// SSYRKWithParams is SSYRK with explicit blocking parameters; it exists for
// the edge-case test matrix and blocking ablations.
func SSYRKWithParams(trans bool, alpha float32, a *mat.F32, beta float32, c *mat.F32, threads int, p Params) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.SSYRKWithParams(trans, alpha, a, beta, c, threads, p)
}

// DSYRKWithParams is DSYRK with explicit blocking parameters.
func DSYRKWithParams(trans bool, alpha float64, a *mat.F64, beta float64, c *mat.F64, threads int, p Params) error {
	ctx := ctxPool.Get().(*Context)
	defer ctxPool.Put(ctx)
	return ctx.DSYRKWithParams(trans, alpha, a, beta, c, threads, p)
}

// SSYRK computes C ← alpha·op(A)·op(A)ᵀ + beta·C in single precision on this
// context with the given number of threads (values < 1 mean 1).
func (c *Context) SSYRK(trans bool, alpha float32, a *mat.F32, beta float32, cm *mat.F32, threads int) error {
	return c.SSYRKWithParams(trans, alpha, a, beta, cm, threads, DefaultParams())
}

// DSYRK is the double-precision counterpart of SSYRK.
func (c *Context) DSYRK(trans bool, alpha float64, a *mat.F64, beta float64, cm *mat.F64, threads int) error {
	return c.DSYRKWithParams(trans, alpha, a, beta, cm, threads, DefaultParams())
}

// SSYRKWithParams is SSYRK with explicit blocking parameters.
func (c *Context) SSYRKWithParams(trans bool, alpha float32, a *mat.F32, beta float32, cm *mat.F32, threads int, p Params) error {
	av := view[float32]{a.Rows, a.Cols, a.Stride, a.Data}
	cv := view[float32]{cm.Rows, cm.Cols, cm.Stride, cm.Data}
	return syrkCtx(c, trans, alpha, av, beta, cv, threads, p)
}

// DSYRKWithParams is DSYRK with explicit blocking parameters.
func (c *Context) DSYRKWithParams(trans bool, alpha float64, a *mat.F64, beta float64, cm *mat.F64, threads int, p Params) error {
	av := view[float64]{a.Rows, a.Cols, a.Stride, a.Data}
	cv := view[float64]{cm.Rows, cm.Cols, cm.Stride, cm.Data}
	return syrkCtx(c, trans, alpha, av, beta, cv, threads, p)
}

// syrkCtx is the SYRK driver: argument checking, degenerate cases, the
// small-shape fast path, buffer/team setup and the worker dispatch. It
// mirrors gemmCtx with m = n and B = op(A)ᵀ.
func syrkCtx[T float32 | float64](ctx *Context, trans bool, alpha T, a view[T], beta T, c view[T], threads int, prm Params) error {
	if err := prm.Validate(); err != nil {
		return err
	}
	n, k := opDims(a, trans)
	if c.rows != n || c.cols != n {
		return fmt.Errorf("blas: SYRK C is %dx%d, want %dx%d", c.rows, c.cols, n, n)
	}
	if threads < 1 {
		threads = 1
	}
	if n == 0 {
		return nil
	}
	if alpha == 0 || k == 0 {
		scaleLower(c, beta)
		mirrorLower(c, 0, n)
		return nil
	}

	// Small shapes skip packing entirely, as in GEMM. The threshold depends
	// only on the dimensions, so results stay bit-identical across thread
	// counts.
	if prm == DefaultParams() && smallShape(n, n, k) {
		smallSyrk(trans, alpha, a, beta, c, n, k)
		mirrorLower(c, 0, n)
		return nil
	}

	if threads > n/prm.MR+1 {
		threads = n/prm.MR + 1
	}

	kcEff := min(prm.KC, k)
	ncEff := min(prm.NC, (n+prm.NR-1)/prm.NR*prm.NR)
	mcEff := min(prm.MC, (n+prm.MR-1)/prm.MR*prm.MR)
	bufs := bufsFor[T](ctx)
	bufs.ensure(threads, mcEff*kcEff, kcEff*ncEff)
	bufs.args = callArgs[T]{
		transA: trans, transB: trans,
		alpha: alpha, beta: beta,
		a: a, b: a, c: c,
		m: n, n: n, k: k,
		parts: threads,
		prm:   prm,
		syrk:  true, mirror: true,
	}
	ctx.bar.reset(threads)
	if threads == 1 {
		syrkWorker(ctx, bufs, 0)
	} else {
		ctx.ensureTeam(threads-1).run(threads, bufs.ensureBody(ctx))
	}
	bufs.args = callArgs[T]{}
	return nil
}

// syrkWorker is the per-part body of the blocked SYRK. The loop structure is
// the GEMM five-loop with B = op(A)ᵀ: within each (jc, pc) blocking
// iteration the shared op(A)ᵀ panel is packed cooperatively (phase 1), a
// barrier publishes it, each part then packs and multiplies its own
// triangular-weighted share of the MC blocks that reach the lower triangle
// (phase 2), and a second barrier closes the iteration. Block ownership
// depends only on (w, parts) and per-element summation order only on the
// blocking loops, so the result is bit-identical for every parts value.
// After the last barrier the lower triangle is complete and each part
// mirrors its own row band into the upper triangle.
func syrkWorker[T float32 | float64](ctx *Context, bufs *ctxBufs[T], w int) {
	ar := &bufs.args
	prm := ar.prm
	parts := ar.parts
	n, k := ar.n, ar.k
	for jc := 0; jc < n; jc += prm.NC {
		nc := min(prm.NC, n-jc)
		nPanels := (nc + prm.NR - 1) / prm.NR
		for pc := 0; pc < k; pc += prm.KC {
			kc := min(prm.KC, k-pc)
			first := pc == 0

			// The B-side operand of the symmetric update is op(b)ᵀ: flipping
			// the transpose flag makes packBRange read its panels straight
			// out of b (which is a itself for SYRK, the second operand for
			// each SYR2K pass).
			lo := nPanels * w / parts
			hi := nPanels * (w + 1) / parts
			packBRange(ar.b, !ar.transB, pc, jc, kc, nc, lo, hi, bufs.packedB, prm.NR)
			ctx.bar.wait()

			blo, bhi := syrkBlockRange(n, jc, nc, prm, w, parts)
			for blk := blo; blk < bhi; blk++ {
				ic := blk * prm.MC
				mc := min(prm.MC, n-ic)
				// Columns jc..jc+ncb-1 reach the lower triangle of this
				// block (j ≤ i with i ≤ ic+mc-1); blocks entirely above the
				// diagonal are skipped before paying the A-packing copy.
				ncb := min(nc, ic+mc-jc)
				if ncb <= 0 {
					continue
				}
				packA(ar.a, ar.transA, ic, pc, mc, kc, bufs.packedA[w], prm.MR)
				syrkMacroKernel(ar.alpha, bufs.packedA[w], bufs.packedB, ar.beta, ar.c, ic, jc, mc, ncb, kc, first, prm)
			}
			ctx.bar.wait()
		}
	}
	// The final barrier above published the whole lower triangle; mirror it
	// band-parallel (writes are disjoint rows of the upper triangle, reads
	// are the now read-only lower triangle). SYR2K's first pass skips the
	// mirror: its lower triangle is only half the update.
	if !ar.mirror {
		return
	}
	lo, hi := mirrorRange(n, w, parts)
	mirrorLower(ar.c, lo, hi)
}

// syrkBlockWeight estimates the phase-2 cost of MC block blk within the
// panel at jc: the NR tiles it computes plus one tile-equivalent for the
// A-packing copy. Zero when the block lies entirely above the diagonal.
func syrkBlockWeight(blk, n, jc, nc int, prm Params) int {
	ic := blk * prm.MC
	mc := min(prm.MC, n-ic)
	ncb := min(nc, ic+mc-jc)
	if ncb <= 0 {
		return 0
	}
	return (ncb+prm.NR-1)/prm.NR + 1
}

// syrkBlockRange returns the half-open MC-block range owned by part w in the
// jc panel. Blocks are split by cumulative tile weight — the SYRK analogue
// of triangularBands, applied per panel so every barrier phase is balanced
// — and the split depends only on (n, jc, nc, prm, parts), never on timing,
// preserving deterministic ownership.
func syrkBlockRange(n, jc, nc int, prm Params, w, parts int) (blo, bhi int) {
	nBlocks := (n + prm.MC - 1) / prm.MC
	if parts <= 1 {
		return 0, nBlocks
	}
	total := 0
	for blk := 0; blk < nBlocks; blk++ {
		total += syrkBlockWeight(blk, n, jc, nc, prm)
	}
	if total == 0 {
		return 0, 0
	}
	// bound(x) = first block whose weight prefix reaches x·total/parts.
	loTarget := total * w / parts
	hiTarget := total * (w + 1) / parts
	acc := 0
	blo, bhi = nBlocks, nBlocks
	for blk := 0; blk < nBlocks; blk++ {
		if acc >= loTarget && blo == nBlocks {
			blo = blk
		}
		if acc >= hiTarget {
			bhi = blk
			break
		}
		acc += syrkBlockWeight(blk, n, jc, nc, prm)
	}
	if blo > bhi {
		blo = bhi
	}
	return blo, bhi
}

// syrkMacroKernel multiplies the packed mc×kc A block with the packed
// op(A)ᵀ panel, updating only the lower-triangle part of
// C(ic:ic+mc, jc:jc+ncb). Tiles fully below the diagonal store through the
// ordinary storeTile; diagonal-straddling tiles compute the full MR×NR tile
// (the above-diagonal lanes are wasted FLOPs bounded by one tile per
// diagonal row) and mask the store to j ≤ i.
//
//adsala:zeroalloc
func syrkMacroKernel[T float32 | float64](alpha T, packedA, packedB []T, beta T, c view[T], ic, jc, mc, ncb, kc int, first bool, prm Params) {
	mr, nr := prm.MR, prm.NR
	var acc [maxTile]T
	for i0 := 0; i0 < mc; i0 += mr {
		ib := min(mr, mc-i0)
		// Tiles with j0 ≥ jLim have no element with j ≤ i for any row of
		// this MR band.
		jLim := min(ncb, ic+i0+ib-jc)
		if jLim <= 0 {
			continue
		}
		aPanel := packedA[(i0/mr)*kc*mr:]
		for j0 := 0; j0 < jLim; j0 += nr {
			jb := min(nr, jLim-j0)
			bPanel := packedB[(j0/nr)*kc*nr:]
			switch {
			case mr == 4 && nr == 4:
				micro4x4(aPanel, bPanel, kc, &acc)
			case mr == 8 && nr == 4:
				micro8x4(aPanel, bPanel, kc, &acc)
			default: // 4x8, enforced by Validate
				micro4x8(aPanel, bPanel, kc, &acc)
			}
			ci, cj := ic+i0, jc+j0
			if cj+jb-1 <= ci {
				storeTile(alpha, beta, first, &acc, c, ci, cj, ib, jb, nr)
			} else {
				storeTileLower(alpha, beta, first, &acc, c, ci, cj, ib, jb, nr)
			}
		}
	}
}

// storeTileLower is storeTile masked to the lower triangle: row ci+i keeps
// only columns cj+j with j ≤ i.
func storeTileLower[T float32 | float64](alpha, beta T, first bool, acc *[maxTile]T, c view[T], ci, cj, ib, jb, nr int) {
	for i := 0; i < ib; i++ {
		jbRow := ci + i - cj + 1
		if jbRow > jb {
			jbRow = jb
		}
		if jbRow <= 0 {
			continue
		}
		row := c.data[(ci+i)*c.stride+cj : (ci+i)*c.stride+cj+jbRow]
		av := acc[i*nr : i*nr+jbRow]
		switch {
		case !first:
			if alpha == 1 {
				for j, v := range av {
					row[j] += v
				}
			} else {
				for j, v := range av {
					row[j] += alpha * v
				}
			}
		case beta == 0:
			if alpha == 1 {
				copy(row, av)
			} else {
				for j, v := range av {
					row[j] = alpha * v
				}
			}
		default:
			for j, v := range av {
				row[j] = beta*row[j] + alpha*v
			}
		}
	}
}

// smallSyrk computes the lower triangle of alpha·op(A)·op(A)ᵀ + beta·C
// without packing. Callers handle the degenerate n/k = 0 and alpha = 0
// cases and the mirror pass.
func smallSyrk[T float32 | float64](trans bool, alpha T, a view[T], beta T, c view[T], n, k int) {
	for i := 0; i < n; i++ {
		row := c.data[i*c.stride : i*c.stride+i+1]
		if !trans {
			// op(A) = A: rows i and j of A are contiguous dot operands.
			ai := a.data[i*a.stride : i*a.stride+k]
			for j := 0; j <= i; j++ {
				aj := a.data[j*a.stride : j*a.stride+k]
				var sum T
				for p, av := range ai {
					sum += av * aj[p]
				}
				if beta == 0 {
					row[j] = alpha * sum
				} else {
					row[j] = alpha*sum + beta*row[j]
				}
			}
			continue
		}
		// op(A) = Aᵀ: columns i and j of A, strided reads.
		for j := 0; j <= i; j++ {
			var sum T
			for p := 0; p < k; p++ {
				sum += a.data[p*a.stride+i] * a.data[p*a.stride+j]
			}
			if beta == 0 {
				row[j] = alpha * sum
			} else {
				row[j] = alpha*sum + beta*row[j]
			}
		}
	}
}

// scaleLower applies C ← beta·C to the lower triangle only.
func scaleLower[T float32 | float64](c view[T], beta T) {
	for i := 0; i < c.rows; i++ {
		row := c.data[i*c.stride : i*c.stride+i+1]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		if beta != 1 {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

// mirrorLower copies the lower triangle into the upper for rows [lo, hi):
// C(i, j) ← C(j, i) for j > i. Writes land in disjoint upper-triangle rows
// and reads only the lower triangle, so disjoint bands run in parallel.
func mirrorLower[T float32 | float64](c view[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		row := c.data[i*c.stride : i*c.stride+c.cols]
		for j := i + 1; j < c.cols; j++ {
			row[j] = c.data[j*c.stride+i]
		}
	}
}

// mirrorRange returns the mirror-pass row band of part w: row i carries
// n-1-i copies, so bands are sized by that reversed-triangular weight (the
// counterpart of triangularBands, computed without allocating).
func mirrorRange(n, w, parts int) (lo, hi int) {
	if parts <= 1 {
		return 0, n
	}
	total := float64(n) * float64(n-1) / 2
	bound := func(b int) int {
		if b >= parts {
			return n
		}
		target := total * float64(b) / float64(parts)
		var acc float64
		row := 0
		for row < n && acc < target {
			acc += float64(n - 1 - row)
			row++
		}
		return row
	}
	return bound(w), bound(w + 1)
}
