// Package core implements ADSALA proper: the install-time workflow (gather
// timings → preprocess → tune → fit → evaluate → select the model with the
// best estimated speedup) and the runtime library (load model, predict the
// optimal thread count per GEMM, cache repeated shapes).
//
// The split mirrors Figs 2 and 3 of the paper: Train produces the two
// artefacts (preprocessing config + trained model) that the runtime
// Predictor loads and evaluates on the hot path.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/preprocess"
	"repro/internal/sampling"
	"repro/internal/simtime"
)

// CandidateTime is one measured (thread count, wall seconds) pair.
type CandidateTime struct {
	Threads int     `json:"threads"`
	Seconds float64 `json:"seconds"`
}

// ShapeTimings holds the timing sweep of one GEMM shape across every
// candidate thread count.
type ShapeTimings struct {
	Shape sampling.Shape  `json:"shape"`
	Times []CandidateTime `json:"times"`
}

// TimeAt returns the measured seconds at the given thread count.
func (s ShapeTimings) TimeAt(threads int) (float64, bool) {
	for _, ct := range s.Times {
		if ct.Threads == threads {
			return ct.Seconds, true
		}
	}
	return 0, false
}

// BestMeasured returns the thread count with the smallest measured time.
// An empty sweep yields the zero CandidateTime rather than a panic.
func (s ShapeTimings) BestMeasured() CandidateTime {
	if len(s.Times) == 0 {
		return CandidateTime{}
	}
	best := s.Times[0]
	for _, ct := range s.Times[1:] {
		if ct.Seconds < best.Seconds {
			best = ct
		}
	}
	return best
}

// DefaultCandidates returns the thread counts evaluated at runtime for a
// platform with the given maximum: dense at low counts where the optimum
// usually falls, and aligned with topology boundaries above.
func DefaultCandidates(max int) []int {
	base := []int{1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96,
		112, 128, 160, 192, 224, 256}
	var out []int
	for _, c := range base {
		if c < max {
			out = append(out, c)
		}
	}
	out = append(out, max)
	return out
}

// GatherConfig drives the data-gathering phase (Fig 2, left box).
type GatherConfig struct {
	Timer      simtime.Timer
	Domain     sampling.Domain
	NumShapes  int
	Candidates []int
	// Iters is the number of timing repetitions averaged per configuration
	// (the paper uses 10; §V-B.3).
	Iters int
	Seed  int64
}

// meanTimer is implemented by timers that average repetitions natively.
type meanTimer interface {
	MeasureMean(m, k, n, threads, iters int) float64
}

// Gather samples NumShapes quasi-random shapes and times each at every
// candidate thread count.
func Gather(cfg GatherConfig) ([]ShapeTimings, error) {
	if cfg.Timer == nil {
		return nil, fmt.Errorf("core: GatherConfig.Timer is nil")
	}
	if cfg.NumShapes < 1 {
		return nil, fmt.Errorf("core: NumShapes %d < 1", cfg.NumShapes)
	}
	if len(cfg.Candidates) == 0 {
		return nil, fmt.Errorf("core: no candidate thread counts")
	}
	if cfg.Iters < 1 {
		cfg.Iters = 10
	}
	sampler, err := sampling.NewSampler(cfg.Domain, cfg.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]ShapeTimings, 0, cfg.NumShapes)
	for i := 0; i < cfg.NumShapes; i++ {
		sh := sampler.Next()
		st := ShapeTimings{Shape: sh, Times: make([]CandidateTime, 0, len(cfg.Candidates))}
		for _, p := range cfg.Candidates {
			var secs float64
			if mt, ok := cfg.Timer.(meanTimer); ok {
				secs = mt.MeasureMean(sh.M, sh.K, sh.N, p, cfg.Iters)
			} else {
				for r := 0; r < cfg.Iters; r++ {
					secs += cfg.Timer.Time(sh.M, sh.K, sh.N, p)
				}
				secs /= float64(cfg.Iters)
			}
			st.Times = append(st.Times, CandidateTime{Threads: p, Seconds: secs})
		}
		out = append(out, st)
	}
	return out, nil
}

// Records flattens shape timings into per-(shape, threads) training records.
func Records(data []ShapeTimings) []features.Record {
	var recs []features.Record
	for _, st := range data {
		for _, ct := range st.Times {
			recs = append(recs, features.Record{Shape: st.Shape, Threads: ct.Threads, Seconds: ct.Seconds})
		}
	}
	return recs
}

// Library is the deployable ADSALA artefact: a preprocessing pipeline, a
// trained runtime-prediction model, and the candidate thread counts to rank.
type Library struct {
	Platform  string
	ModelKind string
	Model     ml.Regressor
	Pipeline  *preprocess.Pipeline
	// Columns restricts the Table II feature set (nil = all features); used
	// by the feature-set ablation.
	Columns     []string
	Candidates  []int
	EvalSeconds float64 // measured model-evaluation latency per selection

	colOnce sync.Once
	colIdx  []int
}

// featureIndices resolves Columns into indices of features.Columns().
func (l *Library) featureIndices() []int {
	l.colOnce.Do(func() {
		if len(l.Columns) == 0 {
			return
		}
		all := features.Columns()
		for _, want := range l.Columns {
			for i, c := range all {
				if c == want {
					l.colIdx = append(l.colIdx, i)
					break
				}
			}
		}
	})
	return l.colIdx
}

// rawRow builds the (possibly column-restricted) raw feature row.
func (l *Library) rawRow(m, k, n, threads int) []float64 {
	full := features.Row(m, k, n, threads)
	idx := l.featureIndices()
	if idx == nil {
		return full
	}
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = full[j]
	}
	return out
}

// Scratch holds the reusable buffers of one allocation-free ranking pass.
// A Scratch is not safe for concurrent use; pool one per goroutine (the
// serve engine keeps them in a sync.Pool).
type Scratch struct {
	raw        []float64 // full Table II feature row
	restricted []float64 // column-restricted row (ablation libraries)
	buf        []float64 // pipeline output row fed to the model
}

// NewScratch returns ranking buffers sized for this library.
func (l *Library) NewScratch() *Scratch {
	s := &Scratch{
		raw: make([]float64, len(features.Columns())),
		buf: make([]float64, len(l.Pipeline.Keep)),
	}
	if idx := l.featureIndices(); idx != nil {
		s.restricted = make([]float64, len(idx))
	}
	return s
}

// RankInto ranks every candidate thread count by predicted runtime using the
// scratch buffers and returns the index of the argmin in Candidates. When
// scores is non-nil it must have len(Candidates) and receives the predicted
// wall time in seconds for each candidate (target untransformed). The
// library itself is read-only here, so concurrent calls with distinct
// scratches are safe.
func (l *Library) RankInto(m, k, n int, s *Scratch, scores []float64) int {
	bestIdx, bt := 0, 0.0
	for i, cand := range l.Candidates {
		features.RowInto(m, k, n, cand, s.raw)
		row := s.raw
		if idx := l.featureIndices(); idx != nil {
			for j, jj := range idx {
				s.restricted[j] = s.raw[jj]
			}
			row = s.restricted
		}
		l.Pipeline.TransformInto(row, s.buf)
		pred := l.Model.Predict(s.buf)
		if scores != nil {
			scores[i] = l.Pipeline.UntransformTarget(pred)
		}
		if i == 0 || pred < bt {
			bestIdx, bt = i, pred
		}
	}
	return bestIdx
}

// OptimalThreads ranks every candidate thread count by predicted runtime and
// returns the argmin (§IV-A). This is the uncached path; use a Predictor or
// the serve engine on hot loops.
func (l *Library) OptimalThreads(m, k, n int) int {
	return l.Candidates[l.RankInto(m, k, n, l.NewScratch(), nil)]
}

// PredictSeconds returns the model's runtime estimate for one configuration.
func (l *Library) PredictSeconds(m, k, n, threads int) float64 {
	row := l.Pipeline.Transform(l.rawRow(m, k, n, threads))
	return l.Pipeline.UntransformTarget(l.Model.Predict(row))
}

// Predictor is the runtime-side wrapper (Fig 3): it remembers the last GEMM
// shape and skips re-evaluation when the same dimensions repeat, the common
// pattern of GEMM inside application loops (§III-C). Safe for concurrent use.
type Predictor struct {
	lib *Library

	mu                  sync.Mutex
	lastM, lastK, lastN int
	lastChoice          int
	valid               bool
	hits, misses        int64
	scratch             *Scratch
}

// NewPredictor returns a Predictor bound to the library.
func (l *Library) NewPredictor() *Predictor {
	return &Predictor{lib: l, scratch: l.NewScratch()}
}

// OptimalThreads returns the thread count to use for an m×k×n GEMM,
// re-using the cached decision when the shape matches the previous call.
func (p *Predictor) OptimalThreads(m, k, n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.valid && p.lastM == m && p.lastK == k && p.lastN == n {
		p.hits++
		return p.lastChoice
	}
	p.misses++
	best := p.lib.Candidates[p.lib.RankInto(m, k, n, p.scratch, nil)]
	p.lastM, p.lastK, p.lastN, p.lastChoice, p.valid = m, k, n, best, true
	return best
}

// CacheStats reports (hits, misses) of the repeated-shape cache.
func (p *Predictor) CacheStats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Reset clears the cached decision (e.g. after a NUMA policy change).
func (p *Predictor) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.valid = false
}

// sortedCopy returns a sorted copy of xs (helper shared by train/report).
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
