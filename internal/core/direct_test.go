package core

import (
	"sync"
	"testing"

	"repro/internal/ops"
)

func TestDirectThreadModel(t *testing.T) {
	data, err := Gather(quickGather(60))
	if err != nil {
		t.Fatal(err)
	}
	d, err := TrainDirectThreadModel(data, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions are clamped to [1, max candidate].
	for _, sh := range [][3]int{{1, 1, 1}, {64, 2048, 64}, {8000, 8000, 8000}} {
		got := d.Predict(sh[0], sh[1], sh[2])
		if got < 1 || got > 96 {
			t.Errorf("shape %v: predicted %d threads", sh, got)
		}
	}
	// Large square shapes should get more threads than tiny ones on average.
	tiny := d.Predict(32, 32, 32)
	big := d.Predict(20000, 20000, 20000)
	if big < tiny {
		t.Errorf("big shape %d threads < tiny shape %d", big, tiny)
	}
	if _, err := TrainDirectThreadModel(nil, 1, true); err == nil {
		t.Error("empty data should error")
	}
}

func TestPredictorConcurrentUse(t *testing.T) {
	res := quickTrain(t, 50)
	p := res.Library.NewPredictor()
	var wg sync.WaitGroup
	shapes := [][3]int{{100, 100, 100}, {200, 300, 400}, {64, 2048, 64}}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sh := shapes[(w+i)%len(shapes)]
				if got := p.OptimalThreads(sh[0], sh[1], sh[2]); got < 1 || got > 96 {
					t.Errorf("bad choice %d", got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := p.CacheStats()
	if hits+misses != 8*200 {
		t.Errorf("stats %d+%d != 1600", hits, misses)
	}
}

func TestLibraryColumnsRestriction(t *testing.T) {
	res := quickTrain(t, 50)
	// Rebuild a library restricted to Group 1 columns via the training path.
	cfg := DefaultTrainConfig(quickGather(50), "Gadi", 48)
	cfg.Models = DefaultModels(1, true)[:1] // linear only: fast
	sub, err := TrainOnDataWithColumns(cfg, res.Data, []string{"m", "k", "n", "n_threads", "m*k*n"})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Library.OptimalThreads(500, 500, 500); got < 1 || got > 96 {
		t.Errorf("restricted library choice %d", got)
	}
	if len(sub.Library.ModelFor(ops.GEMM).Pipeline.InputCols) != 5 {
		t.Errorf("pipeline sees %d cols, want 5", len(sub.Library.ModelFor(ops.GEMM).Pipeline.InputCols))
	}
}
