package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/sampling"
)

func TestOpParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Op
	}{{"", OpGEMM}, {"gemm", OpGEMM}, {"syrk", OpSYRK}, {"syr2k", OpSYR2K}} {
		got, err := ParseOp(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseOp(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseOp("trsm"); err == nil {
		t.Error("unknown op should error")
	}
	if OpGEMM.String() != "gemm" || OpSYRK.String() != "syrk" || OpSYR2K.String() != "syr2k" {
		t.Errorf("op names: %q %q %q", OpGEMM, OpSYRK, OpSYR2K)
	}
	if !OpGEMM.Valid() || !OpSYR2K.Valid() || Op(ops.NumOps()).Valid() {
		t.Error("Valid() wrong")
	}
}

// TestCacheOpKeying pins that the same shape triple under different ops
// resolves to distinct cache entries.
func TestCacheOpKeying(t *testing.T) {
	c := NewCache(64, 4)
	c.Put(OpGEMM, 256, 128, 256, 8)
	c.Put(OpSYRK, 256, 128, 256, 4)
	if th, ok := c.Get(OpGEMM, 256, 128, 256); !ok || th != 8 {
		t.Errorf("gemm entry = (%d, %v), want 8", th, ok)
	}
	if th, ok := c.Get(OpSYRK, 256, 128, 256); !ok || th != 4 {
		t.Errorf("syrk entry = (%d, %v), want 4", th, ok)
	}
}

// TestCachePeekCountsNothing pins the read-only contract of Peek: no hit or
// miss is recorded and the LRU order is untouched.
func TestCachePeekCountsNothing(t *testing.T) {
	c := NewCache(4, 1) // single shard, 4 slots
	c.Put(OpGEMM, 1, 1, 1, 2)
	if th, ok := c.Peek(OpGEMM, 1, 1, 1); !ok || th != 2 {
		t.Fatalf("Peek = (%d, %v), want (2, true)", th, ok)
	}
	if _, ok := c.Peek(OpGEMM, 9, 9, 9); ok {
		t.Error("Peek of absent key reported present")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("Peek moved counters: hits=%d misses=%d", h, m)
	}
	// Peek must not refresh recency: fill the shard, peek the oldest, add
	// one more — the peeked entry is still the LRU and must be evicted.
	for i := 2; i <= 4; i++ {
		c.Put(OpGEMM, i, i, i, i)
	}
	c.Peek(OpGEMM, 1, 1, 1)
	c.Put(OpGEMM, 5, 5, 5, 5)
	if _, ok := c.Peek(OpGEMM, 1, 1, 1); ok {
		t.Error("peeked entry survived eviction: Peek refreshed the LRU order")
	}
}

// TestEngineOpSeparation checks PredictOp caches per op and CachedChoice is
// counter-neutral.
func TestEngineOpSeparation(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 64, Shards: 4})
	g := eng.PredictOp(OpGEMM, 300, 200, 300)
	s := eng.PredictOp(OpSYRK, 300, 200, 300)
	if g != s {
		// Same underlying shape model today, so decisions agree; the point
		// is the cache entries are distinct (checked below), not the values.
		t.Logf("gemm=%d syrk=%d (model is shape-based; divergence is fine)", g, s)
	}
	st := eng.Stats()
	if st.CacheMisses != 2 {
		t.Errorf("two first-time ops should be two misses, got %d", st.CacheMisses)
	}
	if th, ok := eng.CachedChoice(OpSYRK, 300, 200, 300); !ok || th != s {
		t.Errorf("CachedChoice(syrk) = (%d, %v), want (%d, true)", th, ok, s)
	}
	if _, ok := eng.CachedChoice(OpSYRK, 1, 2, 3); ok {
		t.Error("CachedChoice of never-predicted shape reported present")
	}
	if st2 := eng.Stats(); st2.Predictions != st.Predictions || st2.CacheHits != st.CacheHits || st2.CacheMisses != st.CacheMisses {
		t.Errorf("CachedChoice moved counters: %+v -> %+v", st, st2)
	}
}

// TestRankCountsConsistently pins the satellite bugfix: Rank performs a full
// ranking, so it must count one prediction AND one cache miss — previously
// it inflated predictions while leaving hit/miss untouched, skewing
// hit_rate.
func TestRankCountsConsistently(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 64, Shards: 4})
	scores, best := eng.Rank(400, 300, 200)
	if len(scores) != len(eng.Candidates()) || best < 1 {
		t.Fatalf("Rank = (%v, %d)", scores, best)
	}
	st := eng.Stats()
	if st.Predictions != 1 || st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Errorf("after one Rank: predictions=%d hits=%d misses=%d, want 1/0/1",
			st.Predictions, st.CacheHits, st.CacheMisses)
	}
	// The ranked decision lands in the cache for the hot path.
	if got := eng.Predict(400, 300, 200); got != best {
		t.Errorf("Predict after Rank = %d, want cached %d", got, best)
	}
	if st = eng.Stats(); st.CacheHits != 1 {
		t.Errorf("Predict after Rank should hit the cache: %+v", st)
	}
}

// TestWarmupExcludedFromServingStats pins the satellite bugfix: warm-up
// misses must not depress the serving hit_rate reported at /stats.
func TestWarmupExcludedFromServingStats(t *testing.T) {
	l := lib(t)
	eng := NewEngine(l, Options{CacheSize: 512})
	dom := sampling.DefaultDomain().WithCapMB(100)
	n, err := eng.Warmup(dom, 64, 7)
	if n != 64 || err != nil {
		t.Fatalf("Warmup = (%d, %v)", n, err)
	}
	st := eng.Stats()
	if st.Predictions != 0 || st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("serving counters polluted by warm-up: %+v", st)
	}
	if st.WarmupDecisions != 64 || st.WarmupHits+st.WarmupMisses != 64 {
		t.Errorf("warm-up accounting: %+v", st)
	}
	// Serving the warmed shapes is pure hits with hit_rate 1.
	sampler, err := sampling.NewSampler(dom, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range sampler.Sample(64) {
		eng.Predict(sh.M, sh.K, sh.N)
	}
	st = eng.Stats()
	if st.Predictions != 64 || st.CacheHits != 64 || st.CacheMisses != 0 || st.HitRate != 1 {
		t.Errorf("warmed serving traffic: %+v, want 64 hits at rate 1", st)
	}
}

// TestServerOpField drives the op field through /predict and a mixed-op
// /batch.
func TestServerOpField(t *testing.T) {
	srv, ts := testServer(t)
	client := NewClient(ts.URL, nil)

	want := srv.Engine().Library().OptimalThreads(256, 128, 256)
	got, err := client.PredictOp(OpSYRK, 256, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("syrk predict = %d, library %d", got, want)
	}
	// The decision was cached under the SYRK key, not the GEMM key.
	if _, ok := srv.Engine().CachedChoice(OpSYRK, 256, 128, 256); !ok {
		t.Error("syrk decision not cached under OpSYRK")
	}
	if _, ok := srv.Engine().CachedChoice(OpGEMM, 256, 128, 256); ok {
		t.Error("syrk decision leaked into the GEMM key")
	}

	// Mixed-op batch preserves request order.
	shapes := mixedShapes(6)
	req := BatchRequest{Shapes: make([]PredictRequest, len(shapes))}
	for i, sh := range shapes {
		op := OpGEMM
		if i%2 == 1 {
			op = OpSYRK
		}
		req.Shapes[i] = PredictRequest{M: sh.M, K: sh.K, N: sh.N, Op: op.String()}
	}
	var resp BatchResponse
	if err := clientDo(client, "/batch", req, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Threads) != len(shapes) {
		t.Fatalf("batch answered %d of %d", len(resp.Threads), len(shapes))
	}
	for i, sh := range shapes {
		if wantT := srv.Engine().Library().OptimalThreads(sh.M, sh.K, sh.N); resp.Threads[i] != wantT {
			t.Errorf("slot %d: got %d, want %d", i, resp.Threads[i], wantT)
		}
	}

	// Unknown op is a 400.
	r, err := http.Get(ts.URL + "/predict?m=4&k=4&n=4&op=trsm")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: HTTP %d, want 400", r.StatusCode)
	}
}

// clientDo posts through the client's transport (helper for raw batch
// bodies the typed client API does not express).
func clientDo(c *Client, path string, body, out any) error {
	return c.do(context.Background(), http.MethodPost, path, body, out)
}

// TestClientMixedOpBatchRoundTrip drives a three-op interleaved batch
// through serve.Client: the per-op split must preserve request order, every
// answer must match the op's own uncached ranking, and an unknown op name
// must surface as a 400 with a JSON error body.
func TestClientMixedOpBatchRoundTrip(t *testing.T) {
	srv, ts := testServer(t)
	client := NewClient(ts.URL, nil)
	l := srv.Engine().Library()

	rotation := []Op{OpGEMM, OpSYRK, OpSYR2K}
	shapes := mixedShapes(9)
	reqs := make([]PredictRequest, len(shapes))
	for i, sh := range shapes {
		reqs[i] = PredictRequest{M: sh.M, K: sh.K, N: sh.N, Op: rotation[i%len(rotation)].String()}
	}
	got, err := client.PredictBatchRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("batch answered %d of %d", len(got), len(reqs))
	}
	for i, r := range reqs {
		op := rotation[i%len(rotation)]
		if want := l.OptimalThreadsOp(op, r.M, r.K, r.N); got[i] != want {
			t.Errorf("slot %d (%s %dx%dx%d): got %d, want %d", i, r.Op, r.M, r.K, r.N, got[i], want)
		}
		// Each decision landed under its own op key.
		if _, ok := srv.Engine().CachedChoice(op, r.M, r.K, r.N); !ok {
			t.Errorf("slot %d: decision not cached under %s", i, op)
		}
	}

	// Unknown op name inside a batch: 400 with a decodable JSON error body.
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"shapes":[{"m":8,"k":8,"n":8,"op":"trsm"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op in batch: HTTP %d, want 400", resp.StatusCode)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Errorf("error body not decodable JSON: (%q, %v)", apiErr.Error, err)
	}
	// And through the typed client, the same failure surfaces as an error.
	if _, err := client.PredictBatchRequests([]PredictRequest{{M: 4, K: 4, N: 4, Op: "nope"}}); err == nil {
		t.Error("client should surface the unknown-op error")
	}
}
